"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e . --no-build-isolation`` (or
``python setup.py develop``) fall back to the legacy egg-link path.
"""

from setuptools import setup

setup()
