"""repro.kernels — vectorized codec kernels behind a backend dispatch.

The paper's premise is decompression at memory-bandwidth rate; the
from-scratch codec loops are the reference semantics, and this package
holds their fast paths. Two backends exist:

* ``python`` — the reference per-symbol/per-element loops (ground truth).
* ``numpy`` — vectorized implementations with **byte-identical** output
  and matching :mod:`repro.codecs.errors` behaviour on corrupt input:
  table-driven Huffman encode (per-symbol gather + cumulative bit-offset
  packing), a stride-8 DFA Huffman decode run as an array automaton,
  a two-phase Snappy decompressor (tag scan, then slice-op
  materialization), and batch varint/zigzag codecs.

Usage::

    from repro import kernels
    kernels.dispatch("huffman_decode", lengths, codes, payload, out_len)

    with kernels.use_backend("python"):   # scoped override (tests, benches)
        ...

Selection: :func:`set_backend` > ``REPRO_KERNEL_BACKEND`` env var >
autodetect (``numpy`` when available). Ops a backend cannot serve fall
back to the reference implementation and tick ``kernels.fallback``; every
dispatch ticks ``kernels.dispatch`` labelled by op and backend. See
docs/PERFORMANCE.md.
"""

from __future__ import annotations

from repro.kernels.registry import (
    KERNEL_BACKEND_ENV,
    KNOWN_BACKENDS,
    REFERENCE_BACKEND,
    REGISTRY,
    KernelUnavailable,
)

_backends_loaded = False


def _ensure_backends() -> None:
    """Import the backend modules exactly once, on first dispatch.

    Deferred so the codec modules (which the backends import for their
    reference loops) can themselves import :mod:`repro.kernels` at module
    level without a cycle.
    """
    global _backends_loaded
    if not _backends_loaded:
        _backends_loaded = True
        from repro.kernels import np_kernels, ref  # noqa: F401  (registration side effect)


def dispatch(op: str, *args, **kwargs):
    """Run kernel ``op`` on the active backend (reference fallback)."""
    _ensure_backends()
    return REGISTRY.dispatch(op, *args, **kwargs)


def backend() -> str:
    """The backend dispatch would use right now."""
    return REGISTRY.resolve_backend()


def set_backend(name: str | None) -> None:
    """Pin the kernel backend process-wide (``None``/``"auto"`` unpins)."""
    REGISTRY.set_backend(name)


def use_backend(name: str | None):
    """Context manager: scoped backend override."""
    return REGISTRY.use_backend(name)


def available_backends() -> tuple[str, ...]:
    return REGISTRY.available_backends()


def ops() -> tuple[str, ...]:
    """All registered kernel op names."""
    _ensure_backends()
    return REGISTRY.ops()


def backends_for(op: str) -> tuple[str, ...]:
    _ensure_backends()
    return REGISTRY.backends_for(op)


__all__ = [
    "KERNEL_BACKEND_ENV",
    "KNOWN_BACKENDS",
    "REFERENCE_BACKEND",
    "REGISTRY",
    "KernelUnavailable",
    "available_backends",
    "backend",
    "backends_for",
    "dispatch",
    "ops",
    "set_backend",
    "use_backend",
]
