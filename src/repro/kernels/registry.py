"""Backend-dispatch registry for the hot codec kernels.

The codec stack's inner loops (Huffman bit packing/unpacking, Snappy
element materialization, batch varints) exist in two implementations:

* ``python`` — the from-scratch reference loops. Always available, always
  correct; the byte-level ground truth everything else is checked against.
* ``numpy`` — vectorized fast paths that produce **byte-identical** output
  (and raise the same :mod:`repro.codecs.errors` types on corrupt input).

A *kernel op* is a name like ``"huffman_decode"``; each backend registers
one callable per op. :func:`dispatch` resolves the active backend per
call, so a backend switch (env var, CLI flag, :func:`use_backend`) takes
effect immediately — including inside recode-engine pool workers, which
inherit the parent's selection explicitly (see
:meth:`repro.codecs.engine.RecodeEngine`).

Selection order: :func:`set_backend` (CLI / code) > the
``REPRO_KERNEL_BACKEND`` environment variable > autodetect (``numpy``
when importable, else ``python``). An op missing from the selected
backend — or raising :class:`KernelUnavailable` at call time — falls back
to the ``python`` reference and ticks the ``kernels.fallback`` counter;
every successful dispatch ticks ``kernels.dispatch`` labelled
``op``/``backend``.
"""

from __future__ import annotations

import contextlib
import os
import threading
from collections.abc import Callable, Iterator

from repro import obs

#: Environment variable consulted when no backend was set explicitly.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: The reference backend every op must provide.
REFERENCE_BACKEND = "python"

#: Backends in autodetect preference order.
KNOWN_BACKENDS = ("numpy", "python")


class KernelUnavailable(RuntimeError):
    """A backend cannot service this op/call; dispatch retries on the
    reference backend. Raise it early — before any output is produced —
    so the fallback re-runs the op from scratch."""


class KernelRegistry:
    """Op table: ``(op, backend) -> callable`` plus backend selection."""

    def __init__(self) -> None:
        self._impls: dict[tuple[str, str], Callable] = {}
        self._ops: set[str] = set()
        self._lock = threading.Lock()
        # None = not yet resolved (env/autodetect decides on first use).
        self._selected: str | None = None

    # -- registration --------------------------------------------------------

    def register(self, op: str, backend: str) -> Callable[[Callable], Callable]:
        """Decorator: register ``fn`` as ``op``'s ``backend`` implementation."""
        if backend not in KNOWN_BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; know {KNOWN_BACKENDS}")

        def deco(fn: Callable) -> Callable:
            with self._lock:
                self._impls[(op, backend)] = fn
                self._ops.add(op)
            return fn

        return deco

    def ops(self) -> tuple[str, ...]:
        return tuple(sorted(self._ops))

    def backends_for(self, op: str) -> tuple[str, ...]:
        return tuple(b for b in KNOWN_BACKENDS if (op, b) in self._impls)

    # -- backend selection ---------------------------------------------------

    def available_backends(self) -> tuple[str, ...]:
        """Backends usable in this process (``numpy`` needs the import)."""
        out = []
        for name in KNOWN_BACKENDS:
            if name == "numpy":
                try:
                    import numpy  # noqa: F401
                except ImportError:  # pragma: no cover - numpy is a hard dep
                    continue
            out.append(name)
        return tuple(out)

    def autodetect(self) -> str:
        return self.available_backends()[0]

    def resolve_backend(self) -> str:
        """The backend dispatch will use right now (resolving env/autodetect)."""
        if self._selected is not None:
            return self._selected
        env = os.environ.get(KERNEL_BACKEND_ENV, "").strip().lower()
        if env in ("", "auto"):
            return self.autodetect()
        if env not in KNOWN_BACKENDS or env not in self.available_backends():
            # A bad env var must not take the process down: fall back to
            # autodetect and leave a visible trail in the metrics.
            obs.registry().counter("kernels.bad_backend_env", value=env).inc()
            return self.autodetect()
        return env

    def set_backend(self, name: str | None) -> None:
        """Pin the backend (``None``/``"auto"`` returns to env/autodetect).

        Raises:
            ValueError: unknown or unavailable backend name.
        """
        if name is None or name == "auto":
            self._selected = None
            return
        if name not in KNOWN_BACKENDS:
            raise ValueError(f"unknown kernel backend {name!r}; know {KNOWN_BACKENDS}")
        if name not in self.available_backends():
            raise ValueError(f"kernel backend {name!r} is not available in this process")
        self._selected = name

    @contextlib.contextmanager
    def use_backend(self, name: str | None) -> Iterator[None]:
        """Scoped :func:`set_backend` (tests, pool workers)."""
        prev = self._selected
        self.set_backend(name)
        try:
            yield
        finally:
            self._selected = prev

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, op: str, *args, **kwargs):
        """Run ``op`` on the active backend, reference-falling-back."""
        backend = self.resolve_backend()
        fn = self._impls.get((op, backend))
        reg = obs.registry()
        if fn is None:
            if backend != REFERENCE_BACKEND:
                reg.counter("kernels.fallback", op=op, backend=backend).inc()
            backend = REFERENCE_BACKEND
            fn = self._impls.get((op, backend))
            if fn is None:
                raise KeyError(f"kernel op {op!r} has no implementation")
        try:
            result = fn(*args, **kwargs)
        except KernelUnavailable:
            if backend == REFERENCE_BACKEND:
                raise
            reg.counter("kernels.fallback", op=op, backend=backend).inc()
            result = self._impls[(op, REFERENCE_BACKEND)](*args, **kwargs)
            backend = REFERENCE_BACKEND
        reg.counter("kernels.dispatch", op=op, backend=backend).inc()
        return result


#: The process-wide registry; module-level helpers in
#: :mod:`repro.kernels` are bound to it.
REGISTRY = KernelRegistry()
