"""Reference (``python``) kernel implementations.

These are the ground-truth loops the vectorized backend is differentially
tested against: the exact per-bit Huffman codec and per-element Snappy
decoder the repo has carried since the seed, plus sequential batch
varint/zigzag built on :mod:`repro.codecs.varint`.

Canonical-decoder table construction is memoized by table fingerprint
(the 256-byte lengths blob), so steady-state loops that decode thousands
of records against the same per-matrix table build the per-length
interval tables once, not per call.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.codecs.errors import CorruptStreamError
from repro.kernels.registry import REGISTRY

_register = REGISTRY.register


# ---------------------------------------------------------------------------
# Huffman
# ---------------------------------------------------------------------------


@lru_cache(maxsize=128)
def _encode_tables(lengths_blob: bytes, codes_blob: bytes) -> tuple[list[int], list[int]]:
    """Plain-int per-symbol (codes, lengths) lookup lists.

    Plain ints on purpose: numpy scalars would infect the bit buffer with
    fixed-width (wrapping) arithmetic.
    """
    codes = np.frombuffer(codes_blob, dtype=np.uint64).tolist()
    lengths = list(lengths_blob)
    return codes, lengths


@_register("huffman_encode", "python")
def huffman_encode(lengths: np.ndarray, codes: np.ndarray, data: bytes) -> tuple[bytes, int]:
    """Encode ``data`` to a MSB-first bitstream: ``(payload, bit_length)``."""
    code_l, len_l = _encode_tables(
        lengths.astype(np.uint8).tobytes(), codes.astype(np.uint64).tobytes()
    )
    out = bytearray()
    bitbuf = 0
    nbits = 0
    total_bits = 0
    for b in data:
        length = len_l[b]
        bitbuf = (bitbuf << length) | code_l[b]
        nbits += length
        total_bits += length
        while nbits >= 8:
            nbits -= 8
            out.append((bitbuf >> nbits) & 0xFF)
        bitbuf &= (1 << nbits) - 1
    if nbits:
        out.append((bitbuf << (8 - nbits)) & 0xFF)
    return bytes(out), total_bits


@lru_cache(maxsize=128)
def _decode_tables(lengths_blob: bytes) -> tuple[int, list[int], list[int], list[int], list[int]]:
    """Canonical per-length interval tables, memoized by fingerprint.

    Returns ``(max_len, first_code, count, sym_index, symbols)`` — the
    standard canonical-decoder artifacts (codes of length L occupy
    ``[first_code[L], first_code[L] + count[L])``).
    """
    lengths = list(lengths_blob)
    max_len = max(lengths) if lengths else 0
    first_code = [0] * (max_len + 2)
    count = [0] * (max_len + 2)
    for length in lengths:
        if length:
            count[length] += 1
    sym_index = [0] * (max_len + 2)
    symbols = sorted(
        (s for s in range(len(lengths)) if lengths[s] > 0),
        key=lambda s: (lengths[s], s),
    )
    code = 0
    idx = 0
    for length in range(1, max_len + 1):
        first_code[length] = code
        sym_index[length] = idx
        code = (code + count[length]) << 1
        idx += count[length]
    return max_len, first_code, count, sym_index, symbols


@_register("huffman_decode", "python")
def huffman_decode(
    lengths: np.ndarray, codes: np.ndarray, payload: bytes, out_len: int
) -> bytes:
    """Decode ``out_len`` symbols from a MSB-first bitstream.

    Raises:
        CorruptStreamError: stream ends, or an invalid code is met, before
            ``out_len`` symbols.
    """
    max_len, first_code, count, sym_index, symbols = _decode_tables(
        lengths.astype(np.uint8).tobytes()
    )
    out = bytearray()
    acc = 0
    acc_len = 0
    bit_pos = 0
    nbits_total = len(payload) * 8
    while len(out) < out_len:
        if bit_pos >= nbits_total:
            raise CorruptStreamError("bitstream exhausted before out_len symbols")
        byte = payload[bit_pos >> 3]
        bit = (byte >> (7 - (bit_pos & 7))) & 1
        bit_pos += 1
        acc = (acc << 1) | bit
        acc_len += 1
        if acc_len > max_len:
            raise CorruptStreamError("invalid code in bitstream")
        offset = acc - first_code[acc_len]
        if 0 <= offset < count[acc_len]:
            out.append(symbols[sym_index[acc_len] + offset])
            acc = 0
            acc_len = 0
    return bytes(out)


# ---------------------------------------------------------------------------
# Snappy
# ---------------------------------------------------------------------------


@_register("snappy_decompress", "python")
def snappy_decompress(data: bytes, max_output: int | None = None) -> bytes:
    """Per-element Snappy block-format decode (see
    :func:`repro.codecs.snappy.snappy_decompress` for the contract)."""
    from repro.codecs.varint import read_varint

    expected, pos = read_varint(data, 0)
    if max_output is not None and expected > max_output:
        raise CorruptStreamError(
            f"snappy preamble promises {expected} bytes, caller allows {max_output}"
        )
    out = bytearray()
    n = len(data)
    while pos < n:
        tag = data[pos]
        pos += 1
        kind = tag & 3
        if kind == 0:  # literal
            code = tag >> 2
            if code < 60:
                length = code + 1
            else:
                extra = code - 59
                if pos + extra > n:
                    raise CorruptStreamError("truncated literal length")
                length = int.from_bytes(data[pos : pos + extra], "little") + 1
                pos += extra
            if pos + length > n:
                raise CorruptStreamError("truncated literal body")
            out += data[pos : pos + length]
            pos += length
            if len(out) > expected:
                raise CorruptStreamError("output exceeds preamble length")
            continue
        if kind == 1:
            if pos >= n:
                raise CorruptStreamError("truncated copy-1")
            length = 4 + ((tag >> 2) & 0x7)
            offset = ((tag >> 5) << 8) | data[pos]
            pos += 1
        elif kind == 2:
            if pos + 2 > n:
                raise CorruptStreamError("truncated copy-2")
            length = (tag >> 2) + 1
            offset = int.from_bytes(data[pos : pos + 2], "little")
            pos += 2
        else:
            if pos + 4 > n:
                raise CorruptStreamError("truncated copy-4")
            length = (tag >> 2) + 1
            offset = int.from_bytes(data[pos : pos + 4], "little")
            pos += 4
        if offset == 0 or offset > len(out):
            raise CorruptStreamError(f"copy offset {offset} out of range at output {len(out)}")
        if offset >= length:
            src = len(out) - offset
            out += out[src : src + length]
        else:
            # Overlapping copy: the run repeats with period `offset`.
            pattern = out[len(out) - offset :]
            reps = -(-length // offset)  # ceil
            out += (pattern * reps)[:length]
        if len(out) > expected:
            raise CorruptStreamError("output exceeds preamble length")
    if len(out) != expected:
        raise CorruptStreamError(f"expected {expected} bytes, produced {len(out)}")
    return bytes(out)


# ---------------------------------------------------------------------------
# Batch varint / zigzag
# ---------------------------------------------------------------------------


@_register("varint_encode_batch", "python")
def varint_encode_batch(values) -> bytes:
    """Concatenated uvarints, identical to sequential ``write_varint``."""
    from repro.codecs.varint import write_varint

    vals = np.asarray(values).tolist() if not isinstance(values, (list, tuple)) else values
    return b"".join(write_varint(int(v)) for v in vals)


@_register("varint_decode_batch", "python")
def varint_decode_batch(data: bytes, count: int, offset: int = 0) -> tuple[np.ndarray, int]:
    """Decode ``count`` back-to-back uvarints starting at ``offset``.

    Returns ``(uint32 array, next_offset)``; raises
    :class:`CorruptStreamError` exactly like sequential ``read_varint``.
    """
    from repro.codecs.varint import read_varint

    out = np.empty(count, dtype=np.uint32)
    pos = offset
    for i in range(count):
        value, pos = read_varint(data, pos)
        out[i] = value
    return out, pos


@_register("zigzag_encode", "python")
def zigzag_encode(values) -> np.ndarray:
    """Map int32 to uint32 so sign alternates from zero: 0,-1,1,-2,2 → 0,1,2,3,4."""
    arr = np.asarray(values, dtype=np.int32)
    out = np.empty(arr.shape, dtype=np.uint32)
    flat = arr.ravel()
    oflat = out.ravel()
    for i, v in enumerate(flat.tolist()):
        oflat[i] = ((v << 1) ^ (v >> 31)) & 0xFFFFFFFF
    return out


@_register("zigzag_decode", "python")
def zigzag_decode(values) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    arr = np.asarray(values, dtype=np.uint32)
    out = np.empty(arr.shape, dtype=np.int32)
    flat = arr.ravel()
    oflat = out.ravel()
    for i, u in enumerate(flat.tolist()):
        decoded = (u >> 1) ^ -(u & 1)
        oflat[i] = decoded & 0xFFFFFFFF if decoded >= 0 else decoded
    return out
