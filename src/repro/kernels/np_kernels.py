"""Vectorized (``numpy``) kernel implementations.

Byte-identical to :mod:`repro.kernels.ref` by construction, differential-
tested in ``tests/test_kernels.py``, and raising the same
:mod:`repro.codecs.errors` types on corrupt input.

* **Huffman encode** — gather per-symbol lengths/codes, expand every code
  into an MSB-first bit matrix, select the valid bits in stream order and
  ``np.packbits`` them (zero-padded tail byte, like the reference).
* **Huffman decode** — the code tree compiles (once per table
  fingerprint) into a stride-8 DFA stored as flat arrays:
  ``next_state[state][byte]``, up-to-8 emitted symbols per transition,
  and a dead-path flag. Decoding is a light state walk over the payload
  bytes followed by one vectorized gather/flatten of the emissions — the
  array-automaton form of :meth:`HuffmanTable.decode_automaton`.
* **Snappy decompress** — two-phase: scan the tag stream once (validating
  exactly like the reference), then materialize literal runs and
  non-overlapping copies as slice assignments into a preallocated buffer;
  overlapping copies tile their period vectorized.
* **varint/zigzag** — closed-form batch encode/decode over byte columns.

Tables whose canonical codes overflow their bit lengths (possible only
for corrupt/hand-built tables; real tables are Kraft-complete) are not
representable as a trie, so those calls raise :class:`KernelUnavailable`
and dispatch re-runs them on the reference backend.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.codecs.errors import CorruptStreamError
from repro.kernels.registry import REGISTRY, KernelUnavailable

_register = REGISTRY.register

#: Bits consumed per DFA step; one payload byte per transition.
DFA_STRIDE = 8
#: A stride-8 step can emit at most 8 symbols (codes are >=1 bit).
_MAX_EMIT = 8


# ---------------------------------------------------------------------------
# Huffman encode
# ---------------------------------------------------------------------------


@lru_cache(maxsize=128)
def _codes_fit(lengths_blob: bytes, codes_blob: bytes) -> bool:
    """True when every code value fits in its bit length.

    The reference encoder ORs the raw code into the bit buffer, so an
    overflowing code (only possible for non-Kraft corrupt tables) bleeds
    into previously emitted bits — semantics a masked vectorized pack
    cannot reproduce. Such tables fall back to the reference.
    """
    lengths = np.frombuffer(lengths_blob, dtype=np.uint8).astype(np.uint64)
    codes = np.frombuffer(codes_blob, dtype=np.uint64)
    return bool(np.all(codes < (np.uint64(1) << lengths)))


@_register("huffman_encode", "numpy")
def huffman_encode(lengths: np.ndarray, codes: np.ndarray, data: bytes) -> tuple[bytes, int]:
    lengths = np.ascontiguousarray(lengths, dtype=np.uint8)
    codes = np.ascontiguousarray(codes, dtype=np.uint64)
    if not _codes_fit(lengths.tobytes(), codes.tobytes()):
        raise KernelUnavailable("code value overflows its length; reference semantics")
    if not data:
        return b"", 0
    syms = np.frombuffer(data, dtype=np.uint8)
    sym_lens = lengths[syms].astype(np.int64)
    total_bits = int(sym_lens.sum())
    max_len = int(sym_lens.max())
    if max_len == 0:
        return b"", 0
    sym_codes = codes[syms]
    # Bit k of a length-L code is (code >> (L-1-k)) & 1; build the full
    # (nsyms, max_len) bit matrix and keep the valid prefix of each row.
    shifts = sym_lens[:, None] - 1 - np.arange(max_len)[None, :]
    valid = shifts >= 0
    bits = (sym_codes[:, None] >> np.where(valid, shifts, 0).astype(np.uint64)) & np.uint64(1)
    stream = bits[valid].astype(np.uint8)  # row-major == stream order
    payload = np.packbits(stream)  # MSB-first, zero-padded tail
    return payload.tobytes(), total_bits


# ---------------------------------------------------------------------------
# Huffman decode (stride-8 array DFA)
# ---------------------------------------------------------------------------


class _DFATables:
    """Compiled stride-8 automaton for one table fingerprint."""

    __slots__ = ("next_rows", "emit", "emit_n", "dead", "has_dead")

    def __init__(self, next_rows, emit, emit_n, dead, has_dead):
        self.next_rows = next_rows  # list[list[int]]: fastest scalar walk
        self.emit = emit            # uint8[nstates, 256, 8]
        self.emit_n = emit_n        # int64[nstates, 256]
        self.dead = dead            # bool[nstates, 256]
        self.has_dead = has_dead


def _build_trie(lengths: np.ndarray, codes: np.ndarray) -> tuple[list[list[int]], dict[int, int]]:
    """Binary code trie: ``children[node] = [child0, child1]`` (-1 = none).

    Raises:
        KernelUnavailable: the codes collide (non-prefix-free corrupt
            table) and cannot form a trie.
    """
    children: list[list[int]] = [[-1, -1]]
    leaf_symbol: dict[int, int] = {}
    for sym in range(len(lengths)):
        length = int(lengths[sym])
        if length == 0:
            continue
        code = int(codes[sym])
        node = 0
        for i in range(length - 1, -1, -1):
            if node in leaf_symbol:
                raise KernelUnavailable("code collides with a shorter code")
            bit = (code >> i) & 1
            if children[node][bit] == -1:
                children.append([-1, -1])
                children[node][bit] = len(children) - 1
            node = children[node][bit]
        if node in leaf_symbol or children[node] != [-1, -1]:
            raise KernelUnavailable("code collides with another code")
        leaf_symbol[node] = sym
    return children, leaf_symbol


@lru_cache(maxsize=64)
def _compiled_dfa(lengths_blob: bytes, codes_blob: bytes) -> _DFATables:
    """Compile (and cache, by fingerprint) the stride-8 decode automaton.

    The 8 one-bit steps compose vectorized over the whole
    ``(nstates, 256)`` transition plane: stepping into a leaf emits its
    symbol and resets to the root; stepping off the trie marks the entry
    dead (no further emissions — the reference decoder can never produce
    another symbol once the accumulator leaves every code interval).
    """
    lengths = np.frombuffer(lengths_blob, dtype=np.uint8)
    codes = np.frombuffer(codes_blob, dtype=np.uint64)
    children, leaf_symbol = _build_trie(lengths, codes)
    nstates = len(children)
    child = np.array(children, dtype=np.int64)  # (nstates, 2)
    leaf = np.full(nstates, -1, dtype=np.int64)
    for node, sym in leaf_symbol.items():
        leaf[node] = sym

    chunk_bits = np.arange(256, dtype=np.int64)
    cur = np.repeat(np.arange(nstates, dtype=np.int64)[:, None], 256, axis=1)
    emit = np.zeros((nstates, 256, _MAX_EMIT), dtype=np.uint8)
    emit_n = np.zeros((nstates, 256), dtype=np.int64)
    dead = np.zeros((nstates, 256), dtype=bool)
    for k in range(DFA_STRIDE):
        bit = (chunk_bits >> (7 - k)) & 1
        nxt = child[cur, np.broadcast_to(bit, cur.shape)]
        dead |= (nxt < 0) & ~dead
        nxt = np.where(dead, 0, nxt)
        sym = leaf[nxt]
        hit = (sym >= 0) & ~dead
        rows, cols = np.nonzero(hit)
        emit[rows, cols, emit_n[rows, cols]] = sym[rows, cols]
        emit_n[rows, cols] += 1
        cur = np.where(hit, 0, nxt)
    nxt_state = np.where(dead, 0, cur).astype(np.int64)
    return _DFATables(
        next_rows=[row.tolist() for row in nxt_state],
        emit=emit,
        emit_n=emit_n,
        dead=dead,
        has_dead=bool(dead.any()),
    )


@_register("huffman_decode", "numpy")
def huffman_decode(
    lengths: np.ndarray, codes: np.ndarray, payload: bytes, out_len: int
) -> bytes:
    lengths = np.ascontiguousarray(lengths, dtype=np.uint8)
    codes = np.ascontiguousarray(codes, dtype=np.uint64)
    if not _codes_fit(lengths.tobytes(), codes.tobytes()):
        raise KernelUnavailable("code value overflows its length; reference semantics")
    if out_len <= 0:
        return b""
    dfa = _compiled_dfa(lengths.tobytes(), codes.tobytes())
    nbytes = len(payload)
    if nbytes == 0:
        raise CorruptStreamError("bitstream exhausted before out_len symbols")

    # Pass 1 — scalar state walk (one list index per payload byte).
    states_list = [0] * nbytes
    rows = dfa.next_rows
    state = 0
    i = 0
    for b in payload:
        states_list[i] = state
        state = rows[state][b]
        i += 1
    states = np.asarray(states_list, dtype=np.int64)
    chunks = np.frombuffer(payload, dtype=np.uint8)

    # Pass 2 — vectorized emission gather.
    counts = dfa.emit_n[states, chunks]
    exhausted_msg = "bitstream exhausted before out_len symbols"
    if dfa.has_dead:
        dead_hits = np.nonzero(dfa.dead[states, chunks])[0]
        if dead_hits.size:
            # Emissions inside the dead chunk precede the dead bit and
            # count; everything after decodes garbage from the root.
            cutoff = int(dead_hits[0]) + 1
            states, chunks, counts = states[:cutoff], chunks[:cutoff], counts[:cutoff]
            exhausted_msg = "invalid code in bitstream"
    csum = np.cumsum(counts)
    if int(csum[-1]) < out_len:
        raise CorruptStreamError(exhausted_msg)
    last = int(np.searchsorted(csum, out_len))  # first chunk reaching out_len
    states, chunks, counts = states[: last + 1], chunks[: last + 1], counts[: last + 1]
    sym_rows = dfa.emit[states, chunks]  # (nchunks, 8)
    mask = np.arange(_MAX_EMIT) < counts[:, None]
    return sym_rows[mask][:out_len].tobytes()


# ---------------------------------------------------------------------------
# Snappy decompress
# ---------------------------------------------------------------------------


@_register("snappy_decompress", "numpy")
def snappy_decompress(data: bytes, max_output: int | None = None) -> bytes:
    """Two-phase Snappy decode: tag scan, then slice-op materialization."""
    from repro.codecs.varint import read_varint

    expected, pos = read_varint(data, 0)
    if max_output is not None and expected > max_output:
        raise CorruptStreamError(
            f"snappy preamble promises {expected} bytes, caller allows {max_output}"
        )
    n = len(data)
    out_pos = 0
    literals: list[tuple[int, int, int]] = []  # (dst, src, length)
    copies: list[tuple[int, int, int]] = []  # (dst, offset, length)
    # Phase 1 — walk the element stream, bounds-checking in exactly the
    # reference order so corrupt streams fail identically.
    while pos < n:
        tag = data[pos]
        pos += 1
        kind = tag & 3
        if kind == 0:  # literal
            code = tag >> 2
            if code < 60:
                length = code + 1
            else:
                extra = code - 59
                if pos + extra > n:
                    raise CorruptStreamError("truncated literal length")
                length = int.from_bytes(data[pos : pos + extra], "little") + 1
                pos += extra
            if pos + length > n:
                raise CorruptStreamError("truncated literal body")
            literals.append((out_pos, pos, length))
            pos += length
        else:
            if kind == 1:
                if pos >= n:
                    raise CorruptStreamError("truncated copy-1")
                length = 4 + ((tag >> 2) & 0x7)
                offset = ((tag >> 5) << 8) | data[pos]
                pos += 1
            elif kind == 2:
                if pos + 2 > n:
                    raise CorruptStreamError("truncated copy-2")
                length = (tag >> 2) + 1
                offset = int.from_bytes(data[pos : pos + 2], "little")
                pos += 2
            else:
                if pos + 4 > n:
                    raise CorruptStreamError("truncated copy-4")
                length = (tag >> 2) + 1
                offset = int.from_bytes(data[pos : pos + 4], "little")
                pos += 4
            if offset == 0 or offset > out_pos:
                raise CorruptStreamError(
                    f"copy offset {offset} out of range at output {out_pos}"
                )
            copies.append((out_pos, offset, length))
        out_pos += length
        if out_pos > expected:
            raise CorruptStreamError("output exceeds preamble length")
    if out_pos != expected:
        raise CorruptStreamError(f"expected {expected} bytes, produced {out_pos}")

    # Phase 2 — materialize. Literals never read the output, so they all
    # land first; copies only read bytes strictly before their own start,
    # so stream order is safe once literals are placed.
    src = np.frombuffer(data, dtype=np.uint8)
    out = np.empty(expected, dtype=np.uint8)
    for dst, s, length in literals:
        out[dst : dst + length] = src[s : s + length]
    for dst, offset, length in copies:
        if offset >= length:
            out[dst : dst + length] = out[dst - offset : dst - offset + length]
        else:
            # Overlapping: the run repeats with period `offset`.
            pattern = out[dst - offset : dst]
            reps = -(-length // offset)  # ceil
            out[dst : dst + length] = np.tile(pattern, reps)[:length]
    return out.tobytes()


# ---------------------------------------------------------------------------
# Batch varint / zigzag
# ---------------------------------------------------------------------------

_VARINT_MAX = (1 << 32) - 1


@_register("varint_encode_batch", "numpy")
def varint_encode_batch(values) -> bytes:
    vals = np.asarray(values, dtype=np.int64).ravel()
    if vals.size == 0:
        return b""
    bad = np.nonzero((vals < 0) | (vals > _VARINT_MAX))[0]
    if bad.size:
        v = int(vals[bad[0]])
        if v < 0:
            raise ValueError(f"varint must be non-negative, got {v}")
        raise ValueError(f"varint out of 32-bit range: {v}")
    u = vals.astype(np.uint64)
    nbytes = np.ones(u.size, dtype=np.int64)
    for threshold_bits in (7, 14, 21, 28):
        nbytes += (u >= (np.uint64(1) << np.uint64(threshold_bits))).astype(np.int64)
    ends = np.cumsum(nbytes)
    starts = ends - nbytes
    out = np.zeros(int(ends[-1]), dtype=np.uint8)
    for k in range(5):
        sel = nbytes > k
        if not sel.any():
            break
        byte = ((u[sel] >> np.uint64(7 * k)) & np.uint64(0x7F)).astype(np.uint8)
        cont = ((nbytes[sel] - 1) > k).astype(np.uint8)
        out[starts[sel] + k] = byte | (cont << 7)
    return out.tobytes()


@_register("varint_decode_batch", "numpy")
def varint_decode_batch(data: bytes, count: int, offset: int = 0) -> tuple[np.ndarray, int]:
    if count == 0:
        return np.empty(0, dtype=np.uint32), offset
    buf = np.frombuffer(data, dtype=np.uint8)[offset:]
    terminators = np.nonzero(buf < 0x80)[0]
    navail = int(min(count, terminators.size))
    ends = terminators[:navail]
    starts = np.concatenate(([0], ends[:-1] + 1)) if navail else np.empty(0, np.int64)
    lens = ends - starts + 1
    # Values of the complete varints. The reference reads up to 6 bytes
    # (a zero-padded 6-byte varint still decodes); its shift guard only
    # fires on the 6th *continuation* byte, i.e. length >= 7.
    values = np.zeros(navail, dtype=np.uint64)
    for k in range(6):
        sel = lens > k
        if not sel.any():
            break
        values[sel] |= (buf[starts[sel] + k].astype(np.uint64) & np.uint64(0x7F)) << np.uint64(
            7 * k
        )
    # Fault ordering matches the sequential reference: the earliest
    # offending varint wins, and within one varint "too long" (detected
    # mid-parse at byte 6) beats "exceeds 32 bits" (detected at its end).
    too_long = lens > 6
    bad = np.nonzero(too_long | (values > _VARINT_MAX))[0]
    if bad.size:
        first_bad = int(bad[0])
        if bool(too_long[first_bad]):
            raise CorruptStreamError("varint too long")
        raise CorruptStreamError("varint exceeds 32 bits")
    if navail < count:
        # The stream ends inside varint `navail`: all-continuation tail.
        tail = buf.size - (int(ends[-1]) + 1 if navail else 0)
        if tail >= 6:
            raise CorruptStreamError("varint too long")
        raise CorruptStreamError("truncated varint")
    return values.astype(np.uint32), offset + int(ends[-1]) + 1


@_register("zigzag_encode", "numpy")
def zigzag_encode(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int32)
    return (arr.astype(np.uint32) << np.uint32(1)) ^ (arr >> 31).astype(np.uint32)


@_register("zigzag_decode", "numpy")
def zigzag_decode(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.uint32)
    return ((arr >> np.uint32(1)) ^ np.negative(arr & np.uint32(1))).astype(np.int32)
