"""Sparse matrix x dense matrix (SpMM): Y = A @ X for k right-hand sides.

The paper's future work asks after "performance benefit of other sparse
matrix computation using flexible data recoding". SpMM is the natural
first: each stored non-zero now does 2k flops but is still fetched once, so
the recoding win (less A-traffic) shrinks as k grows and x/y traffic takes
over — :func:`spmm_speedup_model` quantifies that crossover.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.sparse.blocked import BlockedCSR, CSRBlock
from repro.sparse.csr import CSRMatrix, VALUE_DTYPE


def _check_x(a_shape: tuple[int, int], x: np.ndarray) -> np.ndarray:
    x = np.ascontiguousarray(x, dtype=VALUE_DTYPE)
    if x.ndim != 2 or x.shape[0] != a_shape[1]:
        raise ValueError(f"X must have shape ({a_shape[1]}, k), got {x.shape}")
    return x


def spmm(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Vectorized SpMM: gather rows of X, scale, segment-sum per A-row."""
    x = _check_x(a.shape, x)
    k = x.shape[1]
    out = np.zeros((a.nrows, k), dtype=VALUE_DTYPE)
    if a.nnz == 0:
        return out
    products = a.val[:, None] * x[a.col_idx]
    starts = a.row_ptr[:-1]
    nonempty = np.diff(a.row_ptr) > 0
    seg = np.add.reduceat(products, np.minimum(starts[nonempty], a.nnz - 1), axis=0)
    out[nonempty] += seg
    return out


def spmm_blocked(
    blocked: BlockedCSR,
    x: np.ndarray,
    recode: Callable[[CSRBlock], CSRBlock] | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Tiled SpMM with the same ``recode`` hook as
    :func:`repro.sparse.spmv.spmv_blocked`.

    ``out`` is an optional preallocated ``(nrows, k)`` float64 accumulator
    (zero-filled here), letting iterative callers reuse one buffer across
    calls; the result is bit-identical either way.
    """
    x = _check_x(blocked.shape, x)
    k = x.shape[1]
    if out is None:
        out = np.zeros((blocked.shape[0], k), dtype=VALUE_DTYPE)
    else:
        if out.shape != (blocked.shape[0], k) or out.dtype != VALUE_DTYPE:
            raise ValueError(
                f"out must be float64 with shape ({blocked.shape[0]}, {k}), "
                f"got {out.dtype} {out.shape}"
            )
        if not out.flags.writeable:
            raise ValueError("out must be writeable")
        out[:] = 0.0
    for block in blocked.blocks:
        if recode is not None:
            block = recode(block)
        if block.nnz == 0:
            continue
        rows, seg_starts = block.row_segments()
        if rows.size == 0:
            continue
        products = block.val[:, None] * x[block.col_idx]
        seg = np.add.reduceat(products, seg_starts, axis=0)
        out[rows] += seg
    return out


def spmm_speedup_model(
    nnz: int, nrows: int, ncols: int, k: int, bytes_per_nnz: float
) -> float:
    """Modeled speedup of compressed vs uncompressed SpMM at k RHS.

    Traffic per multiply: A (12 or ``bytes_per_nnz`` per nnz) + X and Y
    streamed once (8k bytes per column entry). As k grows, the dense
    operands dominate and the recoding win decays toward 1 — the crossover
    the paper's future work would explore.

    Raises:
        ValueError: on non-positive ``k`` or ``bytes_per_nnz``.
    """
    if k < 1 or bytes_per_nnz <= 0:
        raise ValueError("k and bytes_per_nnz must be positive")
    dense_bytes = 8.0 * k * (nrows + ncols)
    base = 12.0 * nnz + dense_bytes
    compressed = bytes_per_nnz * nnz + dense_bytes
    return base / compressed
