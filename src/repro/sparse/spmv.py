"""SpMV kernels: y <- A @ x (+ y0).

Three implementations with one contract:

* :func:`spmv_reference` — the scalar loop of paper Fig. 2, kept as the
  executable specification (used by tests and tiny matrices).
* :func:`spmv` — vectorized kernel (gather + segment-sum via
  ``np.add.reduceat``), the production path.
* :func:`spmv_blocked` — the tiled loop of paper Fig. 7 operating over a
  :class:`~repro.sparse.blocked.BlockedCSR`, with a ``recode`` hook where
  the UDP decompression calls sit in the paper's listing.

All three accept an ``out=`` buffer for in-place accumulation. The
mutation contract: ``out`` must be a C-contiguous float64 vector of shape
``(nrows,)``; it is overwritten (initialized from ``y`` when given, zeros
otherwise), mutated in place, and returned. Passing ``out=y`` (aliasing)
accumulates into ``y`` directly without the defensive copy — what
iterative drivers want so each step stops paying a fresh allocation.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.sparse.blocked import BlockedCSR, CSRBlock
from repro.sparse.csr import CSRMatrix, VALUE_DTYPE

#: SpMV performs one multiply and one add per stored non-zero.
FLOPS_PER_NNZ = 2


def _check_x(a_shape: tuple[int, int], x: np.ndarray) -> np.ndarray:
    x = np.ascontiguousarray(x, dtype=VALUE_DTYPE)
    if x.shape != (a_shape[1],):
        raise ValueError(f"x must have shape ({a_shape[1]},), got {x.shape}")
    return x


def _prepare_out(
    nrows: int, y: np.ndarray | None, out: np.ndarray | None
) -> np.ndarray:
    """Resolve the (y, out) pair into the accumulator vector.

    No ``out``: allocate (zeros, or a defensive copy of ``y``) — the
    historical behavior, ``y`` is never mutated. With ``out``: validate it
    (float64, shape ``(nrows,)``, writeable), initialize it from ``y``
    (zeros when ``y is None``, nothing when ``y is out``), and return it.
    """
    if out is None:
        out = (
            np.zeros(nrows, dtype=VALUE_DTYPE)
            if y is None
            else np.array(y, dtype=VALUE_DTYPE)
        )
        if out.shape != (nrows,):
            raise ValueError(f"y must have shape ({nrows},)")
        return out
    if not isinstance(out, np.ndarray) or out.dtype != VALUE_DTYPE:
        raise ValueError("out must be a float64 ndarray")
    if out.shape != (nrows,):
        raise ValueError(f"out must have shape ({nrows},), got {out.shape}")
    if not out.flags.writeable:
        raise ValueError("out must be writeable")
    if y is None:
        out[:] = 0.0
    elif y is not out:
        y = np.asarray(y, dtype=VALUE_DTYPE)
        if y.shape != (nrows,):
            raise ValueError(f"y must have shape ({nrows},)")
        out[:] = y
    return out


def spmv_reference(
    a: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Scalar CSR SpMV exactly as in paper Fig. 2. O(nnz) Python loop."""
    x = _check_x(a.shape, x)
    out = _prepare_out(a.nrows, y, out)
    row_ptr, col_idx, val = a.row_ptr, a.col_idx, a.val
    for i in range(a.nrows):
        temp = out[i]
        for j in range(row_ptr[i], row_ptr[i + 1]):
            temp = temp + val[j] * x[col_idx[j]]
        out[i] = temp
    return out


def spmv(
    a: CSRMatrix,
    x: np.ndarray,
    y: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorized CSR SpMV: gather x, multiply, segment-sum per row."""
    x = _check_x(a.shape, x)
    out = _prepare_out(a.nrows, y, out)
    if a.nnz == 0:
        return out
    products = a.val * x[a.col_idx]
    # reduceat segments start at row_ptr[i]; empty rows would repeat the
    # previous segment, so mask them out explicitly.
    starts = a.row_ptr[:-1]
    nonempty = np.diff(a.row_ptr) > 0
    # reduceat requires indices < len(products); empty trailing rows have
    # start == nnz.
    seg = np.add.reduceat(products, np.minimum(starts[nonempty], a.nnz - 1))
    out[nonempty] += seg
    return out


def spmv_blocked(
    blocked: BlockedCSR,
    x: np.ndarray,
    y: np.ndarray | None = None,
    recode: Callable[[CSRBlock], CSRBlock] | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Tiled SpMV over row-range blocks (paper Fig. 7).

    ``recode`` stands in for the paper's ``recode(DSH_unpack, ...)`` calls:
    it receives each block before the multiply and returns the block whose
    ``col_idx`` / ``val`` are used. In the compressed pipeline the hook is
    the UDP decompressor; ``None`` multiplies the stored block directly.
    """
    x = _check_x(blocked.shape, x)
    out = _prepare_out(blocked.shape[0], y, out)
    for block in blocked.blocks:
        if recode is not None:
            block = recode(block)
        if block.nnz == 0:
            continue
        rows, seg_starts = block.row_segments()
        if rows.size == 0:
            continue
        products = block.val * x[block.col_idx]
        seg = np.add.reduceat(products, seg_starts)
        out[rows] += seg
    return out
