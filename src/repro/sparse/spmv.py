"""SpMV kernels: y <- A @ x (+ y0).

Three implementations with one contract:

* :func:`spmv_reference` — the scalar loop of paper Fig. 2, kept as the
  executable specification (used by tests and tiny matrices).
* :func:`spmv` — vectorized kernel (gather + segment-sum via
  ``np.add.reduceat``), the production path.
* :func:`spmv_blocked` — the tiled loop of paper Fig. 7 operating over a
  :class:`~repro.sparse.blocked.BlockedCSR`, with a ``recode`` hook where
  the UDP decompression calls sit in the paper's listing.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.sparse.blocked import BlockedCSR, CSRBlock
from repro.sparse.csr import CSRMatrix, VALUE_DTYPE

#: SpMV performs one multiply and one add per stored non-zero.
FLOPS_PER_NNZ = 2


def _check_x(a_shape: tuple[int, int], x: np.ndarray) -> np.ndarray:
    x = np.ascontiguousarray(x, dtype=VALUE_DTYPE)
    if x.shape != (a_shape[1],):
        raise ValueError(f"x must have shape ({a_shape[1]},), got {x.shape}")
    return x


def spmv_reference(a: CSRMatrix, x: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
    """Scalar CSR SpMV exactly as in paper Fig. 2. O(nnz) Python loop."""
    x = _check_x(a.shape, x)
    out = np.zeros(a.nrows, dtype=VALUE_DTYPE) if y is None else np.array(y, dtype=VALUE_DTYPE)
    if out.shape != (a.nrows,):
        raise ValueError(f"y must have shape ({a.nrows},)")
    row_ptr, col_idx, val = a.row_ptr, a.col_idx, a.val
    for i in range(a.nrows):
        temp = out[i]
        for j in range(row_ptr[i], row_ptr[i + 1]):
            temp = temp + val[j] * x[col_idx[j]]
        out[i] = temp
    return out


def spmv(a: CSRMatrix, x: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
    """Vectorized CSR SpMV: gather x, multiply, segment-sum per row."""
    x = _check_x(a.shape, x)
    out = np.zeros(a.nrows, dtype=VALUE_DTYPE) if y is None else np.array(y, dtype=VALUE_DTYPE)
    if out.shape != (a.nrows,):
        raise ValueError(f"y must have shape ({a.nrows},)")
    if a.nnz == 0:
        return out
    products = a.val * x[a.col_idx]
    # reduceat segments start at row_ptr[i]; empty rows would repeat the
    # previous segment, so mask them out explicitly.
    starts = a.row_ptr[:-1]
    nonempty = np.diff(a.row_ptr) > 0
    # reduceat requires indices < len(products); empty trailing rows have
    # start == nnz.
    seg = np.add.reduceat(products, np.minimum(starts[nonempty], a.nnz - 1))
    out[nonempty] += seg
    return out


def spmv_blocked(
    blocked: BlockedCSR,
    x: np.ndarray,
    y: np.ndarray | None = None,
    recode: Callable[[CSRBlock], CSRBlock] | None = None,
) -> np.ndarray:
    """Tiled SpMV over row-range blocks (paper Fig. 7).

    ``recode`` stands in for the paper's ``recode(DSH_unpack, ...)`` calls:
    it receives each block before the multiply and returns the block whose
    ``col_idx`` / ``val`` are used. In the compressed pipeline the hook is
    the UDP decompressor; ``None`` multiplies the stored block directly.
    """
    x = _check_x(blocked.shape, x)
    out = (
        np.zeros(blocked.shape[0], dtype=VALUE_DTYPE)
        if y is None
        else np.array(y, dtype=VALUE_DTYPE)
    )
    if out.shape != (blocked.shape[0],):
        raise ValueError(f"y must have shape ({blocked.shape[0]},)")
    for block in blocked.blocks:
        if recode is not None:
            block = recode(block)
        if block.nnz == 0:
            continue
        products = block.val * x[block.col_idx]
        starts = block.row_ptr[:-1]
        nonempty = np.diff(block.row_ptr) > 0
        if not np.any(nonempty):
            continue
        seg = np.add.reduceat(products, np.minimum(starts[nonempty], block.nnz - 1))
        rows = np.arange(block.row_start, block.row_end)[nonempty]
        out[rows] += seg
    return out
