"""MatrixMarket (.mtx) coordinate-format reader/writer.

The TAMU collection distributes matrices as MatrixMarket files; this module
lets users load real SuiteSparse downloads into the library (and lets the
synthetic suite be exported for inspection). Supports the coordinate
format with ``real`` / ``integer`` / ``pattern`` fields and ``general`` /
``symmetric`` / ``skew-symmetric`` symmetries.
"""

from __future__ import annotations

import io
from os import PathLike

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

_HEADER = "%%MatrixMarket"
_FIELDS = {"real", "integer", "pattern"}
_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


def read_matrix_market(source: str | PathLike | io.TextIOBase) -> CSRMatrix:
    """Parse a MatrixMarket coordinate file into a :class:`CSRMatrix`.

    Symmetric / skew-symmetric storage is expanded to general form
    (diagonal entries are not mirrored; skew mirrors with negation).

    Raises:
        ValueError: on malformed headers, unsupported formats, or bad
            entry counts.
    """
    if isinstance(source, (str, PathLike)):
        with open(source, "r", encoding="ascii") as fh:
            return read_matrix_market(fh)

    header = source.readline()
    parts = header.strip().split()
    if len(parts) != 5 or parts[0] != _HEADER:
        raise ValueError(f"not a MatrixMarket file: {header!r}")
    _, obj, fmt, field, symmetry = (p.lower() for p in parts)
    if obj != "matrix" or fmt != "coordinate":
        raise ValueError(f"unsupported MatrixMarket object/format: {obj}/{fmt}")
    if field not in _FIELDS:
        raise ValueError(f"unsupported field {field!r} (complex not supported)")
    if symmetry not in _SYMMETRIES:
        raise ValueError(f"unsupported symmetry {symmetry!r}")

    # Skip comments.
    line = source.readline()
    while line and line.lstrip().startswith("%"):
        line = source.readline()
    dims = line.split()
    if len(dims) != 3:
        raise ValueError(f"bad size line: {line!r}")
    m, n, declared_nnz = (int(d) for d in dims)

    rows = np.empty(declared_nnz, dtype=np.int64)
    cols = np.empty(declared_nnz, dtype=np.int64)
    vals = np.empty(declared_nnz, dtype=np.float64)
    count = 0
    for line in source:
        line = line.strip()
        if not line or line.startswith("%"):
            continue
        toks = line.split()
        if field == "pattern":
            if len(toks) != 2:
                raise ValueError(f"bad pattern entry: {line!r}")
            v = 1.0
        else:
            if len(toks) != 3:
                raise ValueError(f"bad entry: {line!r}")
            v = float(toks[2])
        if count >= declared_nnz:
            raise ValueError("more entries than declared")
        rows[count] = int(toks[0]) - 1
        cols[count] = int(toks[1]) - 1
        vals[count] = v
        count += 1
    if count != declared_nnz:
        raise ValueError(f"declared {declared_nnz} entries, found {count}")

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        rows = np.concatenate([rows, cols[off]])
        cols_new = np.concatenate([cols, rows[: count][off]])
        vals = np.concatenate([vals, sign * vals[off]])
        cols = cols_new
    return COOMatrix((m, n), rows, cols, vals).to_csr()


def write_matrix_market(
    matrix: CSRMatrix,
    dest: str | PathLike | io.TextIOBase,
    comment: str | None = None,
) -> None:
    """Write a CSR matrix as a general real coordinate MatrixMarket file."""
    if isinstance(dest, (str, PathLike)):
        with open(dest, "w", encoding="ascii") as fh:
            write_matrix_market(matrix, fh, comment=comment)
            return
    dest.write("%%MatrixMarket matrix coordinate real general\n")
    if comment:
        for line in comment.splitlines():
            dest.write(f"% {line}\n")
    m, n = matrix.shape
    dest.write(f"{m} {n} {matrix.nnz}\n")
    rows = np.repeat(np.arange(m), np.diff(matrix.row_ptr))
    for r, c, v in zip(rows, matrix.col_idx, matrix.val):
        dest.write(f"{r + 1} {c + 1} {float(v)!r}\n")
