"""Sparse-matrix substrate: formats, kernels, blocking, and I/O.

This package implements the paper's Section II background from scratch:

* :class:`~repro.sparse.csr.CSRMatrix` — the Compressed Sparse Row format of
  Fig. 2 (``row_ptr`` / ``col_idx`` / ``val``), with 4-byte indices and
  8-byte double values (12 bytes per non-zero, the paper's baseline).
* :class:`~repro.sparse.coo.COOMatrix` — coordinate triplets, the
  interchange format used by generators and MatrixMarket I/O.
* :mod:`~repro.sparse.spmv` — reference and vectorized SpMV kernels.
* :mod:`~repro.sparse.blocked` — the block-CSR partitioner producing the
  8 KB blocks the UDP decompresses (and 32 KB blocks for CPU Snappy).
* :mod:`~repro.sparse.mmio` — MatrixMarket (.mtx) reader/writer.
"""

from repro.sparse.blocked import BlockedCSR, CSRBlock, partition_csr
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.mmio import read_matrix_market, write_matrix_market
from repro.sparse.reorder import bandwidth, permute_symmetric, rcm_permutation, rcm_reorder
from repro.sparse.spmm import spmm, spmm_blocked, spmm_speedup_model
from repro.sparse.spmv import spmv, spmv_blocked, spmv_reference

__all__ = [
    "CSRMatrix",
    "COOMatrix",
    "BlockedCSR",
    "CSRBlock",
    "partition_csr",
    "spmv",
    "spmv_blocked",
    "spmv_reference",
    "spmm",
    "spmm_blocked",
    "spmm_speedup_model",
    "bandwidth",
    "rcm_permutation",
    "rcm_reorder",
    "permute_symmetric",
    "read_matrix_market",
    "write_matrix_market",
]
