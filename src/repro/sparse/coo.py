"""Coordinate (COO) format: the interchange representation used by the
matrix generators and MatrixMarket I/O before conversion to CSR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE


@dataclass(frozen=True)
class COOMatrix:
    """Triplet-form sparse matrix; duplicates are summed on conversion."""

    shape: tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", np.ascontiguousarray(self.rows, dtype=np.int64))
        object.__setattr__(self, "cols", np.ascontiguousarray(self.cols, dtype=np.int64))
        object.__setattr__(self, "vals", np.ascontiguousarray(self.vals, dtype=VALUE_DTYPE))
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise ValueError("rows/cols/vals length mismatch")
        m, n = self.shape
        if len(self.rows):
            if self.rows.min() < 0 or self.rows.max() >= m:
                raise ValueError("row index out of range")
            if self.cols.min() < 0 or self.cols.max() >= n:
                raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        """Number of stored triplets (before duplicate summing)."""
        return int(len(self.vals))

    def to_csr(self) -> CSRMatrix:
        """Convert to CSR: sort lexicographically, sum duplicates, drop
        explicit zeros produced by cancellation."""
        m, n = self.shape
        if self.nnz == 0:
            return CSRMatrix((m, n), np.zeros(m + 1), np.zeros(0), np.zeros(0))
        order = np.lexsort((self.cols, self.rows))
        r = self.rows[order]
        c = self.cols[order]
        v = self.vals[order]
        # Sum duplicates: group boundaries where (r, c) changes.
        new_group = np.empty(len(r), dtype=bool)
        new_group[0] = True
        new_group[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        group_id = np.cumsum(new_group) - 1
        ngroups = int(group_id[-1]) + 1
        sums = np.zeros(ngroups, dtype=VALUE_DTYPE)
        np.add.at(sums, group_id, v)
        ur = r[new_group]
        uc = c[new_group]
        keep = sums != 0.0
        ur, uc, sums = ur[keep], uc[keep], sums[keep]
        row_ptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(row_ptr, ur + 1, 1)
        row_ptr = np.cumsum(row_ptr)
        return CSRMatrix((m, n), row_ptr, uc.astype(INDEX_DTYPE), sums)

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "COOMatrix":
        """Expand a CSR matrix back to triplets."""
        rows = np.repeat(np.arange(csr.nrows), np.diff(csr.row_ptr))
        return cls(csr.shape, rows, csr.col_idx.astype(np.int64), csr.val.copy())
