"""Block-CSR partitioner.

The paper streams the matrix as fixed-budget blocks: the UDP decompresses
8 KB blocks (one per lane-iteration, sized to the lane scratchpad), while
the CPU Snappy baseline uses 32 KB blocks. A block covers a contiguous run
of rows whose combined index+value payload fits the byte budget; a single
row larger than the budget is split across blocks at non-zero granularity.

Each block carries two byte streams — the column-index stream (4 B/entry)
and the value stream (8 B/entry) — which are what the codecs compress
(paper Fig. 7 decompresses ``ccol_idx`` and ``cvalues`` separately).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix, INDEX_DTYPE, VALUE_DTYPE

#: UDP scratchpad-sized block (paper Section V-A).
UDP_BLOCK_BYTES = 8 * 1024
#: CPU Snappy baseline block size (paper Section V-A).
CPU_BLOCK_BYTES = 32 * 1024

_BYTES_PER_ENTRY = 4 + 8  # int32 col index + float64 value


@dataclass(frozen=True)
class CSRBlock:
    """A slice of a CSR matrix covering rows [row_start, row_end).

    ``row_ptr`` is local (length ``row_end - row_start + 1``, starting at 0).
    ``nnz_start`` locates the block's first entry in the parent matrix's
    global ``col_idx``/``val`` arrays. For split rows, ``leading_partial``
    marks that the block's first row continues a row begun in the previous
    block.
    """

    row_start: int
    row_end: int
    row_ptr: np.ndarray
    col_idx: np.ndarray
    val: np.ndarray
    nnz_start: int
    leading_partial: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "row_ptr", np.ascontiguousarray(self.row_ptr, dtype=np.int64))
        object.__setattr__(self, "col_idx", np.ascontiguousarray(self.col_idx, dtype=INDEX_DTYPE))
        object.__setattr__(self, "val", np.ascontiguousarray(self.val, dtype=VALUE_DTYPE))
        nrows = self.row_end - self.row_start
        if nrows < 1:
            raise ValueError("block must cover at least one row")
        if self.row_ptr.shape != (nrows + 1,):
            raise ValueError("local row_ptr length must be nrows+1")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.col_idx):
            raise ValueError("local row_ptr must span the block payload")
        if len(self.col_idx) != len(self.val):
            raise ValueError("col_idx/val length mismatch")

    @property
    def nnz(self) -> int:
        return int(len(self.val))

    def row_segments(self) -> tuple[np.ndarray, np.ndarray]:
        """``(rows, seg_starts)`` for this block's non-empty rows, cached.

        ``rows`` holds the *global* indices of rows with at least one
        stored entry; ``seg_starts`` the matching ``np.add.reduceat``
        segment starts (clipped to ``nnz - 1`` so empty trailing rows
        cannot push a start past the payload). Both depend only on the
        block's structure, so they are computed once and memoized — the
        blocked SpMV/SpMM kernels used to rebuild them per block per
        iteration.
        """
        cached = self.__dict__.get("_row_segments")
        if cached is None:
            starts = self.row_ptr[:-1]
            nonempty = np.diff(self.row_ptr) > 0
            rows = np.arange(self.row_start, self.row_end)[nonempty]
            seg_starts = np.minimum(starts[nonempty], max(self.nnz - 1, 0))
            cached = (rows, seg_starts)
            object.__setattr__(self, "_row_segments", cached)
        return cached

    def index_bytes(self) -> bytes:
        """Raw little-endian column-index stream (codec input)."""
        return self.col_idx.astype("<i4").tobytes()

    def value_bytes(self) -> bytes:
        """Raw little-endian value stream (codec input)."""
        return self.val.astype("<f8").tobytes()

    def payload_bytes(self) -> int:
        """Uncompressed payload size: 12 bytes per stored entry."""
        return _BYTES_PER_ENTRY * self.nnz


@dataclass(frozen=True)
class BlockedCSR:
    """A CSR matrix partitioned into byte-budgeted row-range blocks."""

    shape: tuple[int, int]
    blocks: tuple[CSRBlock, ...]
    block_bytes: int

    @property
    def nnz(self) -> int:
        return sum(b.nnz for b in self.blocks)

    @property
    def nblocks(self) -> int:
        return len(self.blocks)


def partition_csr(a: CSRMatrix, block_bytes: int = UDP_BLOCK_BYTES) -> BlockedCSR:
    """Partition ``a`` into blocks whose payload is <= ``block_bytes``.

    Greedy row packing; a row whose remaining entries exceed the budget is
    split, with continuation blocks flagged ``leading_partial``. Every
    stored entry lands in exactly one block, in order.
    """
    if block_bytes < _BYTES_PER_ENTRY:
        raise ValueError(f"block_bytes must be >= {_BYTES_PER_ENTRY}")
    entries_per_block = block_bytes // _BYTES_PER_ENTRY
    blocks: list[CSRBlock] = []
    m = a.nrows
    if m == 0:
        return BlockedCSR(a.shape, (), block_bytes)

    row_nnz = np.diff(a.row_ptr)
    i = 0
    # Offset into row i already emitted (for split rows).
    row_offset = 0
    while i < m:
        start_row = i
        leading_partial = row_offset > 0
        budget = entries_per_block
        local_counts: list[int] = []
        nnz_start = int(a.row_ptr[i]) + row_offset
        while i < m and budget > 0:
            remaining = int(row_nnz[i]) - row_offset
            if remaining <= budget:
                local_counts.append(remaining)
                budget -= remaining
                i += 1
                row_offset = 0
            else:
                local_counts.append(budget)
                row_offset += budget
                budget = 0
        # If budget>0 and i==m we just ran out of rows.
        end_row = i if row_offset == 0 else i + 1
        if end_row == start_row:  # a zero-budget corner: force progress
            end_row = start_row + 1
        local_ptr = np.zeros(len(local_counts) + 1, dtype=np.int64)
        np.cumsum(local_counts, out=local_ptr[1:])
        total = int(local_ptr[-1])
        sl = slice(nnz_start, nnz_start + total)
        blocks.append(
            CSRBlock(
                row_start=start_row,
                row_end=start_row + len(local_counts),
                row_ptr=local_ptr,
                col_idx=a.col_idx[sl],
                val=a.val[sl],
                nnz_start=nnz_start,
                leading_partial=leading_partial,
            )
        )
        # Guard: all-empty trailing rows with zero entries still need blocks
        # only if they exist; the loop above consumes them (remaining==0).
    return BlockedCSR(a.shape, tuple(blocks), block_bytes)
