"""Compressed Sparse Row format (paper Fig. 2).

The paper's baseline storage cost is 12 bytes per non-zero: a 4-byte column
index plus an 8-byte double value (``row_ptr`` is amortized away for the
large matrices studied). :class:`CSRMatrix` enforces exactly those dtypes so
byte accounting downstream is faithful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

INDEX_DTYPE = np.int32
VALUE_DTYPE = np.float64

#: Paper baseline: 4 B col index + 8 B double value per stored non-zero.
BYTES_PER_NNZ_CSR = 12


@dataclass(frozen=True)
class CSRMatrix:
    """An m x n sparse matrix in CSR form.

    Attributes:
        shape: ``(m, n)``.
        row_ptr: int32 array of length ``m + 1``; ``row_ptr[i]:row_ptr[i+1]``
            spans row *i*'s entries in ``col_idx`` / ``val``.
        col_idx: int32 array of column indices, strictly increasing within
            each row.
        val: float64 array of stored values.
    """

    shape: tuple[int, int]
    row_ptr: np.ndarray
    col_idx: np.ndarray
    val: np.ndarray

    def __post_init__(self) -> None:
        m, n = self.shape
        if m < 0 or n < 0:
            raise ValueError(f"invalid shape {self.shape}")
        object.__setattr__(self, "row_ptr", np.ascontiguousarray(self.row_ptr, dtype=INDEX_DTYPE))
        object.__setattr__(self, "col_idx", np.ascontiguousarray(self.col_idx, dtype=INDEX_DTYPE))
        object.__setattr__(self, "val", np.ascontiguousarray(self.val, dtype=VALUE_DTYPE))
        if self.row_ptr.shape != (m + 1,):
            raise ValueError(f"row_ptr must have length m+1={m + 1}, got {self.row_ptr.shape}")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.col_idx):
            raise ValueError("row_ptr must start at 0 and end at nnz")
        if len(self.col_idx) != len(self.val):
            raise ValueError("col_idx and val length mismatch")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if len(self.col_idx) and (
            self.col_idx.min() < 0 or self.col_idx.max() >= n
        ):
            raise ValueError("column index out of range")

    # -- properties ---------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(len(self.val))

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        """Fraction of entries stored (the paper quotes this as sparsity %)."""
        m, n = self.shape
        total = m * n
        return self.nnz / total if total else 0.0

    def storage_bytes(self) -> int:
        """CSR baseline bytes: 12 per nnz (+ row_ptr, reported separately)."""
        return BYTES_PER_NNZ_CSR * self.nnz

    # -- construction -------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build from a 2-D dense array, storing exact non-zeros."""
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        m, n = dense.shape
        rows, cols = np.nonzero(dense)
        row_ptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(row_ptr, rows + 1, 1)
        row_ptr = np.cumsum(row_ptr)
        return cls((m, n), row_ptr, cols, dense[rows, cols])

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Build from a ``scipy.sparse`` matrix (validation bridges only)."""
        csr = mat.tocsr()
        csr.sum_duplicates()
        csr.sort_indices()
        return cls(csr.shape, csr.indptr, csr.indices, csr.data)

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (validation bridges only)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.val.copy(), self.col_idx.copy(), self.row_ptr.copy()),
            shape=self.shape,
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense 2-D array (small matrices / tests)."""
        m, n = self.shape
        out = np.zeros((m, n), dtype=VALUE_DTYPE)
        rows = np.repeat(np.arange(m), np.diff(self.row_ptr))
        out[rows, self.col_idx] = self.val
        return out

    # -- row access ---------------------------------------------------------

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (col_idx, val) views for row *i*."""
        if not 0 <= i < self.nrows:
            raise IndexError(f"row {i} out of range for {self.nrows} rows")
        lo, hi = int(self.row_ptr[i]), int(self.row_ptr[i + 1])
        return self.col_idx[lo:hi], self.val[lo:hi]

    def row_nnz(self) -> np.ndarray:
        """Per-row non-zero counts."""
        return np.diff(self.row_ptr)

    def has_sorted_indices(self) -> bool:
        """True if every row's column indices are strictly increasing."""
        if self.nnz <= 1:
            return True
        d = np.diff(self.col_idx)
        # Differences across row boundaries may be anything: mask out the
        # flat position just before each row's first element.
        starts = self.row_ptr[1:-1]
        starts = starts[(starts > 0) & (starts < self.nnz)]
        mask = np.ones(len(d), dtype=bool)
        mask[starts - 1] = False
        return bool(np.all(d[mask] > 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3e})"
        )
