"""Matrix reordering: make matrices *more compressible* before encoding.

Delta compression of index streams rewards locality: the closer a row's
neighbors, the smaller (and more repetitive) the deltas. Reverse
Cuthill-McKee — the classic bandwidth-reducing permutation — therefore
feeds directly into the paper's pipeline: reorder once at load time, then
every streamed block compresses better forever after. (This is the kind of
representation-level optimization the paper's programmable-recoding
architecture makes worth doing.)
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def bandwidth(a: CSRMatrix) -> int:
    """Maximum |i - j| over stored entries (0 for diagonal/empty)."""
    if a.nnz == 0:
        return 0
    rows = np.repeat(np.arange(a.nrows), np.diff(a.row_ptr))
    return int(np.abs(rows - a.col_idx).max())


def rcm_permutation(a: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill-McKee ordering of the symmetrized pattern.

    Returns:
        ``perm`` with ``perm[new_index] = old_index``.

    Raises:
        ValueError: for non-square matrices (RCM permutes symmetrically).
    """
    if a.nrows != a.ncols:
        raise ValueError("RCM requires a square matrix")
    from scipy.sparse.csgraph import reverse_cuthill_mckee

    return np.asarray(
        reverse_cuthill_mckee(a.to_scipy(), symmetric_mode=False), dtype=np.int64
    )


def permute_symmetric(a: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Apply ``B = A[perm, :][:, perm]`` (simultaneous row/col permutation).

    Raises:
        ValueError: non-square input or a non-permutation ``perm``.
    """
    if a.nrows != a.ncols:
        raise ValueError("symmetric permutation requires a square matrix")
    perm = np.asarray(perm, dtype=np.int64)
    n = a.nrows
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise ValueError("perm must be a permutation of 0..n-1")
    inv = np.empty(n, dtype=np.int64)
    inv[perm] = np.arange(n)
    rows = np.repeat(np.arange(n), np.diff(a.row_ptr))
    return COOMatrix(
        (n, n), inv[rows], inv[a.col_idx.astype(np.int64)], a.val.copy()
    ).to_csr()


def rcm_reorder(a: CSRMatrix) -> tuple[CSRMatrix, np.ndarray]:
    """Convenience: compute the RCM permutation and apply it.

    Returns:
        ``(reordered_matrix, perm)``; solve workflows permute vectors with
        the same ``perm`` (``x_new = x[perm]``, ``y = y_new`` un-permuted
        via ``y[perm] = y_new``).
    """
    perm = rcm_permutation(a)
    return permute_symmetric(a, perm), perm
