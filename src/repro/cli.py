"""Command-line interface.

Usage::

    python -m repro info   MATRIX
    python -m repro compress MATRIX [--scheme dsh|delta-snappy|snappy|auto]
                                     [--block-bytes N] [--verify] [--simulate]
                                     [--workers N]
    python -m repro spmv   MATRIX [--memory ddr4|hbm2] [--workers N]
                                   [--iterations N] [--metrics-out PATH]
                                   [--trace-out PATH] [--policy strict|degrade]
                                   [--fault-plan SPEC] [--pipeline] [--depth D]
                                   [--mmap] [--shards S] [--nrhs K]
    python -m repro autotune MATRIX [--block-bytes N] [--seed S]
                            [--calibrate | --default-profile] [--json]
    python -m repro scrub  CONTAINER [--json] [--verbose]
    python -m repro serve  --root DIR [--host H] [--port N] [--workers N]
                            [--pipeline] [--tenant-rate R] [--max-fuse K]
                            [--fusion-window-ms W] [--inflight-budget-mb M]
                            [--cache-mb M] [--max-queue Q] [--drain-s S]
    python -m repro suite  [--count N] [--scale F]
    python -m repro metrics FILE [--diff OTHER] [--format table|prom|json]
    python -m repro ablate [--smoke] [--axes a,b,...] [--pairs a,b,...]
                            [--out PATH] [--repeats N] [--fail-harmful FRAC]
                            [--json]

``MATRIX`` is either a MatrixMarket path (``*.mtx``) or a synthetic spec
``synth:<kind>[:key=value,...]`` with kinds from
:mod:`repro.collection.generators`, e.g. ``synth:banded:n=4000,bandwidth=6``.
"""

from __future__ import annotations

import argparse
import sys

from repro import kernels, obs
from repro.codecs.autotune import autotune
from repro.codecs.pipeline import compress_matrix
from repro.collection import generators
from repro.collection.suite import SuiteConfig, build_suite
from repro.core.hetero import HeterogeneousSystem
from repro.cpu.recoder import CPURecoder
from repro.memsys.dram import DDR4_100GBS, HBM2_1TBS
from repro.sparse.csr import CSRMatrix
from repro.sparse.mmio import read_matrix_market
from repro.udp.runtime import simulate_plan
from repro.util.geomean import geomean
from repro.util.tables import Table
from repro.util.units import fmt_bytes, fmt_rate

_MEMORIES = {"ddr4": DDR4_100GBS, "hbm2": HBM2_1TBS}

_SYNTH_KINDS = {
    "banded": generators.banded,
    "diagonals": generators.diagonals,
    "mesh2d": generators.mesh2d,
    "mesh3d": generators.mesh3d,
    "unstructured": generators.unstructured,
    "graph": generators.powerlaw_graph,
    "fem": generators.fem_stencil,
    "symblocks": generators.symmetric_blocks,
}


def load_matrix(spec: str) -> CSRMatrix:
    """Load a matrix from an .mtx path or a ``synth:`` spec.

    Raises:
        ValueError: on unknown synthetic kinds or malformed parameters.
    """
    if not spec.startswith("synth:"):
        return read_matrix_market(spec)
    parts = spec.split(":", 2)
    kind = parts[1]
    if kind not in _SYNTH_KINDS:
        raise ValueError(f"unknown synthetic kind {kind!r}; know {sorted(_SYNTH_KINDS)}")
    kwargs: dict[str, object] = {}
    if len(parts) == 3 and parts[2]:
        for pair in parts[2].split(","):
            if "=" not in pair:
                raise ValueError(f"bad parameter {pair!r} (expected key=value)")
            key, value = pair.split("=", 1)
            try:
                kwargs[key] = int(value)
            except ValueError:
                try:
                    kwargs[key] = float(value)
                except ValueError:
                    kwargs[key] = value
    # Positional size arguments differ per generator; pass everything by
    # keyword and let the generator validate.
    return _SYNTH_KINDS[kind](**kwargs)  # type: ignore[arg-type]


def cmd_info(args) -> int:
    m = load_matrix(args.matrix)
    print(f"shape:    {m.nrows} x {m.ncols}")
    print(f"nnz:      {m.nnz}")
    print(f"density:  {m.density:.3e}")
    nnz_per_row = m.row_nnz()
    if m.nrows:
        print(f"row nnz:  min={int(nnz_per_row.min())} "
              f"median={int(sorted(nnz_per_row)[len(nnz_per_row)//2])} "
              f"max={int(nnz_per_row.max())}")
    print(f"CSR size: {fmt_bytes(m.storage_bytes())} (12 B/nnz baseline)")
    return 0


def cmd_compress(args) -> int:
    m = load_matrix(args.matrix)
    if args.scheme == "auto":
        result = autotune(m)
        plan = result.best_plan
        print(f"autotune winner: {result.best_name}")
        for name, size in sorted(result.bytes_per_nnz.items(), key=lambda kv: kv[1]):
            print(f"  {name:<22s} {size:6.2f} B/nnz")
    else:
        flags = {
            "dsh": dict(use_delta=True, use_huffman=True),
            "delta-snappy": dict(use_delta=True, use_huffman=False),
            "snappy": dict(use_delta=False, use_huffman=False),
        }
        if args.scheme not in flags:
            raise ValueError(f"unknown scheme {args.scheme!r}")
        plan = compress_matrix(
            m, block_bytes=args.block_bytes, workers=args.workers, **flags[args.scheme]
        )
    idx = sum(r.stored_bytes for r in plan.index_records)
    val = sum(r.stored_bytes for r in plan.value_records)
    print(f"blocks:      {plan.nblocks} x {plan.block_bytes} B budget")
    print(f"compressed:  {fmt_bytes(plan.compressed_bytes)} "
          f"({plan.bytes_per_nnz:.2f} B/nnz, {plan.compression_ratio:.2f}x)")
    if plan.nnz:
        print(f"  index stream: {idx / plan.nnz:.2f} B/nnz")
        print(f"  value stream: {val / plan.nnz:.2f} B/nnz")
    if args.verify:
        ok = plan.verify()
        print(f"verify:      {'OK — bit-exact round trip' if ok else 'FAILED'}")
        if not ok:
            return 1
    if args.simulate:
        report = simulate_plan(plan, sample=args.sample_blocks)
        status = "verified" if report.all_verified else "FAILED"
        print(f"UDP (64-lane @1.6GHz): {fmt_rate(report.throughput_bytes_per_s)} "
              f"decompression, {status}")
    return 0


def cmd_spmv(args) -> int:
    if args.trace_out:
        obs.enable_tracing()
    m = load_matrix(args.matrix)
    memory = _MEMORIES[args.memory]
    plan = compress_matrix(m, workers=args.workers)
    udp = simulate_plan(plan, sample=args.sample_blocks)
    cpu = CPURecoder().simulate_plan(plan, sample=args.sample_blocks)
    cmp_ = HeterogeneousSystem(memory).compare("cli", plan, udp, cpu)
    table = Table(["scenario", "GFLOP/s"], formats=["{}", "{:.2f}"])
    table.add_row(cmp_.uncompressed.name, cmp_.uncompressed.gflops)
    table.add_row(cmp_.cpu_decomp.name, cmp_.cpu_decomp.gflops)
    table.add_row(cmp_.udp_cpu.name, cmp_.udp_cpu.gflops)
    print(f"memory system: {memory.name} ({fmt_rate(memory.peak_bw)})")
    print(table.render())
    print(f"speedup {cmp_.udp_speedup:.2f}x at {plan.bytes_per_nnz:.2f} B/nnz "
          f"with {cmp_.udp_cpu.n_udp} UDP(s)")
    fault_plan = None
    if args.fault_plan:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.parse(args.fault_plan)
        print(f"fault plan armed: {fault_plan.describe()} (policy={args.policy})")
    if args.nrhs < 1:
        print("error: --nrhs must be >= 1", file=sys.stderr)
        return 2
    if args.shards < 0:
        print("error: --shards must be >= 0", file=sys.stderr)
        return 2
    if args.shards and args.pipeline:
        print("error: --shards is its own executor; drop --pipeline",
              file=sys.stderr)
        return 2
    # A metrics snapshot should span all three layers (codecs, spmv,
    # memsys), which needs at least one functional pipeline iteration —
    # as do a chaos run and the --pipeline / --mmap / --nrhs executor knobs.
    iterations = args.iterations or (
        1
        if args.metrics_out or args.trace_out or fault_plan
        or args.pipeline or args.nrhs > 1 or args.mmap or args.shards
        else 0
    )
    if iterations:
        import contextlib
        import os
        import tempfile

        import numpy as np

        from repro.codecs.engine import DecodedBlockCache, RecodeEngine
        from repro.core import recoded_spmm, recoded_spmv

        mode = "pipelined" if args.pipeline else "serial"
        out_of_core = bool(args.mmap or args.shards)
        # Sharded decode happens inside the shard workers; in-process
        # engines only drive the serial/pipelined executors.
        engine = (None if args.shards
                  else RecodeEngine(workers=args.workers, cache=DecodedBlockCache()))
        x = (np.ones(m.ncols) if args.nrhs == 1
             else np.ones((m.ncols, args.nrhs)))
        ctx = fault_plan.activate() if fault_plan else contextlib.nullcontext()
        with contextlib.ExitStack() as stack:
            stack.enter_context(ctx)
            if out_of_core:
                from repro.codecs.container import save_plan

                tmpdir = stack.enter_context(tempfile.TemporaryDirectory())
                target = os.path.join(tmpdir, "matrix.dsh")
                save_plan(plan, target)
                print(f"streaming {fmt_bytes(os.path.getsize(target))} "
                      f"mmap-backed container"
                      + (f" across {args.shards} shards" if args.shards else ""))
            else:
                target = plan
            for _ in range(iterations):
                if args.nrhs == 1:
                    y, stats = recoded_spmv(
                        target, x, memory=memory, engine=engine,
                        matrix_id=args.matrix, policy=args.policy,
                        mode=mode, depth=args.depth, shards=args.shards)
                else:
                    y, stats = recoded_spmm(
                        target, x, memory=memory, engine=engine,
                        matrix_id=args.matrix, policy=args.policy,
                        mode=mode, depth=args.depth, shards=args.shards)
                scale = float(np.abs(y).max())
                x = y / scale if scale else y
        kind = "SpMV" if args.nrhs == 1 else f"SpMM k={args.nrhs}"
        if engine is not None:
            s = stats.engine_stats
            cache = engine.cache.stats
            print(f"engine ({iterations} {mode} {kind} iterations): "
                  f"workers={s['workers']:.0f}, "
                  f"{s['blocks_decoded']:.0f} blocks decoded, "
                  f"{cache.hits} cache hits ({cache.hit_rate:.0%}), "
                  f"{s['decode_mb_per_s']:.1f} MB/s")
        if stats.oocore is not None:
            oc = stats.oocore
            line = (f"out-of-core ({stats.mode}): "
                    f"mapped={fmt_bytes(oc['mapped_bytes'])} "
                    f"pages_touched={oc['pages_touched']}")
            if oc["shards"]:
                line += (f" shards={oc['shards']} "
                         f"skew={oc['shard_skew']:.2f}x")
            print(line)
        if args.pipeline:
            reg = obs.registry()
            print(f"pipeline: depth={args.depth} "
                  f"multiply_idle={reg.value('spmv.pipeline.multiply_idle_seconds'):.3f}s "
                  f"decode_idle={reg.value('spmv.pipeline.decode_idle_seconds'):.3f}s")
        if fault_plan is not None:
            reg = obs.registry()
            print(f"chaos: quarantined={reg.value('faults.blocks_quarantined'):.0f} "
                  f"retries={reg.value('faults.retries'):.0f} "
                  f"degraded_blocks={reg.value('spmv.degraded_blocks'):.0f} "
                  f"pool_rebuilds={reg.value('faults.pool_rebuilds'):.0f}")
    if args.metrics_out:
        obs.write_metrics(args.metrics_out)
        print(f"wrote {args.metrics_out}")
    if args.trace_out:
        obs.write_trace(args.trace_out)
        print(f"wrote {args.trace_out}")
    return 0


def cmd_pack(args) -> int:
    from repro.codecs.container import save_plan

    m = load_matrix(args.matrix)
    plan = compress_matrix(m) if args.scheme == "dsh" else autotune(m).best_plan
    if not plan.verify():
        print("error: plan failed verification", file=sys.stderr)
        return 1
    save_plan(plan, args.output)
    import os

    print(f"packed {m.nnz} nnz -> {args.output} "
          f"({fmt_bytes(os.path.getsize(args.output))}, "
          f"{plan.bytes_per_nnz:.2f} B/nnz)")
    return 0


def cmd_unpack(args) -> int:
    from repro.codecs.container import load_csr
    from repro.sparse.mmio import write_matrix_market

    m = load_csr(args.container)
    write_matrix_market(m, args.output, comment=f"unpacked from {args.container}")
    print(f"unpacked {m.nrows}x{m.ncols}, nnz={m.nnz} -> {args.output}")
    return 0


def cmd_autotune(args) -> int:
    """Inspect the per-block adaptive codec policy without running SpMV."""
    import json

    from repro.codecs.autotune import (
        StageProfile,
        calibrate_profile,
        compress_adaptive,
    )

    m = load_matrix(args.matrix)
    if args.calibrate:
        profile = calibrate_profile(seed=args.seed)
    elif args.default_profile:
        profile = StageProfile.default()
    else:
        profile = None  # seeded from live telemetry, default fallback
    plan, report = compress_adaptive(
        m, block_bytes=args.block_bytes, seed=args.seed, profile=profile
    )
    if not plan.verify():
        print("error: adaptive plan failed verification", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0
    prof = report.profile
    print(f"{args.matrix}: {m.nrows}x{m.ncols}, nnz={m.nnz}, "
          f"{report.nblocks} blocks @ {args.block_bytes} B")
    print(f"profile[{prof.source}]: delta={prof.delta_mb_per_s:.1f} "
          f"snappy={prof.snappy_mb_per_s:.1f} huffman={prof.huffman_mb_per_s:.1f} "
          f"link={prof.link_mb_per_s:.1f} MB/s")
    for stream in ("index", "value"):
        hist = report.stage_histogram(stream)
        kept = getattr(report, f"{stream}_table_kept")
        combos = ", ".join(f"{name}={count}" for name, count in hist.items())
        print(f"  {stream}: {combos} (huffman table {'kept' if kept else 'dropped'})")
    print(f"bytes/nnz: adaptive={report.bytes_per_nnz:.3f} "
          f"fixed-dsh={report.dsh_bytes_per_nnz:.3f} "
          f"(win {report.bytes_win_over_dsh:.4f}x)")
    print(f"est decode speedup vs fixed dsh: {report.est_decode_speedup:.3f}x")
    return 0


def cmd_scrub(args) -> int:
    from repro.codecs.container import scrub_container

    report = scrub_container(args.container)
    if args.json:
        import json

        print(json.dumps(report.as_dict(), indent=2))
        return 0 if report.healthy else 1
    d = "OK" if report.healthy else "UNHEALTHY"
    print(f"{args.container}: {d} ({fmt_bytes(report.nbytes)})")
    print(f"  magic={'ok' if report.magic_ok else 'BAD'} "
          f"header={'ok' if report.header_ok else 'BAD'} "
          f"trailer={'ok' if report.trailer_ok else 'BAD'}")
    print(f"  blocks: {report.blocks_ok}/{report.nblocks} healthy "
          f"({len(report.blocks)} walkable)")
    if report.fatal:
        print(f"  fatal: {report.fatal}")
    for b in report.blocks:
        if b.ok and not args.verbose:
            continue
        parts = [f"meta={'ok' if b.meta_ok else 'BAD'}"]
        for rec in (b.index, b.value):
            if rec is None:
                continue
            state = "ok" if rec.ok else (
                "crc BAD" if not rec.crc_ok else f"decode BAD ({rec.error})"
            )
            parts.append(f"{rec.stream}[{rec.payload_bytes}B]={state}")
        parts.extend(b.errors)
        marker = " " if b.ok else "!"
        print(f"  {marker} block {b.block_id:>5d} @0x{b.offset:08x}  "
              + "  ".join(parts))
    return 0 if report.healthy else 1


def _sigterm_as_interrupt() -> None:
    """Route SIGTERM through KeyboardInterrupt so ``finally`` blocks run
    (pool teardown, engine close) instead of dying mid-fork."""
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return  # pragma: no cover - signal API is main-thread-only

    def _raise(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _raise)


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.serve import ServeConfig, run_server

    mb = 1024 * 1024
    config = ServeConfig(
        root=args.root,
        host=args.host,
        port=args.port,
        workers=args.workers,
        executor=args.executor,
        mode="pipelined" if args.pipeline else "serial",
        depth=args.depth,
        cache_bytes=args.cache_mb * mb,
        max_matrix_frac=args.max_matrix_frac,
        inflight_budget_bytes=args.inflight_budget_mb * mb,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        fusion_window_ms=args.fusion_window_ms,
        max_fuse=args.max_fuse,
        max_queue=args.max_queue,
        compute_threads=args.compute_threads,
        residency_budget=args.residency_mb * mb if args.residency_mb else None,
        drain_s=args.drain_s,
    )

    async def _main() -> int:
        stop = asyncio.Event()
        caught: dict[str, int] = {}
        loop = asyncio.get_running_loop()

        def _stop(signum: int) -> None:
            if not stop.is_set():
                print(
                    f"received {signal.Signals(signum).name}; draining...",
                    file=sys.stderr,
                    flush=True,
                )
            caught.setdefault("signum", signum)
            stop.set()

        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, _stop, sig)

        def ready(server) -> None:
            print(
                f"serving {len(server.library)} matrices "
                f"({', '.join(server.library.names())}) on "
                f"{config.host}:{server.port} "
                f"[mode={config.mode} workers={config.workers} "
                f"max_fuse={config.max_fuse}]",
                flush=True,
            )

        await run_server(config, ready=ready, stop_event=stop)
        if "signum" in caught:
            print("drained; shut down cleanly", file=sys.stderr)
            return 128 + caught["signum"]
        return 0

    return asyncio.run(_main())


def cmd_metrics(args) -> int:
    snapshot = obs.load_metrics(args.file)
    if args.diff:
        other = obs.load_metrics(args.diff)
        if args.format == "json":
            import json

            rows = obs.diff_snapshots(snapshot, other)
            print(json.dumps(
                [{"metric": k, "a": va, "b": vb, "delta": d} for k, va, vb, d in rows],
                indent=2,
            ))
        else:
            print(obs.render_diff_table(snapshot, other))
        return 0
    if args.format == "json":
        import json

        print(json.dumps(snapshot, indent=2, sort_keys=True))
    elif args.format == "prom":
        print(obs.to_prometheus(snapshot))
    else:
        print(obs.render_table(snapshot))
    return 0


def cmd_suite(args) -> int:
    entries = build_suite(SuiteConfig(count=args.count, scale=args.scale))
    sizes = []
    table = Table(["name", "kind", "target nnz"], formats=["{}", "{}", "{}"])
    for entry in entries[: args.show]:
        table.add_row(entry.name, entry.kind, entry.target_nnz)
    print(table.render())
    if args.compress:
        for entry in entries[: args.compress]:
            plan = compress_matrix(entry.build())
            if plan.nnz:
                sizes.append(plan.bytes_per_nnz)
        print(f"\nDSH geomean over first {len(sizes)}: {geomean(sizes):.2f} B/nnz")
    return 0


def cmd_ablate(args) -> int:
    import dataclasses
    import json

    from repro.ablation import (
        AblationRunner,
        RunnerSettings,
        build_artifact,
        enumerate_configs,
        enumerate_pair_configs,
        render_interactions,
        render_ranking,
    )

    settings = RunnerSettings.smoke() if args.smoke else RunnerSettings.default()
    overrides = {}
    if args.repeats:
        overrides["repeats"] = args.repeats
    if args.warm_iters:
        overrides["warm_iters"] = args.warm_iters
    if args.nrhs:
        overrides["nrhs"] = args.nrhs
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.fail_harmful is not None:
        overrides["harmful_threshold"] = args.fail_harmful
    if overrides:
        settings = dataclasses.replace(settings, **overrides)

    axes = tuple(args.axes.split(",")) if args.axes else None
    pair_axes = tuple(args.pairs.split(",")) if args.pairs else ()
    if pair_axes and axes is not None:
        # The interaction null model divides by the one-off contributions,
        # so every paired axis must also run alone.
        axes = tuple(dict.fromkeys((*axes, *pair_axes)))
    try:
        configs = enumerate_configs(axes)
        if pair_axes:
            configs = (*configs, *enumerate_pair_configs(pair_axes))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Progress goes to stderr so `--json` leaves stdout pipeable.
    print(
        f"ablating {len(configs) - 1} configurations over "
        f"{len(settings.cases)} matrices ({settings.profile} profile, "
        f"repeats={settings.repeats})...",
        file=sys.stderr,
    )
    _sigterm_as_interrupt()
    try:
        report = AblationRunner(settings).run(configs)
    except KeyboardInterrupt:
        # The runner's ``finally`` already drained its engine pool; exit
        # with the conventional interrupt status, no traceback spam.
        print("interrupted; worker pools drained", file=sys.stderr)
        return 130
    artifact = build_artifact(report)

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")

    if args.json:
        print(json.dumps(artifact, indent=2, sort_keys=True))
    else:
        print(render_ranking(report))
        if pair_axes:
            print()
            print(render_interactions(report))
        gates = artifact["gates"]
        conf = artifact["conformance"]
        print(
            f"conformance: {conf['configs_checked']} configs "
            f"{'bit-identical' if conf['bit_identical'] else 'DIVERGED'}; "
            f"worst removal gain {gates['worst_removal_gain']:.3f}x"
        )
        print(f"wrote {args.out}")

    if not report.bit_identical:
        for mismatch in report.mismatches:
            print(f"error: conformance: {mismatch}", file=sys.stderr)
        return 1
    if args.fail_harmful is not None and artifact["gates"]["num_harmful"]:
        harmful = [r["run_id"] for r in artifact["ranking"] if r["harmful"]]
        print(
            f"error: component removal helps by more than "
            f"{settings.harmful_threshold:.0%}: {', '.join(harmful)}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_solve(args) -> int:
    import numpy as np

    from repro.core import ExecutionSession
    from repro.solvers import cg, pagerank, power_iteration

    if args.matrix.endswith(".dsh"):
        source = args.matrix
        shape_hint = None
    else:
        m = load_matrix(args.matrix)
        if args.normalize:
            # Column-stochastic P^T for random-walk iterations.
            out_degree = np.maximum(m.row_nnz(), 1)
            rows = np.repeat(np.arange(m.nrows), m.row_nnz())
            vals = m.val / out_degree[rows]
            from repro.sparse.coo import COOMatrix

            m = COOMatrix(
                (m.ncols, m.nrows), m.col_idx.astype(np.int64), rows, vals
            ).to_csr()
        source = compress_matrix(m, block_bytes=args.block_bytes)
        shape_hint = (m.nrows, m.ncols)

    _sigterm_as_interrupt()
    session = ExecutionSession(
        source,
        matrix_id=f"solve-{args.algorithm}",
        workers=args.workers,
        executor="thread",
        mode=args.mode,
        depth=args.depth,
        shards=args.shards,
        policy=args.policy,
        reuse=not args.no_session,
    )
    try:
        nrows, ncols = session.plan.blocked.shape
        if shape_hint is None:
            shape_hint = (nrows, ncols)
        print(f"operator: {nrows} x {ncols}, nnz={session.plan.nnz}, "
              f"{session.plan.bytes_per_nnz:.2f} B/nnz "
              f"({'session reuse' if not args.no_session else 'cold per call'}, "
              f"mode={'sharded' if args.shards else args.mode})")
        defaults = {"cg": (1e-8, 500), "pagerank": (1e-10, 200), "power": (1e-10, 200)}
        tol, max_iter = defaults[args.algorithm]
        if args.tol is not None:
            tol = args.tol
        if args.max_iter is not None:
            max_iter = args.max_iter
        if args.algorithm == "cg":
            rng = np.random.default_rng(args.seed)
            b = rng.normal(size=ncols)
            result = cg(session, b, tol=tol, max_iter=max_iter)
        elif args.algorithm == "pagerank":
            result = pagerank(
                session, damping=args.damping, tol=tol, max_iter=max_iter
            )
        else:
            result = power_iteration(session, tol=tol, max_iter=max_iter)

        status = "converged" if result.converged else "NOT converged"
        print(f"{args.algorithm}: {status} in {result.iterations} iterations, "
              f"residual {result.residual:.3e}")
        print(f"traffic: {fmt_bytes(result.dram_bytes)} matrix DRAM + "
              f"{fmt_bytes(result.vector_bytes)} modeled vector "
              f"({fmt_bytes(result.total_bytes)} total)")
        if result.info:
            for key, value in sorted(result.info.items()):
                print(f"  {key}: {value:.6g}")
        st = session.stats()
        print(f"session: {st['cold_calls']} cold / {st['warm_calls']} warm "
              f"calls, cache hit rate {st['cache_hit_rate']:.0%}, "
              f"{st['crc_skips']} record-CRC checks skipped")
        if args.curve:
            table = Table(("iteration", "residual", "cum_bytes", "hit_rate"))
            step = max(1, len(result.history) // args.curve)
            picked = result.history[::step]
            if result.history and result.history[-1] is not picked[-1]:
                picked = (*picked, result.history[-1])
            for rec in picked:
                table.add_row(
                    str(rec.iteration),
                    f"{rec.residual:.3e}",
                    fmt_bytes(rec.dram_bytes + rec.vector_bytes),
                    f"{rec.cache_hit_rate:.0%}",
                )
            print(table.render())
        if args.metrics_out:
            obs.write_metrics(args.metrics_out)
            print(f"wrote {args.metrics_out}")
        return 0 if result.converged else 3
    finally:
        session.close()


def _add_kernel_backend_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--kernel-backend", default=None,
                   choices=["auto", *kernels.KNOWN_BACKENDS],
                   help="codec kernel backend (default: $REPRO_KERNEL_BACKEND, "
                        "else autodetect; 'python' forces the reference loops)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="matrix statistics")
    p.add_argument("matrix")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("compress", help="compress and report bytes/nnz")
    p.add_argument("matrix")
    p.add_argument("--scheme", default="dsh", choices=["dsh", "delta-snappy", "snappy", "auto"])
    p.add_argument("--block-bytes", type=int, default=8192)
    p.add_argument("--verify", action="store_true")
    p.add_argument("--simulate", action="store_true")
    p.add_argument("--sample-blocks", type=int, default=2)
    p.add_argument("--workers", type=int, default=0,
                   help="recode-engine pool width (0 = serial)")
    _add_kernel_backend_arg(p)
    p.set_defaults(fn=cmd_compress)

    p = sub.add_parser("spmv", help="model the three SpMV scenarios")
    p.add_argument("matrix")
    p.add_argument("--memory", default="ddr4", choices=sorted(_MEMORIES))
    p.add_argument("--sample-blocks", type=int, default=2)
    p.add_argument("--workers", type=int, default=0,
                   help="recode-engine pool width (0 = serial)")
    p.add_argument("--iterations", type=int, default=0, metavar="N",
                   help="also run N functional SpMV iterations through the "
                        "engine's decoded-block cache and report its stats")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write a metrics JSON snapshot here (forces one "
                        "functional iteration if --iterations is 0)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write a Chrome-trace-format JSON timeline here")
    p.add_argument("--policy", default="strict", choices=["strict", "degrade"],
                   help="block-decode failure policy for the functional "
                        "iterations (degrade substitutes raw CSR, bit-exact)")
    p.add_argument("--fault-plan", metavar="SPEC",
                   help="arm a deterministic chaos plan around the functional "
                        "iterations, e.g. 'seed=7,bitflip=0.05,kill=3' "
                        "(forces one iteration if --iterations is 0)")
    p.add_argument("--pipeline", action="store_true",
                   help="run the functional iterations with the pipelined "
                        "executor (overlap block decode with the multiply); "
                        "bit-identical to serial")
    p.add_argument("--depth", type=int, default=4, metavar="D",
                   help="pipelined prefetch depth: max decode chunk tasks "
                        "in flight (default 4; needs --pipeline)")
    p.add_argument("--mmap", action="store_true",
                   help="stream the compressed matrix from an mmap-backed "
                        ".dsh container instead of holding it in memory")
    p.add_argument("--shards", type=int, default=0, metavar="S",
                   help="scatter-gather the container over S contiguous "
                        "block shards on worker processes (implies --mmap; "
                        "result stays bit-identical)")
    p.add_argument("--nrhs", type=int, default=1, metavar="K",
                   help="right-hand sides: 1 runs SpMV, K>1 runs fused SpMM "
                        "decoding each block once for all K columns")
    _add_kernel_backend_arg(p)
    p.set_defaults(fn=cmd_spmv)

    p = sub.add_parser(
        "autotune",
        help="report the adaptive per-block codec selection for a matrix",
    )
    p.add_argument("matrix")
    p.add_argument("--block-bytes", type=int, default=8192)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--calibrate", action="store_true",
                   help="measure a live stage profile first (publishes "
                        "autotune.profile.* gauges) instead of reading telemetry")
    p.add_argument("--default-profile", action="store_true",
                   help="force the deterministic default profile "
                        "(ignore telemetry)")
    p.add_argument("--json", action="store_true",
                   help="emit the AdaptiveReport as JSON on stdout")
    _add_kernel_backend_arg(p)
    p.set_defaults(fn=cmd_autotune)

    p = sub.add_parser("scrub", help="walk a .dsh container and report per-block health")
    p.add_argument("container")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    p.add_argument("--verbose", action="store_true",
                   help="list healthy blocks too, not just sick ones")
    p.set_defaults(fn=cmd_scrub)

    p = sub.add_parser("pack", help="compress a matrix into a .dsh container")
    p.add_argument("matrix")
    p.add_argument("output")
    p.add_argument("--scheme", default="dsh", choices=["dsh", "auto"])
    p.set_defaults(fn=cmd_pack)

    p = sub.add_parser("unpack", help="expand a .dsh container to MatrixMarket")
    p.add_argument("container")
    p.add_argument("output")
    p.set_defaults(fn=cmd_unpack)

    p = sub.add_parser("suite", help="inspect the synthetic suite")
    p.add_argument("--count", type=int, default=369)
    p.add_argument("--scale", type=float, default=0.004)
    p.add_argument("--show", type=int, default=10)
    p.add_argument("--compress", type=int, default=0, metavar="N",
                   help="also DSH-compress the first N entries")
    p.set_defaults(fn=cmd_suite)

    p = sub.add_parser(
        "solve",
        help="run an iterative solver over a persistent execution session",
    )
    p.add_argument("algorithm", choices=["cg", "pagerank", "power"],
                   help="cg (SPD systems), pagerank (column-stochastic "
                        "P^T), or power (dominant eigenpair)")
    p.add_argument("matrix",
                   help="MatrixMarket path, synth: spec, or .dsh container")
    p.add_argument("--tol", type=float, default=None,
                   help="convergence tolerance (default: per-algorithm)")
    p.add_argument("--max-iter", type=int, default=None, metavar="N",
                   help="iteration cap (default: per-algorithm)")
    p.add_argument("--damping", type=float, default=0.85,
                   help="PageRank damping factor (default %(default)s)")
    p.add_argument("--seed", type=int, default=7,
                   help="RNG seed for CG's right-hand side (default %(default)s)")
    p.add_argument("--normalize", action="store_true",
                   help="row-normalize + transpose into a column-stochastic "
                        "P^T first (graph adjacency -> random-walk operator)")
    p.add_argument("--block-bytes", type=int, default=8192)
    p.add_argument("--workers", type=int, default=0,
                   help="session engine pool width (0 = serial)")
    p.add_argument("--mode", default="serial", choices=["serial", "pipelined"],
                   help="executor for cold calls (default %(default)s)")
    p.add_argument("--depth", type=int, default=4, metavar="D",
                   help="pipelined prefetch depth")
    p.add_argument("--shards", type=int, default=0, metavar="S",
                   help="sharded executor over a .dsh container path")
    p.add_argument("--policy", default="strict", choices=["strict", "degrade"])
    p.add_argument("--no-session", action="store_true",
                   help="disable steady-state reuse: every iteration pays "
                        "cold decode (the ablation baseline)")
    p.add_argument("--curve", type=int, default=0, metavar="N",
                   help="print ~N rows of the convergence-vs-traffic curve")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write a metrics JSON snapshot (solver.*, session.*)")
    _add_kernel_backend_arg(p)
    p.set_defaults(fn=cmd_solve)

    p = sub.add_parser(
        "ablate",
        help="rank component importance via baseline-plus-one-off ablations",
    )
    p.add_argument("--smoke", action="store_true",
                   help="reduced grid (CI): smaller matrices, fewer repeats")
    p.add_argument("--axes", metavar="LIST",
                   help="comma-separated axis subset, e.g. 'cache,workers' "
                        "(default: every switchable axis)")
    p.add_argument("--pairs", metavar="LIST",
                   help="also run pairwise ablations over these axes, e.g. "
                        "'executor,workers' (every pair among the listed "
                        "axes; their one-off runs are added if --axes "
                        "omitted them) and report interaction ratios")
    p.add_argument("--out", default="BENCH_ablation.json", metavar="PATH",
                   help="artifact path (default: %(default)s)")
    p.add_argument("--repeats", type=int, default=0, metavar="N",
                   help="best-of repeats per timed phase (default: profile's)")
    p.add_argument("--warm-iters", type=int, default=0, metavar="N",
                   help="warm iterations weighted into the headline metric")
    p.add_argument("--nrhs", type=int, default=0, metavar="K",
                   help="right-hand sides for the SpMM burst")
    p.add_argument("--seed", type=int, default=None,
                   help="suite seed (default: profile's)")
    p.add_argument("--fail-harmful", type=float, default=None, metavar="FRAC",
                   help="exit 1 if removing any component improves the "
                        "headline geomean by more than FRAC (e.g. 0.05); "
                        "host-dependent knobs (workers, depth) are ranked "
                        "but never gate")
    p.add_argument("--json", action="store_true",
                   help="print the artifact JSON instead of the table")
    p.set_defaults(fn=cmd_ablate)

    p = sub.add_parser(
        "serve",
        help="serve .dsh containers over TCP (NDJSON protocol + /metrics)",
    )
    p.add_argument("--root", required=True,
                   help="directory of .dsh containers (name = file stem)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7077,
                   help="TCP port (0 = ephemeral; default %(default)s)")
    p.add_argument("--workers", type=int, default=0,
                   help="recode-engine pool width (0 = serial decode)")
    p.add_argument("--executor", default="thread", choices=["thread", "process"],
                   help="engine pool kind (default thread: no fork cost "
                        "per request)")
    p.add_argument("--pipeline", action="store_true",
                   help="pipelined executor per request (needs --workers >= 1)")
    p.add_argument("--depth", type=int, default=4, metavar="D")
    p.add_argument("--cache-mb", type=int, default=256, metavar="M",
                   help="shared decoded-block cache budget (default %(default)s)")
    p.add_argument("--max-matrix-frac", type=float, default=0.5, metavar="F",
                   help="one matrix's max share of the cache (default %(default)s)")
    p.add_argument("--inflight-budget-mb", type=int, default=1024, metavar="M",
                   help="global admission budget in estimated decode-traffic "
                        "bytes (default %(default)s)")
    p.add_argument("--tenant-rate", type=float, default=None, metavar="R",
                   help="per-tenant admission rate, requests/s (default: off)")
    p.add_argument("--tenant-burst", type=float, default=8.0, metavar="B")
    p.add_argument("--fusion-window-ms", type=float, default=2.0, metavar="W",
                   help="same-matrix batch-fusion window (0 disables fusion)")
    p.add_argument("--max-fuse", type=int, default=8, metavar="K",
                   help="max SpMVs fused into one SpMM (default %(default)s)")
    p.add_argument("--max-queue", type=int, default=64, metavar="Q",
                   help="bounded scheduler queue; overflow sheds (default "
                        "%(default)s)")
    p.add_argument("--compute-threads", type=int, default=2, metavar="N")
    p.add_argument("--residency-mb", type=int, default=0, metavar="M",
                   help="mmap residency budget per container (0 = unbounded)")
    p.add_argument("--drain-s", type=float, default=5.0, metavar="S",
                   help="shutdown drain timeout (default %(default)s)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("metrics", help="inspect or diff a metrics JSON snapshot")
    p.add_argument("file", help="metrics JSON written by --metrics-out")
    p.add_argument("--diff", metavar="OTHER",
                   help="show OTHER minus FILE instead of the snapshot itself")
    p.add_argument("--format", default="table", choices=["table", "prom", "json"])
    p.set_defaults(fn=cmd_metrics)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if getattr(args, "kernel_backend", None):
            kernels.set_backend(args.kernel_backend)
        return args.fn(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
