"""DRAM channel models (bandwidth + energy), per paper Section IV-A."""

from __future__ import annotations

from dataclasses import dataclass

from repro import faults
from repro.util.units import GB, TB


@dataclass(frozen=True)
class MemorySystem:
    """An off-chip memory system characterized by peak bandwidth and
    transfer energy.

    Attributes:
        name: label for reports ("DDR4", "HBM2").
        peak_bw: peak sustainable bandwidth, bytes/second.
        energy_per_bit: joules to read one bit and ship it on-die.
    """

    name: str
    peak_bw: float
    energy_per_bit: float

    def __post_init__(self) -> None:
        if self.peak_bw <= 0 or self.energy_per_bit < 0:
            raise ValueError("invalid memory system parameters")

    def transfer_seconds(self, nbytes: float, utilization: float = 1.0) -> float:
        """Time to stream ``nbytes`` at ``utilization`` x peak bandwidth.

        Sequential block streaming achieves ~full utilization (the paper's
        point about contiguous compressed streams); irregular access would
        pass a lower utilization.
        """
        if not 0 < utilization <= 1.0:
            raise ValueError(f"utilization must be in (0, 1], got {utilization}")
        return nbytes / (self.peak_bw * utilization)

    def transfer_energy_j(self, nbytes: float) -> float:
        """Energy to move ``nbytes`` from DRAM to the die."""
        return nbytes * 8.0 * self.energy_per_bit

    def power_at_rate(self, bytes_per_second: float) -> float:
        """Memory power when streaming at the given rate (W)."""
        if bytes_per_second < 0:
            raise ValueError("rate must be non-negative")
        return bytes_per_second * 8.0 * self.energy_per_bit

    @property
    def max_power_w(self) -> float:
        """Power at peak rate — the paper's 80 W (DDR4) / 64 W (HBM2)."""
        return self.power_at_rate(self.peak_bw)

    def stream_record(self, record, block_id: int, stream: str):
        """Model streaming one compressed record out of this memory.

        Returns the record the consumer actually sees: normally the very
        same object, but when a :class:`~repro.faults.FaultPlan` with
        DRAM-site bit flips is armed, a corrupted *copy* — the stored plan
        is never touched, matching real DRAM faults hitting data in
        flight. Costs one ``faults.active()`` check when disabled.
        """
        fault_plan = faults.active()
        if fault_plan is None:
            return record
        return fault_plan.mutate_dram_record(record, block_id, stream)


#: Single-die AMD Epyc class DDR4 (paper: 100 GB/s, 100 pJ/bit -> 80 W max).
DDR4_100GBS = MemorySystem(name="DDR4", peak_bw=100 * GB, energy_per_bit=100e-12)

#: Four HBM2 stacks (paper: 1 TB/s, 8 pJ/bit -> 64 W max).
HBM2_1TBS = MemorySystem(name="HBM2", peak_bw=1 * TB, energy_per_bit=8e-12)
