"""Traffic accounting: who moved how many bytes to whom.

Used by the SpMV pipeline executor to check the paper's central claim in
byte terms: the compressed plan moves ~5/12ths of the baseline's DRAM
traffic for the matrix A.
"""

from __future__ import annotations

from collections import defaultdict

from repro import obs


class TrafficLog:
    """Accumulates byte counts on (src, dst) edges.

    Every record also lands on the process-wide
    ``memsys.traffic.bytes{src=...,dst=...}`` counters, so the registry
    carries cross-run edge totals even though each pipeline run gets its
    own log instance.
    """

    def __init__(self) -> None:
        self._edges: dict[tuple[str, str], int] = defaultdict(int)

    def record(self, src: str, dst: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._edges[(src, dst)] += nbytes
        obs.registry().counter("memsys.traffic.bytes", src=src, dst=dst).inc(nbytes)

    def bytes_on(self, src: str, dst: str) -> int:
        """Total bytes moved on one edge."""
        return self._edges.get((src, dst), 0)

    def bytes_from(self, src: str) -> int:
        """Total bytes leaving ``src``."""
        return sum(v for (s, _), v in self._edges.items() if s == src)

    def bytes_into(self, dst: str) -> int:
        """Total bytes arriving at ``dst``."""
        return sum(v for (_, d), v in self._edges.items() if d == dst)

    @property
    def total_bytes(self) -> int:
        return sum(self._edges.values())

    def edges(self) -> dict[tuple[str, str], int]:
        """Snapshot of all edges."""
        return dict(self._edges)

    def clear(self) -> None:
        self._edges.clear()
