"""DMA engine model.

Paper Section III-C: when data is recoded into the UDP memory space, "the
library routine initiates lightweight DMA operations (like memcpy) that
transfer blocks of data from the DRAM to the UDP memory with high
efficiency. The DMA engine acts as a traditional L2 agent to communicate
with the LLC controller."

The model charges a small per-descriptor startup cost plus the wire time
on the memory system, and records every transfer in a
:class:`~repro.memsys.traffic.TrafficLog`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.memsys.dram import MemorySystem
from repro.memsys.traffic import TrafficLog

#: Descriptor setup + completion interrupt, amortized (seconds). Small: the
#: engine is an on-die L2 agent, not a PCIe device.
DEFAULT_STARTUP_S = 50e-9


@dataclass(frozen=True)
class DMATransfer:
    """One completed block transfer."""

    src: str
    dst: str
    nbytes: int
    seconds: float
    energy_j: float


class DMAEngine:
    """Moves blocks between DRAM and UDP local memory."""

    def __init__(
        self,
        memory: MemorySystem,
        startup_s: float = DEFAULT_STARTUP_S,
        log: TrafficLog | None = None,
    ):
        if startup_s < 0:
            raise ValueError("startup must be non-negative")
        self.memory = memory
        self.startup_s = startup_s
        self.log = log if log is not None else TrafficLog()

    def transfer(self, nbytes: int, src: str = "dram", dst: str = "udp") -> DMATransfer:
        """Execute one descriptor; returns timing/energy and logs traffic."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        seconds = self.startup_s + self.memory.transfer_seconds(nbytes)
        energy = self.memory.transfer_energy_j(nbytes)
        self.log.record(src, dst, nbytes)
        reg = obs.registry()
        reg.counter("memsys.dma.transfers").inc()
        reg.counter("memsys.dma.startup_seconds").inc(self.startup_s)
        reg.counter("memsys.dram.bytes_read").inc(nbytes)
        reg.counter("memsys.dram.seconds").inc(seconds)
        reg.counter("memsys.dram.energy_j").inc(energy)
        return DMATransfer(src=src, dst=dst, nbytes=nbytes, seconds=seconds, energy_j=energy)

    def effective_bandwidth(self, block_bytes: int) -> float:
        """Sustained bytes/s when streaming back-to-back blocks of the
        given size (startup amortization curve)."""
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        per_block = self.startup_s + self.memory.transfer_seconds(block_bytes)
        return block_bytes / per_block
