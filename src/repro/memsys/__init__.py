"""Memory-system models: DRAM channels, the DMA engine, traffic accounting.

Paper Section IV-A constants:

* **DDR4** — single-die AMD Epyc class: 100 GB/s peak, 100 pJ/bit
  (read + ship to CPU).
* **HBM2** — four stacks: 1 TB/s peak, 8 pJ/bit.

Maximum memory power is rate x energy/bit: 80 W for the DDR system and
64 W for the HBM2 system, the denominators of Figs. 16-17.
"""

from repro.memsys.dram import DDR4_100GBS, HBM2_1TBS, MemorySystem
from repro.memsys.dma import DMAEngine, DMATransfer
from repro.memsys.noc import MeshNoC, NoCTransfer, Tile, default_chip
from repro.memsys.traffic import TrafficLog

__all__ = [
    "MemorySystem",
    "DDR4_100GBS",
    "HBM2_1TBS",
    "DMAEngine",
    "DMATransfer",
    "MeshNoC",
    "NoCTransfer",
    "Tile",
    "default_chip",
    "TrafficLog",
]
