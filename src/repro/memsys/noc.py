"""On-die network-on-chip model (paper Fig. 4: "integration of the UDP into
the chip NoC fabric").

A 2-D mesh of routers connects CPU core tiles, the UDP tile(s), and the
memory-controller tiles. Block transfers are priced by XY-routed hop count
(per-hop latency + per-bit link energy) plus serialization on the link
width. The numbers are small compared to DRAM — which is exactly the
paper's integration argument: on-die movement is effectively free next to
going off-chip, let alone across PCIe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs

#: Typical server-class mesh parameters (14 nm).
DEFAULT_HOP_LATENCY_S = 1.25e-9  # 2 cycles @1.6 GHz per router+link
DEFAULT_LINK_BYTES_PER_S = 64e9  # 512-bit links at mesh clock
DEFAULT_ENERGY_PER_BIT_HOP = 0.1e-12  # ~0.1 pJ/bit/hop on-die


@dataclass(frozen=True)
class Tile:
    """A mesh endpoint at integer coordinates."""

    name: str
    x: int
    y: int


@dataclass(frozen=True)
class NoCTransfer:
    """One priced transfer."""

    src: str
    dst: str
    nbytes: int
    hops: int
    seconds: float
    energy_j: float


class MeshNoC:
    """XY-routed 2-D mesh interconnect."""

    def __init__(
        self,
        width: int,
        height: int,
        hop_latency_s: float = DEFAULT_HOP_LATENCY_S,
        link_bytes_per_s: float = DEFAULT_LINK_BYTES_PER_S,
        energy_per_bit_hop: float = DEFAULT_ENERGY_PER_BIT_HOP,
    ):
        if width < 1 or height < 1:
            raise ValueError("mesh dims must be positive")
        if hop_latency_s < 0 or link_bytes_per_s <= 0 or energy_per_bit_hop < 0:
            raise ValueError("invalid NoC parameters")
        self.width = width
        self.height = height
        self.hop_latency_s = hop_latency_s
        self.link_bytes_per_s = link_bytes_per_s
        self.energy_per_bit_hop = energy_per_bit_hop
        self._tiles: dict[str, Tile] = {}

    def place(self, name: str, x: int, y: int) -> Tile:
        """Register a tile at mesh coordinates.

        Raises:
            ValueError: out-of-bounds coordinates or duplicate name.
        """
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        if name in self._tiles:
            raise ValueError(f"tile {name!r} already placed")
        tile = Tile(name, x, y)
        self._tiles[name] = tile
        return tile

    def hops(self, src: str, dst: str) -> int:
        """Manhattan (XY-routing) hop count between two tiles."""
        a, b = self._tile(src), self._tile(dst)
        return abs(a.x - b.x) + abs(a.y - b.y)

    def transfer(self, src: str, dst: str, nbytes: int) -> NoCTransfer:
        """Price one block transfer: head latency + serialization + energy."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        nhops = self.hops(src, dst)
        seconds = nhops * self.hop_latency_s + nbytes / self.link_bytes_per_s
        energy = nbytes * 8.0 * self.energy_per_bit_hop * max(1, nhops)
        reg = obs.registry()
        reg.counter("memsys.noc.transfers").inc()
        reg.counter("memsys.noc.bytes").inc(nbytes)
        reg.counter("memsys.noc.hops").inc(nhops)
        reg.counter("memsys.noc.seconds").inc(seconds)
        reg.counter("memsys.noc.energy_j").inc(energy)
        return NoCTransfer(src, dst, nbytes, nhops, seconds, energy)

    def _tile(self, name: str) -> Tile:
        try:
            return self._tiles[name]
        except KeyError:
            raise ValueError(f"unknown tile {name!r}") from None


def default_chip(ncores: int = 8) -> MeshNoC:
    """A small reference floorplan: cores on a mesh, one UDP tile beside
    the memory controller (the paper's placement — the UDP sits *in* the
    memory system, not out with the accelerator cards)."""
    width = max(2, (ncores + 1) // 2)
    noc = MeshNoC(width=width, height=3)
    for i in range(ncores):
        noc.place(f"core{i}", x=i % width, y=1 + i // width)
    noc.place("memctrl", x=0, y=0)
    noc.place("udp", x=min(1, width - 1), y=0)
    return noc
