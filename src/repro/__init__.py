"""repro — reproduction of *Programmable Acceleration for Sparse Matrices in
a Data-movement Limited World* (Rawal, Fang & Chien, IPDPS workshops 2019).

The library models a heterogeneous CPU + UDP (Unstructured Data Processor)
architecture in which sparse matrices live in DRAM as Delta-Snappy-Huffman
compressed block-CSR and are decompressed on the fly by a programmable
recoding accelerator, turning bytes-per-nonzero savings directly into SpMV
speedup or memory-power savings.

Subpackages
-----------
- ``repro.sparse``     — CSR/COO formats, SpMV kernels, block partitioner
- ``repro.codecs``     — Delta, Snappy, Huffman codecs and the DSH pipeline
- ``repro.udp``        — cycle-level UDP accelerator simulator + programs
- ``repro.cpu``        — CPU pipeline cost model for recoding
- ``repro.memsys``     — DDR4 / HBM2 bandwidth & energy models
- ``repro.core``       — the heterogeneous system model (performance/power)
- ``repro.collection`` — synthetic TAMU-like matrix suite
- ``repro.experiments``— per-figure reproduction harness
- ``repro.obs``        — metrics registry, tracing, and exporters
- ``repro.faults``     — deterministic fault injection + chaos plans
"""

__version__ = "1.0.0"

__all__ = [
    "sparse",
    "codecs",
    "udp",
    "cpu",
    "memsys",
    "core",
    "collection",
    "experiments",
    "faults",
    "obs",
    "util",
]
