"""Reference CPU: the paper's evaluation machine "river-fe".

Section IV-A: two Intel Xeon E5-2670 v3 processors, 12 cores each at
2.30 GHz, 30 MB LLC; the decompression comparison of Fig. 12 uses a
32-thread CPU configuration.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUSpec:
    """Pipeline-level parameters of the modeled CPU.

    Attributes:
        name: label for reports.
        clock_hz: core clock.
        threads: worker threads used for block-parallel decompression.
        issue_width: micro-ops issued per cycle.
        mispredict_penalty: pipeline-flush cost in cycles (Haswell ~15-20).
        loop_carry_latency: minimum cycles per decode step even when
            perfectly predicted. Decoders are loop-carried serial chains —
            the next element's position depends on finishing this one — so
            each step pays at least a load-to-use + ALU latency (classic
            interpreter-dispatch cost, ~5-8 cycles on deep OoO cores). The
            UDP's whole design point is that its short pipeline retires one
            such step per cycle.
        copy_bytes_per_cycle: sustained bulk-copy rate (wide SIMD moves).
        power_w: package power at full recoding load (paper: "perhaps 100W").
    """

    name: str
    clock_hz: float
    threads: int
    issue_width: int
    mispredict_penalty: int
    loop_carry_latency: int
    copy_bytes_per_cycle: int
    power_w: float

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.threads < 1 or self.issue_width < 1:
            raise ValueError("invalid CPU spec")
        if self.mispredict_penalty < 0 or self.copy_bytes_per_cycle < 1:
            raise ValueError("invalid CPU spec")
        if self.loop_carry_latency < 1:
            raise ValueError("invalid CPU spec")


#: The paper's evaluation host (Haswell-EP), 32 decompression threads.
RIVER_FE = CPUSpec(
    name="river-fe (2x Xeon E5-2670 v3)",
    clock_hz=2.3e9,
    threads=32,
    issue_width=4,
    mispredict_penalty=15,
    loop_carry_latency=6,
    copy_bytes_per_cycle=16,
    power_w=100.0,
)
