"""Branch predictors used by the CPU pipeline model.

* :class:`TwoBitPredictor` — per-branch 2-bit saturating counters for
  conditional (two-way) branches, indexed by branch address.
* :class:`IndirectPredictor` — a last-target BTB for indirect branches
  (the CPU realization of the UDP's multi-way dispatch). Data-dependent
  decode dispatch defeats it, which is precisely the paper's point.
"""

from __future__ import annotations


class TwoBitPredictor:
    """Classic 2-bit saturating counter per branch site.

    States 0-1 predict not-taken, 2-3 predict taken; start weakly taken.
    """

    def __init__(self) -> None:
        self._counters: dict[int, int] = {}
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, site: int, taken: bool) -> bool:
        """Predict branch at ``site``; learn the outcome. Returns whether
        the prediction was correct."""
        counter = self._counters.get(site, 2)
        predicted_taken = counter >= 2
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        self._counters[site] = counter
        return correct

    @property
    def miss_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0


class IndirectPredictor:
    """Last-target BTB: predicts an indirect branch jumps where it jumped
    last time. Monotone dispatch streams predict well; decode dispatch
    (tag/symbol driven) is close to random and predicts terribly."""

    def __init__(self) -> None:
        self._last_target: dict[int, int] = {}
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, site: int, target: int) -> bool:
        """Predict the target for ``site``; learn the real target."""
        predicted = self._last_target.get(site)
        correct = predicted == target
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        self._last_target[site] = target
        return correct

    @property
    def miss_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0
