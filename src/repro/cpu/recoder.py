"""Whole-matrix decompression on the CPU (the paper's baseline & foil).

Runs the same decode chains as :mod:`repro.udp.runtime`, collects the lane
traces, and prices them with :class:`~repro.cpu.pipeline.CPUPipelineModel`.
Blocks are decoded in parallel across ``spec.threads`` (Fig. 12's 32-thread
CPU), scheduled exactly like UDP lane tasks.

Used two ways:

* **Snappy-only plan, 32 KB blocks** — the Fig. 10/12 CPU baseline;
* **DSH plan, 8 KB blocks** — Fig. 14/15's ``Decomp(CPU)`` bar: what
  happens if the CPU itself must undo the UDP's aggressive encoding
  (answer: >30x slower, the optimization becomes infeasible).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.codecs.pipeline import MatrixCompression
from repro.cpu.pipeline import CPUPipelineModel, ReplayResult
from repro.cpu.specs import CPUSpec, RIVER_FE
from repro.udp.machine import LaneTask, Schedule, UDPMachine
from repro.udp.runtime import INDEX, VALUE, DecoderToolchain
from repro.util.rng import derive_seed, seeded_rng


@dataclass(frozen=True)
class CPUChainCost:
    """CPU cost of decoding one record (all stages)."""

    block_index: int
    stream: str
    cycles: int
    flush_cycles: int
    output_bytes: int


@dataclass(frozen=True)
class CPURecodeReport:
    """Aggregate CPU decompression simulation for one matrix plan."""

    spec: CPUSpec
    matrix_blocks: int
    simulated: tuple[CPUChainCost, ...]
    tasks: tuple[LaneTask, ...]
    schedule: Schedule

    @property
    def throughput_bytes_per_s(self) -> float:
        """Sustained decompressed-output rate across all threads
        (steady-state, matching the UDP report's convention)."""
        return self.schedule.steady_state_throughput_bytes_per_s

    @property
    def wasted_fraction(self) -> float:
        """Flush cycles / total cycles over the simulated sample."""
        total = sum(c.cycles for c in self.simulated)
        if not total:
            return 0.0
        return sum(c.flush_cycles for c in self.simulated) / total

    @property
    def seconds(self) -> float:
        return self.schedule.seconds


class CPURecoder:
    """Prices whole-plan decompression on a CPU spec."""

    def __init__(self, spec: CPUSpec = RIVER_FE):
        self.spec = spec
        self.model = CPUPipelineModel(spec)

    def _chain_cost(
        self, toolchain: DecoderToolchain, block_index: int, stream: str
    ) -> CPUChainCost:
        chain = toolchain.run_chain(block_index, stream, collect_trace=True)
        if not chain.verified:
            raise ValueError(
                f"chain failed verification: block {block_index} {stream}"
            )
        assert chain.traces is not None
        cycles = 0
        flush = 0
        for trace in chain.traces.values():
            result: ReplayResult = self.model.replay(trace)
            cycles += result.cycles
            flush += result.flush_cycles
        return CPUChainCost(
            block_index=block_index,
            stream=stream,
            cycles=cycles,
            flush_cycles=flush,
            output_bytes=len(chain.output),
        )

    def simulate_plan(
        self,
        plan: MatrixCompression,
        sample: int | None = None,
        seed: int = 0,
    ) -> CPURecodeReport:
        """Simulate CPU decompression of an entire plan.

        Mirrors :func:`repro.udp.runtime.simulate_plan`: a deterministic
        block sample is priced exactly; the rest are extrapolated at the
        sampled cycles-per-output-byte, then all tasks are list-scheduled
        over ``spec.threads``.
        """
        threads = UDPMachine(nlanes=self.spec.threads, clock_hz=self.spec.clock_hz)
        nblocks = plan.nblocks
        if nblocks == 0:
            return CPURecodeReport(
                spec=self.spec,
                matrix_blocks=0,
                simulated=(),
                tasks=(),
                schedule=threads.schedule([]),
            )
        toolchain = DecoderToolchain(plan)

        if sample is None or sample >= nblocks:
            picked = np.arange(nblocks)
        else:
            rng = seeded_rng(derive_seed(seed, "cpu-sample"))
            picked = np.sort(rng.choice(nblocks, size=max(1, sample), replace=False))
        picked_set = {int(i) for i in picked}

        simulated: list[CPUChainCost] = []
        by_stream: dict[str, list[CPUChainCost]] = {INDEX: [], VALUE: []}
        with obs.trace("cpu.simulate_plan", blocks=nblocks, sampled=len(picked)):
            for i in picked:
                for stream in (INDEX, VALUE):
                    cost = self._chain_cost(toolchain, int(i), stream)
                    simulated.append(cost)
                    by_stream[stream].append(cost)
        reg = obs.registry()
        reg.counter("cpu.simulations").inc()
        reg.counter("cpu.blocks_simulated").inc(len(picked))
        reg.counter("cpu.chain_cycles").inc(sum(c.cycles for c in simulated))
        reg.counter("cpu.flush_cycles").inc(sum(c.flush_cycles for c in simulated))

        cpb = {
            stream: sum(c.cycles for c in costs)
            / max(1, sum(c.output_bytes for c in costs))
            for stream, costs in by_stream.items()
        }
        lookup = {(c.block_index, c.stream): c for c in simulated}

        tasks: list[LaneTask] = []
        for i in range(nblocks):
            block = plan.blocked.blocks[i]
            for stream, nbytes in ((INDEX, 4 * block.nnz), (VALUE, 8 * block.nnz)):
                if i in picked_set:
                    cycles = lookup[(i, stream)].cycles
                else:
                    cycles = int(round(cpb[stream] * nbytes))
                tasks.append(
                    LaneTask(name=f"b{i}/{stream}", cycles=cycles, output_bytes=nbytes)
                )
        return CPURecodeReport(
            spec=self.spec,
            matrix_blocks=nblocks,
            simulated=tuple(simulated),
            tasks=tuple(tasks),
            schedule=threads.schedule(tasks),
        )
