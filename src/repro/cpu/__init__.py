"""CPU-side models: recoding cost and machine specs.

The paper's key negative result — "CPU architectures show >30x worse
recoding performance" — is attributed to branch behavior: "CPUs suffer from
poor branch prediction on the operation dispatch, which can lead to 80%
cycle waste due to frequent pipeline flushes" (Section III-E).

We reproduce that mechanism directly: the *same* decode work the UDP
executes (the lane's block trace) is replayed through a superscalar CPU
pipeline model (:mod:`repro.cpu.pipeline`) where every multi-way dispatch
becomes an indirect branch predicted by a last-target BTB and every two-way
branch by 2-bit saturating counters; mispredictions flush a deep pipeline.
:mod:`repro.cpu.recoder` packages this into whole-matrix decompression
throughput on the paper's 2x Xeon E5-2670 v3 reference machine.
"""

from repro.cpu.pipeline import CPUPipelineModel, ReplayResult
from repro.cpu.predictor import IndirectPredictor, TwoBitPredictor
from repro.cpu.recoder import CPURecoder, CPURecodeReport
from repro.cpu.specs import RIVER_FE, CPUSpec

__all__ = [
    "CPUPipelineModel",
    "ReplayResult",
    "TwoBitPredictor",
    "IndirectPredictor",
    "CPURecoder",
    "CPURecodeReport",
    "CPUSpec",
    "RIVER_FE",
]
