"""Superscalar CPU pipeline cost model for recoding work.

The model replays the exact block trace a UDP lane produced for a decode
run, but prices it like a deep out-of-order CPU:

* actions issue ``issue_width`` per cycle (they are simple ALU/load µops);
* bulk copies run at ``copy_bytes_per_cycle`` (SIMD moves);
* every two-way branch consults 2-bit saturating counters;
* every multi-way dispatch becomes an **indirect branch** through a
  last-target BTB;
* any misprediction flushes the pipeline: +``mispredict_penalty`` cycles.

Because decode dispatch targets are driven by the compressed data itself,
the BTB misses constantly, and flush cycles dominate — the paper's "80%
cycle waste". The same trace costs the UDP ~1 cycle per block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.predictor import IndirectPredictor, TwoBitPredictor
from repro.cpu.specs import CPUSpec, RIVER_FE
from repro.udp.lane import TraceEvent


@dataclass(frozen=True)
class ReplayResult:
    """Cycle breakdown of one trace replay."""

    base_cycles: int
    flush_cycles: int
    branch_predictions: int
    branch_mispredictions: int
    dispatch_predictions: int
    dispatch_mispredictions: int

    @property
    def cycles(self) -> int:
        return self.base_cycles + self.flush_cycles

    @property
    def wasted_fraction(self) -> float:
        """Fraction of cycles lost to pipeline flushes."""
        total = self.cycles
        return self.flush_cycles / total if total else 0.0

    @property
    def dispatch_miss_rate(self) -> float:
        if not self.dispatch_predictions:
            return 0.0
        return self.dispatch_mispredictions / self.dispatch_predictions


class CPUPipelineModel:
    """Prices UDP lane traces at CPU cost."""

    def __init__(self, spec: CPUSpec = RIVER_FE):
        self.spec = spec

    def replay(self, trace: list[TraceEvent]) -> ReplayResult:
        """Replay one trace through fresh predictor state.

        Predictor state is per-replay: each block decode is an independent
        call into the decoder, and its dispatch history is data-dependent,
        so carrying state across blocks would not help the CPU anyway.
        """
        spec = self.spec
        cond = TwoBitPredictor()
        indirect = IndirectPredictor()
        base = 0
        flush = 0
        for ev in trace:
            # Issue the block's actions plus one control µop — but never
            # faster than the loop-carried dependency through the stream
            # cursor allows (decode steps serialize).
            uops = ev.n_actions + 1
            base += max(-(-uops // spec.issue_width), spec.loop_carry_latency)
            if ev.copy_bytes:
                base += -(-ev.copy_bytes // spec.copy_bytes_per_cycle)
            if ev.kind == "br":
                if not cond.predict_and_update(ev.addr, ev.taken):
                    flush += spec.mispredict_penalty
            elif ev.kind == "dispatch":
                if not indirect.predict_and_update(ev.addr, ev.target):
                    flush += spec.mispredict_penalty
        return ReplayResult(
            base_cycles=base,
            flush_cycles=flush,
            branch_predictions=cond.predictions,
            branch_mispredictions=cond.mispredictions,
            dispatch_predictions=indirect.predictions,
            dispatch_mispredictions=indirect.mispredictions,
        )

    def seconds(self, result: ReplayResult) -> float:
        """Wall time of a replay on one thread."""
        return result.cycles / self.spec.clock_hz
