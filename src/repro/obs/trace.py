"""Span-based tracing with Chrome-trace-format export.

Wrap a hot region in ``with trace("huffman.decode", block=i):`` and, when
tracing is enabled, a complete ("ph": "X") event is recorded with
microsecond timestamps. The resulting JSON loads directly into
``chrome://tracing`` / Perfetto.

Tracing is **off by default** — a disabled :func:`trace` call returns a
shared no-op context manager, so instrumented code costs a function call
and a flag test per span. Pool workers run with their own
:class:`Tracer` (see :mod:`repro.codecs.engine`); their events carry the
worker's pid/tid and are folded into the parent tracer on join.
``time.perf_counter`` is CLOCK_MONOTONIC system-wide on Linux, so parent
and worker timestamps share a timeline.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator


class _NullSpan:
    """Shared do-nothing span for the tracing-disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_tracer", "_name", "_args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> None:
        self._t0 = time.perf_counter()
        return None

    def __exit__(self, *exc) -> None:
        t1 = time.perf_counter()
        self._tracer._record(self._name, self._t0, t1, self._args)
        return None


class Tracer:
    """Collects complete-span events in Chrome trace format."""

    def __init__(self, enabled: bool = False):
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._enabled = enabled

    # -- control -------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def start(self) -> None:
        self._enabled = True

    def stop(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **args):
        """Context manager timing one region; no-op when disabled."""
        if not self._enabled:
            return _NULL_SPAN
        return _Span(self, name, args)

    def _record(self, name: str, t0: float, t1: float, args: dict) -> None:
        event = {
            "name": name,
            "ph": "X",
            "ts": t0 * 1e6,
            "dur": (t1 - t0) * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_native_id(),
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def add_events(self, events: list[dict]) -> None:
        """Fold in events recorded elsewhere (pool workers)."""
        with self._lock:
            self._events.extend(events)

    # -- export --------------------------------------------------------------

    def events(self) -> list[dict]:
        """Snapshot of raw events, sorted by (pid, tid, ts)."""
        with self._lock:
            events = list(self._events)
        return sorted(events, key=lambda e: (e["pid"], e["tid"], e["ts"]))

    def chrome_trace(self) -> dict:
        """The Chrome trace-event JSON object."""
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(), fh, indent=1)


# ---------------------------------------------------------------------------
# The process-wide current tracer
# ---------------------------------------------------------------------------

_DEFAULT_TRACER = Tracer()
_current_tracer = _DEFAULT_TRACER
_swap_lock = threading.Lock()


def tracer() -> Tracer:
    """The current process-wide tracer."""
    return _current_tracer


def trace(name: str, **args):
    """Span on the current tracer: ``with trace("stage", block=i): ...``."""
    return _current_tracer.span(name, **args)


def enable_tracing() -> None:
    _current_tracer.start()


def disable_tracing() -> None:
    _current_tracer.stop()


def tracing_enabled() -> bool:
    return _current_tracer.enabled


@contextmanager
def scoped_tracer(t: Tracer | None = None) -> Iterator[Tracer]:
    """Swap the process-wide current tracer for the duration of the block."""
    global _current_tracer
    t = t if t is not None else Tracer()
    with _swap_lock:
        previous, _current_tracer = _current_tracer, t
    try:
        yield t
    finally:
        with _swap_lock:
            _current_tracer = previous


def write_trace(path: str, t: Tracer | None = None) -> None:
    """Write the (current) tracer's Chrome trace JSON to ``path``."""
    (t or _current_tracer).write(path)
