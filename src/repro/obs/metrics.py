"""Dependency-free metrics primitives and the process-wide registry.

The paper's whole argument is quantitative — bytes/nnz, decode MB/s, DRAM
traffic and power — so every hot path in the repo records into a shared
:class:`MetricsRegistry` instead of ad-hoc stat fields:

* :class:`Counter` — monotonic accumulator (blocks decoded, bytes moved,
  modeled joules). Thread-safe; negative increments are rejected.
* :class:`Gauge` — last-written value (cache occupancy, traffic ratio).
* :class:`Histogram` — log-bucketed distribution (per-record decode
  seconds). Two histograms with identical buckets merge exactly
  (per-bucket counts add), which is what makes shard merging
  order-independent.

A registry is just a dict of metrics keyed by ``(name, labels)``; the
process-wide *current* registry is what the instrumentation helpers
(:func:`counter` / :func:`gauge` / :func:`histogram`) resolve at call
time, so :func:`scoped_registry` can swap in a fresh one for a test or a
pool worker and capture everything recorded inside the scope. Worker
registries come back to the parent as :meth:`MetricsRegistry.snapshot`
dicts (plain JSON-able data, hence picklable) and are folded in with
:meth:`MetricsRegistry.merge_snapshot` — counters add, gauges last-write,
histograms bucket-add — so a process-pool run reports exactly the same
totals as the serial run.

Objects whose hot paths are too cheap to afford a per-event counter (the
decoded-block cache probes every block) register a *collector* instead:
a callback run at snapshot time that publishes their plain-int fields
into the registry (the Prometheus client-library pattern).
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Callable, Iterator

#: Global instrumentation switch. ``set_enabled(False)`` turns every
#: record operation into a no-op (used by the overhead benchmark).
_ENABLED = True

#: Default histogram bucket upper bounds: decade-spaced from 100 ns to
#: 100 s (record timings) with headroom for byte-sized observations.
DEFAULT_BUCKETS = tuple(10.0 ** e for e in range(-7, 10))


def set_enabled(flag: bool) -> None:
    """Globally enable/disable metric recording (tracing has its own switch)."""
    global _ENABLED
    _ENABLED = bool(flag)


def enabled() -> bool:
    return _ENABLED


def _label_items(labels: dict) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def metric_id(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """Canonical string key: ``name`` or ``name{k=v,k2=v2}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing accumulator (int or float)."""

    kind = "counter"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value: float = 0

    def inc(self, amount: float = 1) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def _merge_value(self, value: float) -> None:
        with self._lock:
            self._value += value

    def _snapshot(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "type": self.kind,
            "value": self._value,
        }


class Gauge:
    """A last-write-wins instantaneous value."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value: float = 0

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def _merge_value(self, value: float) -> None:
        # Merge semantics: the incoming (worker) observation wins, like a
        # fresh set() in the parent.
        with self._lock:
            self._value = value

    def _snapshot(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "type": self.kind,
            "value": self._value,
        }


class Histogram:
    """A fixed-bucket distribution with exact, order-independent merging.

    Buckets are upper bounds (a final implicit ``+inf`` bucket catches
    overflow). ``count`` and per-bucket tallies merge by addition; ``sum``
    is float addition (exact for integer-valued observations, ULP-level
    order dependence for general floats); ``min``/``max`` combine.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "_lock", "_counts", "_count",
                 "_sum", "_min", "_max")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        # Linear scan is fine: bucket lists are short and observations are
        # tiny next to the work being timed; bisect would also work.
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bucket layouts must match)."""
        if self.buckets != other.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        with other._lock:
            data = other._merge_data()
        self._merge_data_in(data)

    def _merge_data(self) -> dict:
        return {
            "counts": list(self._counts),
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
        }

    def _merge_data_in(self, data: dict) -> None:
        with self._lock:
            for i, c in enumerate(data["counts"]):
                self._counts[i] += c
            self._count += data["count"]
            self._sum += data["sum"]
            self._min = min(self._min, data["min"])
            self._max = max(self._max, data["max"])

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf

    def _snapshot(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "labels": dict(self.labels),
                "type": self.kind,
                "count": self._count,
                "sum": self._sum,
                "min": None if self._count == 0 else self._min,
                "max": None if self._count == 0 else self._max,
                "buckets": list(self.buckets),
                "counts": list(self._counts),
            }


class MetricsRegistry:
    """A thread-safe collection of named metrics.

    One process-wide instance (:func:`registry`) backs all
    instrumentation; fresh instances isolate tests and pool workers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple], object] = {}
        self._collectors: list[Callable[["MetricsRegistry"], object]] = []

    # -- get-or-create -------------------------------------------------------

    def _get_or_create(self, cls, name: str, labels: dict, **kwargs):
        key = (name, _label_items(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {metric_id(name, key[1])!r} already registered "
                    f"as {metric.kind}, not {cls.kind}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    # -- introspection -------------------------------------------------------

    def get(self, name: str, **labels):
        """The metric object, or None if never recorded."""
        with self._lock:
            return self._metrics.get((name, _label_items(labels)))

    def value(self, name: str, **labels) -> float:
        """Counter/gauge value (0 if absent); histogram count."""
        metric = self.get(name, **labels)
        if metric is None:
            return 0
        if isinstance(metric, Histogram):
            return metric.count
        return metric.value

    def names(self) -> set[str]:
        with self._lock:
            return {name for name, _ in self._metrics}

    def __len__(self) -> int:
        return len(self._metrics)

    # -- collectors ----------------------------------------------------------

    def register_collector(self, fn: Callable[["MetricsRegistry"], object]) -> None:
        """Register a callback run before every snapshot.

        The callback publishes externally-held state (e.g. cache counters
        kept as plain ints for speed) into this registry. Returning
        ``False`` deregisters it (use for weakref-expired sources).
        """
        with self._lock:
            self._collectors.append(fn)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        dead = [fn for fn in collectors if fn(self) is False]
        if dead:
            with self._lock:
                self._collectors = [c for c in self._collectors if c not in dead]

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """JSON-able (and picklable) state: ``{metric_id: record}``."""
        self._run_collectors()
        with self._lock:
            metrics = list(self._metrics.items())
        return {
            metric_id(name, key_labels): metric._snapshot()
            for (name, key_labels), metric in metrics
        }

    def merge_snapshot(self, snapshot: dict[str, dict]) -> None:
        """Fold a snapshot (e.g. from a pool worker) into this registry."""
        for record in snapshot.values():
            name, labels = record["name"], record["labels"]
            kind = record["type"]
            if kind == Counter.kind:
                self.counter(name, **labels)._merge_value(record["value"])
            elif kind == Gauge.kind:
                self.gauge(name, **labels)._merge_value(record["value"])
            elif kind == Histogram.kind:
                hist = self.histogram(
                    name, buckets=tuple(record["buckets"]), **labels
                )
                hist._merge_data_in(
                    {
                        "counts": record["counts"],
                        "count": record["count"],
                        "sum": record["sum"],
                        "min": math.inf if record["min"] is None else record["min"],
                        "max": -math.inf if record["max"] is None else record["max"],
                    }
                )
            else:
                raise ValueError(f"unknown metric type {kind!r}")

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's current state into this one."""
        self.merge_snapshot(other.snapshot())

    def reset(self) -> None:
        """Zero every metric (the metric objects stay registered)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()


# ---------------------------------------------------------------------------
# The process-wide current registry
# ---------------------------------------------------------------------------

_DEFAULT_REGISTRY = MetricsRegistry()
_current_registry = _DEFAULT_REGISTRY
_swap_lock = threading.Lock()


def registry() -> MetricsRegistry:
    """The current process-wide registry (all instrumentation records here)."""
    return _current_registry


def default_registry() -> MetricsRegistry:
    return _DEFAULT_REGISTRY


@contextmanager
def scoped_registry(reg: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Swap the process-wide current registry for the duration of the block.

    The swap is process-global (it is what lets pool workers and tests
    capture everything recorded under them), so don't nest scopes across
    threads that record concurrently.
    """
    global _current_registry
    reg = reg if reg is not None else MetricsRegistry()
    with _swap_lock:
        previous, _current_registry = _current_registry, reg
    try:
        yield reg
    finally:
        with _swap_lock:
            _current_registry = previous


def counter(name: str, **labels) -> Counter:
    """Get-or-create a counter on the current registry."""
    return _current_registry.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    """Get-or-create a gauge on the current registry."""
    return _current_registry.gauge(name, **labels)


def histogram(name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels) -> Histogram:
    """Get-or-create a histogram on the current registry."""
    return _current_registry.histogram(name, buckets=buckets, **labels)
