"""Exporters for :class:`~repro.obs.metrics.MetricsRegistry` snapshots.

Three formats:

* **JSON** — the snapshot verbatim under a versioned envelope; the
  interchange format for ``--metrics-out`` and for diffing two runs.
* **Prometheus text exposition** — counters/gauges/histograms with names
  sanitized to ``repro_<name>`` and labels preserved, scrape-ready.
* **Human table** — the ``repro metrics`` CLI view.

All functions take the plain snapshot dict (``{metric_id: record}``), so
they work identically on a live registry's ``snapshot()`` and on a loaded
``metrics.json``.
"""

from __future__ import annotations

import json
import math
import re

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, metric_id
from repro.util.tables import Table

#: Schema tag written into every metrics.json.
SCHEMA_VERSION = 1

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------


def to_json(snapshot: dict[str, dict], indent: int | None = 2) -> str:
    """Serialize a snapshot under the versioned envelope."""
    envelope = {"version": SCHEMA_VERSION, "metrics": snapshot}
    return json.dumps(envelope, indent=indent, sort_keys=True)


def write_metrics(path: str, registry: MetricsRegistry | None = None) -> dict[str, dict]:
    """Snapshot ``registry`` (default: the current one) to a JSON file."""
    if registry is None:
        from repro.obs.metrics import registry as current

        registry = current()
    snapshot = registry.snapshot()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_json(snapshot))
    return snapshot


def load_metrics(path: str) -> dict[str, dict]:
    """Load a metrics.json written by :func:`write_metrics`.

    Raises:
        ValueError: on a missing/foreign envelope or unsupported version.
    """
    with open(path, "r", encoding="utf-8") as fh:
        envelope = json.load(fh)
    if not isinstance(envelope, dict) or "metrics" not in envelope:
        raise ValueError(f"{path}: not a repro metrics file")
    version = envelope.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported metrics schema version {version!r}")
    return envelope["metrics"]


# ---------------------------------------------------------------------------
# Aggregation / diffing
# ---------------------------------------------------------------------------


def aggregate_by_name(snapshot: dict[str, dict]) -> dict[str, dict]:
    """Collapse label sets: one record per metric *name*.

    Counter and gauge values sum across their label sets (per-engine /
    per-cache series fold into process totals); histograms bucket-add.
    Used by the golden-snapshot tests so fixtures are independent of
    instance-id labels.
    """
    out: dict[str, dict] = {}
    for record in snapshot.values():
        name = record["name"]
        prior = out.get(name)
        if prior is None:
            merged = dict(record)
            merged["labels"] = {}
            out[name] = merged
            continue
        if prior["type"] != record["type"]:
            raise ValueError(f"metric {name!r} has mixed types across labels")
        if record["type"] == Histogram.kind:
            if prior["buckets"] != record["buckets"]:
                raise ValueError(f"metric {name!r} has mixed buckets across labels")
            prior["count"] += record["count"]
            prior["sum"] += record["sum"]
            prior["counts"] = [a + b for a, b in zip(prior["counts"], record["counts"])]
            for key, pick in (("min", min), ("max", max)):
                vals = [v for v in (prior[key], record[key]) if v is not None]
                prior[key] = pick(vals) if vals else None
        else:
            prior["value"] += record["value"]
    return out


def diff_snapshots(a: dict[str, dict], b: dict[str, dict]) -> list[tuple[str, float, float, float]]:
    """Per-metric ``(id, a, b, b - a)`` rows over the union of both runs.

    Histograms compare by observation count. Missing metrics count as 0.
    """

    def _value(record: dict | None) -> float:
        if record is None:
            return 0.0
        if record["type"] == Histogram.kind:
            return float(record["count"])
        return float(record["value"])

    rows = []
    for key in sorted(set(a) | set(b)):
        va, vb = _value(a.get(key)), _value(b.get(key))
        rows.append((key, va, vb, vb - va))
    return rows


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _prom_name(name: str) -> str:
    return "repro_" + _PROM_SANITIZE.sub("_", name)


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    items = {**labels, **(extra or {})}
    if not items:
        return ""
    inner = ",".join(f'{_PROM_SANITIZE.sub("_", k)}="{v}"' for k, v in sorted(items.items()))
    return "{" + inner + "}"


def _prom_float(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    return repr(float(value))


def to_prometheus(snapshot: dict[str, dict]) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    by_name: dict[str, list[dict]] = {}
    for record in snapshot.values():
        by_name.setdefault(record["name"], []).append(record)

    lines: list[str] = []
    for name in sorted(by_name):
        records = by_name[name]
        kind = records[0]["type"]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} {kind}")
        for record in records:
            labels = record["labels"]
            if kind == Histogram.kind:
                cumulative = 0
                for bound, count in zip(
                    record["buckets"] + [math.inf], record["counts"]
                ):
                    cumulative += count
                    le = _prom_labels(labels, {"le": _prom_float(bound)})
                    lines.append(f"{prom}_bucket{le} {cumulative}")
                lines.append(f"{prom}_sum{_prom_labels(labels)} {record['sum']!r}")
                lines.append(f"{prom}_count{_prom_labels(labels)} {record['count']}")
            else:
                lines.append(f"{prom}{_prom_labels(labels)} {record['value']!r}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Human table
# ---------------------------------------------------------------------------


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value)}"


def render_table(snapshot: dict[str, dict]) -> str:
    """The ``repro metrics`` view: one aligned row per metric series."""
    table = Table(["metric", "type", "value"])
    for key in sorted(snapshot):
        record = snapshot[key]
        if record["type"] == Histogram.kind:
            value = (
                f"count={record['count']} sum={record['sum']:.6g}"
                if record["count"]
                else "count=0"
            )
        else:
            value = _format_value(record["value"])
        table.add_row(key, record["type"], value)
    return table.render()


def render_diff_table(a: dict[str, dict], b: dict[str, dict]) -> str:
    """Aligned before/after/delta rows for two loaded metrics files."""
    table = Table(["metric", "a", "b", "delta"])
    for key, va, vb, delta in diff_snapshots(a, b):
        sign = "+" if delta >= 0 else ""
        table.add_row(key, _format_value(va), _format_value(vb), sign + _format_value(delta))
    return table.render()


__all__ = [
    "SCHEMA_VERSION",
    "to_json",
    "write_metrics",
    "load_metrics",
    "aggregate_by_name",
    "diff_snapshots",
    "to_prometheus",
    "render_table",
    "render_diff_table",
    "Counter",
    "Gauge",
    "Histogram",
    "metric_id",
]
