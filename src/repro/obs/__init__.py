"""repro.obs — dependency-free observability for the DSH/SpMV stack.

Three layers (see docs/OBSERVABILITY.md for the metric-name catalogue):

* :mod:`~repro.obs.metrics` — Counter/Gauge/Histogram primitives and the
  process-wide, thread-safe :class:`MetricsRegistry`; pool workers record
  into per-worker registries that merge on join.
* :mod:`~repro.obs.trace` — span tracer (``with trace("stage", block=i):``)
  producing Chrome-trace-format JSON; off by default.
* :mod:`~repro.obs.export` — JSON / Prometheus-text / human-table
  exporters plus snapshot diffing and label aggregation.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    default_registry,
    enabled,
    gauge,
    histogram,
    metric_id,
    registry,
    scoped_registry,
    set_enabled,
)
from repro.obs.trace import (
    Tracer,
    disable_tracing,
    enable_tracing,
    scoped_tracer,
    trace,
    tracer,
    tracing_enabled,
    write_trace,
)
from repro.obs.export import (
    aggregate_by_name,
    diff_snapshots,
    load_metrics,
    render_diff_table,
    render_table,
    to_json,
    to_prometheus,
    write_metrics,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "registry",
    "default_registry",
    "scoped_registry",
    "set_enabled",
    "enabled",
    "metric_id",
    "Tracer",
    "trace",
    "tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "scoped_tracer",
    "write_trace",
    "aggregate_by_name",
    "diff_snapshots",
    "load_metrics",
    "render_table",
    "render_diff_table",
    "to_json",
    "to_prometheus",
    "write_metrics",
]
