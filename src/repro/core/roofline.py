"""Memory-bound SpMV roofline (paper Fig. 3).

"The state-of-art SpMV algorithms and libraries for a many-core
architecture can easily saturate all the DDR4 channels on a single die.
Thus, CPU SpMV performance is bounded by maximum memory bandwidth."

With 2 flops and ``bytes_per_nnz`` bytes of A-traffic per stored non-zero
(x and y reuse is absorbed into utilization), performance is simply
``2 x delivered_bandwidth / bytes_per_nnz``.
"""

from __future__ import annotations

from repro.memsys.dram import MemorySystem
from repro.sparse.csr import BYTES_PER_NNZ_CSR
from repro.sparse.spmv import FLOPS_PER_NNZ


def spmv_time_seconds(
    traffic_bytes: float, memory: MemorySystem, utilization: float = 1.0
) -> float:
    """Time to stream the matrix payload once."""
    return memory.transfer_seconds(traffic_bytes, utilization=utilization)


def spmv_gflops(
    nnz: int, traffic_bytes: float, memory: MemorySystem, utilization: float = 1.0
) -> float:
    """Achieved GFLOP/s for one SpMV whose A-traffic is ``traffic_bytes``."""
    if nnz < 0 or traffic_bytes < 0:
        raise ValueError("nnz and traffic must be non-negative")
    if traffic_bytes == 0:
        return 0.0
    t = spmv_time_seconds(traffic_bytes, memory, utilization)
    return FLOPS_PER_NNZ * nnz / t / 1e9


def max_uncompressed_gflops(memory: MemorySystem, utilization: float = 1.0) -> float:
    """The flat Fig. 3 line: peak SpMV on uncompressed 12 B/nnz CSR.

    100 GB/s DDR4 -> 16.7 GFLOP/s; 1 TB/s HBM2 -> 166.7 GFLOP/s.
    """
    return (
        FLOPS_PER_NNZ
        * memory.peak_bw
        * utilization
        / BYTES_PER_NNZ_CSR
        / 1e9
    )
