"""Accelerator attachment-point model: on-die UDP vs PCIe-attached devices.

Paper Section III-C: the UDP's DMA engine "acts as a traditional L2 agent
... This is very different from the memory integration in GPUs and
PCIe-attached FPGA accelerators, which maintains separate address space and
suffers from expensive off-chip data copy across address space." Section
VI-D cites Microsoft Xpress FPGA and Intel QuickAssist at "2-5 GB/s
compression throughput per device".

This module prices a decompression round-trip through each attachment
point, so the argument becomes a number:

* **on-die** — compressed blocks stream DRAM -> UDP over the on-die fabric
  (already inside the memory traffic we account), decompressed output goes
  straight to the CPU's cache hierarchy.
* **PCIe** — compressed data crosses the PCIe link to the device, the
  device decodes at its fixed rate, and the (larger!) decompressed output
  crosses back, all of it also touching DRAM on each side of the copy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.pipeline import MatrixCompression
from repro.memsys.dram import MemorySystem

#: PCIe Gen3 x8 effective payload bandwidth (typical for the cited devices).
PCIE_GEN3_X8_BW = 7.0e9
#: Device-side decompression rate band from the paper's §VI-D (2-5 GB/s).
XPRESS_LIKE_DEVICE_RATE = 4.0e9
#: Per-transfer descriptor/doorbell latency for a PCIe DMA.
PCIE_TRANSFER_LATENCY_S = 5e-6
#: Blocks are batched into large DMA transfers (drivers do); batch size.
PCIE_BATCH_BYTES = 1 << 20


@dataclass(frozen=True)
class AttachReport:
    """Decompression round-trip under one attachment point."""

    name: str
    seconds: float
    effective_output_rate: float
    dram_bytes: int

    def speedup_over(self, other: "AttachReport") -> float:
        if self.seconds == 0:
            return float("inf")
        return other.seconds / self.seconds


def on_die_udp(
    plan: MatrixCompression,
    memory: MemorySystem,
    udp_output_throughput: float,
) -> AttachReport:
    """On-die UDP: stream compressed from DRAM, decode at the UDP rate,
    hand decompressed blocks to the CPU on-die (no DRAM round trip)."""
    if udp_output_throughput <= 0:
        raise ValueError("udp_output_throughput must be positive")
    comp = plan.compressed_bytes
    out = plan.uncompressed_bytes
    stream_s = memory.transfer_seconds(comp)
    decode_s = out / udp_output_throughput
    # Streaming pipelines with decode; the slower stage dominates.
    seconds = max(stream_s, decode_s)
    return AttachReport(
        name="on-die UDP",
        seconds=seconds,
        effective_output_rate=out / seconds if seconds else 0.0,
        dram_bytes=comp,
    )


def pcie_attached(
    plan: MatrixCompression,
    memory: MemorySystem,
    device_rate: float = XPRESS_LIKE_DEVICE_RATE,
    link_bw: float = PCIE_GEN3_X8_BW,
    transfer_latency_s: float = PCIE_TRANSFER_LATENCY_S,
) -> AttachReport:
    """PCIe-attached compression device (Xpress/QuickAssist class).

    Separate address space: compressed input is read from DRAM and pushed
    over the link; decompressed output comes back over the link and is
    written to DRAM, then read again by the CPU for the actual compute.
    """
    if device_rate <= 0 or link_bw <= 0:
        raise ValueError("rates must be positive")
    comp = plan.compressed_bytes
    out = plan.uncompressed_bytes
    # Link: compressed out, decompressed back — the return leg dominates.
    link_s = comp / link_bw + out / link_bw
    decode_s = out / device_rate
    # DRAM: read compressed, write decompressed, read it again for compute.
    dram_bytes = comp + 2 * out
    dram_s = memory.transfer_seconds(dram_bytes)
    # Descriptor latency per batched DMA transfer, each direction.
    nbatches = max(1, -(-comp // PCIE_BATCH_BYTES)) + max(1, -(-out // PCIE_BATCH_BYTES))
    latency_s = transfer_latency_s * nbatches
    seconds = max(link_s, decode_s, dram_s) + latency_s
    return AttachReport(
        name="PCIe device",
        seconds=seconds,
        effective_output_rate=out / seconds if seconds else 0.0,
        dram_bytes=dram_bytes,
    )
