"""The paper's primary contribution: the CPU-UDP heterogeneous system model.

* :mod:`~repro.core.roofline` — memory-bandwidth-bound SpMV performance
  (paper Fig. 3: CPU SpMV saturates DRAM, so GFLOP/s = 2 x BW / 12).
* :mod:`~repro.core.hetero` — the three Fig. 14/15 scenarios: Max
  Uncompressed, Decomp(CPU)+SpMV, Decomp(UDP+CPU).
* :mod:`~repro.core.power` — Fig. 16/17 iso-performance memory power
  savings, net of UDP power.
* :mod:`~repro.core.spmv_pipeline` — the functional end-to-end executor of
  Figs. 6-7: stream compressed blocks, recode, multiply; verifies numerics
  and counts every byte of traffic.
"""

from repro.core.attach import AttachReport, on_die_udp, pcie_attached
from repro.core.executor import (
    BlockAccumulator,
    DEFAULT_DEPTH,
    MmapBlockSource,
    PlanBlockSource,
    RunCancelled,
    RunCounters,
    run_pipelined,
    run_sharded,
    shard_ranges,
)
from repro.core.hetero import HeterogeneousSystem, ScenarioResult, SpMVComparison
from repro.core.pipeline_timing import PipelineTiming, simulate_recoded_spmv_timing
from repro.core.power import PowerScenario, iso_performance_power
from repro.core.roofline import max_uncompressed_gflops, spmv_gflops, spmv_time_seconds
from repro.core.session import ExecutionSession
from repro.core.spmv_pipeline import PipelineStats, recoded_spmm, recoded_spmv

__all__ = [
    "AttachReport",
    "on_die_udp",
    "pcie_attached",
    "HeterogeneousSystem",
    "ScenarioResult",
    "SpMVComparison",
    "PowerScenario",
    "iso_performance_power",
    "PipelineTiming",
    "simulate_recoded_spmv_timing",
    "max_uncompressed_gflops",
    "spmv_gflops",
    "spmv_time_seconds",
    "ExecutionSession",
    "PipelineStats",
    "recoded_spmv",
    "recoded_spmm",
    "BlockAccumulator",
    "DEFAULT_DEPTH",
    "MmapBlockSource",
    "PlanBlockSource",
    "RunCancelled",
    "RunCounters",
    "run_pipelined",
    "run_sharded",
    "shard_ranges",
]
