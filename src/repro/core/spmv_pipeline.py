"""Functional end-to-end recoded SpMV/SpMM (paper Figs. 6-7).

``y = A @ x`` where A lives in DRAM as a DSH-compressed block plan:

1. the DMA engine streams each block's compressed records into UDP local
   memory (traffic edge ``dram -> udp``);
2. the UDP recodes them back to raw CSR block streams (``recode(DSH_unpack,
   ...)`` in the paper's listing) — functionally here, with an option to
   run the actual cycle-level UDP programs;
3. the CPU multiplies the block (traffic edge ``udp -> cpu``).

Two execution modes share one contract:

* ``mode="serial"`` — decode block *i*, multiply block *i*, advance. The
  original executor; also the reference the pipelined mode is tested
  bit-exactly against.
* ``mode="pipelined"`` — the paper's overlap (UDP recodes block *i+1*
  while the CPU multiplies block *i*): block decodes are submitted
  asynchronously to a :class:`~repro.codecs.engine.RecodeEngine` pool
  with bounded prefetch ``depth``, and decoded blocks multiply as they
  complete. See :mod:`repro.core.executor`. Result vector, TrafficLog
  byte totals, ``dma_seconds``, degraded-block accounting, and raised
  error types are all bit-identical to serial.

:func:`recoded_spmm` fuses multiple right-hand sides: each block is
streamed and decoded **once** and multiplied against all ``k`` columns,
so A-traffic is paid once instead of ``k`` times.

Besides the numerically verified result, the run produces a
:class:`PipelineStats` whose traffic log proves the headline byte claim:
DRAM traffic for A shrinks by the compression ratio.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from os import PathLike

import numpy as np

from repro import obs
from repro.codecs.container import ContainerReader
from repro.codecs.engine import RecodeEngine
from repro.codecs.errors import BlockDecodeError, CodecError
from repro.codecs.pipeline import MatrixCompression
from repro.core.executor import (
    DEFAULT_DEPTH,
    MmapBlockSource,
    PlanBlockSource,
    RunCancelled,
    RunCounters,
    run_pipelined,
    run_sharded,
)
from repro.memsys.dma import DMAEngine
from repro.memsys.dram import DDR4_100GBS, MemorySystem
from repro.memsys.traffic import TrafficLog
from repro.sparse.blocked import CSRBlock
from repro.sparse.spmm import spmm_blocked
from repro.sparse.spmv import spmv_blocked
from repro.udp.lane import Lane
from repro.udp.runtime import DecoderToolchain

#: Execution modes accepted by :func:`recoded_spmv` / :func:`recoded_spmm`.
MODES = ("serial", "pipelined")


@dataclass(frozen=True)
class PipelineStats:
    """Byte accounting for one recoded SpMV/SpMM."""

    traffic: TrafficLog
    dram_bytes: int
    baseline_dram_bytes: int
    dma_seconds: float
    #: Snapshot of the recode engine's cumulative counters (blocks decoded,
    #: cache hits, workers, MB/s, ...) when one drove the decode; else None.
    engine_stats: dict | None = None
    #: Failure policy the run executed under (``strict`` | ``degrade``).
    policy: str = "strict"
    #: Blocks whose decode failed and were substituted from the retained
    #: raw CSR partition (``degrade`` policy only). The result is still
    #: bit-exact — the substitution streams raw bytes, costing compression
    #: benefit, not correctness.
    degraded_blocks: int = 0
    #: Executor that produced this run (``serial`` | ``pipelined`` |
    #: ``sharded``).
    mode: str = "serial"
    #: Right-hand-side count: 1 for SpMV, ``k`` for fused SpMM.
    nrhs: int = 1
    #: Out-of-core measurements when the run streamed an mmap-backed
    #: container (bytes mapped, pages touched, shard wall seconds/skew);
    #: None for in-memory plans.
    oocore: dict | None = None

    @property
    def traffic_ratio(self) -> float:
        """Compressed DRAM traffic / baseline (≈ bytes_per_nnz / 12).

        Degraded blocks stream their raw CSR bytes and are counted, so a
        degraded run honestly reports its reduced compression benefit.
        """
        if self.baseline_dram_bytes == 0:
            return 1.0
        return self.dram_bytes / self.baseline_dram_bytes


def _validate(
    policy: str, mode: str, depth: int, engine, use_udp_simulator: bool
) -> None:
    if policy not in ("strict", "degrade"):
        raise ValueError(f"policy must be 'strict' or 'degrade', got {policy!r}")
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if mode == "pipelined":
        if engine is None:
            raise ValueError("mode='pipelined' requires a RecodeEngine")
        if use_udp_simulator:
            raise ValueError(
                "mode='pipelined' cannot run the cycle-level UDP simulator; "
                "use mode='serial' with use_udp_simulator=True"
            )
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")


def _validate_shards(
    shards: int, reader, mode: str, engine, use_udp_simulator: bool
) -> None:
    if shards < 0:
        raise ValueError(f"shards must be >= 0, got {shards}")
    if shards == 0:
        return
    if reader is None or reader.path is None:
        raise ValueError(
            "shards>0 needs a path-backed container: pass a .dsh path or a "
            "ContainerReader opened from one (workers re-map the file)"
        )
    if mode == "pipelined":
        raise ValueError("shards>0 is its own executor; use mode='serial'")
    if engine is not None:
        raise ValueError("shards>0 decodes in shard workers; engine must be None")
    if use_udp_simulator:
        raise ValueError("shards>0 cannot run the cycle-level UDP simulator")


def _resolve(
    plan: "MatrixCompression | ContainerReader | str | PathLike",
) -> tuple[MatrixCompression, ContainerReader | None, bool]:
    """Normalize the ``plan`` argument to ``(plan, reader, owned_reader)``.

    A path opens a lazy-verify :class:`ContainerReader` that the run owns
    (and closes); a reader is borrowed; an in-memory plan passes through.
    """
    if isinstance(plan, MatrixCompression):
        return plan, None, False
    if isinstance(plan, ContainerReader):
        return plan.plan(), plan, False
    if isinstance(plan, (str, PathLike)):
        reader = ContainerReader(plan, verify="lazy")
        return reader.plan(), reader, True
    raise TypeError(
        "plan must be a MatrixCompression, a ContainerReader, or a .dsh "
        f"path, got {type(plan).__name__}"
    )


def _execute(
    plan: MatrixCompression,
    x: np.ndarray,
    *,
    memory: MemorySystem,
    use_udp_simulator: bool,
    engine: RecodeEngine | None,
    matrix_id: str,
    policy: str,
    mode: str,
    depth: int,
    kernel,
    prefix: str,
    nrhs: int,
    reader: ContainerReader | None = None,
    shards: int = 0,
    cancel=None,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, PipelineStats]:
    """Shared executor body for recoded SpMV (``prefix="spmv"``, 1-D ``x``)
    and fused SpMM (``prefix="spmm"``, 2-D ``x``).

    ``out`` is an optional preallocated accumulator (zero-filled by the
    executor) that sessions reuse across iterations; results are
    bit-identical with or without it.
    """
    _validate(policy, mode, depth, engine, use_udp_simulator)
    _validate_shards(shards, reader, mode, engine, use_udp_simulator)
    if cancel is not None and shards:
        raise ValueError(
            "cancel is cooperative per-block and cannot reach shard worker "
            "processes; use shards=0"
        )
    source = MmapBlockSource(reader, plan) if reader is not None else PlanBlockSource(plan)
    pages_before = source.pages_touched
    log = TrafficLog()
    dma = DMAEngine(memory, log=log)
    dma_seconds = 0.0
    start = time.perf_counter()
    counters = RunCounters()
    oocore_info: dict | None = None

    if shards:
        n = plan.blocked.shape[1]
        if x.ndim == 1 and x.shape[0] != n:
            raise ValueError(f"x must have shape ({n},), got {x.shape}")
        with obs.trace(
            f"{prefix}.recoded",
            nblocks=plan.nblocks,
            matrix=matrix_id,
            mode="sharded",
        ):
            y, dma_seconds, oocore_info = run_sharded(
                reader,
                x,
                shards=shards,
                memory=memory,
                log=log,
                policy=policy,
                counters=counters,
                out=out,
            )
    elif mode == "pipelined":
        with obs.trace(
            f"{prefix}.recoded", nblocks=plan.nblocks, matrix=matrix_id, mode=mode
        ):
            y, dma_seconds = run_pipelined(
                plan,
                x,
                memory=memory,
                dma=dma,
                log=log,
                engine=engine,
                matrix_id=matrix_id,
                policy=policy,
                depth=depth,
                counters=counters,
                source=source,
                cancel=cancel,
                out=out,
            )
    else:
        toolchain = DecoderToolchain(plan) if use_udp_simulator else None
        lane = Lane() if use_udp_simulator else None

        def decode_one(i: int, idx_rec, val_rec) -> CSRBlock:
            """Decode one block from its (DMA-streamed) records; raises
            CodecError on failure."""
            if toolchain is not None:
                idx_chain = toolchain.run_chain(i, "index", lane=lane)
                val_chain = toolchain.run_chain(i, "value", lane=lane)
                if not (idx_chain.verified and val_chain.verified):
                    raise BlockDecodeError(
                        f"UDP decode failed verification at block {i}", block_id=i
                    )
                ref = plan.blocked.blocks[i]
                return CSRBlock(
                    row_start=ref.row_start,
                    row_end=ref.row_end,
                    row_ptr=ref.row_ptr,
                    col_idx=np.frombuffer(idx_chain.output, dtype="<i4"),
                    val=np.frombuffer(val_chain.output, dtype="<f8"),
                    nnz_start=ref.nnz_start,
                    leading_partial=ref.leading_partial,
                )
            streamed_faulty = (
                idx_rec is not plan.index_records[i]
                or val_rec is not plan.value_records[i]
            )
            if engine is not None and not streamed_faulty:
                return engine.decode_block(plan, i, matrix_id=matrix_id)
            # A DRAM-side fault corrupted the streamed copy: decode exactly
            # what arrived (never the engine's cached/pristine view).
            return plan.decompress_block(i, index_record=idx_rec, value_record=val_rec)

        def recode(_stored: CSRBlock) -> CSRBlock:
            if cancel is not None and cancel():
                raise RunCancelled(blocks_done=counters.blocks_started)
            i = counters.next_block()
            idx_rec = memory.stream_record(plan.index_records[i], i, "index")
            val_rec = memory.stream_record(plan.value_records[i], i, "value")
            nonlocal dma_seconds
            with obs.trace(f"{prefix}.block", block=i):
                dma_seconds += dma.transfer(
                    idx_rec.stored_bytes, "dram", "udp"
                ).seconds
                dma_seconds += dma.transfer(
                    val_rec.stored_bytes, "dram", "udp"
                ).seconds
                try:
                    block = decode_one(i, idx_rec, val_rec)
                except CodecError as exc:
                    if policy == "strict":
                        if isinstance(exc, BlockDecodeError):
                            raise
                        raise BlockDecodeError(
                            f"block {i} failed to decode: {exc}", block_id=i
                        ) from exc
                    # degrade: substitute the source's pristine raw block —
                    # the retained CSR partition for in-memory plans, an
                    # on-demand decode of the pristine mapped records for
                    # mmap-backed ones. Result stays bit-exact either way;
                    # the block streams uncompressed.
                    counters.add_degraded()
                    block = source.raw_block(i)
                    dma_seconds += dma.transfer(
                        12 * block.nnz, "dram", "cpu"
                    ).seconds
                    obs.registry().counter("spmv.degraded_blocks").inc()
                    return block
                log.record("udp", "cpu", 12 * block.nnz)
            return block

        with obs.trace(f"{prefix}.recoded", nblocks=plan.nblocks, matrix=matrix_id):
            y = kernel(plan.blocked, x, recode=recode, out=out)

    if reader is not None and oocore_info is None:
        oocore_info = {
            "shards": 0,
            "mapped_bytes": source.mapped_bytes,
            "pages_touched": source.pages_touched - pages_before,
            "shard_seconds": [],
            "shard_skew": 1.0,
        }
    stats = PipelineStats(
        traffic=log,
        dram_bytes=log.bytes_on("dram", "udp") + log.bytes_on("dram", "cpu"),
        baseline_dram_bytes=12 * plan.nnz,
        dma_seconds=dma_seconds,
        engine_stats=engine.stats.as_dict() if engine is not None else None,
        policy=policy,
        degraded_blocks=counters.degraded,
        mode="sharded" if shards else mode,
        nrhs=nrhs,
        oocore=oocore_info,
    )
    reg = obs.registry()
    if oocore_info is not None:
        reg.counter(f"{prefix}.oocore.runs").inc()
        reg.counter(f"{prefix}.oocore.bytes_mapped").inc(oocore_info["mapped_bytes"])
        reg.counter(f"{prefix}.oocore.pages_touched").inc(
            oocore_info["pages_touched"]
        )
        if shards:
            reg.counter(f"{prefix}.oocore.shards").inc(oocore_info["shards"])
            reg.gauge(f"{prefix}.oocore.shard_skew").set(oocore_info["shard_skew"])
    reg.counter(f"{prefix}.iterations").inc()
    reg.counter(f"{prefix}.blocks").inc(plan.nblocks)
    reg.counter(f"{prefix}.nnz").inc(plan.nnz)
    reg.counter(f"{prefix}.flops").inc(2 * nrhs * plan.nnz)
    reg.counter(f"{prefix}.bytes.dram_to_udp").inc(log.bytes_on("dram", "udp"))
    reg.counter(f"{prefix}.bytes.udp_to_cpu").inc(log.bytes_on("udp", "cpu"))
    reg.counter(f"{prefix}.bytes.baseline").inc(stats.baseline_dram_bytes)
    reg.counter(f"{prefix}.dma_seconds").inc(dma_seconds)
    reg.gauge(f"{prefix}.traffic_ratio").set(stats.traffic_ratio)
    if counters.degraded:
        reg.counter(f"{prefix}.degraded_iterations").inc()
    reg.histogram(f"{prefix}.seconds").observe(time.perf_counter() - start)
    return y, stats


def recoded_spmv(
    plan: "MatrixCompression | ContainerReader | str | PathLike",
    x: np.ndarray,
    memory: MemorySystem = DDR4_100GBS,
    use_udp_simulator: bool = False,
    engine: RecodeEngine | None = None,
    matrix_id: str = "",
    policy: str = "strict",
    mode: str = "serial",
    depth: int = DEFAULT_DEPTH,
    shards: int = 0,
    cancel=None,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, PipelineStats]:
    """Execute ``y = A @ x`` over the compressed plan.

    Args:
        plan: compressed matrix — an in-memory
            :class:`~repro.codecs.pipeline.MatrixCompression`, an open
            :class:`~repro.codecs.container.ContainerReader`, or a ``.dsh``
            path (opened lazily-verified and mmap-streamed; the run owns
            and closes the mapping).
        x: dense input vector.
        memory: memory system for DMA timing/energy.
        use_udp_simulator: decode blocks with the cycle-level UDP programs
            (slow, bit-exact) instead of the functional decoders.
            ``mode="serial"`` only.
        engine: route block decodes through a
            :class:`~repro.codecs.engine.RecodeEngine`. With a cache
            attached, iterative solvers (PageRank, heat stepping) hit
            already-decoded blocks — the software analogue of the paper's
            steady-state UDP loop — and the returned stats carry the
            engine's counters. Ignored when ``use_udp_simulator`` is set.
        matrix_id: cache namespace for this matrix (pass a stable name when
            re-running SpMV over the same plan).
        policy: what a block decode failure does. ``"strict"`` (default)
            raises the underlying
            :class:`~repro.codecs.errors.BlockDecodeError` naming the
            block. ``"degrade"`` substitutes the failed block from the
            plan's retained raw CSR partition — the result stays
            bit-exact; the substituted block just streams uncompressed
            (counted in ``stats.degraded_blocks`` and the traffic ratio).
        mode: ``"serial"`` decodes then multiplies block by block;
            ``"pipelined"`` overlaps decode with multiply by prefetching
            block decodes through the engine pool (requires ``engine``).
            Both modes produce bit-identical results, traffic, and errors.
        depth: pipelined prefetch depth — max decode chunk tasks in
            flight (``mode="pipelined"`` only).
        shards: split the container into this many contiguous block
            shards and scatter-gather them over worker processes, each
            mapping the file independently (``y`` stays bit-identical to
            serial). Requires a path-backed container; incompatible with
            ``engine`` / ``mode="pipelined"`` / ``use_udp_simulator``.
        cancel: optional zero-arg callable polled at every block
            boundary; returning True abandons the run with
            :class:`~repro.core.executor.RunCancelled` (deadline-bound
            callers — the serve layer — use this to stop a request past
            its deadline from borrowing further decode/DMA capacity).
            Incompatible with ``shards`` (workers cannot poll it).
        out: optional preallocated ``(nrows,)`` float64 accumulator,
            zero-filled and returned as ``y`` — lets iterative callers
            (:class:`~repro.core.session.ExecutionSession`) reuse one
            buffer across calls with bit-identical results.

    Returns:
        ``(y, stats)``.
    """
    plan, reader, owned = _resolve(plan)
    try:
        return _execute(
            plan,
            x,
            memory=memory,
            use_udp_simulator=use_udp_simulator,
            engine=engine,
            matrix_id=matrix_id,
            policy=policy,
            mode=mode,
            depth=depth,
            kernel=spmv_blocked,
            prefix="spmv",
            nrhs=1,
            reader=reader,
            shards=shards,
            cancel=cancel,
            out=out,
        )
    finally:
        if owned:
            reader.close()


def recoded_spmm(
    plan: "MatrixCompression | ContainerReader | str | PathLike",
    x: np.ndarray,
    memory: MemorySystem = DDR4_100GBS,
    engine: RecodeEngine | None = None,
    matrix_id: str = "",
    policy: str = "strict",
    mode: str = "serial",
    depth: int = DEFAULT_DEPTH,
    shards: int = 0,
    cancel=None,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, PipelineStats]:
    """Execute fused ``Y = A @ X`` for ``k`` right-hand sides.

    Each block is streamed from DRAM and decoded exactly **once**, then
    multiplied against all ``k`` columns of ``X`` — so the A-side DRAM
    traffic (and decode work) of a ``k``-column multiply equals one SpMV's,
    instead of ``k`` separate SpMVs'. Column ``j`` of the result is
    bit-identical to ``recoded_spmv(plan, X[:, j])``.

    Accepts the same ``engine`` / ``matrix_id`` / ``policy`` / ``mode`` /
    ``depth`` / ``shards`` knobs (and the same polymorphic ``plan``) as
    :func:`recoded_spmv`; metrics are recorded under the ``spmm.*`` prefix
    with ``flops = 2 * k * nnz``.

    Returns:
        ``(Y, stats)`` with ``Y.shape == (nrows, k)`` and
        ``stats.nrhs == k``.
    """
    plan, reader, owned = _resolve(plan)
    try:
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] != plan.blocked.shape[1]:
            raise ValueError(
                f"X must have shape ({plan.blocked.shape[1]}, k), got {x.shape}"
            )
        return _execute(
            plan,
            x,
            memory=memory,
            use_udp_simulator=False,
            engine=engine,
            matrix_id=matrix_id,
            policy=policy,
            mode=mode,
            depth=depth,
            kernel=spmm_blocked,
            prefix="spmm",
            nrhs=int(x.shape[1]),
            reader=reader,
            shards=shards,
            cancel=cancel,
            out=out,
        )
    finally:
        if owned:
            reader.close()
