"""Discrete-event timing of the recoded SpMV pipeline (paper Fig. 6).

The analytic Fig. 14 model says compressed-SpMV throughput equals the
compression ratio times the roofline. This module *derives* that result
from block-level simulation instead of assuming it: every block's two
records flow through three resources —

1. the **DRAM channel** (serial, at peak bandwidth) streams the compressed
   records;
2. a **UDP lane pool** (64 lanes per accelerator instance) decodes each
   record, taking its simulated cycle count;
3. the **CPU** multiplies the decompressed block (2 flops/nnz at the
   machine's aggregate FLOP rate).

The makespan attributes the bottleneck: DRAM-bound when the UDPs keep up
(the paper's operating point), UDP-bound when under-provisioned. Agreement
between this simulation and the analytic model is checked in
``abl_des`` / tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.codecs.pipeline import MatrixCompression
from repro.memsys.dram import MemorySystem
from repro.sparse.spmv import FLOPS_PER_NNZ
from repro.udp.machine import UDP_CLOCK_HZ, UDP_LANES
from repro.udp.runtime import UDPDecodeReport

#: Aggregate CPU FLOP rate (32 threads x 2.3 GHz x 2 flops sustained) —
#: comfortably above the roofline, as in the paper's model where compute
#: is never the limit.
DEFAULT_CPU_FLOPS = 32 * 2.3e9 * 2


@dataclass(frozen=True)
class PipelineTiming:
    """Result of one discrete-event run.

    ``busy_s`` is raw resource-seconds; the UDP entry sums over all lanes,
    so loads are compared after normalizing by pool capacity.
    """

    makespan_s: float
    gflops: float
    busy_s: dict[str, float]
    n_udp: int
    nlanes: int

    def normalized_load_s(self, resource: str) -> float:
        """Busy time divided by the resource's parallel capacity."""
        capacity = self.nlanes if resource == "udp" else 1
        return self.busy_s[resource] / capacity

    @property
    def bottleneck(self) -> str:
        """The resource with the highest capacity-normalized load."""
        return max(self.busy_s, key=self.normalized_load_s)

    def utilization(self, resource: str) -> float:
        if self.makespan_s == 0:
            return 0.0
        return self.normalized_load_s(resource) / self.makespan_s


def simulate_recoded_spmv_timing(
    plan: MatrixCompression,
    udp_report: UDPDecodeReport,
    memory: MemorySystem,
    n_udp: int = 1,
    lanes_per_udp: int = UDP_LANES,
    clock_hz: float = UDP_CLOCK_HZ,
    cpu_flops: float = DEFAULT_CPU_FLOPS,
) -> PipelineTiming:
    """Run the three-stage pipeline for every block of ``plan``.

    Args:
        plan: the compressed matrix.
        udp_report: supplies per-record decode cycle counts (its ``tasks``
            align index/value records per block).
        memory: DRAM channel model.
        n_udp: UDP accelerator instances (64 lanes each).
        lanes_per_udp / clock_hz: accelerator configuration.
        cpu_flops: aggregate CPU multiply rate.

    Raises:
        ValueError: if the report's task list doesn't match the plan.
    """
    if len(udp_report.tasks) != 2 * plan.nblocks:
        raise ValueError("udp_report does not match plan block count")
    if n_udp < 1:
        raise ValueError("need at least one UDP")

    nlanes = n_udp * lanes_per_udp
    lane_heap = [0.0] * nlanes
    heapq.heapify(lane_heap)

    dram_free = 0.0
    cpu_free = 0.0
    busy = {"dram": 0.0, "udp": 0.0, "cpu": 0.0}
    makespan = 0.0

    for i in range(plan.nblocks):
        block = plan.blocked.blocks[i]
        decode_done = 0.0
        for rec, task in (
            (plan.index_records[i], udp_report.tasks[2 * i]),
            (plan.value_records[i], udp_report.tasks[2 * i + 1]),
        ):
            # DRAM: serial channel streaming this record.
            xfer = memory.transfer_seconds(rec.stored_bytes)
            dma_start = dram_free
            dma_end = dma_start + xfer
            dram_free = dma_end
            busy["dram"] += xfer

            # UDP: earliest-free lane, not before the DMA lands.
            lane_free = heapq.heappop(lane_heap)
            decode_s = task.cycles / clock_hz
            start = max(lane_free, dma_end)
            end = start + decode_s
            heapq.heappush(lane_heap, end)
            busy["udp"] += decode_s
            decode_done = max(decode_done, end)

        # CPU: multiply once both streams are decoded.
        compute_s = FLOPS_PER_NNZ * block.nnz / cpu_flops
        cpu_start = max(cpu_free, decode_done)
        cpu_free = cpu_start + compute_s
        busy["cpu"] += compute_s
        makespan = max(makespan, cpu_free)

    total_flops = FLOPS_PER_NNZ * plan.nnz
    gflops = total_flops / makespan / 1e9 if makespan else 0.0
    return PipelineTiming(
        makespan_s=makespan, gflops=gflops, busy_s=busy, n_udp=n_udp, nlanes=nlanes
    )
