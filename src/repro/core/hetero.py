"""The heterogeneous CPU-UDP system: the three Fig. 14/15 scenarios.

Per matrix, on a given memory system (DDR4 100 GB/s or HBM2 1 TB/s):

* **Max Uncompressed** — CPU-only SpMV on 12 B/nnz CSR at peak bandwidth.
* **Decomp(UDP+CPU)** — the matrix streams compressed; UDP accelerators
  decompress at line rate (the architecture instantiates as many 64-lane
  UDPs as the stream requires — each is ~0.13% of a modern chip), and the
  CPU multiplies uncompressed blocks. Delivered uncompressed-equivalent
  bandwidth is peak_bw x (12 / bytes_per_nnz), so speedup over the baseline
  is exactly the compression ratio — the paper's geometric-mean 2.4x.
* **Decomp(CPU)+SpMV** — the CPU itself must undo the encoding before
  multiplying. Decompression throughput comes from the branch-predictor
  pipeline model; decompression and the (memory-bound) multiply pipeline
  serially, so the rates combine harmonically. This is the ">30x slower"
  bar that makes CPU-side recoding infeasible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.codecs.pipeline import MatrixCompression
from repro.core.roofline import max_uncompressed_gflops
from repro.cpu.recoder import CPURecodeReport
from repro.memsys.dram import MemorySystem
from repro.sparse.csr import BYTES_PER_NNZ_CSR
from repro.sparse.spmv import FLOPS_PER_NNZ
from repro.udp.machine import UDP_POWER_W
from repro.udp.runtime import UDPDecodeReport


@dataclass(frozen=True)
class ScenarioResult:
    """SpMV performance under one scenario.

    Attributes:
        name: scenario label (matches the paper's legend).
        gflops: achieved SpMV rate.
        delivered_uncompressed_rate: uncompressed-equivalent bytes/s of A
            reaching the multiplier.
        n_udp: number of 64-lane UDP accelerators instantiated (0 if none).
        udp_power_w: total UDP power (W).
    """

    name: str
    gflops: float
    delivered_uncompressed_rate: float
    n_udp: int = 0
    udp_power_w: float = 0.0


@dataclass(frozen=True)
class SpMVComparison:
    """All three scenarios for one matrix on one memory system."""

    matrix_name: str
    memory: MemorySystem
    bytes_per_nnz: float
    uncompressed: ScenarioResult
    udp_cpu: ScenarioResult
    cpu_decomp: ScenarioResult

    @property
    def udp_speedup(self) -> float:
        """Decomp(UDP+CPU) over Max Uncompressed — the headline 2.4x."""
        return self.udp_cpu.gflops / self.uncompressed.gflops

    @property
    def cpu_slowdown(self) -> float:
        """Max Uncompressed over Decomp(CPU) — the >30x infeasibility gap."""
        if self.cpu_decomp.gflops == 0:
            return math.inf
        return self.uncompressed.gflops / self.cpu_decomp.gflops


class HeterogeneousSystem:
    """A memory system + CPU + (as many as needed) UDP accelerators."""

    def __init__(self, memory: MemorySystem, utilization: float = 1.0):
        if not 0 < utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")
        self.memory = memory
        self.utilization = utilization

    # -- scenarios ------------------------------------------------------------

    def spmv_uncompressed(self, nnz: int) -> ScenarioResult:
        """Max Uncompressed: the Fig. 3 flat line."""
        rate = self.memory.peak_bw * self.utilization
        return ScenarioResult(
            name="Max Uncompressed",
            gflops=max_uncompressed_gflops(self.memory, self.utilization),
            delivered_uncompressed_rate=rate,
        )

    def spmv_udp(self, plan: MatrixCompression, udp_report: UDPDecodeReport) -> ScenarioResult:
        """Decomp(UDP+CPU): compressed stream at line rate, UDPs sized to
        keep up with the decompressed output rate."""
        ratio = self._expansion_ratio(plan)
        compressed_rate = self.memory.peak_bw * self.utilization
        delivered = compressed_rate * ratio
        per_udp = udp_report.throughput_bytes_per_s
        if per_udp <= 0:
            raise ValueError("UDP report shows zero throughput")
        n_udp = max(1, math.ceil(delivered / per_udp))
        gflops = (
            FLOPS_PER_NNZ * delivered / BYTES_PER_NNZ_CSR / 1e9
        )
        return ScenarioResult(
            name="Decomp(UDP+CPU)",
            gflops=gflops,
            delivered_uncompressed_rate=delivered,
            n_udp=n_udp,
            udp_power_w=n_udp * UDP_POWER_W,
        )

    def spmv_cpu_decomp(
        self, plan: MatrixCompression, cpu_report: CPURecodeReport
    ) -> ScenarioResult:
        """Decomp(CPU)+SpMV: the CPU's decompression rate pipelines
        serially with the memory-bound multiply (harmonic combination)."""
        ratio = self._expansion_ratio(plan)
        mem_limited = self.memory.peak_bw * self.utilization * ratio
        cpu_rate = cpu_report.throughput_bytes_per_s
        if cpu_rate <= 0:
            delivered = 0.0
        else:
            delivered = 1.0 / (1.0 / cpu_rate + 1.0 / mem_limited)
        gflops = FLOPS_PER_NNZ * delivered / BYTES_PER_NNZ_CSR / 1e9
        return ScenarioResult(
            name="Decomp(CPU)+SpMV",
            gflops=gflops,
            delivered_uncompressed_rate=delivered,
        )

    def compare(
        self,
        matrix_name: str,
        plan: MatrixCompression,
        udp_report: UDPDecodeReport,
        cpu_report: CPURecodeReport,
    ) -> SpMVComparison:
        """All three Fig. 14/15 bars for one matrix."""
        return SpMVComparison(
            matrix_name=matrix_name,
            memory=self.memory,
            bytes_per_nnz=plan.bytes_per_nnz,
            uncompressed=self.spmv_uncompressed(plan.nnz),
            udp_cpu=self.spmv_udp(plan, udp_report),
            cpu_decomp=self.spmv_cpu_decomp(plan, cpu_report),
        )

    @staticmethod
    def _expansion_ratio(plan: MatrixCompression) -> float:
        """Uncompressed bytes per compressed byte (= 12 / bytes_per_nnz)."""
        if plan.compressed_bytes <= 0:
            raise ValueError("plan has no compressed payload")
        return plan.uncompressed_bytes / plan.compressed_bytes
