"""Iso-performance memory power savings (paper Figs. 16-17).

"Another way to exploit the new capabilities of the heterogeneous
architecture is to maintain performance, but reduce the memory system
power." Holding the delivered (uncompressed-equivalent) bandwidth fixed at
B, the DRAM only needs to stream ``B x bytes_per_nnz / 12``; the raw power
saving is the difference, and the net saving subtracts the power of the
UDPs required to decode at rate B ("sufficient number of UDP's to meet the
desired memory rate").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.codecs.pipeline import MatrixCompression
from repro.memsys.dram import MemorySystem
from repro.udp.machine import UDP_POWER_W


@dataclass(frozen=True)
class PowerScenario:
    """Fig. 16/17 row for one matrix on one memory system.

    Attributes:
        matrix_name: label.
        memory: the memory system.
        bytes_per_nnz: compressed size metric.
        baseline_power_w: memory power at full uncompressed rate (80 W DDR4,
            64 W HBM2).
        compressed_power_w: memory power streaming the compressed form.
        raw_saving_w: baseline - compressed.
        n_udp: UDP accelerators needed to decode at the delivered rate.
        udp_power_w: their total power.
    """

    matrix_name: str
    memory: MemorySystem
    bytes_per_nnz: float
    baseline_power_w: float
    compressed_power_w: float
    raw_saving_w: float
    n_udp: int
    udp_power_w: float

    @property
    def net_saving_w(self) -> float:
        """Raw memory saving minus UDP power — the paper's "net power
        benefit" bars."""
        return self.raw_saving_w - self.udp_power_w

    @property
    def saving_fraction(self) -> float:
        """Net saving over baseline (paper headline: 63% DDR4, 51% HBM2)."""
        if self.baseline_power_w == 0:
            return 0.0
        return self.net_saving_w / self.baseline_power_w


def iso_performance_power(
    matrix_name: str,
    plan: MatrixCompression,
    memory: MemorySystem,
    udp_output_throughput: float,
    delivered_rate: float | None = None,
) -> PowerScenario:
    """Compute the iso-performance power scenario for one matrix.

    Args:
        matrix_name: label for the report row.
        plan: the compressed matrix (supplies bytes/nnz).
        memory: DDR4 or HBM2 model.
        udp_output_throughput: decompressed-output rate of one 64-lane UDP
            (from :func:`repro.udp.runtime.simulate_plan`), bytes/s.
        delivered_rate: the uncompressed-equivalent bandwidth to hold
            constant; defaults to the memory system's peak (same SpMV
            performance as the uncompressed baseline).

    Raises:
        ValueError: on non-positive throughput or an empty plan.
    """
    if udp_output_throughput <= 0:
        raise ValueError("udp_output_throughput must be positive")
    if plan.nnz == 0:
        raise ValueError("plan has no payload")
    base_rate = delivered_rate if delivered_rate is not None else memory.peak_bw
    ratio = plan.bytes_per_nnz / 12.0
    compressed_rate = base_rate * ratio
    baseline_power = memory.power_at_rate(base_rate)
    compressed_power = memory.power_at_rate(compressed_rate)
    n_udp = max(1, math.ceil(base_rate / udp_output_throughput))
    return PowerScenario(
        matrix_name=matrix_name,
        memory=memory,
        bytes_per_nnz=plan.bytes_per_nnz,
        baseline_power_w=baseline_power,
        compressed_power_w=compressed_power,
        raw_saving_w=baseline_power - compressed_power,
        n_udp=n_udp,
        udp_power_w=n_udp * UDP_POWER_W,
    )
