"""Persistent execution sessions: steady-state SpMV/SpMM over one plan.

Every :func:`~repro.core.spmv_pipeline.recoded_spmv` call is single-shot:
it re-pays pool spin-up, reader structural walks, row-index
materialization, per-record CRC checks, and a fresh output allocation —
even when iterating over the same immutable plan. The paper's throughput
claim (and SpArch / SparseZipper's framing of sparse accelerators) is
about *sustained* steady-state loops, where decode traffic amortizes over
repeated accesses. :class:`ExecutionSession` makes that path first-class:

* **Warm engine pool** — one :class:`~repro.codecs.engine.RecodeEngine`
  lives for the session, so process/thread pool spin-up is paid once.
* **Session-scoped decoded-block cache sized to the matrix** — every
  decoded block stays resident (12 B/nnz budget covers the whole plan),
  so iterations after the first skip decode entirely.
* **Memoized structure** — one plan object (and one long-lived
  :class:`~repro.codecs.container.ContainerReader` for ``.dsh``-backed
  sessions) means per-block row-index vectors
  (:meth:`~repro.sparse.blocked.CSRBlock.row_segments`) and record
  extents are materialized once and reused.
* **``out=`` buffer reuse** — the result accumulator is allocated once
  and zero-filled per call; the accumulation sequence is unchanged, so
  results are bit-identical to single-shot runs.
* **Verified-once CRC memo** — reader-backed sessions enable
  :meth:`~repro.codecs.container.ContainerReader.enable_crc_memo`, so a
  record's CRC is checked on first touch and skipped afterwards.

Once every block of the plan has decoded cleanly into the session cache,
calls take the *warm fast path*: blocks multiply straight out of the
cache through the exact same blocked kernels — no DRAM stream, no DMA
charge, no decode — which is what drives per-iteration cost below the
0.5x-of-cold gate and keeps solver end-to-end DRAM traffic at
"decode once, then vectors only".

Fault semantics are preserved conservatively: while a
:class:`~repro.faults.FaultPlan` is armed the fast path is disabled
outright, so chaos runs exercise the full stream/decode/degrade
machinery on *every* iteration with honest per-iteration traffic
accounting. Scrub (:meth:`ContainerReader.record_health`) always
re-checks CRCs regardless of the session memo.
"""

from __future__ import annotations

import itertools
import time
from os import PathLike

import numpy as np

from repro import faults, obs
from repro.codecs.container import ContainerReader
from repro.codecs.engine import DecodedBlockCache, RecodeEngine, plan_fingerprint
from repro.codecs.pipeline import MatrixCompression
from repro.core.executor import DEFAULT_DEPTH
from repro.core.spmv_pipeline import PipelineStats, recoded_spmm, recoded_spmv
from repro.memsys.dram import DDR4_100GBS, MemorySystem
from repro.memsys.traffic import TrafficLog
from repro.sparse.csr import VALUE_DTYPE
from repro.sparse.spmm import spmm_blocked
from repro.sparse.spmv import spmv_blocked

_session_ids = itertools.count()


class _ColdBlock(Exception):
    """Internal: a fast-path probe found a block missing from the cache."""


class ExecutionSession:
    """A reusable handle over one compressed plan or ``.dsh`` container.

    Args:
        plan: an in-memory :class:`MatrixCompression`, an open
            :class:`ContainerReader` (borrowed), or a ``.dsh`` path (the
            session owns and closes the reader).
        matrix_id: stable cache namespace; defaults to a unique
            ``session-N`` so sessions sharing an engine never collide.
        memory: memory system for DMA timing/energy on cold runs.
        engine: borrow an existing engine (its cache too); by default the
            session builds its own with a cache sized to the matrix.
        workers / executor: pool shape for the session-owned engine
            (ignored when ``engine`` is passed or ``shards > 0``).
        mode: ``"serial"`` or ``"pipelined"`` — the executor cold calls
            run under. ``shards > 0`` selects the sharded executor
            instead (path-backed containers only; decode happens in
            shard workers, so no engine and no warm fast path — the
            session still amortizes the reader walk and extents).
        depth / policy: forwarded to the executor on cold calls.
        reuse: ``False`` makes every call cold-per-call (the ablation
            axis): the cache is cleared before each call, no warm fast
            path, no CRC memo, fresh output buffers. Results are
            bit-identical either way.

    ``spmv``/``spmm`` return ``(y, stats)`` exactly like the single-shot
    functions. **The returned array is the session's reusable buffer**:
    it is overwritten by the next call on this session, so copy it (or
    pass your own ``out=``) if you need it to survive.
    """

    def __init__(
        self,
        plan: "MatrixCompression | ContainerReader | str | PathLike",
        *,
        matrix_id: str = "",
        memory: MemorySystem = DDR4_100GBS,
        engine: RecodeEngine | None = None,
        workers: int = 0,
        executor: str = "thread",
        mode: str = "serial",
        depth: int = DEFAULT_DEPTH,
        shards: int = 0,
        policy: str = "strict",
        reuse: bool = True,
    ):
        self.matrix_id = matrix_id or f"session-{next(_session_ids)}"
        self.memory = memory
        self.mode = mode
        self.depth = depth
        self.shards = shards
        self.policy = policy
        self.reuse = reuse
        self._closed = False

        self.reader: ContainerReader | None = None
        self._owns_reader = False
        if isinstance(plan, MatrixCompression):
            self.plan = plan
        elif isinstance(plan, ContainerReader):
            self.reader = plan
        elif isinstance(plan, (str, PathLike)):
            self.reader = ContainerReader(plan, verify="lazy")
            self._owns_reader = True
        else:
            raise TypeError(
                "plan must be a MatrixCompression, a ContainerReader, or a "
                f".dsh path, got {type(plan).__name__}"
            )
        if self.reader is not None:
            # Enable the memo before plan() so the construction pass
            # (which materializes and CRC-checks every record once)
            # populates it; later re-streams then skip the re-check.
            if reuse:
                self.reader.enable_crc_memo()
            self.plan = self.reader.plan()

        self._owns_engine = False
        if shards:
            if engine is not None:
                raise ValueError(
                    "shards>0 decodes in shard workers; engine must be None"
                )
            self.engine = None
        elif engine is not None:
            self.engine = engine
        else:
            # Budget covers every decoded block at 12 B/nnz, so nothing
            # evicts and the whole plan goes resident after one pass.
            cache = DecodedBlockCache(max_bytes=max(12 * self.plan.nnz, 4096))
            self.engine = RecodeEngine(
                workers=workers, executor=executor, cache=cache
            )
            self._owns_engine = True

        self._fingerprint = plan_fingerprint(self.plan)
        self._warm = False
        self._fast_cursor = 0
        self._out: dict[tuple, np.ndarray] = {}

        # Cumulative session counters (plain ints; mirrored into the
        # active registry's ``session.*`` counters at event time).
        self.calls = 0
        self.warm_calls = 0
        self.cold_calls = 0
        self.blocks_reused = 0
        self.out_reuses = 0
        self._crc_skips_seen = 0

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release session-owned resources (engine pool, reader)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_engine and self.engine is not None:
            self.engine.close()
        if self._owns_reader and self.reader is not None:
            self.reader.close()

    def __enter__(self) -> "ExecutionSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def reset(self) -> None:
        """Drop all warm state: decoded-block cache, residency, buffers.

        The next call pays full cold cost — ``repro ablate``'s
        cold-per-call axis and cold-phase benchmarking both use this.
        """
        self._warm = False
        self._out.clear()
        if self.engine is not None and self.engine.cache is not None:
            self.engine.cache.clear()

    # -- warm-path plumbing ------------------------------------------------

    @property
    def warm(self) -> bool:
        """Whether the next call can take the cache-resident fast path."""
        return self._warm and self.reuse and faults.active() is None

    def _claim_buffer(self, shape: tuple, out: np.ndarray | None) -> np.ndarray:
        if out is not None:
            return out
        if not self.reuse:
            return np.zeros(shape, dtype=VALUE_DTYPE)
        buf = self._out.get(shape)
        if buf is None:
            buf = np.zeros(shape, dtype=VALUE_DTYPE)
            self._out[shape] = buf
        else:
            self.out_reuses += 1
            obs.registry().counter("session.out_buffer_reuses").inc()
        return buf

    def _cached_recode(self, _stored):
        i = self._fast_cursor
        self._fast_cursor += 1
        block = self.engine.cache.get((self.matrix_id, i, self._fingerprint))
        if block is None:
            raise _ColdBlock(i)
        self._fast_log.record("udp", "cpu", 12 * block.nnz)
        return block

    def _fast_path(self, x: np.ndarray, kernel, out: np.ndarray, nrhs: int):
        """Multiply straight out of the session cache.

        Reuses the exact blocked kernels with a cache-probing ``recode``
        hook, so the accumulation order — and therefore every result bit
        — matches the cold executors. No DRAM stream, no DMA charge, no
        record CRC, no decode.
        """
        self._fast_cursor = 0
        self._fast_log = TrafficLog()
        y = kernel(self.plan.blocked, x, recode=self._cached_recode, out=out)
        log = self._fast_log
        # Warm iterations are still iterations: keep the workload-side
        # spmv.*/spmm.* accounting (iterations, flops, decoded bytes to
        # the CPU) flowing even though the DRAM stream is skipped.
        prefix = "spmm" if kernel is spmm_blocked else "spmv"
        reg = obs.registry()
        reg.counter(f"{prefix}.iterations").inc()
        reg.counter(f"{prefix}.blocks").inc(self.plan.nblocks)
        reg.counter(f"{prefix}.nnz").inc(self.plan.nnz)
        reg.counter(f"{prefix}.flops").inc(2 * nrhs * self.plan.nnz)
        reg.counter(f"{prefix}.bytes.udp_to_cpu").inc(log.bytes_on("udp", "cpu"))
        reg.counter(f"{prefix}.bytes.baseline").inc(12 * self.plan.nnz)
        return y, PipelineStats(
            traffic=log,
            dram_bytes=0,
            baseline_dram_bytes=12 * self.plan.nnz,
            dma_seconds=0.0,
            engine_stats=self.engine.stats.as_dict(),
            policy=self.policy,
            degraded_blocks=0,
            mode=self.mode,
            nrhs=nrhs,
        )

    def _cold_kwargs(self) -> dict:
        return dict(
            memory=self.memory,
            engine=self.engine,
            matrix_id=self.matrix_id,
            policy=self.policy,
            mode=self.mode,
            depth=self.depth,
            shards=self.shards,
        )

    def _record_call(self, warm: bool, nblocks: int, seconds: float) -> None:
        reg = obs.registry()
        self.calls += 1
        reg.counter("session.calls").inc()
        if warm:
            self.warm_calls += 1
            self.blocks_reused += nblocks
            reg.counter("session.warm_calls").inc()
            reg.counter("session.blocks_reused").inc(nblocks)
        else:
            self.cold_calls += 1
            reg.counter("session.cold_calls").inc()
        if self.reader is not None:
            skips = self.reader.crc_skips
            delta = skips - self._crc_skips_seen
            if delta > 0:
                reg.counter("session.crc_skips").inc(delta)
            self._crc_skips_seen = skips
        if self.engine is not None and self.engine.cache is not None:
            st = self.engine.cache.stats
            reg.gauge("session.hit_rate").set(st.hit_rate)
            reg.gauge("session.resident_bytes").set(st.current_bytes)
        reg.histogram("session.call_seconds").observe(seconds)

    def _run(self, x, kernel, cold_fn, nrhs, out):
        if self._closed:
            raise RuntimeError("session is closed")
        start = time.perf_counter()
        if not self.reuse:
            self.reset()
        shape = (
            (self.plan.blocked.shape[0],)
            if nrhs == 1 and x.ndim == 1
            else (self.plan.blocked.shape[0], nrhs)
        )
        buf = self._claim_buffer(shape, out)
        if self.warm:
            try:
                y, stats = self._fast_path(x, kernel, buf, nrhs)
                self._record_call(True, self.plan.nblocks, time.perf_counter() - start)
                return y, stats
            except _ColdBlock:
                # Cache lost entries (external clear); fall back to cold.
                self._warm = False
        y, stats = cold_fn(buf)
        # The run goes warm once every block decoded cleanly into the
        # session cache: engine-backed, nothing degraded, no armed fault
        # plan. Degraded/faulted runs stay cold so each iteration re-pays
        # (and re-accounts) its stream honestly.
        self._warm = (
            self.reuse
            and self.engine is not None
            and self.engine.cache is not None
            and stats.degraded_blocks == 0
            and faults.active() is None
        )
        self._record_call(False, self.plan.nblocks, time.perf_counter() - start)
        return y, stats

    # -- public ops --------------------------------------------------------

    def spmv(
        self, x: np.ndarray, out: np.ndarray | None = None
    ) -> tuple[np.ndarray, PipelineStats]:
        """``y = A @ x`` with steady-state reuse. Returns ``(y, stats)``;
        ``y`` is the session buffer unless ``out`` is passed."""
        source = self.reader if self.reader is not None else self.plan

        def cold(buf):
            return recoded_spmv(source, x, out=buf, **self._cold_kwargs())

        return self._run(x, spmv_blocked, cold, 1, out)

    def spmm(
        self, x: np.ndarray, out: np.ndarray | None = None
    ) -> tuple[np.ndarray, PipelineStats]:
        """Fused ``Y = A @ X`` for ``k`` right-hand sides over the session."""
        x = np.ascontiguousarray(x, dtype=VALUE_DTYPE)
        if x.ndim != 2 or x.shape[0] != self.plan.blocked.shape[1]:
            raise ValueError(
                f"X must have shape ({self.plan.blocked.shape[1]}, k), got {x.shape}"
            )
        source = self.reader if self.reader is not None else self.plan

        def cold(buf):
            return recoded_spmm(source, x, out=buf, **self._cold_kwargs())

        return self._run(x, spmm_blocked, cold, int(x.shape[1]), out)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Cumulative session counters (steady-state observability)."""
        cache = self.engine.cache.stats if self.engine and self.engine.cache else None
        return {
            "matrix_id": self.matrix_id,
            "calls": self.calls,
            "warm_calls": self.warm_calls,
            "cold_calls": self.cold_calls,
            "blocks_reused": self.blocks_reused,
            "out_buffer_reuses": self.out_reuses,
            "crc_skips": self.reader.crc_skips if self.reader is not None else 0,
            "cache_hits": cache.hits if cache else 0,
            "cache_misses": cache.misses if cache else 0,
            "cache_hit_rate": cache.hit_rate if cache else 0.0,
            "resident_bytes": cache.current_bytes if cache else 0,
            "engine": self.engine.stats.as_dict() if self.engine else None,
        }
