"""Pipelined recoded-SpMV/SpMM executor: overlap block decode with multiply.

The paper's execution model (Figs. 6-7, Section V) is a decode/compute
pipeline — the UDP recodes block *i+1* while the CPU multiplies block *i*,
so decompression hides behind the multiply and SpMV runs at the
compressed-stream rate. This module is the software analogue: block
decodes are submitted asynchronously to the
:class:`~repro.codecs.engine.RecodeEngine` pool with a bounded prefetch
depth, decoded blocks are multiplied on the main thread *as they
complete* (any order), and results accumulate out of order under a merge
rule that keeps the result bit-identical to the serial executor:

* a row owned by exactly one block receives exactly one ``+=`` — order
  across blocks cannot change its bits;
* a row *split* across blocks (``leading_partial`` continuations) defers
  its per-block partial sums and folds them in block order at the end,
  reproducing the serial left-to-right addition sequence exactly.

DMA traffic is charged per block in block order (same
:class:`~repro.memsys.traffic.TrafficLog` totals, same ``dma_seconds``
float-addition sequence), failures flow through the same strict/degrade
policy, and the decoded-block cache and fault hooks behave identically —
the pipeline changes *when* work happens, never *what* happens.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from collections.abc import Callable, Sequence

import numpy as np

from repro import faults, obs
from repro import kernels
from repro.codecs.engine import BlockFailure, DEFAULT_PREFETCH_CHUNKS, RecodeEngine
from repro.codecs.errors import BlockDecodeError, CodecError
from repro.codecs.pipeline import MatrixCompression
from repro.memsys.dma import DMAEngine
from repro.memsys.dram import MemorySystem
from repro.memsys.traffic import TrafficLog
from repro.sparse.blocked import CSRBlock
from repro.sparse.csr import VALUE_DTYPE

#: Default prefetch depth (chunk tasks in flight) for ``mode="pipelined"``.
DEFAULT_DEPTH = DEFAULT_PREFETCH_CHUNKS


class RunCancelled(RuntimeError):
    """A run's ``cancel`` callback fired at a block boundary.

    Cooperative cancellation for deadline-bound callers (the serve layer):
    the executor polls the callback between blocks and abandons the run
    as soon as it returns True, so a request past its deadline stops
    borrowing decode workers, DMA model time, and cache capacity. The
    partial result is discarded — nothing observable is half-updated.
    """

    def __init__(self, message: str = "run cancelled", blocks_done: int = 0):
        super().__init__(message)
        self.blocks_done = blocks_done


class RunCounters:
    """Per-run mutable counters for one recoded SpMV/SpMM execution.

    Replaces the closure-captured ``counter`` dict the serial hook used to
    share: increments take a lock so the pipelined executor's completion
    handling (and any future threaded consumer) cannot lose updates, and
    the serial block cursor lives here too instead of a bare dict slot.
    """

    __slots__ = ("_lock", "_cursor", "_degraded")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cursor = 0
        self._degraded = 0

    def next_block(self) -> int:
        """Claim the next serial block index (the recode-hook cursor)."""
        with self._lock:
            i = self._cursor
            self._cursor += 1
            return i

    def add_degraded(self, n: int = 1) -> None:
        with self._lock:
            self._degraded += n

    @property
    def degraded(self) -> int:
        return self._degraded

    @property
    def blocks_started(self) -> int:
        return self._cursor


class BlockAccumulator:
    """Order-independent accumulation of per-block partial results.

    ``out`` may be 1-D (SpMV) or 2-D (SpMM, rows x nrhs); ``add`` may be
    called in any block order. Rows shared between adjacent blocks (split
    rows flagged ``leading_partial``) are deferred and folded in block
    order by :meth:`finalize`, which is what makes the out-of-order sum
    bit-identical to the serial in-order one.
    """

    def __init__(self, blocks: Sequence[CSRBlock], out: np.ndarray):
        self.out = out
        n = len(blocks)
        self._shared_prev = [b.leading_partial for b in blocks]
        self._shared_next = [
            i + 1 < n and blocks[i + 1].leading_partial for i in range(n)
        ]
        self._row_start = [b.row_start for b in blocks]
        self._row_end = [b.row_end for b in blocks]
        self._pending: dict[int, list[tuple[int, np.ndarray]]] = {}
        self._lock = threading.Lock()

    def add(self, block_id: int, rows: np.ndarray, seg: np.ndarray) -> None:
        """Fold one block's segment sums in.

        ``rows`` are the block's non-empty global row indices, ``seg`` the
        matching per-row sums (1-D scalars or 2-D rows).
        """
        if rows.size == 0:
            return
        first_shared = (
            self._shared_prev[block_id] and int(rows[0]) == self._row_start[block_id]
        )
        last_shared = (
            self._shared_next[block_id]
            and int(rows[-1]) == self._row_end[block_id] - 1
        )
        lo = 1 if first_shared else 0
        hi = rows.size - 1 if last_shared else rows.size
        with self._lock:
            if first_shared:
                self._pending.setdefault(int(rows[0]), []).append(
                    (block_id, seg[0])
                )
            if last_shared and not (first_shared and rows.size == 1):
                self._pending.setdefault(int(rows[-1]), []).append(
                    (block_id, seg[-1])
                )
            if lo < hi:
                self.out[rows[lo:hi]] += seg[lo:hi]

    def finalize(self) -> np.ndarray:
        """Fold deferred split-row contributions, in block order per row."""
        with self._lock:
            for row in sorted(self._pending):
                for _, contrib in sorted(
                    self._pending[row], key=lambda entry: entry[0]
                ):
                    self.out[row] += contrib
            self._pending.clear()
        return self.out


def block_row_sums(
    block: CSRBlock, x: np.ndarray
) -> tuple[np.ndarray, np.ndarray] | None:
    """One block's multiply arithmetic: ``(rows, seg)`` or None when empty.

    Identical to :func:`repro.sparse.spmv.spmv_blocked` /
    :func:`repro.sparse.spmm.spmm_blocked` — same products, same
    ``np.add.reduceat`` segment starts — so each row's partial sum is
    bit-identical to the serial kernels'. Factored out of
    :func:`multiply_block` so shard workers can compute per-block sums and
    ship them back for accumulator folding in the parent process.
    """
    if block.nnz == 0:
        return None
    rows, seg_starts = block.row_segments()
    if rows.size == 0:
        return None
    if x.ndim == 1:
        products = block.val * x[block.col_idx]
        seg = np.add.reduceat(products, seg_starts)
    else:
        products = block.val[:, None] * x[block.col_idx]
        seg = np.add.reduceat(products, seg_starts, axis=0)
    return rows, seg


def multiply_block(
    block: CSRBlock, x: np.ndarray, acc: BlockAccumulator, block_id: int
) -> None:
    """One block's multiply stage: gather, scale, segment-sum, accumulate."""
    sums = block_row_sums(block, x)
    if sums is None:
        return
    acc.add(block_id, sums[0], sums[1])


class PlanBlockSource:
    """Block source over a fully-materialized in-memory plan.

    The *source* abstraction is what lets one executor serve both resident
    plans and mmap-backed containers: the only thing the executor needs
    beyond the (possibly lazy) record sequences is a pristine raw block for
    ``degrade``-policy substitution.
    """

    mapped_bytes = 0

    def __init__(self, plan: MatrixCompression):
        self._plan = plan

    def raw_block(self, i: int) -> CSRBlock:
        """The retained raw CSR partition block."""
        return self._plan.blocked.blocks[i]

    @property
    def pages_touched(self) -> int:
        return 0


class MmapBlockSource:
    """Block source over a :class:`~repro.codecs.container.ContainerReader`.

    The plan's blocked structure holds shell blocks (row metadata only), so
    ``degrade`` substitution cannot read a retained partition; instead the
    pristine mapped records are decoded on demand — bit-identical to the
    block the eager loader would have retained, at O(block) residency.
    """

    def __init__(self, reader, plan: MatrixCompression):
        self._reader = reader
        self._plan = plan

    def raw_block(self, i: int) -> CSRBlock:
        return self._plan.decompress_block(i)

    @property
    def mapped_bytes(self) -> int:
        return self._reader.nbytes

    @property
    def pages_touched(self) -> int:
        return self._reader.pages_touched


def _claim_out(shape: tuple, out: "np.ndarray | None") -> np.ndarray:
    """Resolve an executor's accumulator: a fresh zeroed array, or a
    caller-supplied (session-reused) buffer zero-filled in place — the
    accumulation sequence, and therefore the result bits, are identical
    either way."""
    if out is None:
        return np.zeros(shape, dtype=VALUE_DTYPE)
    if out.shape != shape or out.dtype != VALUE_DTYPE:
        raise ValueError(
            f"out must be float64 with shape {shape}, got {out.dtype} {out.shape}"
        )
    if not out.flags.writeable:
        raise ValueError("out must be writeable")
    out[:] = 0.0
    return out


def run_pipelined(
    plan: MatrixCompression,
    x: np.ndarray,
    *,
    memory: MemorySystem,
    dma: DMAEngine,
    log: TrafficLog,
    engine: RecodeEngine,
    matrix_id: str,
    policy: str,
    depth: int,
    counters: RunCounters,
    source: "PlanBlockSource | MmapBlockSource | None" = None,
    cancel: "Callable[[], bool] | None" = None,
    out: "np.ndarray | None" = None,
) -> tuple[np.ndarray, float]:
    """Execute one pipelined recoded SpMV (1-D ``x``) or SpMM (2-D ``x``).

    ``source`` supplies pristine raw blocks for ``degrade`` substitution —
    defaults to the in-memory :class:`PlanBlockSource`; pass an
    :class:`MmapBlockSource` when ``plan`` is a streaming container view.
    ``cancel`` is polled once per consumed block; when it returns True the
    handle is closed (in-flight pool chunks finish and are dropped) and
    :class:`RunCancelled` is raised. ``out`` is an optional preallocated
    accumulator (see :func:`_claim_out`).

    Returns ``(result, dma_seconds)``; degraded-block accounting lands on
    ``counters``. Raises the same :class:`BlockDecodeError` the serial
    executor would (lowest failing block id) under ``policy="strict"``.
    """
    if source is None:
        source = PlanBlockSource(plan)
    reg = obs.registry()
    blocked = plan.blocked
    nblocks = plan.nblocks
    nrows = blocked.shape[0]
    shape = (nrows,) if x.ndim == 1 else (nrows, x.shape[1])
    out = _claim_out(shape, out)
    acc = BlockAccumulator(blocked.blocks, out)

    # Stage 1 — stream every block's compressed records out of DRAM, in
    # block order (the paper's DMA prefetch). Per-block wire seconds are
    # kept aside and folded in block order at the end so dma_seconds
    # reproduces the serial executor's float-addition sequence exactly.
    dma_idx = [0.0] * nblocks
    dma_val = [0.0] * nblocks
    dma_deg: dict[int, float] = {}
    direct: dict[int, tuple] = {}
    engine_ids: list[int] = []
    with obs.trace("spmv.pipeline.stream", nblocks=nblocks):
        for i in range(nblocks):
            idx_rec = memory.stream_record(plan.index_records[i], i, "index")
            val_rec = memory.stream_record(plan.value_records[i], i, "value")
            dma_idx[i] = dma.transfer(idx_rec.stored_bytes, "dram", "udp").seconds
            dma_val[i] = dma.transfer(val_rec.stored_bytes, "dram", "udp").seconds
            if (
                idx_rec is not plan.index_records[i]
                or val_rec is not plan.value_records[i]
            ):
                # A DRAM-side fault corrupted the streamed copy: this
                # block must decode exactly what arrived, never the
                # engine's cached/pristine view.
                direct[i] = (idx_rec, val_rec)
            else:
                engine_ids.append(i)

    failures: dict[int, BlockDecodeError] = {}

    def degrade_block(i: int) -> None:
        """Substitute block ``i`` from the source's pristine raw view."""
        raw = source.raw_block(i)
        dma_deg[i] = dma.transfer(12 * raw.nnz, "dram", "cpu").seconds
        counters.add_degraded()
        reg.counter("spmv.degraded_blocks").inc()
        multiply_block(raw, x, acc, i)

    def consume(i: int, block: CSRBlock) -> None:
        with obs.trace("spmv.pipeline.multiply", block=i):
            multiply_block(block, x, acc, i)
        log.record("udp", "cpu", 12 * block.nnz)

    # Stage 2 — blocks whose streamed copies were corrupted bypass the
    # engine (rare: DRAM-site chaos runs only).
    for i in sorted(direct):
        if cancel is not None and cancel():
            raise RunCancelled(blocks_done=i)
        idx_rec, val_rec = direct[i]
        try:
            block = plan.decompress_block(
                i, index_record=idx_rec, value_record=val_rec
            )
        except CodecError as exc:
            if policy == "strict":
                if isinstance(exc, BlockDecodeError):
                    failures[i] = exc
                else:
                    err = BlockDecodeError(
                        f"block {i} failed to decode: {exc}", block_id=i
                    )
                    err.__cause__ = exc
                    failures[i] = err
            else:
                degrade_block(i)
        else:
            consume(i, block)

    # Stage 3 — overlapped decode/multiply: consume engine completions as
    # they land, multiplying on this thread while the pool decodes ahead.
    handle = engine.decode_blocks_async(
        plan, engine_ids, matrix_id=matrix_id, max_inflight=depth
    )
    queue_hist = reg.histogram("spmv.pipeline.queue_depth")
    inflight_gauge = reg.gauge("spmv.pipeline.inflight")
    wait_s = 0.0
    idle_decode_s = 0.0
    multiply_s = 0.0
    it = iter(handle)
    consumed = 0
    while True:
        if cancel is not None and cancel():
            inflight_gauge.set(0)
            handle.close()
            raise RunCancelled(blocks_done=consumed)
        queue_hist.observe(handle.ready)
        inflight_gauge.set(handle.inflight)
        t0 = time.perf_counter()
        try:
            i, res = next(it)
        except StopIteration:
            wait_s += time.perf_counter() - t0
            break
        wait_s += time.perf_counter() - t0
        # With nothing left in flight the decoders sit idle while we
        # multiply — the signal that a deeper prefetch would help.
        starved = handle.inflight == 0
        t1 = time.perf_counter()
        if isinstance(res, BlockFailure):
            if policy == "strict":
                failures[i] = res.error
            else:
                degrade_block(i)
        else:
            consume(i, res)
        dt = time.perf_counter() - t1
        multiply_s += dt
        consumed += 1
        if starved:
            idle_decode_s += dt
    inflight_gauge.set(0)
    reg.counter("spmv.pipeline.runs").inc()
    reg.counter("spmv.pipeline.multiply_idle_seconds").inc(wait_s)
    reg.counter("spmv.pipeline.decode_idle_seconds").inc(idle_decode_s)
    reg.counter("spmv.pipeline.multiply_seconds").inc(multiply_s)

    if failures:
        # Serial raises at its first failing block; the pipeline has seen
        # them all, so the lowest block id reproduces that error exactly.
        raise failures[min(failures)]

    with obs.trace("spmv.pipeline.merge"):
        acc.finalize()

    dma_seconds = 0.0
    for i in range(nblocks):
        dma_seconds += dma_idx[i]
        dma_seconds += dma_val[i]
        if i in dma_deg:
            dma_seconds += dma_deg[i]
    return out, dma_seconds


# ---------------------------------------------------------------------------
# Row-range sharding: contiguous block shards on worker processes
# ---------------------------------------------------------------------------


def shard_ranges(nblocks: int, shards: int) -> tuple[range, ...]:
    """Split ``nblocks`` into ``shards`` contiguous, near-equal block ranges.

    Empty ranges are dropped (more shards than blocks degrades to one block
    per shard), so every returned range is non-empty and the ranges cover
    ``range(nblocks)`` exactly, in order.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if nblocks == 0:
        return ()
    shards = min(shards, nblocks)
    base, extra = divmod(nblocks, shards)
    ranges = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        ranges.append(range(lo, hi))
        lo = hi
    return tuple(ranges)


def _shard_worker(
    path: str,
    verify: str,
    block_ids: Sequence[int],
    x: np.ndarray,
    policy: str,
    memory: MemorySystem,
    fault_plan,
    kernel_backend: str,
    residency_budget: int | None,
) -> dict:
    """Run one contiguous block shard inside a worker process.

    Opens its own :class:`~repro.codecs.container.ContainerReader` over the
    container (each worker maps the file independently — pages fault in on
    demand) and executes the serial engine-less decode/multiply loop over
    its blocks. Nothing is accumulated here: per-block ``(rows, seg)``
    segment sums, per-block DMA seconds, traffic-edge byte totals, and
    failures ship back to the parent, which folds them through one
    :class:`BlockAccumulator` so the result is bit-identical to serial no
    matter how the blocks were sharded.
    """
    from repro.codecs.container import ContainerReader

    t0 = time.perf_counter()
    ctx = fault_plan.activate() if fault_plan is not None else None
    if ctx is not None:
        ctx.__enter__()
    try:
        with kernels.use_backend(kernel_backend):
            with ContainerReader(
                path, verify=verify, residency_budget=residency_budget
            ) as reader:
                plan = reader.plan()
                log = TrafficLog()
                dma = DMAEngine(memory, log=log)
                segments: list[tuple[int, np.ndarray, np.ndarray]] = []
                dma_idx: dict[int, float] = {}
                dma_val: dict[int, float] = {}
                dma_deg: dict[int, float] = {}
                failures: dict[int, tuple[str, int | None]] = {}
                degraded = 0
                for i in block_ids:
                    idx_rec = memory.stream_record(plan.index_records[i], i, "index")
                    val_rec = memory.stream_record(plan.value_records[i], i, "value")
                    dma_idx[i] = dma.transfer(idx_rec.stored_bytes, "dram", "udp").seconds
                    dma_val[i] = dma.transfer(val_rec.stored_bytes, "dram", "udp").seconds
                    try:
                        block = plan.decompress_block(
                            i, index_record=idx_rec, value_record=val_rec
                        )
                    except CodecError as exc:
                        if policy == "strict":
                            if isinstance(exc, BlockDecodeError):
                                failures[i] = (str(exc), exc.block_id)
                            else:
                                failures[i] = (
                                    f"block {i} failed to decode: {exc}", i
                                )
                            continue
                        # degrade: decode the pristine mapped records —
                        # bit-identical to the raw block an eager loader
                        # would have retained.
                        raw = plan.decompress_block(i)
                        dma_deg[i] = dma.transfer(12 * raw.nnz, "dram", "cpu").seconds
                        degraded += 1
                        sums = block_row_sums(raw, x)
                        if sums is not None:
                            segments.append((i, sums[0], sums[1]))
                        continue
                    sums = block_row_sums(block, x)
                    if sums is not None:
                        segments.append((i, sums[0], sums[1]))
                    log.record("udp", "cpu", 12 * block.nnz)
                return {
                    "segments": segments,
                    "dma_idx": dma_idx,
                    "dma_val": dma_val,
                    "dma_deg": dma_deg,
                    "edges": log.edges(),
                    "failures": failures,
                    "degraded": degraded,
                    "pages_touched": reader.pages_touched,
                    "mapped_bytes": reader.nbytes,
                    "wall_seconds": time.perf_counter() - t0,
                }
    finally:
        if ctx is not None:
            ctx.__exit__(None, None, None)


def run_sharded(
    reader,
    x: np.ndarray,
    *,
    shards: int,
    memory: MemorySystem,
    log: TrafficLog,
    policy: str,
    counters: RunCounters,
    bounds: Sequence[range] | None = None,
    out: "np.ndarray | None" = None,
) -> tuple[np.ndarray, float, dict]:
    """Scatter-gather recoded SpMV/SpMM over contiguous block shards.

    Each shard runs on its own worker process against its own mapping of
    the container (``reader`` must be path-backed). Workers return raw
    per-block segment sums; the parent folds them all through one
    :class:`BlockAccumulator`, whose leading-partial deferral makes the
    result bit-identical to serial for *any* contiguous partition — split
    rows at shard boundaries included. Traffic-edge byte totals are exact
    integer sums and per-block DMA seconds are folded in global block
    order, so ``TrafficLog`` and ``dma_seconds`` also match serial exactly.

    Returns ``(result, dma_seconds, oocore_info)`` where ``oocore_info``
    carries the ``spmv.oocore.*`` measurements (bytes mapped, pages
    touched, per-shard wall seconds and skew).
    """
    if reader.path is None:
        raise ValueError(
            "sharded execution needs a path-backed ContainerReader "
            "(workers re-map the container file)"
        )
    nblocks = reader.nblocks
    if bounds is None:
        bounds = shard_ranges(nblocks, shards)
    else:
        covered = [i for r in bounds for i in r]
        if covered != list(range(nblocks)):
            raise ValueError("shard bounds must cover all blocks contiguously")
        bounds = tuple(r for r in bounds if len(r))
    shell_blocks = reader.shell_blocks()
    nrows = reader.shape[0]
    shape = (nrows,) if x.ndim == 1 else (nrows, x.shape[1])
    out = _claim_out(shape, out)
    acc = BlockAccumulator(shell_blocks, out)
    fault_plan = faults.active()
    backend = kernels.backend()

    results: list[dict] = []
    if not bounds:
        return out, 0.0, {
            "shards": 0, "mapped_bytes": 0, "pages_touched": 0,
            "shard_seconds": [], "shard_skew": 1.0,
        }
    with obs.trace("spmv.oocore.scatter", shards=len(bounds), nblocks=nblocks):
        with concurrent.futures.ProcessPoolExecutor(max_workers=len(bounds)) as pool:
            futs = [
                pool.submit(
                    _shard_worker,
                    reader.path,
                    reader.verify,
                    list(r),
                    x,
                    policy,
                    memory,
                    fault_plan,
                    backend,
                    reader.residency_budget,
                )
                for r in bounds
            ]
            for fut in futs:
                results.append(fut.result())

    failures: dict[int, tuple[str, int | None]] = {}
    for res in results:
        failures.update(res["failures"])
    if failures:
        # Serial raises at its first failing block; the lowest block id
        # across all shards reproduces that error exactly.
        first = min(failures)
        msg, block_id = failures[first]
        raise BlockDecodeError(msg, block_id=block_id)

    with obs.trace("spmv.oocore.gather", shards=len(results)):
        degraded_total = 0
        dma_idx: dict[int, float] = {}
        dma_val: dict[int, float] = {}
        dma_deg: dict[int, float] = {}
        edge_totals: dict[tuple[str, str], int] = {}
        for res in results:
            for i, rows, seg in res["segments"]:
                acc.add(i, rows, seg)
            dma_idx.update(res["dma_idx"])
            dma_val.update(res["dma_val"])
            dma_deg.update(res["dma_deg"])
            for edge, nbytes in res["edges"].items():
                edge_totals[edge] = edge_totals.get(edge, 0) + nbytes
            degraded_total += res["degraded"]
        for (src, dst), nbytes in sorted(edge_totals.items()):
            log.record(src, dst, nbytes)
        if degraded_total:
            counters.add_degraded(degraded_total)
            obs.registry().counter("spmv.degraded_blocks").inc(degraded_total)
        acc.finalize()

    dma_seconds = 0.0
    for i in range(nblocks):
        dma_seconds += dma_idx.get(i, 0.0)
        dma_seconds += dma_val.get(i, 0.0)
        if i in dma_deg:
            dma_seconds += dma_deg[i]

    shard_seconds = [res["wall_seconds"] for res in results]
    mean_s = sum(shard_seconds) / len(shard_seconds)
    info = {
        "shards": len(results),
        "mapped_bytes": sum(res["mapped_bytes"] for res in results),
        "pages_touched": sum(res["pages_touched"] for res in results),
        "shard_seconds": shard_seconds,
        "shard_skew": (max(shard_seconds) / mean_s) if mean_s > 0 else 1.0,
    }
    return out, dma_seconds, info
