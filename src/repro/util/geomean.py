"""Geometric-mean helpers.

The paper reports nearly every aggregate as a geometric mean (compressed
bytes/nnz, decompression throughput, SpMV speedup), so these helpers are used
throughout the experiment harness.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Computed in log space so that long suites of small per-matrix ratios do
    not underflow.

    Raises:
        ValueError: if ``values`` is empty or contains a non-positive entry.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(arr <= 0.0):
        raise ValueError("geomean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def geomean_ratio(numerators: Iterable[float], denominators: Iterable[float]) -> float:
    """Geometric mean of elementwise ratios ``numerators[i] / denominators[i]``.

    Raises:
        ValueError: on length mismatch, empty input, or non-positive entries.
    """
    num = np.asarray(list(numerators), dtype=np.float64)
    den = np.asarray(list(denominators), dtype=np.float64)
    if num.shape != den.shape:
        raise ValueError(f"length mismatch: {num.shape} vs {den.shape}")
    if num.size == 0:
        raise ValueError("geomean_ratio of empty sequences")
    if np.any(num <= 0.0) or np.any(den <= 0.0):
        raise ValueError("geomean_ratio requires strictly positive values")
    return float(np.exp(np.mean(np.log(num) - np.log(den))))
