"""Unit constants and human-readable formatting.

Decimal units (GB = 1e9) are used for bandwidths and rates, matching the
paper's "100GB/s DDR" / "1TB/s HBM2" convention; binary units (KiB) are used
for block sizes ("8KB block" in the paper means 8192 bytes, the UDP
scratchpad bank size).
"""

from __future__ import annotations

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary-prefix unit."""
    n = float(n)
    for unit, scale in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_rate(bytes_per_second: float) -> str:
    """Format a data rate with a decimal-prefix unit (paper convention)."""
    r = float(bytes_per_second)
    for unit, scale in (("TB/s", TB), ("GB/s", GB), ("MB/s", MB), ("KB/s", KB)):
        if abs(r) >= scale:
            return f"{r / scale:.2f} {unit}"
    return f"{r:.0f} B/s"


def fmt_seconds(seconds: float) -> str:
    """Format a duration, choosing s/ms/us/ns."""
    s = float(seconds)
    if abs(s) >= 1.0:
        return f"{s:.3f} s"
    if abs(s) >= 1e-3:
        return f"{s * 1e3:.2f} ms"
    if abs(s) >= 1e-6:
        return f"{s * 1e6:.2f} us"
    return f"{s * 1e9:.1f} ns"


def fmt_power(watts: float) -> str:
    """Format a power figure."""
    w = float(watts)
    if abs(w) >= 1.0:
        return f"{w:.2f} W"
    return f"{w * 1e3:.1f} mW"
