"""Shared utilities: statistics helpers, unit formatting, table rendering,
RNG policy, and BENCH-artifact schema validation."""

from repro.util.geomean import geomean, geomean_ratio
from repro.util.rng import seeded_rng, derive_seed
from repro.util.rss import RssSampler, read_rss_bytes
from repro.util.schema import (
    BENCH_SCHEMAS,
    SchemaError,
    check_schema,
    is_timing_key,
    non_timing_view,
    validate_schema,
)
from repro.util.tables import Table
from repro.util.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    fmt_bytes,
    fmt_rate,
    fmt_seconds,
    fmt_power,
)

__all__ = [
    "geomean",
    "geomean_ratio",
    "seeded_rng",
    "derive_seed",
    "RssSampler",
    "read_rss_bytes",
    "BENCH_SCHEMAS",
    "SchemaError",
    "check_schema",
    "is_timing_key",
    "non_timing_view",
    "validate_schema",
    "Table",
    "GB",
    "GIB",
    "KB",
    "KIB",
    "MB",
    "MIB",
    "fmt_bytes",
    "fmt_rate",
    "fmt_seconds",
    "fmt_power",
]
