"""Shared utilities: statistics helpers, unit formatting, table rendering, RNG policy."""

from repro.util.geomean import geomean, geomean_ratio
from repro.util.rng import seeded_rng, derive_seed
from repro.util.tables import Table
from repro.util.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    fmt_bytes,
    fmt_rate,
    fmt_seconds,
    fmt_power,
)

__all__ = [
    "geomean",
    "geomean_ratio",
    "seeded_rng",
    "derive_seed",
    "Table",
    "GB",
    "GIB",
    "KB",
    "KIB",
    "MB",
    "MIB",
    "fmt_bytes",
    "fmt_rate",
    "fmt_seconds",
    "fmt_power",
]
