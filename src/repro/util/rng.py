"""Randomness policy: every random draw in the library flows through a
``numpy.random.Generator`` produced here, so that suite matrices, sampled
blocks, and synthetic values are byte-identical across runs.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seeded_rng(seed: int) -> np.random.Generator:
    """Return a deterministic PCG64 generator for ``seed``."""
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    return np.random.default_rng(seed)


def derive_seed(base: int, *labels: str | int) -> int:
    """Derive a stable child seed from a base seed and a label path.

    Uses SHA-256 over the label path so that e.g. suite entry ``("suite",
    42, "values")`` always maps to the same child seed, independent of
    insertion order or process.
    """
    h = hashlib.sha256()
    h.update(str(base).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "little")
