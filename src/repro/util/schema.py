"""Minimal JSON-schema-style validation for BENCH_* artifacts.

Every benchmark artifact the repo writes (``BENCH_headline.json``,
``BENCH_pipeline.json``, ``BENCH_ablation.json``) is validated against a
schema before it lands on disk, and the checked-in artifacts are
re-validated by ``tests/test_bench_schemas.py`` — so gate fields cannot
silently drift shape between the writers, CI, and downstream diff tools.

This is intentionally a tiny dependency-free subset of JSON Schema:

* ``type``: ``object`` / ``array`` / ``string`` / ``number`` /
  ``integer`` / ``boolean`` (``number`` accepts ints, never bools);
* objects: ``required`` + ``properties`` (extra keys are always allowed
  — artifacts may grow fields without breaking old validators);
* arrays: ``items`` applied to every element, optional ``min_items``;
* scalars: optional ``minimum`` / ``maximum``.

Shared artifact conventions live here too: the common envelope every
BENCH artifact must carry (``exp_id`` + ``context.seed``) and the
timing-key convention used to split deterministic fields from wall-clock
measurements (:func:`non_timing_view`).
"""

from __future__ import annotations

from typing import Any

#: Key suffixes that mark a field as wall-clock-derived (excluded from
#: determinism comparisons by :func:`non_timing_view`).
TIMING_KEY_SUFFIXES: tuple[str, ...] = (
    "_seconds", "_us", "_ratio", "_speedup", "_gain", "_gbps",
    "_mb_per_s", "_rate", "_idle",
)

#: Exact keys that are wall-clock-derived without a marker suffix.
TIMING_KEYS: frozenset[str] = frozenset(
    {"seconds", "contribution", "harmful", "num_harmful", "timing", "timings"}
)


class SchemaError(ValueError):
    """An artifact failed schema validation; ``.errors`` lists every path."""

    def __init__(self, name: str, errors: list[str]):
        self.errors = errors
        super().__init__(
            f"{name} failed schema validation ({len(errors)} error"
            f"{'s' if len(errors) != 1 else ''}):\n  " + "\n  ".join(errors)
        )


_TYPES: dict[str, tuple] = {
    "object": (dict,),
    "array": (list, tuple),
    "string": (str,),
    "boolean": (bool,),
    "integer": (int,),
    "number": (int, float),
}


def validate_schema(obj: Any, schema: dict, path: str = "$") -> list[str]:
    """Validate ``obj`` against ``schema``; return a list of error strings
    (empty = valid). Never raises on bad data — see :func:`check_schema`."""
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        kinds = _TYPES.get(expected)
        if kinds is None:
            raise ValueError(f"unknown schema type {expected!r} at {path}")
        # bool is an int subclass; a numeric field holding True is a bug.
        if isinstance(obj, bool) and expected not in ("boolean",):
            errors.append(f"{path}: expected {expected}, got bool")
            return errors
        if not isinstance(obj, kinds):
            errors.append(
                f"{path}: expected {expected}, got {type(obj).__name__}"
            )
            return errors
    if isinstance(obj, dict):
        for key in schema.get("required", ()):
            if key not in obj:
                errors.append(f"{path}.{key}: required field missing")
        for key, sub in schema.get("properties", {}).items():
            if key in obj:
                errors.extend(validate_schema(obj[key], sub, f"{path}.{key}"))
    elif isinstance(obj, (list, tuple)):
        min_items = schema.get("min_items")
        if min_items is not None and len(obj) < min_items:
            errors.append(
                f"{path}: expected >= {min_items} items, got {len(obj)}"
            )
        items = schema.get("items")
        if items is not None:
            for i, el in enumerate(obj):
                errors.extend(validate_schema(el, items, f"{path}[{i}]"))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        lo, hi = schema.get("minimum"), schema.get("maximum")
        if lo is not None and obj < lo:
            errors.append(f"{path}: {obj} < minimum {lo}")
        if hi is not None and obj > hi:
            errors.append(f"{path}: {obj} > maximum {hi}")
    return errors


def check_schema(obj: Any, schema: dict, name: str = "artifact") -> None:
    """Raise :class:`SchemaError` if ``obj`` does not match ``schema``."""
    errors = validate_schema(obj, schema)
    if errors:
        raise SchemaError(name, errors)


def is_timing_key(key: str) -> bool:
    """True when ``key`` names a wall-clock-derived field by convention."""
    return key in TIMING_KEYS or key.endswith(TIMING_KEY_SUFFIXES)


def non_timing_view(obj: Any) -> Any:
    """Deep-copy ``obj`` with every timing-convention key removed.

    Two deterministic runs of the same benchmark must produce *identical*
    non-timing views — the regression contract tested by
    ``tests/test_bench_determinism.py``.
    """
    if isinstance(obj, dict):
        return {
            k: non_timing_view(v)
            for k, v in obj.items()
            if not is_timing_key(k)
        }
    if isinstance(obj, (list, tuple)):
        return [non_timing_view(el) for el in obj]
    return obj


# ---------------------------------------------------------------------------
# Shared BENCH_* artifact schemas
# ---------------------------------------------------------------------------

#: The envelope every BENCH artifact must carry: a stable experiment id
#: and the seed its numbers were generated under.
BENCH_COMMON_SCHEMA: dict = {
    "type": "object",
    "required": ["exp_id", "context"],
    "properties": {
        "exp_id": {"type": "string"},
        "context": {
            "type": "object",
            "required": ["seed"],
            "properties": {"seed": {"type": "integer"}},
        },
    },
}


def _with_common(schema: dict) -> dict:
    """Merge a specific schema over :data:`BENCH_COMMON_SCHEMA`."""
    merged = {
        "type": "object",
        "required": sorted(
            set(BENCH_COMMON_SCHEMA["required"]) | set(schema.get("required", ()))
        ),
        "properties": {
            **BENCH_COMMON_SCHEMA["properties"],
            **schema.get("properties", {}),
        },
    }
    ctx = schema.get("properties", {}).get("context")
    if ctx:
        base = BENCH_COMMON_SCHEMA["properties"]["context"]
        merged["properties"]["context"] = {
            "type": "object",
            "required": sorted(set(base["required"]) | set(ctx.get("required", ()))),
            "properties": {**base["properties"], **ctx.get("properties", {})},
        }
    return merged


#: ``BENCH_headline.json`` — written by ``benchmarks/bench_headline.py``.
BENCH_HEADLINE_SCHEMA: dict = _with_common(
    {
        "required": ["headline", "paper", "matrices", "executors"],
        "properties": {
            "headline": {
                "type": "object",
                "required": [
                    "gm_spmv_speedup",
                    "gm_dsh_bytes_per_nnz",
                    "gm_udp_over_cpu_decomp",
                ],
                "properties": {
                    "gm_spmv_speedup": {"type": "number", "minimum": 0},
                    "gm_dsh_bytes_per_nnz": {"type": "number", "minimum": 0},
                    "gm_udp_over_cpu_decomp": {"type": "number", "minimum": 0},
                },
            },
            "matrices": {
                "type": "array",
                "min_items": 1,
                "items": {
                    "type": "object",
                    "required": ["name", "nnz", "bytes_per_nnz"],
                    "properties": {
                        "name": {"type": "string"},
                        "nnz": {"type": "integer", "minimum": 0},
                        "bytes_per_nnz": {"type": "number", "minimum": 0},
                    },
                },
            },
            "executors": {
                "type": "object",
                "required": ["serial_seconds", "pipelined_seconds"],
                "properties": {
                    "serial_seconds": {"type": "number", "minimum": 0},
                    "pipelined_seconds": {"type": "number", "minimum": 0},
                },
            },
        },
    }
)

#: ``BENCH_pipeline.json`` — written by ``benchmarks/bench_pipeline.py``.
BENCH_PIPELINE_SCHEMA: dict = _with_common(
    {
        "required": ["pipeline_speedup", "spmm_per_rhs_ratio"],
        "properties": {
            "context": {
                "required": ["workers", "depth", "nrhs"],
                "properties": {
                    "workers": {"type": "integer", "minimum": 0},
                    "depth": {"type": "integer", "minimum": 1},
                    "nrhs": {"type": "integer", "minimum": 1},
                },
            },
            "pipeline_speedup": {"type": "number", "minimum": 0},
            "spmm_per_rhs_ratio": {"type": "number", "minimum": 0},
            "serial_seconds": {"type": "number", "minimum": 0},
            "pipelined_seconds": {"type": "number", "minimum": 0},
        },
    }
)

#: ``BENCH_ablation.json`` — written by :mod:`repro.ablation.report`.
BENCH_ABLATION_SCHEMA: dict = _with_common(
    {
        "required": ["baseline", "configs", "ranking", "conformance", "gates"],
        "properties": {
            "context": {
                "required": ["repeats", "warm_iters", "nrhs", "matrices"],
                "properties": {
                    "repeats": {"type": "integer", "minimum": 1},
                    "warm_iters": {"type": "integer", "minimum": 1},
                    "nrhs": {"type": "integer", "minimum": 1},
                    "matrices": {
                        "type": "array",
                        "min_items": 1,
                        "items": {"type": "string"},
                    },
                },
            },
            "baseline": {
                "type": "object",
                "required": ["run_id", "config", "headline_seconds"],
                "properties": {
                    "run_id": {"type": "string"},
                    "config": {"type": "object"},
                    "headline_seconds": {"type": "number", "minimum": 0},
                },
            },
            "configs": {
                "type": "array",
                "min_items": 1,
                "items": {
                    "type": "object",
                    "required": ["run_id", "ablated_axis", "config", "headline_seconds"],
                    "properties": {
                        "run_id": {"type": "string"},
                        "ablated_axis": {"type": "string"},
                        "config": {"type": "object"},
                        "headline_seconds": {"type": "number", "minimum": 0},
                    },
                },
            },
            "ranking": {
                "type": "array",
                "min_items": 1,
                "items": {
                    "type": "object",
                    "required": [
                        "axis", "component", "run_id", "kind",
                        "contribution", "harmful",
                    ],
                    "properties": {
                        "axis": {"type": "string"},
                        "component": {"type": "string"},
                        "run_id": {"type": "string"},
                        "kind": {"type": "string"},
                        "contribution": {"type": "number", "minimum": 0},
                        "harmful": {"type": "boolean"},
                    },
                },
            },
            "conformance": {
                "type": "object",
                "required": ["bit_identical", "configs_checked", "mismatches"],
                "properties": {
                    "bit_identical": {"type": "boolean"},
                    "configs_checked": {"type": "integer", "minimum": 1},
                    "mismatches": {"type": "array", "items": {"type": "string"}},
                },
            },
            # Present only when the run included pairwise ablations
            # (``repro ablate --pairs``).
            "interactions": {
                "type": "array",
                "items": {
                    "type": "object",
                    "required": [
                        "axes", "run_id", "pair_contribution",
                        "expected_contribution", "interaction_ratio",
                    ],
                    "properties": {
                        "axes": {
                            "type": "array",
                            "min_items": 2,
                            "items": {"type": "string"},
                        },
                        "run_id": {"type": "string"},
                        "pair_contribution": {"type": "number", "minimum": 0},
                        "expected_contribution": {"type": "number", "minimum": 0},
                        "interaction_ratio": {"type": "number", "minimum": 0},
                    },
                },
            },
            "gates": {
                "type": "object",
                "required": ["worst_removal_gain", "harmful_threshold", "num_harmful"],
                "properties": {
                    "worst_removal_gain": {"type": "number", "minimum": 0},
                    "harmful_threshold": {"type": "number", "minimum": 0},
                    "num_harmful": {"type": "integer", "minimum": 0},
                },
            },
        },
    }
)

#: ``BENCH_fig12.json`` — written by
#: ``benchmarks/bench_fig12_decomp_throughput.py``. Every headline number
#: is wall-clock-derived (throughputs and their ratios), so the whole
#: measured block lives under the wholesale-excluded ``timings`` key; only
#: the paper's reference values and the run envelope are deterministic.
BENCH_FIG12_SCHEMA: dict = _with_common(
    {
        "required": ["title", "paper", "timings"],
        "properties": {
            "title": {"type": "string"},
            "paper": {
                "type": "object",
                "required": ["gm_udp_over_cpu", "gm_udp_gbps"],
                "properties": {
                    "gm_udp_over_cpu": {"type": "number", "minimum": 0},
                    "gm_udp_gbps": {"type": "number", "minimum": 0},
                },
            },
            "timings": {
                "type": "object",
                "required": [
                    "gm_udp_over_cpu",
                    "gm_udp_gbps",
                    "sw_cold_mb_s",
                    "sw_steady_over_cold",
                    "hf_python_mb_s",
                    "hf_numpy_over_python",
                ],
                "properties": {
                    "gm_udp_over_cpu": {"type": "number", "minimum": 0},
                    "gm_udp_gbps": {"type": "number", "minimum": 0},
                    "sw_cold_mb_s": {"type": "number", "minimum": 0},
                    "sw_steady_over_cold": {"type": "number", "minimum": 0},
                    "hf_python_mb_s": {"type": "number", "minimum": 0},
                    "hf_numpy_over_python": {"type": "number", "minimum": 0},
                },
            },
        },
    }
)

#: ``BENCH_fig16.json`` — written by
#: ``benchmarks/bench_fig16_power_ddr4.py``. Modeled (not wall-clock)
#: power numbers: deterministic at a fixed seed, so the headline and the
#: per-matrix rows stay top-level.
BENCH_FIG16_SCHEMA: dict = _with_common(
    {
        "required": ["title", "paper", "headline", "rows"],
        "properties": {
            "title": {"type": "string"},
            "paper": {
                "type": "object",
                "required": [
                    "avg_net_saving_w",
                    "avg_net_saving_frac",
                    "baseline_power_w",
                ],
                "properties": {
                    "avg_net_saving_w": {"type": "number", "minimum": 0},
                    "avg_net_saving_frac": {"type": "number", "minimum": 0},
                    "baseline_power_w": {"type": "number", "minimum": 0},
                },
            },
            "headline": {
                "type": "object",
                "required": [
                    "avg_net_saving_w",
                    "avg_net_saving_frac",
                    "baseline_power_w",
                ],
                "properties": {
                    "avg_net_saving_w": {"type": "number", "minimum": 0},
                    "avg_net_saving_frac": {"type": "number", "minimum": 0},
                    "baseline_power_w": {"type": "number", "minimum": 0},
                },
            },
            "rows": {
                "type": "array",
                "min_items": 1,
                "items": {"type": "array", "items": {"type": "string"}},
            },
        },
    }
)

#: ``BENCH_oocore.json`` — written by ``benchmarks/bench_oocore.py``.
#: Byte sizes, page counts, and parity hashes are deterministic at a
#: fixed seed; RSS samples and shard skew are host-dependent and live
#: under ``timings``.
BENCH_OOCORE_SCHEMA: dict = _with_common(
    {
        "required": [
            "stream_bytes",
            "residency_budget_bytes",
            "stream_over_budget",
            "parity",
            "gates",
            "timings",
        ],
        "properties": {
            "context": {
                "required": ["shards", "block_bytes"],
                "properties": {
                    "shards": {"type": "integer", "minimum": 1},
                    "block_bytes": {"type": "integer", "minimum": 12},
                },
            },
            "nblocks": {"type": "integer", "minimum": 1},
            "nnz": {"type": "integer", "minimum": 0},
            "stream_bytes": {"type": "integer", "minimum": 1},
            "residency_budget_bytes": {"type": "integer", "minimum": 1},
            "stream_over_budget": {"type": "number", "minimum": 0},
            "parity": {
                "type": "object",
                "required": [
                    "serial_sha256",
                    "mmap_sha256",
                    "sharded_sha256",
                    "bit_identical",
                ],
                "properties": {
                    "serial_sha256": {"type": "string"},
                    "mmap_sha256": {"type": "string"},
                    "sharded_sha256": {"type": "string"},
                    "bit_identical": {"type": "boolean"},
                },
            },
            "oocore": {
                "type": "object",
                "properties": {
                    "mapped_bytes": {"type": "integer", "minimum": 0},
                    "pages_touched": {"type": "integer", "minimum": 0},
                },
            },
            "gates": {
                "type": "object",
                "required": ["rss_bound_frac", "stream_factor_min", "passed"],
                "properties": {
                    "rss_bound_frac": {"type": "number", "minimum": 0},
                    "stream_factor_min": {"type": "number", "minimum": 0},
                    "passed": {"type": "boolean"},
                },
            },
            "timings": {
                "type": "object",
                "required": ["peak_rss_delta_bytes", "rss_over_stream"],
                "properties": {
                    "peak_rss_delta_bytes": {"type": "integer", "minimum": 0},
                    "rss_over_stream": {"type": "number", "minimum": 0},
                },
            },
        },
    }
)

#: ``BENCH_serve.json`` — written by ``benchmarks/bench_serve.py``.
#: Parity hashes and gate verdicts are deterministic at a fixed seed;
#: every load-dependent number (latencies, throughput, shed counts, RSS
#: and queue-depth samples) lives under ``timings`` — how *much* load a
#: host absorbs varies, that overload was shed and accounted does not.
BENCH_SERVE_SCHEMA: dict = _with_common(
    {
        "required": ["title", "parity", "gates", "timings"],
        "properties": {
            "title": {"type": "string"},
            "context": {
                "required": ["workers", "mode", "max_fuse", "tenants"],
                "properties": {
                    "workers": {"type": "integer", "minimum": 0},
                    "mode": {"type": "string"},
                    "max_fuse": {"type": "integer", "minimum": 1},
                    "tenants": {"type": "integer", "minimum": 1},
                    "fusion_window_ms": {"type": "number", "minimum": 0},
                    "inflight_budget_bytes": {"type": "integer", "minimum": 1},
                    "max_queue": {"type": "integer", "minimum": 1},
                },
            },
            "parity": {
                "type": "object",
                "required": [
                    "direct_sha256",
                    "served_sha256",
                    "fused_bit_identical",
                    "degrade_bit_identical",
                    "bit_identical",
                ],
                "properties": {
                    "direct_sha256": {"type": "string"},
                    "served_sha256": {"type": "string"},
                    "fused_bit_identical": {"type": "boolean"},
                    "degrade_bit_identical": {"type": "boolean"},
                    "bit_identical": {"type": "boolean"},
                },
            },
            "gates": {
                "type": "object",
                "required": [
                    "overload_shed_nonzero",
                    "accounting_reconciles",
                    "admitted_p99_bounded",
                    "passed",
                ],
                "properties": {
                    "overload_shed_nonzero": {"type": "boolean"},
                    "accounting_reconciles": {"type": "boolean"},
                    "admitted_p99_bounded": {"type": "boolean"},
                    "passed": {"type": "boolean"},
                },
            },
            "timings": {
                "type": "object",
                "required": ["baseline", "overload"],
                "properties": {
                    "baseline": {
                        "type": "object",
                        "required": ["offered_rps", "completed", "shed", "p99_ms"],
                        "properties": {
                            "offered_rps": {"type": "number", "minimum": 0},
                            "completed": {"type": "integer", "minimum": 0},
                            "shed": {"type": "integer", "minimum": 0},
                            "p50_ms": {"type": "number", "minimum": 0},
                            "p99_ms": {"type": "number", "minimum": 0},
                        },
                    },
                    "overload": {
                        "type": "object",
                        "required": [
                            "offered_rps",
                            "offered_over_capacity",
                            "completed",
                            "shed",
                            "p99_ms",
                            "peak_rss_delta_bytes",
                            "max_queue_depth",
                        ],
                        "properties": {
                            "offered_rps": {"type": "number", "minimum": 0},
                            "offered_over_capacity": {"type": "number", "minimum": 0},
                            "completed": {"type": "integer", "minimum": 0},
                            "shed": {"type": "integer", "minimum": 0},
                            "p50_ms": {"type": "number", "minimum": 0},
                            "p99_ms": {"type": "number", "minimum": 0},
                            "peak_rss_delta_bytes": {"type": "integer", "minimum": 0},
                            "max_queue_depth": {"type": "integer", "minimum": 0},
                        },
                    },
                },
            },
        },
    }
)

#: ``BENCH_adaptive.json`` — written by ``benchmarks/bench_adaptive.py``.
#: Byte totals of the *fixed* plan are deterministic at a fixed seed;
#: everything the adaptive selection or the clock can move (the
#: calibrated profile, per-entry speedups, adaptive byte totals via the
#: profile-driven plan choice) carries a timing-key suffix.
BENCH_ADAPTIVE_SCHEMA: dict = _with_common(
    {
        "required": ["profile", "entries", "geomean", "gates"],
        "properties": {
            "context": {
                "required": [
                    "suite_count", "suite_scale", "block_bytes", "repeats",
                    "profile_source",
                ],
                "properties": {
                    "suite_count": {"type": "integer", "minimum": 1},
                    "suite_scale": {"type": "number", "minimum": 0},
                    "block_bytes": {"type": "integer", "minimum": 1},
                    "repeats": {"type": "integer", "minimum": 1},
                    "profile_source": {"type": "string"},
                },
            },
            "profile": {
                "type": "object",
                "required": [
                    "delta_mb_per_s", "snappy_mb_per_s", "huffman_mb_per_s",
                    "link_mb_per_s",
                ],
                "properties": {
                    "delta_mb_per_s": {"type": "number", "minimum": 0},
                    "snappy_mb_per_s": {"type": "number", "minimum": 0},
                    "huffman_mb_per_s": {"type": "number", "minimum": 0},
                    "link_mb_per_s": {"type": "number", "minimum": 0},
                },
            },
            "entries": {
                "type": "array",
                "min_items": 1,
                "items": {
                    "type": "object",
                    "required": [
                        "name", "kind", "nnz", "nblocks", "fixed_bytes",
                        "adaptive_bytes_ratio", "bytes_win_ratio",
                        "fixed_decode_seconds", "adaptive_decode_seconds",
                        "decode_speedup", "est_decode_speedup",
                        "index_table_kept", "value_table_kept",
                        "tagged_records",
                    ],
                    "properties": {
                        "name": {"type": "string"},
                        "kind": {"type": "string"},
                        "nnz": {"type": "integer", "minimum": 1},
                        "nblocks": {"type": "integer", "minimum": 1},
                        "fixed_bytes": {"type": "integer", "minimum": 1},
                        "adaptive_bytes_ratio": {"type": "number", "minimum": 0},
                        "bytes_win_ratio": {"type": "number", "minimum": 0},
                        "fixed_decode_seconds": {"type": "number", "minimum": 0},
                        "adaptive_decode_seconds": {"type": "number", "minimum": 0},
                        "decode_speedup": {"type": "number", "minimum": 0},
                        "est_decode_speedup": {"type": "number", "minimum": 0},
                        "index_table_kept": {"type": "boolean"},
                        "value_table_kept": {"type": "boolean"},
                        "tagged_records": {"type": "integer", "minimum": 1},
                    },
                },
            },
            "geomean": {
                "type": "object",
                "required": [
                    "bytes_win_ratio", "decode_speedup", "est_decode_speedup",
                ],
                "properties": {
                    "bytes_win_ratio": {"type": "number", "minimum": 0},
                    "decode_speedup": {"type": "number", "minimum": 0},
                    "est_decode_speedup": {"type": "number", "minimum": 0},
                },
            },
            "gates": {
                "type": "object",
                "required": [
                    "bytes_not_worse", "decode_not_worse", "best_axis_gain",
                    "passed",
                ],
                "properties": {
                    "bytes_not_worse": {"type": "boolean"},
                    "decode_not_worse": {"type": "boolean"},
                    "best_axis_gain": {"type": "number", "minimum": 0},
                    "passed": {"type": "boolean"},
                },
            },
        },
    }
)

#: ``BENCH_solvers.json`` — written by ``benchmarks/bench_solvers.py``.
#: Iteration counts, byte totals, residuals, and parity hashes are
#: deterministic at a fixed seed; per-call SpMV timings and the
#: warm-over-cold ratios are wall-clock and carry timing-key suffixes.
BENCH_SOLVERS_SCHEMA: dict = _with_common(
    {
        "required": ["matrices", "cg", "pagerank", "parity", "gates"],
        "properties": {
            "context": {
                "required": ["block_bytes", "warm_repeats"],
                "properties": {
                    "block_bytes": {"type": "integer", "minimum": 12},
                    "warm_repeats": {"type": "integer", "minimum": 1},
                },
            },
            "matrices": {
                "type": "array",
                "min_items": 1,
                "items": {
                    "type": "object",
                    "required": [
                        "name", "nblocks", "nnz", "cold_seconds",
                        "warm_seconds", "warm_over_cold_ratio",
                    ],
                    "properties": {
                        "name": {"type": "string"},
                        "nblocks": {"type": "integer", "minimum": 1},
                        "nnz": {"type": "integer", "minimum": 1},
                        "cold_seconds": {"type": "number", "minimum": 0},
                        "warm_seconds": {"type": "number", "minimum": 0},
                        "warm_over_cold_ratio": {"type": "number", "minimum": 0},
                    },
                },
            },
            "warm_over_cold_geomean_ratio": {"type": "number", "minimum": 0},
            "cg": {
                "type": "object",
                "required": [
                    "iterations", "converged", "residual", "dram_bytes",
                    "decode_once_bytes", "vector_bytes",
                    "traffic_budget_bytes", "sha256",
                ],
                "properties": {
                    "iterations": {"type": "integer", "minimum": 1},
                    "converged": {"type": "boolean"},
                    "residual": {"type": "number", "minimum": 0},
                    "dram_bytes": {"type": "integer", "minimum": 1},
                    "decode_once_bytes": {"type": "integer", "minimum": 1},
                    "vector_bytes": {"type": "integer", "minimum": 1},
                    "traffic_budget_bytes": {"type": "integer", "minimum": 1},
                    "sha256": {"type": "string"},
                },
            },
            "pagerank": {
                "type": "object",
                "required": ["iterations", "converged", "residual", "sha256"],
                "properties": {
                    "iterations": {"type": "integer", "minimum": 1},
                    "converged": {"type": "boolean"},
                    "residual": {"type": "number", "minimum": 0},
                    "sha256": {"type": "string"},
                },
            },
            "parity": {
                "type": "object",
                "required": ["configs_checked", "bit_identical", "mismatches"],
                "properties": {
                    "configs_checked": {"type": "integer", "minimum": 2},
                    "bit_identical": {"type": "boolean"},
                    "mismatches": {"type": "array", "items": {"type": "string"}},
                },
            },
            "gates": {
                "type": "object",
                "required": [
                    "warm_over_cold_max", "traffic_within_budget",
                    "bit_identical", "passed",
                ],
                "properties": {
                    "warm_over_cold_max": {"type": "number", "minimum": 0},
                    "traffic_within_budget": {"type": "boolean"},
                    "bit_identical": {"type": "boolean"},
                    "passed": {"type": "boolean"},
                },
            },
        },
    }
)

#: All BENCH artifact schemas by ``exp_id``.
BENCH_SCHEMAS: dict[str, dict] = {
    "headline": BENCH_HEADLINE_SCHEMA,
    "bench_pipeline": BENCH_PIPELINE_SCHEMA,
    "ablation": BENCH_ABLATION_SCHEMA,
    "fig12": BENCH_FIG12_SCHEMA,
    "fig16": BENCH_FIG16_SCHEMA,
    "oocore": BENCH_OOCORE_SCHEMA,
    "serve": BENCH_SERVE_SCHEMA,
    "adaptive": BENCH_ADAPTIVE_SCHEMA,
    "solvers": BENCH_SOLVERS_SCHEMA,
}
