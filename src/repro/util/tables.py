"""Minimal ASCII/markdown table renderer used by the experiment harness to
print the same rows the paper's figures plot.
"""

from __future__ import annotations

from collections.abc import Sequence


class Table:
    """A simple column-aligned table.

    Rows are formatted eagerly on ``add_row`` so non-string cells may be
    passed with a per-column format spec.
    """

    def __init__(self, columns: Sequence[str], formats: Sequence[str] | None = None):
        if not columns:
            raise ValueError("table needs at least one column")
        if formats is not None and len(formats) != len(columns):
            raise ValueError("formats length must match columns")
        self.columns = list(columns)
        self.formats = list(formats) if formats is not None else ["{}"] * len(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} cells, got {len(cells)}")
        self.rows.append(
            [fmt.format(cell) for fmt, cell in zip(self.formats, cells)]
        )

    def _widths(self) -> list[int]:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render as an aligned plain-text table."""
        widths = self._widths()
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "  ".join("-" * w for w in widths)
        body = [
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in self.rows
        ]
        return "\n".join([header, rule, *body])

    def render_markdown(self) -> str:
        """Render as a GitHub-flavored markdown table (for EXPERIMENTS.md)."""
        header = "| " + " | ".join(self.columns) + " |"
        rule = "|" + "|".join("---" for _ in self.columns) + "|"
        body = ["| " + " | ".join(row) + " |" for row in self.rows]
        return "\n".join([header, rule, *body])

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
