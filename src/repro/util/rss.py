"""Resident-set-size measurement for the out-of-core bounded-RSS gate.

Stdlib-only: reads ``VmRSS`` from ``/proc/self/status`` (Linux). A
:class:`RssSampler` polls it on a daemon thread so a streaming run can be
bracketed and its *peak* residency compared against the container size —
the contract ``benchmarks/bench_oocore.py`` gates on. On platforms
without procfs the reader returns ``None`` and the gate self-skips rather
than fabricating numbers.
"""

from __future__ import annotations

import threading
import time


def read_rss_bytes() -> int | None:
    """Current process resident set size in bytes, or None off-Linux."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    # "VmRSS:     123456 kB"
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


class RssSampler:
    """Sample peak RSS on a daemon thread while a workload runs.

    Usage::

        with RssSampler() as rss:
            stream_the_matrix()
        print(rss.baseline, rss.peak, rss.peak_delta)

    ``baseline`` is the RSS at entry, ``peak`` the maximum seen by any
    sample (including one final sample at exit), ``peak_delta`` their
    difference clamped at zero — the workload's own residency high-water
    mark, independent of whatever the process had resident before.
    """

    def __init__(self, interval_s: float = 0.005):
        self.interval_s = interval_s
        self.baseline: int | None = None
        self.peak: int | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def supported(self) -> bool:
        return read_rss_bytes() is not None

    @property
    def peak_delta(self) -> int | None:
        if self.baseline is None or self.peak is None:
            return None
        return max(0, self.peak - self.baseline)

    def _sample(self) -> None:
        rss = read_rss_bytes()
        if rss is not None and (self.peak is None or rss > self.peak):
            self.peak = rss

    def _run(self) -> None:
        while not self._stop.is_set():
            self._sample()
            self._stop.wait(self.interval_s)

    def __enter__(self) -> "RssSampler":
        self.baseline = read_rss_bytes()
        self.peak = self.baseline
        if self.baseline is not None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="rss-sampler", daemon=True
            )
            self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._sample()
