"""The paper's 7 representative matrices (Section IV-B / Figs. 12, 14-17).

copter2, g7jac160, gas_sensor, m3dc1_a30, matrix-new_3, shipsec1, xenon1.

Without network access to sparse.tamu.edu we build structure-matched
synthetic stand-ins: each entry records its (approximate) published
SuiteSparse statistics in :class:`~repro.collection.metadata.MatrixMeta`
and a generator recipe that reproduces the *structural class* — FEM mesh,
economics Jacobian, 3-D thermal FEM, fusion node-block, device simulation,
ship-section shells, materials lattice — at ``scale`` x the published nnz.
Compression (bytes/nnz) depends on structure, not absolute size, so the
stand-ins exercise the same code paths the real downloads would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collection import generators
from repro.collection.metadata import MatrixMeta
from repro.sparse.csr import CSRMatrix
from repro.util.rng import derive_seed

REPRESENTATIVE_NAMES = (
    "copter2",
    "g7jac160",
    "gas_sensor",
    "m3dc1_a30",
    "matrix-new_3",
    "shipsec1",
    "xenon1",
)

#: Approximate published statistics (rows, cols, nnz, symmetric). Exact
#: values don't affect the model: only the scaled stand-in is ever built.
_META: dict[str, MatrixMeta] = {
    "copter2": MatrixMeta(
        "copter2", "fem-mesh", "CFD: helicopter rotor mesh", 55476, 55476, 759952, True
    ),
    "g7jac160": MatrixMeta(
        "g7jac160", "jacobian", "economics: Jacobian (Hollinger)", 47430, 47430, 656616, False
    ),
    "gas_sensor": MatrixMeta(
        "gas_sensor", "fem-3d", "FEM: 3-D microsensor thermal model", 66917, 66917, 1703365, True
    ),
    "m3dc1_a30": MatrixMeta(
        "m3dc1_a30", "node-blocks", "fusion: M3D-C1 MHD solver", 278113, 278113, 49000000, False
    ),
    "matrix-new_3": MatrixMeta(
        "matrix-new_3", "device", "semiconductor device simulation", 125329, 125329, 893984, False
    ),
    "shipsec1": MatrixMeta(
        "shipsec1", "fem-shells", "structural: ship section", 140874, 140874, 7813404, True
    ),
    "xenon1": MatrixMeta(
        "xenon1", "materials", "materials: xenon crystal", 48600, 48600, 1181120, False
    ),
}


@dataclass(frozen=True)
class RepresentativeEntry:
    """A named representative matrix: metadata + scaled stand-in recipe.

    If ``fixed_nnz`` is set it overrides proportional scaling — useful so
    every representative offers enough 8 KB blocks to keep 64 lanes fed
    without making the largest one (m3dc1_a30, 49M nnz) impractically big
    for the pure-Python pipeline.
    """

    meta: MatrixMeta
    scale: float
    seed: int
    fixed_nnz: int | None = None

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def target_nnz(self) -> int:
        if self.fixed_nnz is not None:
            return max(1000, self.fixed_nnz)
        return max(1000, int(round(self.meta.true_nnz * self.scale)))

    def build(self) -> CSRMatrix:
        """Construct the structure-matched stand-in."""
        t = self.target_nnz
        name = self.meta.name
        seed = self.seed
        if name == "copter2":
            # Irregular FEM mesh: moderate row degree, wide jitter.
            deg = 14
            return generators.fem_stencil(max(64, t // deg), row_degree=deg, jitter=90, seed=seed, value_style="palette32")
        if name == "g7jac160":
            # Economics Jacobian: sparse rows, long-range irregular coupling.
            deg = 14
            n = max(64, t // deg)
            return generators.fem_stencil(n, row_degree=deg, jitter=min(2000, n // 3), seed=seed)
        if name == "gas_sensor":
            nx = max(4, int(round((t / 7) ** (1 / 3))))
            return generators.mesh3d(nx, seed=seed, value_style="palette32")
        if name == "m3dc1_a30":
            # Fusion solver: dense node blocks.
            bs = 36
            nb = max(1, t // int(bs * bs * 0.6))
            return generators.symmetric_blocks(nb, bs, density=0.6, seed=seed)
        if name == "matrix-new_3":
            n = max(64, int(round((t * 120) ** 0.5)))
            return generators.unstructured(
                n, density=min(1.0, t / (n * n)), seed=seed, value_style="smooth"
            )
        if name == "shipsec1":
            # Shell elements: dense banded rows.
            deg = 55
            return generators.fem_stencil(max(64, t // deg), row_degree=deg, jitter=45, seed=seed, value_style="palette32")
        if name == "xenon1":
            bw = 12
            return generators.banded(max(64, t // (2 * bw + 1)), bandwidth=bw, fill=0.97, seed=seed, value_style="palette32")
        raise ValueError(f"unknown representative {name!r}")


def representative_suite(
    scale: float = 0.01, seed: int = 2019, target_nnz: int | None = None
) -> tuple[RepresentativeEntry, ...]:
    """The 7 representative entries.

    Args:
        scale: proportional nnz scale against the published sizes.
        seed: generator seed base.
        target_nnz: if given, size *every* entry to ~this many non-zeros
            instead (uniform stand-in size; relative published sizes are
            recorded in the metadata either way).
    """
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    if target_nnz is not None and target_nnz < 1:
        raise ValueError("target_nnz must be positive")
    return tuple(
        RepresentativeEntry(
            meta=_META[name],
            scale=scale,
            seed=derive_seed(seed, "rep", name),
            fixed_nnz=target_nnz,
        )
        for name in REPRESENTATIVE_NAMES
    )
