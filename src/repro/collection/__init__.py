"""Synthetic stand-in for the TAMU (SuiteSparse) matrix collection.

The paper evaluates on 369 matrices — the largest 20% of the collection,
nnz 1.0e6-8.0e8 (median 4.9e6), sparsity 9.4e-7%-19% (median 0.019%),
mixing "banded, diagonal, and symmetric structure, as well as unstructured
matrices" (Section IV-B). The collection itself cannot be downloaded in
this offline environment, so this package generates a suite with the same
*structural class mix* and the same *distribution shape*, scaled down
~100x by default (compression in bytes/nnz is scale-free; see DESIGN.md).

Real SuiteSparse ``.mtx`` downloads can be loaded instead via
:func:`repro.sparse.read_matrix_market`.

* :mod:`~repro.collection.generators` — structural-class generators.
* :mod:`~repro.collection.suite` — the 369-entry synthetic suite.
* :mod:`~repro.collection.representative` — the paper's 7 named matrices
  (copter2, g7jac160, gas_sensor, m3dc1_a30, matrix-new_3, shipsec1,
  xenon1) as structure-matched synthetic stand-ins with their published
  metadata.
"""

from repro.collection import generators
from repro.collection.metadata import MatrixMeta
from repro.collection.representative import REPRESENTATIVE_NAMES, representative_suite
from repro.collection.suite import SuiteConfig, SuiteEntry, build_suite

__all__ = [
    "generators",
    "MatrixMeta",
    "SuiteConfig",
    "SuiteEntry",
    "build_suite",
    "REPRESENTATIVE_NAMES",
    "representative_suite",
]
