"""Matrix metadata records (mirroring SuiteSparse's descriptive fields)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MatrixMeta:
    """Descriptive metadata for a collection entry.

    For the 7 representative matrices, ``true_rows``/``true_nnz`` record the
    published SuiteSparse statistics; the synthetic stand-in is scaled down
    but structure-matched (see :mod:`repro.collection.representative`).
    """

    name: str
    kind: str
    domain: str
    true_rows: int
    true_cols: int
    true_nnz: int
    symmetric: bool = False

    @property
    def true_density(self) -> float:
        total = self.true_rows * self.true_cols
        return self.true_nnz / total if total else 0.0
