"""The synthetic 369-entry suite.

Matches the paper's Section IV-B population shape, scaled by ``scale``
(default 0.01, i.e. ~100x smaller matrices so the pure-Python pipeline
runs in minutes):

* 369 entries (the largest-20% slice of the collection);
* target nnz log-uniform over [1.0e6, 8.0e8] x scale, median ~4.9e6 x scale;
* structural class mix: banded / diagonal / 2-D mesh / 3-D mesh / FEM /
  symmetric-block / power-law graph / unstructured;
* per-entry deterministic seeds.

Entries are lazy: ``entry.build()`` constructs the CSR matrix on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.collection import generators
from repro.sparse.csr import CSRMatrix
from repro.util.rng import derive_seed, seeded_rng

#: The paper's suite size.
PAPER_SUITE_SIZE = 369
#: The paper's nnz range for the selected matrices.
PAPER_NNZ_RANGE = (1.0e6, 8.0e8)

#: (class name, relative weight) — weighted toward PDE/FEM structure, as
#: the largest-20% slice of SuiteSparse is.
_CLASS_MIX: tuple[tuple[str, float], ...] = (
    ("banded", 0.16),
    ("diagonals", 0.10),
    ("mesh2d", 0.14),
    ("mesh3d", 0.12),
    ("fem", 0.18),
    ("symblocks", 0.10),
    ("graph", 0.10),
    ("unstructured", 0.10),
)


@dataclass(frozen=True)
class SuiteConfig:
    """Suite generation parameters."""

    count: int = PAPER_SUITE_SIZE
    scale: float = 0.01
    seed: int = 2019  # publication year; any fixed value works

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be positive")
        if not 0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")


@dataclass(frozen=True)
class SuiteEntry:
    """One lazy suite entry."""

    name: str
    kind: str
    target_nnz: int
    seed: int

    def build(self) -> CSRMatrix:
        """Construct the matrix (deterministic in the entry seed)."""
        return _build_matrix(self.kind, self.target_nnz, self.seed)


def _build_matrix(kind: str, target_nnz: int, seed: int) -> CSRMatrix:
    """Size each generator so its output lands near ``target_nnz``."""
    t = max(64, target_nnz)
    if kind == "banded":
        bw = 3 + seed % 7
        n = max(8, t // (2 * bw + 1))
        return generators.banded(n, bandwidth=bw, fill=0.9, seed=seed)
    if kind == "diagonals":
        ndiags = 5 + seed % 4
        offsets = [0, 1, -1] + [((seed >> s) % 200 + 2) * (-1) ** s for s in range(ndiags - 3)]
        n = max(8, t // ndiags)
        return generators.diagonals(n, offsets=offsets, seed=seed)
    if kind == "mesh2d":
        nx = max(3, int(round((t / 5) ** 0.5)))
        return generators.mesh2d(nx, seed=seed)
    if kind == "mesh3d":
        nx = max(3, int(round((t / 7) ** (1 / 3))))
        return generators.mesh3d(nx, seed=seed)
    if kind == "fem":
        deg = 20 + seed % 16
        n = max(8, t // deg)
        return generators.fem_stencil(n, row_degree=deg, jitter=30 + seed % 50, seed=seed)
    if kind == "symblocks":
        bs = 16 + seed % 17
        per_block = int(bs * bs * 0.5)
        nb = max(1, t // per_block)
        return generators.symmetric_blocks(nb, bs, density=0.5, seed=seed)
    if kind == "graph":
        attach = 4 + seed % 5
        n = max(8, t // (2 * attach))
        return generators.powerlaw_graph(n, attach=attach, seed=seed)
    if kind == "unstructured":
        n = max(8, int(round((t * 40) ** 0.5)))
        return generators.unstructured(n, density=min(1.0, t / (n * n)), seed=seed)
    raise ValueError(f"unknown structural class {kind!r}")


def build_suite(config: SuiteConfig | None = None) -> tuple[SuiteEntry, ...]:
    """Generate the suite entry list (cheap; matrices build lazily).

    The nnz distribution is log-uniform over the paper's range scaled by
    ``config.scale``; entry class assignment follows the weighted mix.
    """
    config = config or SuiteConfig()
    return _build_suite_cached(config.count, config.scale, config.seed)


@lru_cache(maxsize=8)
def _build_suite_cached(count: int, scale: float, seed: int) -> tuple[SuiteEntry, ...]:
    rng = seeded_rng(derive_seed(seed, "suite-shape"))
    lo, hi = PAPER_NNZ_RANGE
    log_nnz = rng.uniform(np.log(lo * scale), np.log(hi * scale), size=count)
    # Pull the median toward the paper's 4.9e6 x scale (log-uniform's median
    # would otherwise sit at the geometric midpoint ~2.8e7 x scale).
    target_median = np.log(4.9e6 * scale)
    log_nnz += target_median - np.median(log_nnz)

    kinds = [k for k, _ in _CLASS_MIX]
    weights = np.array([w for _, w in _CLASS_MIX])
    weights = weights / weights.sum()
    assigned = rng.choice(len(kinds), size=count, p=weights)

    entries = []
    for i in range(count):
        kind = kinds[int(assigned[i])]
        entries.append(
            SuiteEntry(
                name=f"synth_{kind}_{i:03d}",
                kind=kind,
                target_nnz=int(round(np.exp(log_nnz[i]))),
                seed=derive_seed(seed, "entry", i),
            )
        )
    return tuple(entries)
