"""Structural-class matrix generators.

Each generator produces a :class:`~repro.sparse.csr.CSRMatrix` with the
index structure of one family found in the TAMU collection. Compressibility
under Delta-Snappy-Huffman is driven by this structure — banded/diagonal
matrices delta to near-constant index streams, meshes to short repeating
motifs, graphs to high-entropy streams — so matching the class mix matches
the compression distribution.

All generators are deterministic in ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.util.rng import seeded_rng


def _values(rng: np.random.Generator, n: int, style: str) -> np.ndarray:
    """Draw non-zero values.

    ``stencil``: a handful of exact coefficients (constant-coefficient
    discretizations) — the value stream all but disappears under Snappy.
    ``smooth``: a 256-entry palette of doubles (FEM assembly from repeated
    element shapes / quantized material constants) — partially
    compressible, the common case in the TAMU collection.
    ``random``: full-entropy normals — the value stream stays ~8 B.
    """
    if style == "stencil":
        palette = np.array([-4.0, 1.0, 1.0, 1.0, 1.0, -1.0, 2.0, 0.5])
        return palette[rng.integers(0, len(palette), size=n)]
    if style == "smooth":
        palette = rng.normal(size=256)
        return palette[rng.integers(0, 256, size=n)]
    if style == "palette32":
        # FEM assembly from a few element shapes / material constants:
        # strongly repeated doubles, the paper's best-compressing class.
        palette = rng.normal(size=32)
        return palette[rng.integers(0, 32, size=n)]
    if style == "random":
        return rng.normal(size=n)
    raise ValueError(f"unknown value style {style!r}")


def banded(
    n: int,
    bandwidth: int = 5,
    fill: float = 1.0,
    seed: int = 0,
    value_style: str = "smooth",
) -> CSRMatrix:
    """Banded matrix: all entries within ``bandwidth`` of the diagonal,
    each present with probability ``fill`` (structural engineering /
    1-D discretizations)."""
    if n < 1 or bandwidth < 0:
        raise ValueError("invalid banded parameters")
    if not 0 < fill <= 1.0:
        raise ValueError("fill must be in (0, 1]")
    rng = seeded_rng(seed)
    rows_list = []
    cols_list = []
    for k in range(-bandwidth, bandwidth + 1):
        length = n - abs(k)
        if length <= 0:
            continue
        keep = rng.random(length) < fill if fill < 1.0 else np.ones(length, bool)
        r = np.arange(length)[keep] + max(0, -k)
        rows_list.append(r)
        cols_list.append(r + k)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    vals = _values(rng, len(rows), value_style)
    return COOMatrix((n, n), rows, cols, vals).to_csr()


def diagonals(
    n: int,
    offsets: list[int] | None = None,
    seed: int = 0,
    value_style: str = "stencil",
) -> CSRMatrix:
    """A few scattered full diagonals (circuit / finite-difference
    operators with long-range coupling)."""
    if offsets is None:
        offsets = [0, 1, -1, 64, -64]
    rng = seeded_rng(seed)
    rows_list, cols_list = [], []
    for k in offsets:
        length = n - abs(k)
        if length <= 0:
            continue
        r = np.arange(length) + max(0, -k)
        rows_list.append(r)
        cols_list.append(r + k)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    vals = _values(rng, len(rows), value_style)
    return COOMatrix((n, n), rows, cols, vals).to_csr()


def mesh2d(
    nx: int, ny: int | None = None, seed: int = 0, value_style: str = "smooth"
) -> CSRMatrix:
    """5-point stencil on an nx x ny grid (2-D PDE discretization).

    ``value_style="exact"`` gives the constant-coefficient Laplacian
    (diagonal 4, neighbors -1); the default draws variable coefficients,
    matching typical TAMU entries.
    """
    ny = ny if ny is not None else nx
    if nx < 1 or ny < 1:
        raise ValueError("grid dims must be positive")
    rng = seeded_rng(seed)
    n = nx * ny
    idx = np.arange(n)
    ix = idx % nx
    iy = idx // nx
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 4.0) if value_style == "exact" else 4.0 + _values(rng, n, value_style)]
    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        jx, jy = ix + dx, iy + dy
        ok = (0 <= jx) & (jx < nx) & (0 <= jy) & (jy < ny)
        k = int(ok.sum())
        rows.append(idx[ok])
        cols.append((jy * nx + jx)[ok])
        vals.append(np.full(k, -1.0) if value_style == "exact" else -1.0 + 0.1 * _values(rng, k, value_style))
    return COOMatrix(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    ).to_csr()


def mesh3d(
    nx: int,
    ny: int | None = None,
    nz: int | None = None,
    seed: int = 0,
    value_style: str = "smooth",
) -> CSRMatrix:
    """7-point stencil on an nx x ny x nz grid (3-D PDE / FEM class).

    ``value_style="exact"`` gives the constant-coefficient Laplacian.
    """
    ny = ny if ny is not None else nx
    nz = nz if nz is not None else nx
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dims must be positive")
    rng = seeded_rng(seed)
    n = nx * ny * nz
    idx = np.arange(n)
    ix = idx % nx
    iy = (idx // nx) % ny
    iz = idx // (nx * ny)
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 6.0) if value_style == "exact" else 6.0 + _values(rng, n, value_style)]
    for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)):
        jx, jy, jz = ix + dx, iy + dy, iz + dz
        ok = (
            (0 <= jx) & (jx < nx) & (0 <= jy) & (jy < ny) & (0 <= jz) & (jz < nz)
        )
        k = int(ok.sum())
        rows.append(idx[ok])
        cols.append((jz * nx * ny + jy * nx + jx)[ok])
        vals.append(np.full(k, -1.0) if value_style == "exact" else -1.0 + 0.1 * _values(rng, k, value_style))
    return COOMatrix(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    ).to_csr()


def unstructured(n: int, density: float, seed: int = 0, value_style: str = "random") -> CSRMatrix:
    """Uniformly random pattern (worst case for delta; optimization /
    statistics class)."""
    if n < 1:
        raise ValueError("n must be positive")
    if not 0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    rng = seeded_rng(seed)
    nnz = max(1, int(round(density * n * n)))
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    vals = _values(rng, nnz, value_style)
    return COOMatrix((n, n), rows, cols, vals).to_csr()


def powerlaw_graph(n: int, attach: int = 4, seed: int = 0) -> CSRMatrix:
    """Scale-free graph adjacency (web/social-network class), preferential
    attachment. Values are 1.0 (unweighted edges), highly compressible in
    the value stream but irregular in the index stream."""
    if n < 2 or attach < 1:
        raise ValueError("need n >= 2, attach >= 1")
    rng = seeded_rng(seed)
    # Barabasi-Albert with the repeated-nodes trick: O(edges).
    targets = list(range(min(attach, n)))
    repeated: list[int] = list(targets)
    edges: list[tuple[int, int]] = []
    for v in range(len(targets), n):
        picks = rng.choice(len(repeated), size=min(attach, len(repeated)), replace=False)
        chosen = {repeated[p] for p in picks}
        for u in chosen:
            edges.append((v, u))
            repeated.append(u)
            repeated.append(v)
    if not edges:
        edges = [(1, 0)]
    arr = np.array(edges, dtype=np.int64)
    rows = np.concatenate([arr[:, 0], arr[:, 1]])
    cols = np.concatenate([arr[:, 1], arr[:, 0]])
    vals = np.ones(len(rows))
    return COOMatrix((n, n), rows, cols, vals).to_csr()


def symmetric_blocks(
    nblocks: int, block_size: int, density: float = 0.5, seed: int = 0
) -> CSRMatrix:
    """Block-diagonal with dense-ish symmetric blocks (chemistry / model
    reduction class). Index streams repeat block-locally."""
    if nblocks < 1 or block_size < 1:
        raise ValueError("invalid block parameters")
    if not 0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    rng = seeded_rng(seed)
    n = nblocks * block_size
    rows_list, cols_list, vals_list = [], [], []
    for b in range(nblocks):
        base = b * block_size
        mask = rng.random((block_size, block_size)) < density
        mask = np.triu(mask)
        r, c = np.nonzero(mask | mask.T)
        v = _values(rng, len(r), "smooth")
        rows_list.append(r + base)
        cols_list.append(c + base)
        vals_list.append(v)
    return COOMatrix(
        (n, n),
        np.concatenate(rows_list),
        np.concatenate(cols_list),
        np.concatenate(vals_list),
    ).to_csr()


def fem_stencil(
    n: int,
    row_degree: int = 27,
    jitter: int = 40,
    seed: int = 0,
    value_style: str = "smooth",
) -> CSRMatrix:
    """FEM-like rows: each row couples to ~row_degree neighbors clustered
    around the diagonal with bounded jitter (shipsec1/copter2 class)."""
    if n < 1 or row_degree < 1 or jitter < 0:
        raise ValueError("invalid fem parameters")
    rng = seeded_rng(seed)
    rows = np.repeat(np.arange(n), row_degree)
    offs = rng.integers(-jitter, jitter + 1, size=n * row_degree)
    cols = np.clip(rows + offs, 0, n - 1)
    vals = _values(rng, len(rows), value_style)
    return COOMatrix((n, n), rows, cols, vals).to_csr()
