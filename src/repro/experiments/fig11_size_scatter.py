"""Fig. 11 — Bytes per non-zero vs number of non-zeros (scatter).

The paper's finding: "no clear correlation of matrix compression ratio and
size, but good compression overall". We regenerate the scatter series and
quantify the (absence of) correlation on log(nnz) vs DSH bytes/nnz.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab
from repro.util.tables import Table

EXP_ID = "fig11"
TITLE = "Bytes per non-zero vs #non-zeros (DSH scatter)"


def run(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)

    nnzs, bpnnz = [], []
    for entry in lab.suite_entries():
        m = lab.matrix(entry.name, entry.build)
        plan = lab.plan(entry.name, m, "dsh")
        nnzs.append(m.nnz)
        bpnnz.append(plan.bytes_per_nnz)
    nnzs_arr = np.array(nnzs, dtype=float)
    b_arr = np.array(bpnnz, dtype=float)

    # The scatter itself, binned by nnz decade for a readable table.
    table = Table(
        ["nnz bin", "matrices", "min B/nnz", "median B/nnz", "max B/nnz"],
        formats=["{}", "{}", "{:.2f}", "{:.2f}", "{:.2f}"],
    )
    edges = np.logspace(
        np.log10(max(1.0, nnzs_arr.min())), np.log10(nnzs_arr.max() + 1), 6
    )
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (nnzs_arr >= lo) & (nnzs_arr < hi)
        if not mask.any():
            continue
        table.add_row(
            f"[{lo:.0f}, {hi:.0f})",
            int(mask.sum()),
            b_arr[mask].min(),
            float(np.median(b_arr[mask])),
            b_arr[mask].max(),
        )

    corr = float(np.corrcoef(np.log(nnzs_arr), b_arr)[0, 1]) if len(nnzs) > 2 else 0.0
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        table=table,
        headline={
            "corr_lognnz_vs_bpnnz": corr,
            "median_bpnnz": float(np.median(b_arr)),
        },
        paper={
            # The paper reports no number, only "no clear correlation";
            # we encode that as ~0.
            "corr_lognnz_vs_bpnnz": 0.0,
        },
        notes="Shape check: |corr| small — compression is structure-, not size-driven.",
    )
