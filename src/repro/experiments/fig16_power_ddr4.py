"""Fig. 16 — Raw and net memory power savings, 100 GB/s DDR4 system.

Iso-performance: keep the delivered SpMV bandwidth at 100 GB/s but stream
the compressed form from DRAM. Paper: max memory power 80 W; across the 7
representative matrices "the UDP saves an average 51 W (out of 80 W)" —
63% — net of UDP power.
"""

from __future__ import annotations

import numpy as np

from repro.core.power import iso_performance_power
from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab
from repro.memsys.dram import DDR4_100GBS, MemorySystem
from repro.util.tables import Table

EXP_ID = "fig16"
TITLE = "Raw and net memory power savings, DDR4 (100 GB/s, 80 W max)"


def run_on_memory(
    ctx: ExperimentContext,
    lab: MatrixLab,
    memory: MemorySystem,
    exp_id: str,
    title: str,
    paper_headline: dict[str, float],
) -> ExperimentResult:
    """Shared Fig. 16/17 engine."""
    table = Table(
        ["matrix", "B/nnz", "raw saving (W)", "#UDP", "UDP power (W)", "net saving (W)", "net %"],
        formats=["{}", "{:.2f}", "{:.2f}", "{}", "{:.2f}", "{:.2f}", "{:.1f}%"],
    )
    nets, fracs = [], []
    for rep in lab.representatives():
        m = lab.matrix(rep.name, rep.build)
        plan = lab.plan(rep.name, m, "dsh")
        udp = lab.udp_report(rep.name, m)
        scen = iso_performance_power(
            rep.name, plan, memory, udp.throughput_bytes_per_s
        )
        nets.append(scen.net_saving_w)
        fracs.append(scen.saving_fraction)
        table.add_row(
            rep.name,
            plan.bytes_per_nnz,
            scen.raw_saving_w,
            scen.n_udp,
            scen.udp_power_w,
            scen.net_saving_w,
            100 * scen.saving_fraction,
        )

    return ExperimentResult(
        exp_id=exp_id,
        title=title,
        table=table,
        headline={
            "avg_net_saving_w": float(np.mean(nets)),
            "avg_net_saving_frac": float(np.mean(fracs)),
            "baseline_power_w": memory.max_power_w,
        },
        paper=paper_headline,
        notes=(
            "Iso-performance: delivered bandwidth pinned at peak; DRAM "
            "streams the compressed form; UDP count sized to decode at "
            "line rate."
        ),
    )


def run(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)
    return run_on_memory(
        ctx,
        lab,
        DDR4_100GBS,
        EXP_ID,
        TITLE,
        paper_headline={
            "avg_net_saving_w": 51.0,
            "avg_net_saving_frac": 0.63,
            "baseline_power_w": 80.0,
        },
    )
