"""Headline — the paper's abstract/intro claims in one table.

* geometric-mean SpMV performance benefit: 2.4x;
* storage per non-zero: 12 -> ~5 bytes;
* UDP ~7x geometric-mean decompression throughput vs a 32-thread CPU;
* ~21.7 us geomean single-lane 8 KB block decode;
* CPU recoding wastes ~80% of cycles on pipeline flushes;
* memory power reduction at iso-performance: 63% DDR4 / 51% HBM2.
"""

from __future__ import annotations

import numpy as np

from repro.core.power import iso_performance_power
from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab
from repro.memsys.dram import DDR4_100GBS, HBM2_1TBS
from repro.util.geomean import geomean, geomean_ratio
from repro.util.tables import Table

EXP_ID = "headline"
TITLE = "Abstract-level claims, measured vs paper"


def run(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)

    # Suite-level compression & speedup.
    dsh_bpnnz, speedups = [], []
    for entry in lab.suite_entries():
        m = lab.matrix(entry.name, entry.build)
        plan = lab.plan(entry.name, m, "dsh")
        if plan.nnz:
            dsh_bpnnz.append(plan.bytes_per_nnz)
            speedups.append(12.0 / plan.bytes_per_nnz)

    # Representative-level decomp throughput, latency, waste, power.
    cpu_tputs, udp_tputs, latencies, wastes, net_ddr, net_hbm = [], [], [], [], [], []
    for rep in lab.representatives():
        m = lab.matrix(rep.name, rep.build)
        udp = lab.udp_report(rep.name, m)
        cpu = lab.cpu_report(rep.name, m, "cpu-snappy")
        plan = lab.plan(rep.name, m, "dsh")
        udp_tputs.append(udp.throughput_bytes_per_s)
        cpu_tputs.append(cpu.throughput_bytes_per_s)
        lat = udp.block_latencies_s
        if len(lat):
            latencies.append(float(np.median(lat)))
        wastes.append(lab.cpu_report(rep.name, m, "dsh").wasted_fraction)
        net_ddr.append(
            iso_performance_power(rep.name, plan, DDR4_100GBS, udp.throughput_bytes_per_s).saving_fraction
        )
        net_hbm.append(
            iso_performance_power(rep.name, plan, HBM2_1TBS, udp.throughput_bytes_per_s).saving_fraction
        )

    measured = {
        "gm_spmv_speedup": geomean(speedups),
        "gm_dsh_bytes_per_nnz": geomean(dsh_bpnnz),
        "gm_udp_over_cpu_decomp": geomean_ratio(udp_tputs, cpu_tputs),
        "gm_block_decode_us": geomean(latencies) * 1e6 if latencies else 0.0,
        "cpu_flush_waste_frac": float(np.mean(wastes)),
        "net_power_saving_ddr4": float(np.mean(net_ddr)),
        "net_power_saving_hbm2": float(np.mean(net_hbm)),
    }
    paper = {
        "gm_spmv_speedup": 2.4,
        "gm_dsh_bytes_per_nnz": 5.0,
        "gm_udp_over_cpu_decomp": 7.0,
        "gm_block_decode_us": 21.7,
        "cpu_flush_waste_frac": 0.80,
        "net_power_saving_ddr4": 0.63,
        "net_power_saving_hbm2": 0.51,
    }
    table = Table(["claim", "measured", "paper"], formats=["{}", "{:.3g}", "{:.3g}"])
    for key, value in measured.items():
        table.add_row(key, value, paper[key])

    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        table=table,
        headline=measured,
        paper=paper,
        notes="Suite/representatives are synthetic stand-ins; see DESIGN.md §3.",
    )
