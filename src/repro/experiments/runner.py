"""Experiment runner: regenerate every figure and (optionally) EXPERIMENTS.md.

Usage::

    python -m repro.experiments.runner --all            # quick profile
    python -m repro.experiments.runner --all --full     # paper-scale suite
    python -m repro.experiments.runner --exp fig10 fig12
    python -m repro.experiments.runner --all --write-md EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.experiments import (
    ablations,
    fig03_cpu_spmv,
    fig10_compressed_size,
    fig11_size_scatter,
    fig12_decomp_throughput,
    fig13_udp_scatter,
    fig14_spmv_ddr4,
    fig15_spmv_hbm2,
    fig16_power_ddr4,
    fig17_power_hbm2,
    headline,
)
from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab

ALL_EXPERIMENTS = {
    "fig03": fig03_cpu_spmv,
    "fig10": fig10_compressed_size,
    "fig11": fig11_size_scatter,
    "fig12": fig12_decomp_throughput,
    "fig13": fig13_udp_scatter,
    "fig14": fig14_spmv_ddr4,
    "fig15": fig15_spmv_hbm2,
    "fig16": fig16_power_ddr4,
    "fig17": fig17_power_hbm2,
    "headline": headline,
}

#: Ablation sweeps (design choices + future-work demos; not paper figures).
ABLATIONS = {
    "abl_stages": ablations.run_stages,
    "abl_blocksize": ablations.run_blocksize,
    "abl_stride": ablations.run_stride,
    "abl_rle": ablations.run_rle,
    "abl_shuffle": ablations.run_shuffle,
    "abl_attach": ablations.run_attach,
    "abl_reorder": ablations.run_reorder,
    "abl_spmm": ablations.run_spmm,
    "abl_des": ablations.run_des,
}


def run_experiments(
    names: list[str], ctx: ExperimentContext, lab: MatrixLab | None = None
) -> list[tuple[ExperimentResult, float]]:
    """Run the named experiments over one shared :class:`MatrixLab`."""
    lab = lab or MatrixLab(ctx)
    results = []
    for name in names:
        if name in ALL_EXPERIMENTS:
            fn = ALL_EXPERIMENTS[name].run
        elif name in ABLATIONS:
            fn = ABLATIONS[name]
        else:
            known = sorted(ALL_EXPERIMENTS) + sorted(ABLATIONS)
            raise ValueError(f"unknown experiment {name!r}; know {known}")
        start = time.perf_counter()
        with obs.trace("experiments.run", exp=name):
            result = fn(ctx, lab)
        elapsed = time.perf_counter() - start
        reg = obs.registry()
        reg.counter("experiments.runs").inc()
        reg.counter("experiments.seconds", exp=name).inc(elapsed)
        results.append((result, elapsed))
    return results


def render_markdown(results: list[tuple[ExperimentResult, float]], ctx: ExperimentContext) -> str:
    """EXPERIMENTS.md content: paper-vs-measured for every figure."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Regenerated with `python -m repro.experiments.runner --all"
        + (" --full" if ctx.suite_count >= 369 else "")
        + "`.",
        "",
        f"Profile: suite_count={ctx.suite_count}, suite_scale={ctx.suite_scale}, "
        f"rep_nnz={ctx.rep_nnz}, sample_blocks={ctx.sample_blocks}, seed={ctx.seed}, "
        f"workers={ctx.workers}.",
        "",
        "Absolute numbers come from a Python model of the authors' testbed "
        "(see DESIGN.md §3 for substitutions); the *shape* — who wins, by "
        "roughly what factor — is the reproduction target.",
        "",
    ]
    for result, elapsed in results:
        lines.append(f"## {result.exp_id} — {result.title}")
        lines.append("")
        summary = [
            "| metric | measured | paper |",
            "|---|---|---|",
        ]
        for key, measured in result.headline.items():
            ref = result.paper.get(key)
            summary.append(
                f"| {key} | {measured:.4g} | {'' if ref is None else f'{ref:g}'} |"
            )
        lines.extend(summary)
        lines.append("")
        lines.append(result.table.render_markdown())
        lines.append("")
        if result.notes:
            lines.append(f"*{result.notes}*")
            lines.append("")
        lines.append(f"*(regenerated in {elapsed:.1f}s)*")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--all", action="store_true", help="run every paper figure")
    parser.add_argument("--exp", nargs="*", default=[], help="experiment ids to run")
    parser.add_argument(
        "--ablations", action="store_true", help="also run the ablation sweeps"
    )
    parser.add_argument("--full", action="store_true", help="paper-scale suite (slow)")
    parser.add_argument("--write-md", metavar="PATH", help="write EXPERIMENTS.md here")
    parser.add_argument("--suite-count", type=int, help="override suite size")
    parser.add_argument("--suite-scale", type=float, help="override suite nnz scale")
    parser.add_argument("--rep-nnz", type=int, help="override representative nnz")
    parser.add_argument("--samples", type=int, help="override cycle-simulated blocks/matrix")
    parser.add_argument(
        "--workers", type=int,
        help="recode-engine pool width for software encode/decode (0 = serial)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", help="write a metrics JSON snapshot here"
    )
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write a Chrome-trace-format JSON timeline here",
    )
    args = parser.parse_args(argv)

    names = list(ALL_EXPERIMENTS) if args.all else list(args.exp)
    if args.ablations:
        names += [n for n in ABLATIONS if n not in names]
    if not names:
        parser.print_help()
        return 2
    ctx = ExperimentContext.full() if args.full else ExperimentContext.quick()
    overrides = {
        "suite_count": args.suite_count,
        "suite_scale": args.suite_scale,
        "rep_nnz": args.rep_nnz,
        "sample_blocks": args.samples,
        "workers": args.workers,
    }
    overrides = {k: v for k, v in overrides.items() if v is not None}
    if overrides:
        from dataclasses import replace

        ctx = replace(ctx, **overrides)

    if args.trace_out:
        obs.enable_tracing()

    lab = MatrixLab(ctx)
    results = run_experiments(names, ctx, lab)
    for result, elapsed in results:
        print(result.render())
        print(f"  ({elapsed:.1f}s)\n")
    print(lab.engine_summary())

    if args.write_md:
        with open(args.write_md, "w", encoding="utf-8") as fh:
            fh.write(render_markdown(results, ctx))
        print(f"wrote {args.write_md}")
    if args.metrics_out:
        obs.write_metrics(args.metrics_out)
        print(f"wrote {args.metrics_out}")
    if args.trace_out:
        obs.write_trace(args.trace_out)
        print(f"wrote {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
