"""Fig. 10 — Compressed size: CPU Snappy vs UDP Delta-Snappy(-Huffman).

Paper geometric means over 369 matrices: CPU Snappy (32 KB blocks) 5.20
bytes/nnz; UDP Delta-Snappy (8 KB) 5.92; UDP Delta-Snappy-Huffman 5.00 —
the DSH combination beats CPU Snappy despite the 4x smaller block budget.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab
from repro.util.geomean import geomean
from repro.util.tables import Table

EXP_ID = "fig10"
TITLE = "Compressed size (bytes per non-zero): CPU Snappy vs UDP DSH"


def run(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)

    cpu_vals, ds_vals, dsh_vals = [], [], []
    table = Table(
        ["matrix", "kind", "nnz", "CPU Snappy", "UDP Delta-Snappy", "UDP DSH"],
        formats=["{}", "{}", "{}", "{:.2f}", "{:.2f}", "{:.2f}"],
    )
    for entry in lab.suite_entries():
        m = lab.matrix(entry.name, entry.build)
        cpu = lab.plan(entry.name, m, "cpu-snappy").bytes_per_nnz
        ds = lab.plan(entry.name, m, "delta-snappy").bytes_per_nnz
        dsh = lab.plan(entry.name, m, "dsh").bytes_per_nnz
        cpu_vals.append(cpu)
        ds_vals.append(ds)
        dsh_vals.append(dsh)
        table.add_row(entry.name, entry.kind, m.nnz, cpu, ds, dsh)

    summary = Table(
        ["scheme", "geomean bytes/nnz"], formats=["{}", "{:.2f}"]
    )
    gm_cpu, gm_ds, gm_dsh = geomean(cpu_vals), geomean(ds_vals), geomean(dsh_vals)
    summary.add_row("baseline CSR", 12.0)
    summary.add_row("CPU Snappy (32 KB)", gm_cpu)
    summary.add_row("UDP Delta-Snappy (8 KB)", gm_ds)
    summary.add_row("UDP Delta-Snappy-Huffman (8 KB)", gm_dsh)
    # Keep per-matrix rows available but lead with the summary.
    summary.rows.extend([])

    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        table=summary,
        headline={
            "gm_cpu_snappy_bpnnz": gm_cpu,
            "gm_udp_delta_snappy_bpnnz": gm_ds,
            "gm_udp_dsh_bpnnz": gm_dsh,
        },
        paper={
            "gm_cpu_snappy_bpnnz": 5.20,
            "gm_udp_delta_snappy_bpnnz": 5.92,
            "gm_udp_dsh_bpnnz": 5.00,
        },
        notes=(
            f"{len(cpu_vals)} synthetic suite matrices (paper: 369 real TAMU "
            "matrices). Shape check: DSH < CPU-Snappy and Huffman recovers "
            "the loss from the smaller 8 KB block."
        ),
    )
