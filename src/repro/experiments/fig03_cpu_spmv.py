"""Fig. 3 — Single-die CPU SpMV performance, 100 GB/s DDR4.

The paper's point: across wildly different matrices, CPU SpMV performance
pins to the memory-bandwidth roofline — a flat line at 2 flops x 100 GB/s /
12 B per non-zero ≈ 16.7 GFLOP/s. We regenerate the per-matrix rows from
the representative set plus suite samples.
"""

from __future__ import annotations

from repro.core.roofline import max_uncompressed_gflops, spmv_gflops
from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab
from repro.memsys.dram import DDR4_100GBS
from repro.util.tables import Table

EXP_ID = "fig03"
TITLE = "CPU-only SpMV performance on 100 GB/s DDR4 (memory-bandwidth bound)"


def run(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)

    table = Table(
        ["matrix", "nnz", "A-traffic (MB)", "GFLOP/s"],
        formats=["{}", "{}", "{:.2f}", "{:.2f}"],
    )
    flat = max_uncompressed_gflops(DDR4_100GBS)
    for rep in lab.representatives():
        m = lab.matrix(rep.name, rep.build)
        traffic = 12 * m.nnz
        g = spmv_gflops(m.nnz, traffic, DDR4_100GBS)
        table.add_row(rep.name, m.nnz, traffic / 1e6, g)
    for entry in lab.suite_entries()[:6]:
        m = lab.matrix(entry.name, entry.build)
        table.add_row(
            entry.name, m.nnz, 12 * m.nnz / 1e6, spmv_gflops(m.nnz, 12 * m.nnz, DDR4_100GBS)
        )

    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        table=table,
        headline={"flat_gflops_ddr4": flat},
        paper={"flat_gflops_ddr4": 16.7},
        notes=(
            "Both the paper and this model treat SpMV as bandwidth-bound: "
            "the line is flat at 2 x BW / 12 regardless of matrix."
        ),
    )
