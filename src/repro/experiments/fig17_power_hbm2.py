"""Fig. 17 — Raw and net memory power savings, 1 TB/s HBM2 system.

Paper: max memory power 64 W; the UDP saves an average 33 W (51%) across
the 7 representative matrices. HBM2's cheaper pJ/bit shrinks the absolute
saving while the 10x rate demands ~10x the UDP instances, so the net
percentage drops below the DDR4 case — the shape this experiment checks.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab
from repro.experiments.fig16_power_ddr4 import run_on_memory
from repro.memsys.dram import HBM2_1TBS

EXP_ID = "fig17"
TITLE = "Raw and net memory power savings, HBM2 (1 TB/s, 64 W max)"


def run(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)
    return run_on_memory(
        ctx,
        lab,
        HBM2_1TBS,
        EXP_ID,
        TITLE,
        paper_headline={
            "avg_net_saving_w": 33.0,
            "avg_net_saving_frac": 0.51,
            "baseline_power_w": 64.0,
        },
    )
