"""Fig. 14 — CPU vs CPU-UDP SpMV performance on DDR4 (100 GB/s).

Three bars per matrix: Max Uncompressed, Decomp(CPU)+SpMV, Decomp(UDP+CPU).
Headline: "a 2.4x increase in achieved gigaflops over CPU only architecture
on memory bound SpMV" (suite geomean), and Decomp(CPU) ">30x slower".
"""

from __future__ import annotations

from repro.core.hetero import HeterogeneousSystem
from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab
from repro.memsys.dram import DDR4_100GBS, MemorySystem
from repro.util.geomean import geomean
from repro.util.tables import Table

EXP_ID = "fig14"
TITLE = "CPU vs CPU-UDP SpMV performance on DDR4 (100 GB/s)"


def run_on_memory(
    ctx: ExperimentContext,
    lab: MatrixLab,
    memory: MemorySystem,
    exp_id: str,
    title: str,
    paper_headline: dict[str, float],
) -> ExperimentResult:
    """Shared Fig. 14/15 engine (they differ only in the memory system)."""
    system = HeterogeneousSystem(memory)
    table = Table(
        [
            "matrix",
            "B/nnz",
            "Max Uncompressed GF",
            "Decomp(CPU) GF",
            "Decomp(UDP+CPU) GF",
            "speedup",
        ],
        formats=["{}", "{:.2f}", "{:.2f}", "{:.2f}", "{:.2f}", "{:.2f}x"],
    )
    speedups, slowdowns = [], []
    for rep in lab.representatives():
        m = lab.matrix(rep.name, rep.build)
        plan = lab.plan(rep.name, m, "dsh")
        cmp_ = system.compare(
            rep.name,
            plan,
            lab.udp_report(rep.name, m),
            lab.cpu_report(rep.name, m, "dsh"),
        )
        speedups.append(cmp_.udp_speedup)
        slowdowns.append(cmp_.cpu_slowdown)
        table.add_row(
            rep.name,
            plan.bytes_per_nnz,
            cmp_.uncompressed.gflops,
            cmp_.cpu_decomp.gflops,
            cmp_.udp_cpu.gflops,
            cmp_.udp_speedup,
        )
    # Suite geomean speedup: pure compression-ratio driven, so reuse plans.
    suite_speedups = []
    for entry in lab.suite_entries():
        m = lab.matrix(entry.name, entry.build)
        plan = lab.plan(entry.name, m, "dsh")
        if plan.nnz:
            suite_speedups.append(12.0 / plan.bytes_per_nnz)

    return ExperimentResult(
        exp_id=exp_id,
        title=title,
        table=table,
        headline={
            "gm_suite_speedup": geomean(suite_speedups),
            "gm_rep_speedup": geomean(speedups),
            "min_cpu_slowdown": min(slowdowns),
        },
        paper=paper_headline,
        notes=(
            "Decomp(UDP+CPU) speedup equals the compression ratio (UDPs are "
            "sized to line rate); Decomp(CPU) is priced by the "
            "branch-misprediction pipeline model."
        ),
    )


def run(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)
    return run_on_memory(
        ctx,
        lab,
        DDR4_100GBS,
        EXP_ID,
        TITLE,
        paper_headline={"gm_suite_speedup": 2.4, "min_cpu_slowdown": 30.0},
    )
