"""Per-figure reproduction harness.

Each ``figNN`` module regenerates one figure of the paper's evaluation
(Section V) and returns an :class:`~repro.experiments.common.ExperimentResult`
holding the same rows/series the paper plots, the measured headline
numbers, and the paper's reported values for side-by-side comparison.

Run everything with::

    python -m repro.experiments.runner --all

which also rewrites ``EXPERIMENTS.md``. Individual experiments::

    python -m repro.experiments.runner --exp fig10 fig12
"""

from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab

__all__ = ["ExperimentContext", "ExperimentResult", "MatrixLab"]
