"""Fig. 15 — CPU vs CPU-UDP SpMV performance on HBM2 (1 TB/s).

Same three scenarios as Fig. 14 at 10x the bandwidth: the uncompressed
roofline moves to ~167 GFLOP/s, the UDP speedup still tracks the
compression ratio (more UDP instances are provisioned), and CPU-side
decompression falls even further behind because it does not scale with
memory bandwidth.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab
from repro.experiments.fig14_spmv_ddr4 import run_on_memory
from repro.memsys.dram import HBM2_1TBS

EXP_ID = "fig15"
TITLE = "CPU vs CPU-UDP SpMV performance on HBM2 (1 TB/s)"


def run(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)
    return run_on_memory(
        ctx,
        lab,
        HBM2_1TBS,
        EXP_ID,
        TITLE,
        paper_headline={"gm_suite_speedup": 2.4, "min_cpu_slowdown": 30.0},
    )
