"""Shared experiment infrastructure: context, caching, result records."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.codecs.engine import DecodedBlockCache, RecodeEngine
from repro.codecs.pipeline import MatrixCompression
from repro.collection.representative import RepresentativeEntry, representative_suite
from repro.collection.suite import SuiteConfig, SuiteEntry, build_suite
from repro.cpu.recoder import CPURecodeReport, CPURecoder
from repro.sparse.blocked import CPU_BLOCK_BYTES, UDP_BLOCK_BYTES
from repro.sparse.csr import CSRMatrix
from repro.udp.runtime import UDPDecodeReport, simulate_plan
from repro.util.tables import Table


@dataclass(frozen=True)
class ExperimentContext:
    """How heavy an experiment run should be.

    ``quick`` (the default used by tests and pytest benchmarks) uses a
    suite subset, small representative scale, and few cycle-simulated
    blocks per matrix; ``full()`` runs the whole 369-entry suite at the
    default scale. Neither changes *what* is computed, only sample sizes.
    """

    suite_count: int = 48
    suite_scale: float = 0.004
    rep_nnz: int = 40_000
    sample_blocks: int = 2
    seed: int = 2019
    #: Recode-engine pool width for software encode/decode (0 = serial).
    workers: int = 0

    @classmethod
    def quick(cls) -> "ExperimentContext":
        return cls()

    @classmethod
    def full(cls) -> "ExperimentContext":
        return cls(suite_count=369, suite_scale=0.01, rep_nnz=150_000, sample_blocks=4)


@dataclass
class ExperimentResult:
    """One reproduced figure/table.

    Attributes:
        exp_id: e.g. ``"fig10"``.
        title: what the paper's figure shows.
        table: the regenerated rows.
        headline: measured summary metrics.
        paper: the paper's reported values for the same metrics (NaN-free
            subset only; missing = not reported).
        notes: scope/substitution caveats for EXPERIMENTS.md.
    """

    exp_id: str
    title: str
    table: Table
    headline: dict[str, float]
    paper: dict[str, float]
    notes: str = ""

    def render(self) -> str:
        lines = [f"== {self.exp_id}: {self.title} ==", self.table.render(), ""]
        for key, measured in self.headline.items():
            ref = self.paper.get(key)
            ref_s = f" (paper: {ref:g})" if ref is not None else ""
            lines.append(f"  {key}: {measured:g}{ref_s}")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


def write_bench_artifact(artifact: dict, default_name: str, env_var: str) -> str:
    """Schema-validate ``artifact`` and write it as a ``BENCH_*.json``.

    The schema is looked up in :data:`repro.util.BENCH_SCHEMAS` by the
    artifact's ``exp_id`` — an unknown id or a shape mismatch raises
    before any file is touched, so gate fields cannot silently drift
    between writers and CI. ``env_var`` redirects the output path (the CI
    jobs use tmpdir copies); the default lands at the repo root where
    ``tests/test_bench_schemas.py`` re-validates the checked-in copy.
    """
    from repro.util import BENCH_SCHEMAS, check_schema

    check_schema(artifact, BENCH_SCHEMAS[artifact["exp_id"]], default_name)
    path = os.environ.get(env_var, default_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


class MatrixLab:
    """Caches matrices, compression plans, and simulator reports across
    experiments (Fig. 10's plans feed Figs. 11/13/14/... unchanged)."""

    def __init__(self, ctx: ExperimentContext):
        self.ctx = ctx
        self._matrices: dict[str, CSRMatrix] = {}
        self._plans: dict[tuple[str, str], MatrixCompression] = {}
        self._udp_reports: dict[str, UDPDecodeReport] = {}
        self._cpu_reports: dict[tuple[str, str], CPURecodeReport] = {}
        self._recoder = CPURecoder()
        #: Shared software recode engine: plans encode through its pool
        #: (ctx.workers wide) and functional decodes hit its block cache.
        self.engine = RecodeEngine(workers=ctx.workers, cache=DecodedBlockCache())

    # -- population ----------------------------------------------------------

    def suite_entries(self) -> tuple[SuiteEntry, ...]:
        return build_suite(
            SuiteConfig(
                count=self.ctx.suite_count,
                scale=self.ctx.suite_scale,
                seed=self.ctx.seed,
            )
        )

    def representatives(self) -> tuple[RepresentativeEntry, ...]:
        return representative_suite(seed=self.ctx.seed, target_nnz=self.ctx.rep_nnz)

    def matrix(self, name: str, builder) -> CSRMatrix:
        """Build-or-fetch a matrix by name."""
        if name not in self._matrices:
            self._matrices[name] = builder()
        return self._matrices[name]

    # -- plans ----------------------------------------------------------------

    def plan(self, name: str, matrix: CSRMatrix, scheme: str) -> MatrixCompression:
        """Build-or-fetch a compression plan.

        Schemes: ``dsh`` (UDP production), ``delta-snappy`` (Fig. 10's
        middle bar), ``cpu-snappy`` (32 KB Snappy baseline).
        """
        key = (name, scheme)
        if key not in self._plans:
            schemes = {
                "dsh": dict(block_bytes=UDP_BLOCK_BYTES, use_delta=True, use_huffman=True),
                "delta-snappy": dict(block_bytes=UDP_BLOCK_BYTES, use_delta=True, use_huffman=False),
                "cpu-snappy": dict(block_bytes=CPU_BLOCK_BYTES, use_delta=False, use_huffman=False),
            }
            if scheme not in schemes:
                raise ValueError(f"unknown scheme {scheme!r}")
            # Through the shared engine: byte-identical to compress_matrix,
            # parallel across ctx.workers when configured.
            self._plans[key] = self.engine.encode_blocked(
                matrix, seed=self.ctx.seed, **schemes[scheme]
            )
        return self._plans[key]

    def engine_summary(self) -> str:
        """One-line engine report for runner output / EXPERIMENTS.md."""
        s = self.engine.stats
        cache = self.engine.cache.stats if self.engine.cache is not None else None
        parts = [
            f"workers={s.workers}",
            f"blocks_encoded={s.blocks_encoded}",
            f"blocks_decoded={s.blocks_decoded}",
        ]
        if cache is not None:
            parts.append(f"cache_hits={cache.hits} ({cache.hit_rate:.0%})")
        if s.decode_seconds > 0:
            parts.append(f"decode={s.decode_mb_per_s:.1f} MB/s")
        return "engine: " + ", ".join(parts)

    # -- simulator reports -----------------------------------------------------

    def udp_report(self, name: str, matrix: CSRMatrix) -> UDPDecodeReport:
        """UDP decode simulation of the DSH plan (sampled)."""
        if name not in self._udp_reports:
            plan = self.plan(name, matrix, "dsh")
            self._udp_reports[name] = simulate_plan(
                plan, sample=self.ctx.sample_blocks, seed=self.ctx.seed
            )
        return self._udp_reports[name]

    def cpu_report(self, name: str, matrix: CSRMatrix, scheme: str) -> CPURecodeReport:
        """CPU decode simulation of a plan (sampled)."""
        key = (name, scheme)
        if key not in self._cpu_reports:
            plan = self.plan(name, matrix, scheme)
            self._cpu_reports[key] = self._recoder.simulate_plan(
                plan, sample=self.ctx.sample_blocks, seed=self.ctx.seed
            )
        return self._cpu_reports[key]
