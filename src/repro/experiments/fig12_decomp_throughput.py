"""Fig. 12 — 32-thread CPU vs 64-lane UDP decompression throughput.

Per representative matrix, the paper shows the 64-lane UDP decompressing
its DSH-encoded blocks "between 2x and 5x [faster] to over 20 GB/s" than a
32-thread CPU running Snappy; across the 369-matrix suite the UDP's
geometric-mean advantage is 7x.
"""

from __future__ import annotations

import time

from repro import kernels
from repro.codecs.engine import DecodedBlockCache, RecodeEngine
from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab
from repro.util.geomean import geomean, geomean_ratio
from repro.util.tables import Table

EXP_ID = "fig12"
TITLE = "Decompression throughput: 32-thread CPU (Snappy) vs 64-lane UDP (DSH)"

#: Decoded-byte budget for the Huffman-stage backend comparison; enough
#: records to dominate per-call overhead while keeping the (slow by
#: design) reference-backend passes to fractions of a second.
_HUFFMAN_STAGE_BUDGET_BYTES = 256 * 1024


def huffman_stage_mb_s(plans, backend: str, repeats: int = 2) -> float:
    """Measured Huffman-stage decode throughput on one kernel backend.

    Replays the Huffman stage alone — ``table.decode_bits(payload,
    snappy_len)`` per stored record, the exact call ``decode_record``
    makes — over the plans' records (subsampled to a fixed decoded-byte
    budget so the reference backend stays affordable) and reports MB/s of
    decoded output, min-of-``repeats``. An untimed warm-up pass first
    compiles/caches the decoder tables, matching the steady-state regime
    Fig. 12 is about.
    """
    work: list[tuple[bytes, int, object]] = []
    budget = _HUFFMAN_STAGE_BUDGET_BYTES
    for plan in plans:
        if not plan.use_huffman:
            continue
        for records, table in (
            (plan.index_records, plan.index_table),
            (plan.value_records, plan.value_table),
        ):
            for rec in records:
                if rec.snappy_len and budget > 0:
                    work.append((rec.payload, rec.snappy_len, table))
                    budget -= rec.snappy_len
    if not work:
        return 0.0
    total_bytes = sum(out_len for _, out_len, _ in work)
    with kernels.use_backend(backend):
        for payload, out_len, table in work:  # warm-up: compile tables
            table.decode_bits(payload, out_len)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for payload, out_len, table in work:
                table.decode_bits(payload, out_len)
            best = min(best, time.perf_counter() - start)
    return total_bytes / best / 1e6


def run(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)

    table = Table(
        ["matrix", "CPU GB/s", "UDP GB/s", "UDP/CPU"],
        formats=["{}", "{:.2f}", "{:.2f}", "{:.2f}x"],
    )
    cpu_tputs, udp_tputs = [], []
    plans = []
    for rep in lab.representatives():
        m = lab.matrix(rep.name, rep.build)
        cpu = lab.cpu_report(rep.name, m, "cpu-snappy").throughput_bytes_per_s
        udp = lab.udp_report(rep.name, m).throughput_bytes_per_s
        cpu_tputs.append(cpu)
        udp_tputs.append(udp)
        plans.append(lab.plan(rep.name, m, "dsh"))
        table.add_row(rep.name, cpu / 1e9, udp / 1e9, udp / cpu)

    # Software recode engine over the same DSH plans: measured wall-clock,
    # cold (every block decompressed) vs steady-state (decoded-block cache
    # hot — the paper's repeated-SpMV reuse regime).
    sw = RecodeEngine(workers=ctx.workers, cache=DecodedBlockCache())
    for rep, plan in zip(lab.representatives(), plans):
        sw.decode_blocked(plan, matrix_id=rep.name)
    sw_cold = sw.stats.decode_mb_per_s
    sw.reset_stats()
    for rep, plan in zip(lab.representatives(), plans):
        sw.decode_blocked(plan, matrix_id=rep.name)
    sw_steady = sw.stats.decode_mb_per_s

    # Kernel-backend comparison on the Huffman stage (the decode
    # bottleneck): reference loops vs the vectorized DFA kernels.
    hf_python = huffman_stage_mb_s(plans, "python")
    hf_numpy = huffman_stage_mb_s(plans, "numpy")

    gm_speedup = geomean_ratio(udp_tputs, cpu_tputs)
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        table=table,
        headline={
            "gm_udp_over_cpu": gm_speedup,
            "gm_udp_gbps": geomean(udp_tputs) / 1e9,
            "min_udp_gbps": min(udp_tputs) / 1e9,
            "sw_cold_mb_s": sw_cold,
            "sw_steady_mb_s": sw_steady,
            "sw_steady_over_cold": sw_steady / sw_cold if sw_cold else 0.0,
            "hf_python_mb_s": hf_python,
            "hf_numpy_mb_s": hf_numpy,
            "hf_numpy_over_python": hf_numpy / hf_python if hf_python else 0.0,
        },
        paper={
            "gm_udp_over_cpu": 3.2,  # paper: "speedups between 2x and 5x"
            "gm_udp_gbps": 20.0,  # paper: "to over 20GB/s"
        },
        notes=(
            "CPU runs Snappy-only on 32 KB blocks (its best case); UDP runs "
            "full DSH on 8 KB blocks. Shape check: every row >1x, UDP in "
            "the tens of GB/s. sw_* rows are the measured software recode "
            f"engine ({sw.stats.workers} workers): cold decode vs "
            "steady-state over the decoded-block cache. hf_* rows compare "
            "the Huffman stage alone across kernel backends (reference "
            "loops vs vectorized DFA; see docs/PERFORMANCE.md). "
            + lab.engine_summary()
        ),
    )
