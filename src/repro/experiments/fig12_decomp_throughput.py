"""Fig. 12 — 32-thread CPU vs 64-lane UDP decompression throughput.

Per representative matrix, the paper shows the 64-lane UDP decompressing
its DSH-encoded blocks "between 2x and 5x [faster] to over 20 GB/s" than a
32-thread CPU running Snappy; across the 369-matrix suite the UDP's
geometric-mean advantage is 7x.
"""

from __future__ import annotations

from repro.codecs.engine import DecodedBlockCache, RecodeEngine
from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab
from repro.util.geomean import geomean, geomean_ratio
from repro.util.tables import Table

EXP_ID = "fig12"
TITLE = "Decompression throughput: 32-thread CPU (Snappy) vs 64-lane UDP (DSH)"


def run(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)

    table = Table(
        ["matrix", "CPU GB/s", "UDP GB/s", "UDP/CPU"],
        formats=["{}", "{:.2f}", "{:.2f}", "{:.2f}x"],
    )
    cpu_tputs, udp_tputs = [], []
    plans = []
    for rep in lab.representatives():
        m = lab.matrix(rep.name, rep.build)
        cpu = lab.cpu_report(rep.name, m, "cpu-snappy").throughput_bytes_per_s
        udp = lab.udp_report(rep.name, m).throughput_bytes_per_s
        cpu_tputs.append(cpu)
        udp_tputs.append(udp)
        plans.append(lab.plan(rep.name, m, "dsh"))
        table.add_row(rep.name, cpu / 1e9, udp / 1e9, udp / cpu)

    # Software recode engine over the same DSH plans: measured wall-clock,
    # cold (every block decompressed) vs steady-state (decoded-block cache
    # hot — the paper's repeated-SpMV reuse regime).
    sw = RecodeEngine(workers=ctx.workers, cache=DecodedBlockCache())
    for rep, plan in zip(lab.representatives(), plans):
        sw.decode_blocked(plan, matrix_id=rep.name)
    sw_cold = sw.stats.decode_mb_per_s
    sw.reset_stats()
    for rep, plan in zip(lab.representatives(), plans):
        sw.decode_blocked(plan, matrix_id=rep.name)
    sw_steady = sw.stats.decode_mb_per_s

    gm_speedup = geomean_ratio(udp_tputs, cpu_tputs)
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        table=table,
        headline={
            "gm_udp_over_cpu": gm_speedup,
            "gm_udp_gbps": geomean(udp_tputs) / 1e9,
            "min_udp_gbps": min(udp_tputs) / 1e9,
            "sw_cold_mb_s": sw_cold,
            "sw_steady_mb_s": sw_steady,
            "sw_steady_over_cold": sw_steady / sw_cold if sw_cold else 0.0,
        },
        paper={
            "gm_udp_over_cpu": 3.2,  # paper: "speedups between 2x and 5x"
            "gm_udp_gbps": 20.0,  # paper: "to over 20GB/s"
        },
        notes=(
            "CPU runs Snappy-only on 32 KB blocks (its best case); UDP runs "
            "full DSH on 8 KB blocks. Shape check: every row >1x, UDP in "
            "the tens of GB/s. sw_* rows are the measured software recode "
            f"engine ({sw.stats.workers} workers): cold decode vs "
            "steady-state over the decoded-block cache. "
            + lab.engine_summary()
        ),
    )
