"""Fig. 13 — UDP decompression throughput vs #non-zeros (scatter), plus the
headline "geometric mean of 21.7 microseconds ... to decompress a single
8 KB block" on one lane.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab
from repro.util.geomean import geomean
from repro.util.tables import Table

EXP_ID = "fig13"
TITLE = "64-lane UDP decompression throughput vs #non-zeros"


def run(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)

    # Scatter over a suite slice (cycle simulation is the expensive part).
    entries = lab.suite_entries()[: max(8, ctx.suite_count // 2)]
    table = Table(
        ["matrix", "kind", "nnz", "UDP GB/s", "block latency (us)"],
        formats=["{}", "{}", "{}", "{:.2f}", "{:.2f}"],
    )
    tputs, latencies = [], []
    for entry in entries:
        m = lab.matrix(entry.name, entry.build)
        report = lab.udp_report(entry.name, m)
        lat = report.block_latencies_s
        # Full 8 KB blocks only for the latency headline (the paper's metric
        # is per-8KB-block); tail blocks are smaller.
        med_lat = float(np.median(lat)) if len(lat) else 0.0
        tputs.append(report.throughput_bytes_per_s)
        if med_lat > 0:
            latencies.append(med_lat)
        table.add_row(
            entry.name, entry.kind, m.nnz, report.throughput_bytes_per_s / 1e9,
            med_lat * 1e6,
        )

    gm_lat_us = geomean(latencies) * 1e6 if latencies else 0.0
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        table=table,
        headline={
            "gm_block_latency_us": gm_lat_us,
            "gm_udp_gbps": geomean(tputs) / 1e9,
        },
        paper={
            "gm_block_latency_us": 21.7,
        },
        notes=(
            "Latency = one lane decoding one block's index+value chains "
            "(Huffman -> Snappy -> inverse delta). Shape check: same decade "
            "as the paper's 21.7 us."
        ),
    )
