"""Ablations — design choices the paper fixes, swept.

Not paper figures; these quantify the choices DESIGN.md calls out and the
future-work items Section VII lists:

* ``abl_stages``   — which pipeline stage buys what (delta x huffman grid).
* ``abl_blocksize``— the 8 KB block budget vs compression and decode latency.
* ``abl_stride``   — Huffman dispatch stride (bits/dispatch) vs cycles and
  program footprint.
* ``abl_rle``      — the custom RLE index codec vs DSH on structured
  matrices ("novel and customized encodings on top of CSR").
* ``abl_spmm``     — recoding benefit vs right-hand-side count for SpMM
  ("other sparse matrix computation").
"""

from __future__ import annotations

import numpy as np

from repro.codecs.delta import DeltaCodec
from repro.codecs.pipeline import compress_matrix
from repro.codecs.rle import RLECodec
from repro.codecs.snappy import snappy_compress
from repro.experiments.common import ExperimentContext, ExperimentResult, MatrixLab
from repro.sparse.blocked import partition_csr
from repro.sparse.spmm import spmm_speedup_model
from repro.udp import Lane, assemble
from repro.udp.programs.huffman_prog import build_huffman_decode
from repro.udp.programs.rle_prog import build_rle_decode
from repro.udp.programs.snappy_prog import build_snappy_decode
from repro.udp.runtime import simulate_plan
from repro.util.geomean import geomean
from repro.util.tables import Table


def _sample_matrices(lab: MatrixLab, count: int):
    entries = lab.suite_entries()[:count]
    return [(e, lab.matrix(e.name, e.build)) for e in entries]


def run_stages(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    """Delta x Huffman grid at 8 KB blocks."""
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)
    grids = {
        "snappy": dict(use_delta=False, use_huffman=False),
        "delta-snappy": dict(use_delta=True, use_huffman=False),
        "snappy-huffman": dict(use_delta=False, use_huffman=True),
        "delta-snappy-huffman": dict(use_delta=True, use_huffman=True),
    }
    sizes: dict[str, list[float]] = {name: [] for name in grids}
    for entry, m in _sample_matrices(lab, min(16, ctx.suite_count)):
        for name, kwargs in grids.items():
            plan = compress_matrix(m, seed=ctx.seed, **kwargs)
            if plan.nnz:
                sizes[name].append(plan.bytes_per_nnz)
    table = Table(["pipeline", "geomean B/nnz"], formats=["{}", "{:.2f}"])
    gms = {name: geomean(vals) for name, vals in sizes.items()}
    for name, gm in sorted(gms.items(), key=lambda kv: kv[1]):
        table.add_row(name, gm)
    return ExperimentResult(
        exp_id="abl_stages",
        title="Pipeline-stage ablation (bytes/nnz, 8 KB blocks)",
        table=table,
        headline={f"gm_{k.replace('-', '_')}": v for k, v in gms.items()},
        paper={},
        notes="Extension (not a paper figure): isolates each stage's contribution.",
    )


def run_blocksize(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    """Block budget sweep: compression vs single-block decode latency."""
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)
    sweep = (2048, 4096, 8192, 16384, 32768)
    pairs = _sample_matrices(lab, min(6, ctx.suite_count))
    table = Table(
        ["block bytes", "geomean B/nnz", "median block latency (us)"],
        formats=["{}", "{:.2f}", "{:.2f}"],
    )
    headline = {}
    for bb in sweep:
        sizes, lats = [], []
        for entry, m in pairs:
            plan = compress_matrix(m, block_bytes=bb, seed=ctx.seed)
            if not plan.nnz:
                continue
            sizes.append(plan.bytes_per_nnz)
            report = simulate_plan(plan, sample=1, seed=ctx.seed)
            lat = report.block_latencies_s
            if len(lat):
                lats.append(float(np.median(lat)))
        gm = geomean(sizes)
        med_lat = float(np.median(lats)) * 1e6 if lats else 0.0
        table.add_row(bb, gm, med_lat)
        headline[f"gm_bpnnz_{bb}"] = gm
    return ExperimentResult(
        exp_id="abl_blocksize",
        title="Block-size ablation: compression vs per-block decode latency",
        table=table,
        headline=headline,
        paper={},
        notes=(
            "Extension: larger blocks compress slightly better but raise "
            "single-lane latency and scratchpad footprint; 8 KB is the "
            "paper's scratchpad-bounded choice."
        ),
    )


def run_stride(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    """Huffman dispatch stride sweep (cycles vs code-memory footprint)."""
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)
    entry, m = _sample_matrices(lab, 1)[0]
    plan = lab.plan(entry.name, m, "dsh")
    record = max(plan.index_records, key=lambda r: len(r.payload))
    from repro.udp.runtime import BYTES_PER_CODE_SLOT, LANE_SCRATCHPAD_BYTES

    table = Table(
        ["stride (bits)", "decode cycles", "program blocks", "code bytes", "fits 64KB lane"],
        formats=["{}", "{}", "{}", "{}", "{}"],
    )
    headline = {}
    assert plan.index_table is not None
    for stride in (1, 2, 4, 8):
        asm = assemble(build_huffman_decode(plan.index_table, stride=stride))
        res = Lane().run(asm, record.payload)
        code_bytes = asm.size * BYTES_PER_CODE_SLOT
        fits = code_bytes + 3 * plan.block_bytes <= LANE_SCRATCHPAD_BYTES
        table.add_row(stride, res.cycles, asm.nblocks, code_bytes, "yes" if fits else "NO")
        headline[f"cycles_stride{stride}"] = float(res.cycles)
        headline[f"blocks_stride{stride}"] = float(asm.nblocks)
    return ExperimentResult(
        exp_id="abl_stride",
        title="Huffman dispatch-stride ablation (one 8 KB index block)",
        table=table,
        headline=headline,
        paper={},
        notes=(
            "Extension: wider dispatch halves cycles per doubling but "
            "multiplies dispatch-family size; stride 4 balances the lane's "
            "dispatch memory against throughput."
        ),
    )


def run_rle(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    """Custom RLE index codec vs the generic DSH stack, per structural class."""
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)
    rle = RLECodec()
    delta = DeltaCodec()
    rle_asm = assemble(build_rle_decode())
    snappy_asm = assemble(build_snappy_decode())

    from repro.collection import generators

    # The canonical target first: a pure diagonal, whose index stream
    # deltas to a single run per block.
    cases: list[tuple[str, object]] = [
        ("single-stride (diagonal)", generators.diagonals(4000, offsets=[0], seed=1))
    ]
    cases += [(e.kind, m) for e, m in _sample_matrices(lab, min(16, ctx.suite_count))]

    by_kind: dict[str, list[tuple[float, float, float, float]]] = {}
    for kind, m in cases:
        blocked = partition_csr(m)
        if not blocked.nblocks or blocked.blocks[0].nnz == 0:
            continue
        block = blocked.blocks[0]
        raw = delta.encode(block.index_bytes())
        rle_bytes = rle.encode(raw)
        snappy_bytes = snappy_compress(raw)
        rle_cycles = Lane().run(rle_asm, rle_bytes).cycles
        snappy_cycles = Lane().run(snappy_asm, snappy_bytes).cycles
        by_kind.setdefault(kind, []).append(
            (
                len(rle_bytes) / block.nnz,
                len(snappy_bytes) / block.nnz,
                rle_cycles,
                snappy_cycles,
            )
        )

    table = Table(
        ["class", "RLE B/idx-entry", "Snappy B/idx-entry", "RLE cycles", "Snappy cycles"],
        formats=["{}", "{:.3f}", "{:.3f}", "{:.0f}", "{:.0f}"],
    )
    rle_wins = []
    for kind, rows in by_kind.items():
        arr = np.array(rows, dtype=float)
        table.add_row(kind, arr[:, 0].mean(), arr[:, 1].mean(), arr[:, 2].mean(), arr[:, 3].mean())
        rle_wins.append((kind, arr[:, 0].mean() <= arr[:, 1].mean()))
    single_stride_wins = dict(rle_wins).get("single-stride (diagonal)", False)
    return ExperimentResult(
        exp_id="abl_rle",
        title="Custom RLE index codec vs Snappy on delta'd index streams",
        table=table,
        headline={
            "single_stride_rle_wins": float(single_stride_wins),
            "classes_where_snappy_wins": float(sum(1 for _, w in rle_wins if not w)),
        },
        paper={},
        notes=(
            "Future-work demo, with an honest outcome: RLE only beats "
            "generic LZ on pure single-stride streams; everywhere else "
            "Snappy's pattern matching wins. The point stands regardless — "
            "choosing the format per matrix is a UDP program swap, not a "
            "hardware change (see codecs.autotune)."
        ),
    )


def run_shuffle(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    """Byte-plane shuffle on the value stream: does it pay?"""
    from repro.codecs.huffman import HuffmanTable
    from repro.codecs.shuffle import ShuffleCodec

    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)
    shuf = ShuffleCodec(lane=8)

    plain_sizes, shuf_sizes = [], []
    table = Table(
        ["matrix", "kind", "snappy+huff B/val", "shuffle+snappy+huff B/val"],
        formats=["{}", "{}", "{:.2f}", "{:.2f}"],
    )
    for entry, m in _sample_matrices(lab, min(12, ctx.suite_count)):
        blocked = partition_csr(m)
        if not blocked.nblocks or blocked.blocks[0].nnz == 0:
            continue
        raw = blocked.blocks[0].value_bytes()
        nvals = blocked.blocks[0].nnz

        def stack_size(payload: bytes) -> float:
            snapped = snappy_compress(payload)
            table_ = HuffmanTable.from_samples([snapped])
            bits = table_.encode_bits(snapped)[1]
            return (bits / 8) / nvals

        plain = stack_size(raw)
        shuffled = stack_size(shuf.encode(raw))
        plain_sizes.append(plain)
        shuf_sizes.append(shuffled)
        table.add_row(entry.name, entry.kind, plain, shuffled)

    return ExperimentResult(
        exp_id="abl_shuffle",
        title="Value-stream byte-plane shuffle ablation (bytes per value)",
        table=table,
        headline={
            "gm_plain_bpv": geomean(plain_sizes),
            "gm_shuffle_bpv": geomean(shuf_sizes),
        },
        paper={},
        notes=(
            "Future-work demo with an honest outcome: shuffle only helps "
            "full-entropy value streams (slightly); palette-like values "
            "compress better unshuffled because LZ matches whole 8-byte "
            "patterns. Another case for per-matrix format selection."
        ),
    )


def run_attach(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    """On-die UDP vs PCIe-attached device for the same decompression."""
    from repro.core.attach import on_die_udp, pcie_attached
    from repro.memsys.dram import DDR4_100GBS

    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)
    table = Table(
        ["matrix", "on-die GB/s", "PCIe GB/s", "on-die advantage", "PCIe extra DRAM"],
        formats=["{}", "{:.1f}", "{:.1f}", "{:.1f}x", "{:.1f}x"],
    )
    advantages = []
    for rep in lab.representatives():
        m = lab.matrix(rep.name, rep.build)
        plan = lab.plan(rep.name, m, "dsh")
        udp = lab.udp_report(rep.name, m)
        ondie = on_die_udp(plan, DDR4_100GBS, udp.throughput_bytes_per_s)
        pcie = pcie_attached(plan, DDR4_100GBS)
        advantages.append(ondie.speedup_over(pcie))
        table.add_row(
            rep.name,
            ondie.effective_output_rate / 1e9,
            pcie.effective_output_rate / 1e9,
            ondie.speedup_over(pcie),
            pcie.dram_bytes / max(1, ondie.dram_bytes),
        )
    return ExperimentResult(
        exp_id="abl_attach",
        title="Attachment point: on-die UDP vs PCIe compression device",
        table=table,
        headline={"gm_ondie_advantage": geomean(advantages)},
        paper={},
        notes=(
            "Quantifies Section III-C/VI-D: separate-address-space devices "
            "pay the link twice plus a DRAM round trip of the *decompressed* "
            "data, and their 2-5 GB/s device rate caps throughput."
        ),
    )


def run_des(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    """Discrete-event cross-check of the analytic Fig. 14 model."""
    from repro.collection import generators
    from repro.core.hetero import HeterogeneousSystem
    from repro.core.pipeline_timing import simulate_recoded_spmv_timing
    from repro.codecs.stats import dsh_plan
    from repro.memsys.dram import DDR4_100GBS
    from repro.udp.runtime import simulate_plan as udp_simulate

    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)
    system = HeterogeneousSystem(DDR4_100GBS)
    table = Table(
        ["matrix nnz", "analytic GF", "DES GF", "DES/analytic", "bottleneck"],
        formats=["{}", "{:.1f}", "{:.1f}", "{:.2f}", "{}"],
    )
    headline = {}
    for n in (2000, 8000, 32000):
        m = generators.banded(n, bandwidth=6, seed=ctx.seed)
        plan = dsh_plan(m, seed=ctx.seed)
        udp = udp_simulate(plan, sample=ctx.sample_blocks, seed=ctx.seed)
        analytic = system.spmv_udp(plan, udp)
        timing = simulate_recoded_spmv_timing(plan, udp, DDR4_100GBS, n_udp=analytic.n_udp)
        ratio = timing.gflops / analytic.gflops
        table.add_row(m.nnz, analytic.gflops, timing.gflops, ratio, timing.bottleneck)
        headline[f"ratio_nnz{m.nnz}"] = ratio
    return ExperimentResult(
        exp_id="abl_des",
        title="Discrete-event pipeline vs analytic Fig. 14 model",
        table=table,
        headline=headline,
        paper={},
        notes=(
            "Validation: block-level DMA->UDP->CPU simulation converges to "
            "the analytic steady-state model as the stream grows (fill/"
            "drain latency amortizes); at paper-scale matrices they "
            "coincide."
        ),
    )


def run_reorder(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    """RCM reordering before encoding: locality -> smaller deltas."""
    from repro.collection import generators
    from repro.sparse.reorder import bandwidth, permute_symmetric, rcm_reorder
    from repro.util.rng import seeded_rng

    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)

    # Matrices whose structure exists but is hidden by a bad ordering — the
    # case every FEM/graph pipeline hits with as-assembled node numbering.
    cases = []
    for seed in range(3):
        hidden = generators.banded(2500, bandwidth=5, fill=1.0, seed=seed)
        scramble = seeded_rng(100 + seed).permutation(hidden.nrows)
        cases.append((f"scrambled-band-{seed}", permute_symmetric(hidden, scramble)))
    cases.append(("fem", generators.fem_stencil(2000, row_degree=12, jitter=400, seed=7)))

    table = Table(
        ["matrix", "bandwidth before", "after", "B/nnz before", "after"],
        formats=["{}", "{}", "{}", "{:.2f}", "{:.2f}"],
    )
    gains = []
    for name, m in cases:
        before_b = compress_matrix(m, seed=ctx.seed).bytes_per_nnz
        reordered, _ = rcm_reorder(m)
        after_b = compress_matrix(reordered, seed=ctx.seed).bytes_per_nnz
        table.add_row(name, bandwidth(m), bandwidth(reordered), before_b, after_b)
        gains.append(before_b / after_b)
    return ExperimentResult(
        exp_id="abl_reorder",
        title="RCM reordering before DSH encoding",
        table=table,
        headline={"gm_bpnnz_gain": geomean(gains)},
        paper={},
        notes=(
            "Extension: representation-level optimization the recoding "
            "architecture makes worthwhile — reorder once, every streamed "
            "block compresses better."
        ),
    )


def run_spmm(ctx: ExperimentContext | None = None, lab: MatrixLab | None = None) -> ExperimentResult:
    """SpMM right-hand-side sweep: where the recoding win decays."""
    ctx = ctx or ExperimentContext.quick()
    lab = lab or MatrixLab(ctx)
    entry, m = _sample_matrices(lab, 1)[0]
    plan = lab.plan(entry.name, m, "dsh")
    table = Table(["k (RHS)", "modeled speedup"], formats=["{}", "{:.2f}x"])
    headline = {}
    for k in (1, 2, 4, 8, 16, 32, 64):
        s = spmm_speedup_model(m.nnz, m.nrows, m.ncols, k, plan.bytes_per_nnz)
        table.add_row(k, s)
        headline[f"speedup_k{k}"] = s
    return ExperimentResult(
        exp_id="abl_spmm",
        title=f"SpMM recoding benefit vs #right-hand-sides ({entry.name})",
        table=table,
        headline=headline,
        paper={},
        notes=(
            "Future-work demo: as dense-operand traffic grows with k, the "
            "A-compression win decays monotonically toward 1x."
        ),
    )
