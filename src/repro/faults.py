"""Deterministic fault injection for the DSH recode engine and SpMV path.

The paper's pipeline lives or dies on a memory/decode path — compressed
blocks streamed out of DRAM, decoded inline, multiplied. This module
injects that path's real failure modes on purpose, reproducibly:

* **bit flips / truncation** of encoded block payloads (record site — what
  the recode engine reads; dram site — what the SpMV DMA streams);
* **worker exceptions** and **worker kills** inside the engine's process
  pool (crash mid-chunk, exactly like a real pool worker OOMing);
* **artificial latency** per block (a slow lane, a throttled channel);
* **container bit flips** applied to ``.dsh`` bytes at load time.

Every decision is a pure function of ``(plan.seed, site, key)`` via
:func:`repro.util.rng.derive_seed`, so a chaos run replays bit-identically
from its seed. Activation is a context manager setting one module global;
the hooks in :mod:`repro.codecs.engine`, :mod:`repro.codecs.container`,
:mod:`repro.memsys.dram`, and :mod:`repro.core.spmv_pipeline` each cost a
single ``active() is None`` check when no plan is armed, so the disabled
path adds no measurable overhead.

Usage::

    plan = FaultPlan(seed=7, bitflip_rate=0.05, worker_kill_blocks=(3,))
    with plan.activate():
        y, stats = recoded_spmv(cplan, x, engine=engine, policy="degrade")

Injected faults surface as :class:`InjectedFault` (a
:class:`~repro.codecs.errors.CodecError`) or as genuine decode errors from
the corrupted bytes, and flow through the same retry / quarantine /
degradation machinery real corruption would.
"""

from __future__ import annotations

import dataclasses
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro import obs
from repro.codecs.errors import CodecError
from repro.util.rng import derive_seed, seeded_rng

_ACTIVE: "FaultPlan | None" = None


def active() -> "FaultPlan | None":
    """The currently armed plan, or None. The one check every hook makes."""
    return _ACTIVE


class InjectedFault(CodecError):
    """An exception raised on purpose by an armed :class:`FaultPlan`."""


_RATE_FIELDS = (
    "bitflip_rate",
    "truncate_rate",
    "dram_bitflip_rate",
    "container_bitflip_rate",
    "worker_exc_rate",
    "latency_rate",
)

#: CLI spec keys (``repro spmv --fault-plan "seed=7,bitflip=0.05,kill=3"``).
_SPEC_KEYS = {
    "seed": ("seed", int),
    "bitflip": ("bitflip_rate", float),
    "truncate": ("truncate_rate", float),
    "dram": ("dram_bitflip_rate", float),
    "container": ("container_bitflip_rate", float),
    "worker-exc": ("worker_exc_rate", float),
    "latency": ("latency_s", float),
    "latency-rate": ("latency_rate", float),
    "kill": ("worker_kill_blocks", "blocks"),
    "exc-blocks": ("worker_exc_blocks", "blocks"),
    "bitflip-blocks": ("bitflip_blocks", "blocks"),
    "truncate-blocks": ("truncate_blocks", "blocks"),
    "dram-blocks": ("dram_bitflip_blocks", "blocks"),
}


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable description of which faults fire where.

    Rates are per-(block, stream) probabilities in [0, 1]; ``*_blocks``
    tuples target specific block ids deterministically (rate-independent).
    The plan is immutable and safe to ship into pool workers.
    """

    seed: int = 0
    #: P(flip one payload bit) per (block, stream) at the engine decode site.
    bitflip_rate: float = 0.0
    #: P(drop trailing payload bytes) per (block, stream), engine site.
    truncate_rate: float = 0.0
    #: P(flip one payload bit) per (block, stream) on the DMA-streamed copy.
    dram_bitflip_rate: float = 0.0
    #: P(flip one bit of a .dsh byte stream) per load.
    container_bitflip_rate: float = 0.0
    #: P(raise InjectedFault) per block inside a pool worker.
    worker_exc_rate: float = 0.0
    #: P(sleep latency_s) per block inside a pool worker.
    latency_rate: float = 0.0
    #: Injected sleep duration (seconds).
    latency_s: float = 0.0
    bitflip_blocks: tuple[int, ...] = ()
    truncate_blocks: tuple[int, ...] = ()
    dram_bitflip_blocks: tuple[int, ...] = ()
    worker_exc_blocks: tuple[int, ...] = ()
    #: Blocks whose in-worker decode kills the worker process (os._exit).
    worker_kill_blocks: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")

    # -- activation ----------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["FaultPlan"]:
        """Arm this plan process-wide for the duration of the block."""
        global _ACTIVE
        prev = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = prev

    @property
    def wants_worker_faults(self) -> bool:
        """True when any worker-site fault (latency, exception, kill) can
        fire — the engine only wraps pool tasks when this is set."""
        return bool(
            self.worker_exc_blocks
            or self.worker_kill_blocks
            or self.worker_exc_rate > 0.0
            or (self.latency_s > 0.0 and self.latency_rate > 0.0)
        )

    # -- deterministic decisions ---------------------------------------------

    def _rng(self, site: str, *key):
        return seeded_rng(derive_seed(self.seed, "fault", site, *map(str, key)))

    def _fires(self, rate: float, site: str, *key) -> bool:
        return rate > 0.0 and self._rng(site, *key).random() < rate

    def _flip_bit(self, data: bytes, site: str, *key) -> bytes:
        if not data:
            return data
        bit = int(self._rng(site, "pos", *key).integers(0, len(data) * 8))
        out = bytearray(data)
        out[bit >> 3] ^= 1 << (bit & 7)
        return bytes(out)

    # -- record-site faults (engine decode inputs) ---------------------------

    def mutate_record(self, record, block_id: int, stream: str):
        """Apply engine-site payload faults; returns ``record`` itself when
        nothing fires. The record's ``payload_crc`` is deliberately left
        stale so the decode path *detects* the corruption, as the layered
        CRCs would on real hardware."""
        payload = record.payload
        mutated = False
        if block_id in self.truncate_blocks or self._fires(
            self.truncate_rate, "truncate", block_id, stream
        ):
            if payload:
                cut = 1 + int(
                    self._rng("truncate-len", block_id, stream).integers(
                        0, max(1, len(payload) // 4)
                    )
                )
                payload = payload[: max(0, len(payload) - cut)]
                obs.registry().counter("faults.injected.truncations").inc()
                mutated = True
        if block_id in self.bitflip_blocks or self._fires(
            self.bitflip_rate, "bitflip", block_id, stream
        ):
            if payload:
                payload = self._flip_bit(payload, "bitflip", block_id, stream)
                obs.registry().counter("faults.injected.bitflips").inc()
                mutated = True
        if not mutated:
            return record
        return dataclasses.replace(record, payload=payload)

    # -- dram-site faults (DMA-streamed record copies) ------------------------

    def mutate_dram_record(self, record, block_id: int, stream: str):
        """Flip a bit in the DRAM-streamed copy of a record's payload."""
        if record.payload and (
            block_id in self.dram_bitflip_blocks
            or self._fires(self.dram_bitflip_rate, "dram", block_id, stream)
        ):
            obs.registry().counter("faults.injected.dram_bitflips").inc()
            return dataclasses.replace(
                record, payload=self._flip_bit(record.payload, "dram", block_id, stream)
            )
        return record

    # -- container-site faults ------------------------------------------------

    def mutate_container(self, data: bytes) -> bytes:
        """Flip one bit of a raw ``.dsh`` byte stream (keyed by length)."""
        if data and self._fires(self.container_bitflip_rate, "container", len(data)):
            obs.registry().counter("faults.injected.container_bitflips").inc()
            return self._flip_bit(data, "container", len(data))
        return data

    # -- worker-site faults ----------------------------------------------------

    def fire_worker_faults(self, block_id: int, allow_kill: bool) -> None:
        """Run inside a pool worker before decoding ``block_id``.

        May sleep (latency), kill the worker process outright (process
        pools only — the parent sees BrokenProcessPool and recovers), or
        raise :class:`InjectedFault` (thread pools downgrade kills to
        exceptions, since a thread cannot be killed).
        """
        if self.latency_s > 0 and self._fires(self.latency_rate, "latency", block_id):
            obs.registry().counter("faults.injected.latency_events").inc()
            time.sleep(self.latency_s)
        if block_id in self.worker_kill_blocks:
            if allow_kill:
                os._exit(23)
            raise InjectedFault(
                f"injected worker kill at block {block_id} (thread pool: raised)"
            )
        if block_id in self.worker_exc_blocks or self._fires(
            self.worker_exc_rate, "worker-exc", block_id
        ):
            raise InjectedFault(f"injected worker exception at block {block_id}")

    # -- CLI spec --------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``key=value,...`` spec string.

        Keys: ``seed``, ``bitflip``, ``truncate``, ``dram``, ``container``,
        ``worker-exc``, ``latency``, ``latency-rate`` (scalars) and
        ``kill``, ``exc-blocks``, ``bitflip-blocks``, ``truncate-blocks``,
        ``dram-blocks`` (``|``-separated block ids). Example::

            seed=7,bitflip=0.05,kill=3|9,latency=0.002,latency-rate=0.1
        """
        kwargs: dict[str, object] = {}
        for pair in spec.split(","):
            pair = pair.strip()
            if not pair:
                continue
            if "=" not in pair:
                raise ValueError(f"bad fault-plan entry {pair!r} (expected key=value)")
            key, value = pair.split("=", 1)
            key = key.strip()
            if key not in _SPEC_KEYS:
                raise ValueError(
                    f"unknown fault-plan key {key!r}; know {sorted(_SPEC_KEYS)}"
                )
            field_name, conv = _SPEC_KEYS[key]
            if conv == "blocks":
                kwargs[field_name] = tuple(int(b) for b in value.split("|") if b)
            else:
                kwargs[field_name] = conv(value)
        return cls(**kwargs)

    def describe(self) -> str:
        """Compact non-default-field summary for logs and CLI echo."""
        parts = [f"seed={self.seed}"]
        for f in dataclasses.fields(self):
            if f.name == "seed":
                continue
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={value}")
        return " ".join(parts)
