"""Component-importance ranking and the BENCH_ablation.json artifact.

A component's **contribution** is the geomean, over the suite matrices,
of ``ablated_seconds / baseline_seconds`` for the per-matrix headline
metric — i.e. how much slower the system gets when that one component is
removed. ``contribution > 1`` means the component pays for itself;
``contribution < 1 - harmful_threshold`` flags a **harmful** component
whose removal actually helps (the condition the CI gate fails on).

The gate applies to **removal** axes only. **Variation** axes (worker
count, prefetch depth — knobs whose best value depends on the host core
count) are ranked and flagged informationally: an ``alt wins`` verdict
records that the alternate knob value beat the default on this host,
without failing CI, because the same artifact produced on a 1-core
container and an 8-core runner legitimately disagree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ablation.config import PAIR_SEP, axis
from repro.ablation.runner import AblationReport, ConfigResult
from repro.util.geomean import geomean
from repro.util.schema import check_schema
from repro.util.tables import Table
from repro.ablation.schema import BENCH_ABLATION_SCHEMA

EXP_ID = "ablation"
TITLE = "Component ablation: baseline-plus-one-off importance ranking"


@dataclass(frozen=True)
class RankedComponent:
    """One axis' measured importance."""

    axis: str
    component: str
    run_id: str
    #: ``removal`` (gated) or ``variation`` (host-dependent knob, ungated).
    kind: str
    #: geomean slowdown from removing the component (>1 = it helps).
    contribution: float
    #: removal improves the headline geomean beyond the threshold
    #: (removal axes only — variations never gate).
    harmful: bool
    #: per-phase geomean ratios (diagnostic: *where* the component pays).
    cold_ratio: float
    warm_ratio: float
    spmm_ratio: float


def _phase_ratio(res: ConfigResult, base: ConfigResult, attr: str) -> float:
    ratios = []
    for name, timing in base.timings.items():
        other = res.timings.get(name)
        base_v = getattr(timing, attr)
        if other is not None and base_v > 0:
            ratios.append(getattr(other, attr) / base_v)
    return geomean(ratios) if ratios else 1.0


def rank_components(report: AblationReport) -> tuple[RankedComponent, ...]:
    """Rank every one-off configuration by contribution, descending.

    Pairwise configurations are skipped here — a joint removal has no
    single component to rank; see :func:`rank_interactions`.
    """
    threshold = report.settings.harmful_threshold
    ranked = []
    for res in report.results:
        if res.config.is_pair:
            continue
        ax = axis(res.config.ablated_axis)
        contribution = _phase_ratio(res, report.baseline, "seconds")
        ranked.append(
            RankedComponent(
                axis=ax.name,
                component=ax.component,
                run_id=res.config.run_id,
                kind=ax.kind,
                contribution=contribution,
                harmful=(
                    ax.kind == "removal" and contribution < 1.0 - threshold
                ),
                cold_ratio=_phase_ratio(res, report.baseline, "cold_seconds"),
                warm_ratio=_phase_ratio(res, report.baseline, "warm_seconds"),
                spmm_ratio=_phase_ratio(res, report.baseline, "spmm_seconds"),
            )
        )
    return tuple(
        sorted(ranked, key=lambda r: (-r.contribution, r.axis))
    )


@dataclass(frozen=True)
class RankedInteraction:
    """One pairwise ablation measured against its multiplicative null.

    Under independent components, removing both should slow the system by
    the *product* of the one-off slowdowns; ``interaction_ratio`` is the
    measured joint slowdown over that product. ``> 1`` means the pair is
    super-additive (the components cover for each other — removing both
    hurts more than their separate costs predict); ``< 1`` means they are
    redundant (one masks the other's contribution).
    """

    axes: tuple[str, str]
    run_id: str
    #: geomean joint slowdown of removing both components at once.
    pair_contribution: float
    #: product of the two one-off contributions (the independence null).
    expected_contribution: float
    #: pair_contribution / expected_contribution.
    interaction_ratio: float


def rank_interactions(report: AblationReport) -> tuple[RankedInteraction, ...]:
    """Score every pairwise configuration against its independence null.

    Sorted by ``|log(interaction_ratio)|`` descending — the most
    non-independent pair first, whichever direction it deviates.

    Raises:
        ValueError: when a pair's one-off runs are missing from the
            report (the null model needs both single contributions).
    """
    singles = {
        res.config.ablated_axis: _phase_ratio(res, report.baseline, "seconds")
        for res in report.results
        if not res.config.is_pair
    }
    ranked = []
    for res in report.results:
        if not res.config.is_pair:
            continue
        a, b = res.config.pair_axes()
        missing = [name for name in (a, b) if name not in singles]
        if missing:
            raise ValueError(
                f"interaction ranking for {res.config.run_id!r} needs the "
                f"one-off runs for {missing} in the same report"
            )
        pair = _phase_ratio(res, report.baseline, "seconds")
        expected = singles[a] * singles[b]
        ranked.append(
            RankedInteraction(
                axes=(a, b),
                run_id=res.config.run_id,
                pair_contribution=pair,
                expected_contribution=expected,
                interaction_ratio=pair / expected if expected > 0 else 1.0,
            )
        )
    return tuple(
        sorted(
            ranked,
            key=lambda r: (-abs(math.log(max(r.interaction_ratio, 1e-12))), r.run_id),
        )
    )


def _config_entry(res: ConfigResult) -> dict:
    timings = {
        name: {
            "cold_seconds": t.cold_seconds,
            "warm_seconds": t.warm_seconds,
            "spmm_seconds": t.spmm_seconds,
            "total_seconds": t.seconds,
        }
        for name, t in sorted(res.timings.items())
    }
    return {
        "run_id": res.config.run_id,
        "ablated_axis": res.config.ablated_axis or "",
        "description": res.config.describe(),
        "config": res.config.as_dict(),
        "headline_seconds": geomean(
            [t.seconds for t in res.timings.values()] or [0.0]
        ),
        "per_matrix": timings,
        "spmv_checksums": dict(sorted(res.spmv_checksums.items())),
        "spmm_checksums": dict(sorted(res.spmm_checksums.items())),
        "degraded_blocks": res.degraded_blocks,
        "metric_names": sorted(res.metric_names),
    }


def build_artifact(report: AblationReport) -> dict:
    """The schema-validated content of ``BENCH_ablation.json``."""
    s = report.settings
    ranking = rank_components(report)
    # The CI gate only watches removal axes; variation knobs are
    # host-dependent and reported without gating.
    removal_gains = [r.contribution for r in ranking if r.kind == "removal"]
    artifact = {
        "exp_id": EXP_ID,
        "title": TITLE,
        "context": {
            "seed": s.seed,
            "repeats": s.repeats,
            "passes": s.passes,
            "warm_iters": s.warm_iters,
            "nrhs": s.nrhs,
            "block_bytes": s.block_bytes,
            "executor_kind": s.executor_kind,
            "profile": s.profile,
            "matrices": [case.name for case in s.cases],
        },
        "baseline": _config_entry(report.baseline),
        "configs": [_config_entry(res) for res in report.results],
        "ranking": [
            {
                "axis": r.axis,
                "component": r.component,
                "run_id": r.run_id,
                "kind": r.kind,
                "contribution": r.contribution,
                "harmful": r.harmful,
                "cold_ratio": r.cold_ratio,
                "warm_ratio": r.warm_ratio,
                "spmm_ratio": r.spmm_ratio,
            }
            for r in ranking
        ],
        "conformance": {
            "bit_identical": report.bit_identical,
            "configs_checked": len(report.all_results),
            "mismatches": list(report.mismatches),
        },
        "gates": {
            "worst_removal_gain": min(removal_gains) if removal_gains else 1.0,
            "harmful_threshold": s.harmful_threshold,
            "num_harmful": sum(1 for r in ranking if r.harmful),
        },
    }
    interactions = rank_interactions(report)
    if interactions:
        artifact["interactions"] = [
            {
                "axes": list(r.axes),
                "run_id": r.run_id,
                "pair_contribution": r.pair_contribution,
                "expected_contribution": r.expected_contribution,
                "interaction_ratio": r.interaction_ratio,
            }
            for r in interactions
        ]
    check_schema(artifact, BENCH_ABLATION_SCHEMA, "BENCH_ablation.json")
    return artifact


def render_ranking(report: AblationReport) -> str:
    """Human-readable ranked table for the ``repro ablate`` CLI."""
    table = Table(
        ["component", "run", "contribution", "cold", "warm", "spmm", "verdict"],
        formats=["{}", "{}", "{:.3f}x", "{:.2f}x", "{:.2f}x", "{:.2f}x", "{}"],
    )
    for r in rank_components(report):
        if r.harmful:
            verdict = "HARMFUL"
        elif r.kind == "variation" and r.contribution < 0.98:
            verdict = "alt wins"
        elif r.contribution < 1.02:
            verdict = "~neutral"
        else:
            verdict = "pays"
        table.add_row(
            r.component, r.run_id, r.contribution,
            r.cold_ratio, r.warm_ratio, r.spmm_ratio, verdict,
        )
    return table.render()


def render_interactions(report: AblationReport) -> str:
    """Human-readable pairwise-interaction table (``repro ablate --pairs``)."""
    table = Table(
        ["pair", "run", "joint", "expected", "interaction", "verdict"],
        formats=["{}", "{}", "{:.3f}x", "{:.3f}x", "{:.3f}x", "{}"],
    )
    for r in rank_interactions(report):
        if r.interaction_ratio > 1.05:
            verdict = "super-additive"
        elif r.interaction_ratio < 0.95:
            verdict = "redundant"
        else:
            verdict = "~independent"
        table.add_row(
            PAIR_SEP.join(r.axes), r.run_id, r.pair_contribution,
            r.expected_contribution, r.interaction_ratio, verdict,
        )
    return table.render()
