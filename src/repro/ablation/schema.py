"""Schema for ``BENCH_ablation.json``.

The schema itself lives with the other BENCH schemas in
:mod:`repro.util.schema` so all three artifacts share one validation
helper; this module re-exports it next to the writer
(:mod:`repro.ablation.report`) and offers the validate call the tests
and CLI use.
"""

from __future__ import annotations

from repro.util.schema import BENCH_ABLATION_SCHEMA, check_schema

__all__ = ["BENCH_ABLATION_SCHEMA", "validate_artifact"]


def validate_artifact(artifact: dict) -> None:
    """Raise :class:`repro.util.schema.SchemaError` on a malformed artifact."""
    check_schema(artifact, BENCH_ABLATION_SCHEMA, "BENCH_ablation.json")
