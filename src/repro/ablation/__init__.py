"""repro.ablation — automated component ablation + regression harness.

Enumerates baseline-plus-one-off configurations over every runtime
switch the codebase exposes (decoded-block cache, kernel backend,
pipelined executor, prefetch depth, worker pool, degrade policy, SpMM
fusion), measures the headline SpMV/SpMM workload per configuration
with cold/warm phases, and emits a ranked component-importance report
(``BENCH_ablation.json``) that flags any component whose removal
*helps*. The same run doubles as a cross-configuration conformance
oracle: every configuration must produce bit-identical results and the
metric names its switches imply. See docs/ABLATION.md.
"""

from repro.ablation.config import (
    AXES,
    AblationConfig,
    Axis,
    BASELINE_RUN_ID,
    PAIR_SEP,
    axis,
    baseline_config,
    core_metric_names,
    enumerate_configs,
    enumerate_pair_configs,
    expected_metric_markers,
)
from repro.ablation.report import (
    EXP_ID,
    RankedComponent,
    RankedInteraction,
    build_artifact,
    rank_components,
    rank_interactions,
    render_interactions,
    render_ranking,
)
from repro.ablation.runner import (
    AblationReport,
    AblationRunner,
    ConfigResult,
    MatrixCase,
    PhaseTiming,
    RunnerSettings,
)
from repro.ablation.schema import BENCH_ABLATION_SCHEMA, validate_artifact

__all__ = [
    "AXES",
    "AblationConfig",
    "AblationReport",
    "AblationRunner",
    "Axis",
    "BASELINE_RUN_ID",
    "BENCH_ABLATION_SCHEMA",
    "ConfigResult",
    "EXP_ID",
    "MatrixCase",
    "PAIR_SEP",
    "PhaseTiming",
    "RankedComponent",
    "RankedInteraction",
    "RunnerSettings",
    "axis",
    "baseline_config",
    "build_artifact",
    "core_metric_names",
    "enumerate_configs",
    "enumerate_pair_configs",
    "expected_metric_markers",
    "rank_components",
    "rank_interactions",
    "render_interactions",
    "render_ranking",
    "validate_artifact",
]
