"""Ablation runner: measure every configuration and prove conformance.

For each enumerated :class:`~repro.ablation.config.AblationConfig` the
runner executes one workload per suite matrix:

* **cold phase** — best-of-``repeats`` timed SpMV with the session reset
  before every attempt (decode-bound: where the worker pool, pipeline
  overlap, prefetch depth, and kernel backend pay);
* **warm phase** — best-of-``repeats`` timed SpMV with the session left
  warm (steady-state: where the cache and session fast path pay);
* **SpMM burst** — best-of-``repeats`` timed ``k``-RHS multiply, fused
  through the session or (``spmm_fusion`` ablated) as ``k`` independent
  SpMVs.

Every configuration runs over a per-case
:class:`~repro.core.ExecutionSession`; the ``session`` axis flips its
``reuse`` switch, so the ablated run rebuilds cold state on every call.

The per-matrix headline metric models one service cycle::

    seconds = cold + warm_iters * warm + spmm

All timings are best-of (min), so the ranking compares each
configuration's floor, not its scheduler noise — and the whole grid is
swept ``passes`` times in alternating order (forward, then reversed)
with per-phase mins merged across sweeps, so a machine-load trend
during one sweep (the baseline always runs first in time) biases the
next sweep the opposite way and cancels instead of compounding.

Alongside the timings the runner is the **conformance oracle**: every
configuration's SpMV and SpMM results are checksummed (raw result-buffer
bytes, so "bit-identical" means bit-identical) and compared against the
baseline's, degraded-block accounting must match, and each
configuration's emitted metric names must carry exactly the markers its
switches imply (:func:`~repro.ablation.config.expected_metric_markers`).
Any divergence lands in ``report.mismatches`` and fails the CLI/bench
gates — a perf win that changes results can never rank.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro import kernels, obs
from repro.ablation.config import (
    AblationConfig,
    core_metric_names,
    expected_metric_markers,
)
from repro.codecs.autotune import StageProfile, compress_adaptive
from repro.codecs.engine import DecodedBlockCache, RecodeEngine
from repro.codecs.pipeline import MatrixCompression, compress_matrix
from repro.collection import generators
from repro.core import ExecutionSession
from repro.sparse.csr import CSRMatrix
from repro.util.rng import derive_seed

#: Builders a :class:`MatrixCase` may reference (all seeded).
_CASE_KINDS = {
    "banded": generators.banded,
    "unstructured": generators.unstructured,
    "graph": generators.powerlaw_graph,
    "fem": generators.fem_stencil,
}


@dataclass(frozen=True)
class MatrixCase:
    """One suite matrix, reproducible from ``(kind, kwargs, seed)``."""

    name: str
    kind: str
    kwargs: tuple[tuple[str, object], ...]

    def build(self, seed: int) -> CSRMatrix:
        builder = _CASE_KINDS.get(self.kind)
        if builder is None:
            raise ValueError(
                f"unknown matrix case kind {self.kind!r}; know {sorted(_CASE_KINDS)}"
            )
        return builder(**dict(self.kwargs), seed=derive_seed(seed, self.name))


@dataclass(frozen=True)
class RunnerSettings:
    """How heavy an ablation run is; never what it computes."""

    cases: tuple[MatrixCase, ...]
    repeats: int = 3
    #: Full-grid sweeps merged by per-phase min. Best-of repeats inside
    #: one config cannot cancel a machine-load *trend* across configs
    #: (the baseline always runs first in time); a second sweep runs the
    #: grid in reverse so the trend biases it the opposite way, and
    #: checksums must agree across sweeps (a free determinism check).
    passes: int = 2
    warm_iters: int = 3
    nrhs: int = 4
    seed: int = 2019
    block_bytes: int = 8192
    #: Engine pool kind for worker configs: ``process`` (honest decode
    #: parallelism; the CLI/bench default) or ``thread`` (cheap spin-up
    #: for tier-1 tests — scheduling paths identical, fork cost zero).
    executor_kind: str = "process"
    #: A component is *harmful* when its removal improves the headline
    #: geomean by more than this fraction (the CI gate).
    harmful_threshold: float = 0.05
    #: Profile label recorded in the artifact context.
    profile: str = "default"

    @classmethod
    def default(cls) -> "RunnerSettings":
        return cls(
            cases=(
                MatrixCase(
                    "unstructured-60k", "unstructured",
                    (("n", 2400), ("density", 0.01)),
                ),
                MatrixCase(
                    "banded-48k", "banded", (("n", 6000), ("bandwidth", 8)),
                ),
                MatrixCase("graph-40k", "graph", (("n", 10000), ("attach", 4))),
            ),
        )

    @classmethod
    def smoke(cls) -> "RunnerSettings":
        """Reduced grid for CI: ~40k-nnz matrices, fewer repeats."""
        return cls(
            cases=(
                MatrixCase(
                    "unstructured-40k", "unstructured",
                    (("n", 2000), ("density", 0.01)),
                ),
                MatrixCase(
                    "banded-33k", "banded", (("n", 4200), ("bandwidth", 8)),
                ),
            ),
            repeats=2,
            profile="smoke",
        )

    @classmethod
    def tiny(cls) -> "RunnerSettings":
        """Unit-test scale: small matrices, thread pools, one repeat."""
        return cls(
            cases=(
                MatrixCase(
                    "unstructured-4k", "unstructured",
                    (("n", 640), ("density", 0.01)),
                ),
                MatrixCase(
                    "banded-5k", "banded", (("n", 1100), ("bandwidth", 5)),
                ),
            ),
            repeats=1,
            passes=1,
            warm_iters=1,
            nrhs=2,
            block_bytes=2048,
            executor_kind="thread",
            profile="tiny",
        )


@dataclass
class PhaseTiming:
    """Best-of timings for one (config, matrix) workload."""

    cold_seconds: float
    warm_seconds: float
    spmm_seconds: float
    warm_iters: int

    @property
    def seconds(self) -> float:
        """The per-matrix headline metric: one modeled service cycle."""
        return self.cold_seconds + self.warm_iters * self.warm_seconds + self.spmm_seconds


@dataclass
class ConfigResult:
    """Everything one configuration produced."""

    config: AblationConfig
    timings: dict[str, PhaseTiming] = field(default_factory=dict)
    #: sha256 of the raw SpMV result buffer, per matrix.
    spmv_checksums: dict[str, str] = field(default_factory=dict)
    #: sha256 of the raw SpMM result buffer, per matrix.
    spmm_checksums: dict[str, str] = field(default_factory=dict)
    degraded_blocks: int = 0
    metric_names: frozenset[str] = frozenset()


@dataclass
class AblationReport:
    """Runner output: per-config measurements plus the conformance verdict."""

    settings: RunnerSettings
    baseline: ConfigResult
    results: tuple[ConfigResult, ...]  # one-off configs, enumeration order
    mismatches: tuple[str, ...]

    @property
    def bit_identical(self) -> bool:
        return not self.mismatches

    @property
    def all_results(self) -> tuple[ConfigResult, ...]:
        return (self.baseline, *self.results)


def _checksum(y: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(y).tobytes()).hexdigest()


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class AblationRunner:
    """Enumerate, measure, and cross-check ablation configurations."""

    def __init__(self, settings: RunnerSettings | None = None):
        self.settings = settings or RunnerSettings.default()
        self._matrices: dict[str, CSRMatrix] = {}
        self._plans: dict[tuple[str, str], MatrixCompression] = {}
        self._vectors: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    # -- fixtures shared across configs --------------------------------------

    def _fixture(self, case: MatrixCase, block_codec: str = "adaptive"):
        s = self.settings
        key = (case.name, block_codec)
        if key not in self._plans:
            m = self._matrices.get(case.name)
            if m is None:
                m = case.build(s.seed)
                rng = np.random.default_rng(derive_seed(s.seed, case.name, "x"))
                x = rng.standard_normal(m.ncols)
                X = rng.standard_normal((m.ncols, s.nrhs))
                self._matrices[case.name] = m
                self._vectors[case.name] = (x, X)
            # Plans are byte-identical across kernel backends by contract
            # (gated in bench_fig12), so one encode per codec policy
            # serves every config. The adaptive plan uses the default
            # stage profile, not live telemetry: sweeps must re-measure
            # the exact same plan or the cross-sweep checksums lie.
            if block_codec == "adaptive":
                plan, _ = compress_adaptive(
                    m,
                    block_bytes=s.block_bytes,
                    seed=s.seed,
                    profile=StageProfile.default(),
                )
            elif block_codec == "fixed-dsh":
                plan = compress_matrix(m, block_bytes=s.block_bytes, seed=s.seed)
            else:
                raise ValueError(f"unknown block_codec {block_codec!r}")
            self._plans[key] = plan
        return self._plans[key], self._vectors[case.name]

    # -- one configuration ----------------------------------------------------

    def _build_engine(self, config: AblationConfig) -> RecodeEngine:
        return RecodeEngine(
            workers=config.workers,
            executor=self.settings.executor_kind,
            chunk_blocks=4,
            cache=DecodedBlockCache() if config.cache else None,
            retry_base_s=0.0,
        )

    def run_config(self, config: AblationConfig) -> ConfigResult:
        """Measure one configuration over every suite matrix."""
        s = self.settings
        result = ConfigResult(config=config)
        with obs.scoped_registry() as reg, kernels.use_backend(config.kernel_backend):
            engine = self._build_engine(config)
            try:
                for case in s.cases:
                    plan, (x, X) = self._fixture(case, config.block_codec)
                    self._run_case(config, engine, case.name, plan, x, X, result)
            finally:
                engine.close()
            result.metric_names = frozenset(
                rec["name"] for rec in reg.snapshot().values()
            )
        return result

    def _run_case(
        self,
        config: AblationConfig,
        engine: RecodeEngine,
        name: str,
        plan: MatrixCompression,
        x: np.ndarray,
        X: np.ndarray,
        result: ConfigResult,
    ) -> None:
        s = self.settings
        # Every configuration routes through a session; the ``session``
        # axis flips ``reuse`` so ablated runs rebuild cold state on
        # every call (cache dropped, no warm fast path, fresh buffers).
        sess = ExecutionSession(
            plan,
            matrix_id=name,
            engine=engine,
            mode=config.executor,
            depth=config.depth,
            policy=config.policy,
            reuse=config.session,
        )
        try:
            def spmv():
                return sess.spmv(x)

            # Warm the pool (fork/exec + worker imports) outside any
            # timer, then restore cold state for the cold phase.
            y, stats = spmv()
            result.degraded_blocks += stats.degraded_blocks
            result.spmv_checksums[name] = _checksum(y)

            def cold_once():
                sess.reset()
                t0 = time.perf_counter()
                spmv()
                return time.perf_counter() - t0

            cold = min(cold_once() for _ in range(s.repeats))
            # The last cold attempt left the session warm (when reusing).
            warm = _best_of(s.repeats, spmv)

            if config.spmm_fusion:
                Y, mstats = sess.spmm(X)
                result.degraded_blocks += mstats.degraded_blocks
                result.spmm_checksums[name] = _checksum(Y)
                spmm = _best_of(s.repeats, lambda: sess.spmm(X))
            else:
                # sess.spmv returns the session's reusable buffer, so
                # copy each column before the next call overwrites it.
                cols = []
                for j in range(s.nrhs):
                    yj, st = sess.spmv(X[:, j])
                    result.degraded_blocks += st.degraded_blocks
                    cols.append(yj.copy())
                result.spmm_checksums[name] = _checksum(np.column_stack(cols))
                spmm = _best_of(
                    s.repeats,
                    lambda: [sess.spmv(X[:, j]) for j in range(s.nrhs)],
                )
        finally:
            sess.close()
        result.timings[name] = PhaseTiming(
            cold_seconds=cold,
            warm_seconds=warm,
            spmm_seconds=spmm,
            warm_iters=s.warm_iters,
        )

    # -- the full grid ---------------------------------------------------------

    @staticmethod
    def _merge_pass(acc: ConfigResult, res: ConfigResult) -> list[str]:
        """Fold a later sweep into ``acc``: per-phase min on timings,
        everything deterministic must be identical. Returns mismatches."""
        rid = acc.config.run_id
        mismatches: list[str] = []
        for name, t in res.timings.items():
            prev = acc.timings[name]
            acc.timings[name] = PhaseTiming(
                cold_seconds=min(prev.cold_seconds, t.cold_seconds),
                warm_seconds=min(prev.warm_seconds, t.warm_seconds),
                spmm_seconds=min(prev.spmm_seconds, t.spmm_seconds),
                warm_iters=prev.warm_iters,
            )
        for label, pairs in (
            ("SpMV", (acc.spmv_checksums, res.spmv_checksums)),
            ("SpMM", (acc.spmm_checksums, res.spmm_checksums)),
        ):
            if pairs[0] != pairs[1]:
                mismatches.append(
                    f"{rid}: {label} checksum changed between sweeps"
                )
        if acc.degraded_blocks != res.degraded_blocks:
            mismatches.append(
                f"{rid}: degraded-block accounting changed between sweeps"
            )
        if acc.metric_names != res.metric_names:
            drift = sorted(acc.metric_names ^ res.metric_names)
            mismatches.append(
                f"{rid}: metric names changed between sweeps: {drift}"
            )
        return mismatches

    def run(self, configs: tuple[AblationConfig, ...]) -> AblationReport:
        """Run ``passes`` full sweeps of baseline + one-offs, merge by
        per-phase min, and cross-check conformance.

        Raises:
            ValueError: if ``configs`` does not lead with the baseline.
        """
        if not configs or not configs[0].is_baseline:
            raise ValueError("configs must lead with the baseline configuration")
        # Build matrices/plans/vectors before any config's metric scope
        # opens: encode-side metrics must not leak into the first
        # config's name set (they'd fail the cross-config comparison).
        for case in self.settings.cases:
            for block_codec in sorted({c.block_codec for c in configs}):
                self._fixture(case, block_codec)
        mismatches: list[str] = []
        merged: list[ConfigResult] = []
        for pass_i in range(max(1, self.settings.passes)):
            # Alternate sweep direction: a monotone machine-load trend
            # biases a fixed-order sweep one way (the baseline always
            # runs first); reversing odd sweeps makes the trend push the
            # two sweeps' ratios in opposite directions, so the
            # per-phase min-merge cancels it instead of compounding it.
            order = range(len(configs))
            if pass_i % 2:
                order = reversed(order)
            for j in order:
                res = self.run_config(configs[j])
                if pass_i == 0:
                    merged.append(res)
                else:
                    mismatches.extend(self._merge_pass(merged[j], res))
        baseline, results = merged[0], tuple(merged[1:])
        mismatches.extend(self._conformance(baseline, results))
        return AblationReport(
            settings=self.settings,
            baseline=baseline,
            results=results,
            mismatches=tuple(mismatches),
        )

    def _conformance(
        self, baseline: ConfigResult, results: tuple[ConfigResult, ...]
    ) -> list[str]:
        """Every configuration must reproduce the baseline bit-for-bit."""
        mismatches: list[str] = []
        base_core = core_metric_names(baseline.metric_names)
        for res in (baseline, *results):
            rid = res.config.run_id
            if res is not baseline:
                for name, ck in baseline.spmv_checksums.items():
                    if res.spmv_checksums.get(name) != ck:
                        mismatches.append(f"{rid}: SpMV result diverged on {name}")
                for name, ck in baseline.spmm_checksums.items():
                    if res.spmm_checksums.get(name) != ck:
                        mismatches.append(f"{rid}: SpMM result diverged on {name}")
                if res.degraded_blocks != baseline.degraded_blocks:
                    mismatches.append(
                        f"{rid}: degraded-block accounting diverged "
                        f"({res.degraded_blocks} != {baseline.degraded_blocks})"
                    )
                core = core_metric_names(res.metric_names)
                if core != base_core:
                    drift = sorted(core ^ base_core)
                    mismatches.append(f"{rid}: core metric names diverged: {drift}")
            for marker, expected in expected_metric_markers(res.config).items():
                present = marker in res.metric_names
                if present != expected:
                    state = "missing" if expected else "unexpectedly present"
                    mismatches.append(f"{rid}: metric marker {marker!r} {state}")
        return mismatches
