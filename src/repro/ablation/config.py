"""Ablation configuration model: switchable axes and the run grid.

Following the aumai-ablation exemplar (SNIPPETS.md), the harness
enumerates **baseline plus one-off** configurations: one fully-featured
baseline run, then one run per axis with exactly that component switched
to its ablated ("removed") value. Every run carries a stable, traceable
``run_id`` (``baseline``, ``no-cache``, ``no-kernel_backend``, ...) so
reports diff cleanly across commits.

The axes mirror every runtime switch the codebase exposes:

==================  =======================  =====================
axis                baseline                 ablated
==================  =======================  =====================
``cache``           decoded-block cache on   no cache (cold decode)
``kernel_backend``  ``numpy`` fast paths     ``python`` reference
``executor``        ``pipelined`` overlap    ``serial`` block loop
``depth``           prefetch depth 4         depth 1 (no prefetch)
``workers``         2-wide decode pool       in-process serial
``policy``          ``degrade`` substitute   ``strict`` fail-fast
``spmm_fusion``     fused multi-RHS SpMM     k independent SpMVs
``block_codec``     adaptive per-block tags  fixed DSH pipeline
``session``         warm session reuse       cold state per call
==================  =======================  =====================

Adding a new switchable component = appending one :class:`Axis` here and
teaching :mod:`repro.ablation.runner` to apply it (see docs/ABLATION.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.executor import DEFAULT_DEPTH


#: Axis kinds. A ``removal`` axis switches a component off entirely; its
#: removal must never *help* (the CI harmful gate). A ``variation`` axis
#: flips a numeric knob to an alternative whose best value is
#: hardware-dependent (worker count and prefetch depth hinge on the host
#: core count — a 1-core container and an 8-core runner disagree), so it
#: is ranked and flagged in the report but exempt from the CI gate.
KINDS = ("removal", "variation")


@dataclass(frozen=True)
class Axis:
    """One switchable component: its baseline and ablated settings."""

    #: Axis key — also the :class:`AblationConfig` field it controls.
    name: str
    #: Human-readable component name for the ranked report.
    component: str
    #: Value the fully-featured baseline runs with.
    baseline: object
    #: Value the one-off ablation run flips to ("component removed").
    ablated: object
    #: What removal means, for the report.
    description: str
    #: ``removal`` (gated) or ``variation`` (ranked, not gated).
    kind: str = "removal"


#: The switchable-component axes, in stable report order.
AXES: tuple[Axis, ...] = (
    Axis(
        "cache",
        "decoded-block cache",
        True,
        False,
        "warm iterations re-decode every block instead of hitting the LRU",
    ),
    Axis(
        "kernel_backend",
        "numpy kernel backend",
        "numpy",
        "python",
        "codec hot loops fall back to the pure-python reference",
    ),
    Axis(
        "executor",
        "pipelined executor",
        "pipelined",
        "serial",
        "block decode no longer overlaps the multiply",
    ),
    Axis(
        "depth",
        f"prefetch depth {DEFAULT_DEPTH}",
        DEFAULT_DEPTH,
        1,
        "at most one decode chunk in flight (no lookahead)",
        kind="variation",
    ),
    Axis(
        "workers",
        "decode worker pool",
        2,
        0,
        "block decodes run in-process instead of across the pool",
        kind="variation",
    ),
    Axis(
        "policy",
        "degrade policy",
        "degrade",
        "strict",
        "block-decode failures raise instead of substituting raw CSR",
    ),
    Axis(
        "spmm_fusion",
        "fused multi-RHS SpMM",
        True,
        False,
        "k right-hand sides run as k independent SpMVs (k decodes)",
    ),
    Axis(
        "block_codec",
        "adaptive per-block codec selection",
        "adaptive",
        "fixed-dsh",
        "every block reverts to the fixed delta+snappy+huffman DSH pipeline",
    ),
    Axis(
        "session",
        "execution-session reuse",
        True,
        False,
        "every call rebuilds cold state: cache dropped, no warm fast "
        "path, no buffer reuse (steady-state iterations pay full decode)",
    ),
)

_AXES_BY_NAME: dict[str, Axis] = {axis.name: axis for axis in AXES}

#: run_id of the fully-featured configuration.
BASELINE_RUN_ID = "baseline"

#: Separator joining the two axis names of a pairwise ablation
#: (``ablated_axis="executor+workers"``, ``run_id="no-executor+workers"``).
PAIR_SEP = "+"


@dataclass(frozen=True)
class AblationConfig:
    """One fully-specified runtime configuration.

    ``ablated_axis`` is ``None`` for the baseline, else the name of the
    single axis flipped to its ablated value.
    """

    run_id: str
    ablated_axis: str | None
    cache: bool
    kernel_backend: str
    executor: str
    depth: int
    workers: int
    policy: str
    spmm_fusion: bool
    block_codec: str
    session: bool

    @property
    def is_baseline(self) -> bool:
        return self.ablated_axis is None

    def as_dict(self) -> dict:
        """JSON-ready view (the ``config`` object in BENCH_ablation.json)."""
        return {
            "cache": self.cache,
            "kernel_backend": self.kernel_backend,
            "executor": self.executor,
            "depth": self.depth,
            "workers": self.workers,
            "policy": self.policy,
            "spmm_fusion": self.spmm_fusion,
            "block_codec": self.block_codec,
            "session": self.session,
        }

    @property
    def is_pair(self) -> bool:
        """True for a pairwise ablation (two axes flipped at once)."""
        return self.ablated_axis is not None and PAIR_SEP in self.ablated_axis

    def pair_axes(self) -> tuple[str, str]:
        """The two axis names of a pairwise ablation.

        Raises:
            ValueError: when this is not a pairwise configuration.
        """
        if not self.is_pair:
            raise ValueError(f"{self.run_id!r} is not a pairwise ablation")
        a, b = self.ablated_axis.split(PAIR_SEP)
        return a, b

    def describe(self) -> str:
        if self.ablated_axis is None:
            return "baseline (all components on)"
        if self.is_pair:
            a, b = (axis(name) for name in self.pair_axes())
            return f"{a.component} and {b.component} removed together"
        ax = _AXES_BY_NAME[self.ablated_axis]
        return f"{ax.component} removed: {ax.description}"


def axis(name: str) -> Axis:
    """Look an axis up by name.

    Raises:
        ValueError: for an unknown axis name.
    """
    try:
        return _AXES_BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown ablation axis {name!r}; know {sorted(_AXES_BY_NAME)}"
        ) from None


def baseline_config() -> AblationConfig:
    """The fully-featured configuration every ablation is measured against."""
    values = {a.name: a.baseline for a in AXES}
    return AblationConfig(run_id=BASELINE_RUN_ID, ablated_axis=None, **values)


def enumerate_configs(
    axes: tuple[str, ...] | None = None,
) -> tuple[AblationConfig, ...]:
    """Baseline plus one one-off configuration per axis.

    Args:
        axes: restrict the one-off grid to these axis names (baseline is
            always included). ``None`` = every known axis.

    Raises:
        ValueError: for unknown axis names.
    """
    selected = AXES if axes is None else tuple(axis(name) for name in axes)
    base = baseline_config()
    configs = [base]
    for ax in selected:
        configs.append(
            replace(
                base,
                run_id=f"no-{ax.name}",
                ablated_axis=ax.name,
                **{ax.name: ax.ablated},
            )
        )
    return tuple(configs)


def enumerate_pair_configs(
    pair_axes: tuple[str, ...],
) -> tuple[AblationConfig, ...]:
    """All pairwise ablations over ``pair_axes``: both axes flipped at once.

    Pairs are emitted in stable :data:`AXES` order with
    ``run_id="no-a+b"`` and ``ablated_axis="a+b"``. The interaction report
    (:func:`repro.ablation.report.rank_interactions`) compares each
    pair's joint slowdown against the product of its two one-off
    slowdowns, so the one-off runs for every named axis must be in the
    same grid.

    Raises:
        ValueError: unknown axis names, or fewer than two of them.
    """
    selected = [axis(name) for name in pair_axes]
    order = {ax.name: i for i, ax in enumerate(AXES)}
    selected.sort(key=lambda ax: order[ax.name])
    if len({ax.name for ax in selected}) < 2:
        raise ValueError("pairwise ablation needs at least two distinct axes")
    base = baseline_config()
    configs = []
    for i, ax_a in enumerate(selected):
        for ax_b in selected[i + 1 :]:
            if ax_a.name == ax_b.name:
                continue
            configs.append(
                replace(
                    base,
                    run_id=f"no-{ax_a.name}{PAIR_SEP}{ax_b.name}",
                    ablated_axis=f"{ax_a.name}{PAIR_SEP}{ax_b.name}",
                    **{ax_a.name: ax_a.ablated, ax_b.name: ax_b.ablated},
                )
            )
    return tuple(configs)


# ---------------------------------------------------------------------------
# Metric-name conformance model
# ---------------------------------------------------------------------------

#: Metric-name prefixes that are legitimately configuration-dependent:
#: they appear or disappear with a switch and are excluded from the
#: cross-config "identical core names" comparison (each is then checked
#: individually by :func:`expected_metric_markers`).
CONFIG_DEPENDENT_METRIC_PREFIXES: tuple[str, ...] = (
    "spmv.pipeline.",
    "spmm.",
    "codecs.cache.",
    "kernels.",
    # The block_codec axis changes which stages actually run: tagged
    # records emit codec.mix.*, and an adaptive plan may legitimately
    # drop the huffman (or even delta) stage on streams where it loses.
    "codec.mix.",
    "codecs.huffman.",
    "codecs.delta.",
    # Session warm-path metrics track whether steady-state reuse actually
    # happened: warm_calls/blocks_reused/out_buffer_reuses only exist
    # when both the session axis and a cache are on.
    "session.",
)


def core_metric_names(names: set[str] | frozenset[str]) -> frozenset[str]:
    """The configuration-independent subset of emitted metric names."""
    return frozenset(
        n for n in names if not n.startswith(CONFIG_DEPENDENT_METRIC_PREFIXES)
    )


def expected_metric_markers(config: AblationConfig) -> dict[str, bool]:
    """Metric names that must be present/absent for ``config``.

    Maps marker name -> expected presence. Catches a switch silently not
    taking effect (e.g. ``executor="pipelined"`` falling back to serial
    would lose ``spmv.pipeline.runs``).
    """
    return {
        "spmv.pipeline.runs": config.executor == "pipelined",
        "spmm.iterations": config.spmm_fusion,
        "codecs.cache.hits": config.cache,
        "codec.mix.decode_records": config.block_codec == "adaptive",
        # Every run routes through a session; warm calls only happen when
        # both session reuse and the decoded-block cache are on.
        "session.calls": True,
        "session.warm_calls": config.session and config.cache,
    }
