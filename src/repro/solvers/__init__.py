"""Iterative solvers running over persistent execution sessions.

``repro.solvers`` is the steady-state workload layer the ROADMAP names:
conjugate gradient, PageRank, and power iteration driven entirely by
session SpMV — decode once, iterate out of the decoded-block cache, and
measure convergence against bytes moved, not just seconds. See
:mod:`repro.solvers.iterative` and ``docs/SOLVERS.md``.
"""

from repro.solvers.iterative import (
    IterationRecord,
    SolverResult,
    cg,
    pagerank,
    power_iteration,
)

__all__ = [
    "IterationRecord",
    "SolverResult",
    "cg",
    "pagerank",
    "power_iteration",
]
