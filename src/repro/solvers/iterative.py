"""Iterative solvers over session-backed recoded SpMV.

The drivers here run *entirely* over one
:class:`~repro.core.session.ExecutionSession`: the first iteration pays
the decode-once cost, every later iteration multiplies out of the
session's decoded-block cache, and the per-iteration telemetry
(``solver.*``) plus :class:`SolverResult.convergence_curve` turn that
into the paper's real argument — residual reduction *per byte of DRAM
traffic*, not per wall-second.

The float-operation sequences are exactly those of the original
hand-rolled example loops (``examples/pde_heat_solver.py`` and
``examples/graph_pagerank.py``), so results are bit-identical to them —
and, because sessions are bit-identical to single-shot
:func:`~repro.core.recoded_spmv` across every executor and backend, to
any other configuration too.

Traffic accounting: ``dram_bytes`` is the matrix-side DRAM traffic the
executors actually logged (decode-once in steady state; per-iteration
re-streams under faults/degrade stay honestly accounted because the
session disables its warm path there). ``vector_bytes`` models the
unavoidable dense-operand traffic of each iteration — x streamed in, y
streamed out, ``8 * (ncols + nrows)`` bytes — the same model
:func:`repro.sparse.spmm.spmm_speedup_model` uses for its crossover.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.session import ExecutionSession
from repro.sparse.csr import VALUE_DTYPE


@dataclass(frozen=True)
class IterationRecord:
    """One solver iteration's telemetry snapshot (cumulative bytes)."""

    iteration: int
    residual: float
    #: Cumulative matrix-side DRAM bytes after this iteration.
    dram_bytes: int
    #: Cumulative modeled dense-vector bytes (8*(ncols+nrows) per SpMV).
    vector_bytes: int
    cache_hit_rate: float
    seconds: float


@dataclass
class SolverResult:
    """Outcome of one iterative solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual: float
    history: tuple[IterationRecord, ...]
    #: Algorithm-specific extras (e.g. ``eigenvalue`` for power iteration).
    info: dict = field(default_factory=dict)

    @property
    def dram_bytes(self) -> int:
        return self.history[-1].dram_bytes if self.history else 0

    @property
    def vector_bytes(self) -> int:
        return self.history[-1].vector_bytes if self.history else 0

    @property
    def total_bytes(self) -> int:
        return self.dram_bytes + self.vector_bytes

    def convergence_curve(self) -> list[tuple[int, float]]:
        """``(cumulative_total_bytes, residual)`` per iteration — the
        convergence-vs-traffic curve. Plot residual (log) against bytes
        to compare codecs/configurations at equal data movement."""
        return [
            (rec.dram_bytes + rec.vector_bytes, rec.residual)
            for rec in self.history
        ]


@contextmanager
def _session_for(a, **kwargs):
    """Yield ``a`` if it already is a session, else a temporary one."""
    if isinstance(a, ExecutionSession):
        yield a
    else:
        sess = ExecutionSession(a, **kwargs)
        try:
            yield sess
        finally:
            sess.close()


class _Telemetry:
    """Per-iteration ``solver.*`` emission + history accumulation."""

    def __init__(self, alg: str, session: ExecutionSession):
        self.alg = alg
        self.session = session
        nrows, ncols = session.plan.blocked.shape
        self.vector_bytes_per_spmv = 8 * (ncols + nrows)
        self.dram_bytes = 0
        self.vector_bytes = 0
        self.history: list[IterationRecord] = []

    def record(self, iteration: int, residual: float, stats, seconds: float):
        self.dram_bytes += stats.dram_bytes
        self.vector_bytes += self.vector_bytes_per_spmv
        hit_rate = 0.0
        eng = self.session.engine
        if eng is not None and eng.cache is not None:
            hit_rate = eng.cache.stats.hit_rate
        reg = obs.registry()
        labels = {"solver": self.alg}
        reg.counter("solver.iterations", **labels).inc()
        reg.counter("solver.traffic_bytes", **labels).inc(stats.dram_bytes)
        reg.counter("solver.vector_bytes", **labels).inc(self.vector_bytes_per_spmv)
        reg.gauge("solver.residual", **labels).set(residual)
        reg.gauge("solver.cache_hit_rate", **labels).set(hit_rate)
        reg.histogram("solver.iteration_seconds", **labels).observe(seconds)
        self.history.append(
            IterationRecord(
                iteration=iteration,
                residual=residual,
                dram_bytes=self.dram_bytes,
                vector_bytes=self.vector_bytes,
                cache_hit_rate=hit_rate,
                seconds=seconds,
            )
        )

    def result(self, x, converged, iterations, residual, **info) -> SolverResult:
        reg = obs.registry()
        reg.counter("solver.runs", solver=self.alg).inc()
        if converged:
            reg.counter("solver.converged", solver=self.alg).inc()
        return SolverResult(
            x=x,
            converged=converged,
            iterations=iterations,
            residual=residual,
            history=tuple(self.history),
            info=dict(info),
        )


def cg(
    a: "ExecutionSession | object",
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iter: int = 500,
) -> SolverResult:
    """Conjugate gradient for SPD ``A x = b`` over session SpMV.

    Textbook CG, float-for-float the sequence of the original
    ``examples/pde_heat_solver.py`` hand-rolled loop (``alpha = rs /
    (p @ Ap)``; ``x += alpha p``; ``r -= alpha Ap``; Fletcher–Reeves
    ``beta = rs_new / rs``), so results are bit-identical to it.
    Converges when ``||r||_2 < tol``; for SPD A with condition number
    κ the iteration count is bounded by ~``sqrt(κ)/2 * ln(2/eps)``.

    ``a`` is an :class:`ExecutionSession` or anything one accepts (plan,
    reader, ``.dsh`` path).
    """
    b = np.ascontiguousarray(b, dtype=VALUE_DTYPE)
    with _session_for(a) as sess:
        tele = _Telemetry("cg", sess)
        x = np.zeros_like(b)
        y, stats = sess.spmv(x)
        tele.dram_bytes += stats.dram_bytes  # setup SpMV: traffic, no iter
        r = b - y
        p = r.copy()
        rs = float(r @ r)
        residual = math.sqrt(rs)
        if residual < tol:
            return tele.result(x, True, 0, residual)
        for iteration in range(1, max_iter + 1):
            start = time.perf_counter()
            ap, stats = sess.spmv(p)
            alpha = rs / float(p @ ap)
            x += alpha * p
            r -= alpha * ap
            rs_new = float(r @ r)
            residual = math.sqrt(rs_new)
            tele.record(iteration, residual, stats, time.perf_counter() - start)
            if residual < tol:
                return tele.result(x, True, iteration, residual)
            p = r + (rs_new / rs) * p
            rs = rs_new
        return tele.result(x, False, max_iter, residual)


def pagerank(
    a: "ExecutionSession | object",
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> SolverResult:
    """PageRank by power iteration over a column-stochastic ``P^T``.

    ``a`` holds :math:`P^T` (see
    :func:`examples.graph_pagerank.row_normalize`); each iteration is
    ``y = d P^T x + (1-d)/n`` with residual leak redistributed
    uniformly, converging on L1 change — float-for-float the original
    ``examples/graph_pagerank.py`` loop, so ranks are bit-identical.
    """
    with _session_for(a) as sess:
        nrows, ncols = sess.plan.blocked.shape
        if nrows != ncols:
            raise ValueError(f"pagerank needs a square operator, got {nrows}x{ncols}")
        n = ncols
        tele = _Telemetry("pagerank", sess)
        x = np.full(n, 1.0 / n)
        y = x
        delta = float("inf")
        for iteration in range(1, max_iter + 1):
            start = time.perf_counter()
            y, stats = sess.spmv(x)
            y = damping * y + (1 - damping) / n
            y += (1.0 - y.sum()) / n  # redistribute dangling/leaked mass
            delta = float(np.abs(y - x).sum())
            tele.record(iteration, delta, stats, time.perf_counter() - start)
            if delta < tol:
                return tele.result(y, True, iteration, delta)
            x = y
        return tele.result(y, False, max_iter, delta)


def power_iteration(
    a: "ExecutionSession | object",
    *,
    tol: float = 1e-10,
    max_iter: int = 200,
    x0: np.ndarray | None = None,
) -> SolverResult:
    """Dominant eigenpair by normalized power iteration over session SpMV.

    Returns the unit eigenvector as ``x`` and the Rayleigh-quotient
    eigenvalue estimate in ``info["eigenvalue"]``; converges on the
    max-norm change of the iterate.
    """
    with _session_for(a) as sess:
        nrows, ncols = sess.plan.blocked.shape
        if nrows != ncols:
            raise ValueError(
                f"power iteration needs a square operator, got {nrows}x{ncols}"
            )
        tele = _Telemetry("power", sess)
        if x0 is None:
            x = np.full(ncols, 1.0 / math.sqrt(ncols))
        else:
            x = np.ascontiguousarray(x0, dtype=VALUE_DTYPE)
            norm = float(np.linalg.norm(x))
            if norm == 0.0:
                raise ValueError("x0 must be nonzero")
            x = x / norm
        eigenvalue = 0.0
        delta = float("inf")
        for iteration in range(1, max_iter + 1):
            start = time.perf_counter()
            y, stats = sess.spmv(x)
            eigenvalue = float(x @ y)
            norm = float(np.linalg.norm(y))
            if norm == 0.0:
                tele.record(iteration, 0.0, stats, time.perf_counter() - start)
                return tele.result(x, True, iteration, 0.0, eigenvalue=0.0)
            y = y / norm
            delta = float(np.abs(y - x).max())
            tele.record(iteration, delta, stats, time.perf_counter() - start)
            if delta < tol:
                return tele.result(y, True, iteration, delta, eigenvalue=eigenvalue)
            x = y.copy()
        return tele.result(y, False, max_iter, delta, eigenvalue=eigenvalue)
