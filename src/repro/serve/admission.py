"""Admission control for the matrix server: who gets in, and at what cost.

Two independent gates, both cheap and both *refusing* rather than
queueing — the server's contract under overload is an explicit ``429
shed`` with an honest reason, never unbounded buffering:

* **per-tenant token bucket** — each tenant refills at ``tenant_rate``
  requests/s up to a ``tenant_burst`` ceiling, so one tenant's request
  storm cannot monopolize the intake no matter how fast it arrives;
* **global inflight-bytes budget** — every admitted request reserves its
  *estimated decode traffic* (compressed stream bytes + decoded 12 B/nnz
  stream + dense vector bytes, from container metadata — the paper's
  data-movement currency) and releases it on completion. When the
  reservation would push the total over budget the request sheds.

The controller is deliberately free of I/O and asyncio: pure state +
monotonic clock, so the unit tests drive it with a fake clock and the
asyncio server calls it inline (it never blocks).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` capacity.

    ``rate=None`` (or ``inf``) disables rate limiting — the bucket always
    grants. Thread-safe; time comes from an injectable monotonic clock.
    """

    def __init__(
        self,
        rate: float | None,
        burst: float = 1.0,
        clock=time.monotonic,
    ):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive or None, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.rate = None if rate is None or math.isinf(rate) else float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._t = clock()
        self._lock = threading.Lock()

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        if self.rate is None:
            return True
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._t) * self.rate)
            self._t = now
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current token balance (refreshed; diagnostic only)."""
        if self.rate is None:
            return math.inf
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._t) * self.rate)
            self._t = now
            return self._tokens


#: Admission refusal reasons (the ``shed`` field of a 429 response, and
#: the suffix of the matching ``serve.shed_*`` counter).
SHED_TENANT_RATE = "tenant_rate"
SHED_INFLIGHT_BYTES = "inflight_bytes"
SHED_QUEUE = "queue"
SHED_DRAINING = "draining"


@dataclass(frozen=True)
class Admission:
    """The outcome of one admission attempt."""

    admitted: bool
    #: One of the SHED_* reasons when refused, "" when admitted.
    reason: str = ""
    #: Bytes reserved against the inflight budget (0 when refused).
    cost_bytes: int = 0


class AdmissionController:
    """Token buckets per tenant + one global inflight-bytes reservation.

    ``try_admit`` checks the tenant bucket first (cheap, per-tenant
    fairness) then the byte budget (global backpressure); a granted
    reservation **must** be paired with exactly one :meth:`release` when
    the request finishes, expires, or fails downstream.
    """

    def __init__(
        self,
        inflight_budget_bytes: int,
        tenant_rate: float | None = None,
        tenant_burst: float = 8.0,
        clock=time.monotonic,
    ):
        if inflight_budget_bytes <= 0:
            raise ValueError(
                f"inflight_budget_bytes must be positive, got {inflight_budget_bytes}"
            )
        self.inflight_budget_bytes = int(inflight_budget_bytes)
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight = 0
        self._lock = threading.Lock()

    def bucket(self, tenant: str) -> TokenBucket:
        """The tenant's bucket, created on first use."""
        with self._lock:
            b = self._buckets.get(tenant)
            if b is None:
                b = TokenBucket(self.tenant_rate, self.tenant_burst, self._clock)
                self._buckets[tenant] = b
            return b

    @property
    def inflight_bytes(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def tenants(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._buckets))

    def try_admit(self, tenant: str, cost_bytes: int) -> Admission:
        """Admit or shed; reserves ``cost_bytes`` on success."""
        if cost_bytes < 0:
            raise ValueError(f"cost_bytes must be >= 0, got {cost_bytes}")
        if not self.bucket(tenant).try_acquire():
            return Admission(False, SHED_TENANT_RATE)
        with self._lock:
            # A single request bigger than the whole budget must still be
            # servable when the server is idle — otherwise it could never
            # run; the budget gates *concurrency*, not request size.
            if self._inflight > 0 and self._inflight + cost_bytes > self.inflight_budget_bytes:
                return Admission(False, SHED_INFLIGHT_BYTES)
            self._inflight += cost_bytes
        return Admission(True, "", cost_bytes)

    def release(self, cost_bytes: int) -> None:
        """Return a reservation taken by :meth:`try_admit`."""
        with self._lock:
            self._inflight -= cost_bytes
            if self._inflight < 0:  # pragma: no cover - double-release guard
                self._inflight = 0
