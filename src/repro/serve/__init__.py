"""repro.serve — SpMV-as-a-service: a resilient multi-tenant matrix server.

The serving layer turns the repo's recoded-SpMV executor into a daemon
(``repro serve --root <dir> --port N``) with the robustness properties a
shared accelerator front-end needs (see docs/SERVING.md):

* :mod:`~repro.serve.protocol` — newline-delimited JSON wire format with
  base64 vector payloads (bit-exact round trips);
* :mod:`~repro.serve.admission` — per-tenant token buckets + a global
  inflight-bytes budget in *estimated decode traffic*; overload sheds
  with explicit 429s, never unbounded queues;
* :mod:`~repro.serve.session` — the resident matrix library (long-lived
  lazy mmap readers) and the shared decoded-block cache with per-matrix
  admission/eviction;
* :mod:`~repro.serve.scheduler` — deadline tracking, cooperative
  cancellation, and same-matrix batch fusion into one
  :func:`~repro.core.recoded_spmm` (bit-identical per column);
* :mod:`~repro.serve.server` / :mod:`~repro.serve.client` — the asyncio
  daemon (with a Prometheus ``GET /metrics`` endpoint on the same port)
  and a pipelining client.
"""

from repro.serve.admission import (
    Admission,
    AdmissionController,
    SHED_DRAINING,
    SHED_INFLIGHT_BYTES,
    SHED_QUEUE,
    SHED_TENANT_RATE,
    TokenBucket,
)
from repro.serve.client import BlockingServeClient, ServeClient, ServeError
from repro.serve.protocol import (
    POLICIES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_array,
    encode_array,
)
from repro.serve.scheduler import FusionScheduler, WorkItem, select_batch
from repro.serve.server import MatrixServer, ServeConfig, ServerThread, run_server
from repro.serve.session import (
    MatrixInfo,
    MatrixLibrary,
    SharedDecodedCache,
    TenantRegistry,
    TenantSession,
)

__all__ = [
    "Admission",
    "AdmissionController",
    "SHED_DRAINING",
    "SHED_INFLIGHT_BYTES",
    "SHED_QUEUE",
    "SHED_TENANT_RATE",
    "TokenBucket",
    "BlockingServeClient",
    "ServeClient",
    "ServeError",
    "POLICIES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "decode_array",
    "encode_array",
    "FusionScheduler",
    "WorkItem",
    "select_batch",
    "MatrixServer",
    "ServeConfig",
    "ServerThread",
    "run_server",
    "MatrixInfo",
    "MatrixLibrary",
    "SharedDecodedCache",
    "TenantRegistry",
    "TenantSession",
]
