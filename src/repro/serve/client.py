"""A minimal asyncio client for ``repro serve``, plus a blocking wrapper.

:class:`ServeClient` speaks the NDJSON protocol: requests may be
pipelined, responses are matched back by ``id`` from a background read
loop, so N concurrent ``spmv`` awaits on one connection land in the same
server fusion window — exactly the pattern the batch-fusion scheduler
coalesces. :class:`BlockingServeClient` wraps it behind a private event
loop thread for synchronous callers (benchmarks, CLI probes, tests).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading

import numpy as np

from repro.serve import protocol


class ServeError(RuntimeError):
    """A non-OK response, with the typed error payload attached."""

    def __init__(self, resp: dict):
        error = resp.get("error") or {}
        super().__init__(
            f"[{resp.get('status')}] {error.get('type', 'Error')}: "
            f"{error.get('message', 'request failed')}"
        )
        self.resp = resp
        self.status = resp.get("status")
        self.err_type = error.get("type")
        self.shed_reason = resp.get("shed")


class ServeClient:
    """One NDJSON connection with id-matched response dispatch."""

    def __init__(self, host: str, port: int, tenant: str = "anon"):
        self.host = host
        self.port = port
        self.tenant = tenant
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[str, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._read_task: asyncio.Task | None = None

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=protocol.MAX_LINE_BYTES
        )
        self._read_task = asyncio.ensure_future(self._read_loop())
        return self

    async def close(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except (asyncio.CancelledError, Exception):
                pass
            self._read_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(ConnectionError("client closed"))
        self._pending.clear()

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                resp = json.loads(line)
                fut = self._pending.pop(resp.get("id", ""), None)
                if fut is not None and not fut.done():
                    fut.set_result(resp)
        except (asyncio.CancelledError, ConnectionResetError):
            raise
        finally:
            for fut in self._pending.values():
                if not fut.done():
                    fut.set_exception(ConnectionError("server closed connection"))
            self._pending.clear()

    async def request(self, msg: dict) -> dict:
        """Send one raw request dict; await its id-matched response."""
        assert self._writer is not None, "connect() first"
        rid = msg.setdefault("id", f"c{next(self._ids)}")
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        self._writer.write(protocol.dump_line(msg))
        await self._writer.drain()
        return await fut

    async def spmv(
        self,
        matrix: str,
        x: np.ndarray,
        *,
        deadline_ms: float | None = None,
        policy: str = "strict",
        raise_on_error: bool = True,
    ) -> dict:
        """One SpMV; the returned dict carries ``y`` decoded to ndarray."""
        msg = {
            "op": "spmv",
            "tenant": self.tenant,
            "matrix": matrix,
            "x": protocol.encode_array(np.asarray(x, dtype=np.float64)),
            "policy": policy,
        }
        if deadline_ms is not None:
            msg["deadline_ms"] = deadline_ms
        resp = await self.request(msg)
        return self._finish(resp, raise_on_error)

    async def spmm(
        self,
        matrix: str,
        X: np.ndarray,
        *,
        deadline_ms: float | None = None,
        policy: str = "strict",
        raise_on_error: bool = True,
    ) -> dict:
        msg = {
            "op": "spmm",
            "tenant": self.tenant,
            "matrix": matrix,
            "x": protocol.encode_array(np.asarray(X, dtype=np.float64)),
            "policy": policy,
        }
        if deadline_ms is not None:
            msg["deadline_ms"] = deadline_ms
        resp = await self.request(msg)
        return self._finish(resp, raise_on_error)

    async def stats(self) -> dict:
        return await self.request({"op": "stats", "tenant": self.tenant})

    async def health(self) -> dict:
        return await self.request({"op": "health", "tenant": self.tenant})

    @staticmethod
    def _finish(resp: dict, raise_on_error: bool) -> dict:
        if not resp.get("ok"):
            if raise_on_error:
                raise ServeError(resp)
            return resp
        if "y" in resp:
            resp["y"] = protocol.decode_array(resp["y"], what="y")
        return resp


class BlockingServeClient:
    """Synchronous facade: a private event-loop thread drives a
    :class:`ServeClient`. Safe to call from any thread; benchmarks use
    one per simulated tenant."""

    def __init__(self, host: str, port: int, tenant: str = "anon"):
        self._client = ServeClient(host, port, tenant)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name=f"serve-client-{tenant}", daemon=True
        )
        self._thread.start()
        self._run(self._client.connect())

    def _run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout=120)

    def spmv(self, matrix: str, x, **kw) -> dict:
        return self._run(self._client.spmv(matrix, x, **kw))

    def spmm(self, matrix: str, X, **kw) -> dict:
        return self._run(self._client.spmm(matrix, X, **kw))

    def spmv_many(self, matrix: str, xs, **kw) -> list[dict]:
        """Issue many SpMVs concurrently on one connection (fusion bait)."""

        async def _go():
            return await asyncio.gather(
                *(self._client.spmv(matrix, x, **kw) for x in xs)
            )

        return self._run(_go())

    def stats(self) -> dict:
        return self._run(self._client.stats())

    def health(self) -> dict:
        return self._run(self._client.health())

    def close(self) -> None:
        try:
            self._run(self._client.close())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()

    def __enter__(self) -> "BlockingServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
