"""Wire protocol for ``repro serve``: newline-delimited JSON.

One request per line, one response per line, matched by ``id`` — a
connection may pipeline requests and receive responses out of order.
Dense vectors travel as base64-encoded little-endian float64 payloads
with an explicit shape, so a served result is *bit-identical* to the
array the executor produced (JSON float round-trips are never trusted
with numerics).

Request envelope (``spmv`` shown; ``spmm`` takes a 2-D ``x``)::

    {"op": "spmv", "id": "r1", "tenant": "acme", "matrix": "web-graph",
     "x": {"dtype": "<f8", "shape": [70000], "data": "<base64>"},
     "deadline_ms": 250, "policy": "degrade"}

Response envelope::

    {"id": "r1", "op": "spmv", "ok": true, "status": 200,
     "y": {...}, "degraded_blocks": 0, "fused": 3,
     "queue_ms": 1.2, "compute_ms": 8.9}

Failures carry ``ok: false`` plus a machine-readable ``error`` object
(``type`` / ``message`` / optional ``block_id``) and an HTTP-flavored
``status``: 429 means *shed* (admission refused — retry later, the
response names the reason), 408 means the deadline expired, 500 means
the decode genuinely failed under ``strict`` policy.
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass, field

import numpy as np

#: Protocol revision carried in ``health`` responses.
PROTOCOL_VERSION = 1

# HTTP-flavored status codes (subset; see module docstring).
STATUS_OK = 200
STATUS_BAD_REQUEST = 400
STATUS_NOT_FOUND = 404
STATUS_DEADLINE = 408
STATUS_SHED = 429
STATUS_ERROR = 500
STATUS_UNAVAILABLE = 503

#: Operations a request may carry.
OPS = ("spmv", "spmm", "stats", "health")

#: Failure policies a compute request may select per request.
POLICIES = ("strict", "degrade")

#: Hard cap on one request line (guards the server against a rogue
#: client streaming an unbounded "line"). 64 MiB of base64 is ~48 MiB of
#: vector — far beyond any matrix this repo serves.
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A request line that cannot be parsed into a valid request."""


def encode_array(a: np.ndarray) -> dict:
    """Encode an array as ``{dtype, shape, data}`` with base64 payload."""
    a = np.ascontiguousarray(a)
    return {
        "dtype": a.dtype.str,
        "shape": list(a.shape),
        "data": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def decode_array(obj: object, *, what: str = "array") -> np.ndarray:
    """Decode :func:`encode_array` output; raises :class:`ProtocolError`."""
    if not isinstance(obj, dict):
        raise ProtocolError(f"{what} must be an object with dtype/shape/data")
    try:
        dtype = np.dtype(obj["dtype"])
        shape = tuple(int(s) for s in obj["shape"])
        raw = base64.b64decode(obj["data"], validate=True)
    except (KeyError, TypeError, ValueError, binascii.Error) as exc:
        raise ProtocolError(f"malformed {what}: {exc}") from exc
    if any(s < 0 for s in shape):
        raise ProtocolError(f"malformed {what}: negative dimension in {shape}")
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if len(raw) != expected:
        raise ProtocolError(
            f"malformed {what}: {len(raw)} payload bytes for shape {shape} "
            f"({expected} expected)"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape)


@dataclass
class Request:
    """A parsed, validated request."""

    op: str
    id: str
    tenant: str = "anon"
    matrix: str = ""
    x: np.ndarray | None = None
    deadline_ms: float | None = None
    policy: str = "strict"
    raw: dict = field(default_factory=dict, repr=False)

    @property
    def nrhs(self) -> int:
        if self.x is None:
            return 0
        return 1 if self.x.ndim == 1 else int(self.x.shape[1])

    @classmethod
    def from_wire(cls, msg: dict) -> "Request":
        """Validate one decoded JSON object into a request.

        Raises :class:`ProtocolError` naming the offending field; the
        server turns that into a ``400`` response (echoing ``id`` when one
        was recoverable).
        """
        if not isinstance(msg, dict):
            raise ProtocolError("request must be a JSON object")
        op = msg.get("op")
        if op not in OPS:
            raise ProtocolError(f"unknown op {op!r}; know {list(OPS)}")
        rid = msg.get("id")
        if not isinstance(rid, str) or not rid:
            raise ProtocolError("id must be a non-empty string")
        tenant = msg.get("tenant", "anon")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError("tenant must be a non-empty string")
        req = cls(op=op, id=rid, tenant=tenant, raw=msg)
        if op in ("stats", "health"):
            return req
        matrix = msg.get("matrix")
        if not isinstance(matrix, str) or not matrix:
            raise ProtocolError(f"{op} needs a matrix name")
        req.matrix = matrix
        x = decode_array(msg.get("x"), what="x")
        if x.dtype != np.float64:
            x = x.astype(np.float64)
        if op == "spmv" and x.ndim != 1:
            raise ProtocolError(f"spmv x must be 1-D, got shape {list(x.shape)}")
        if op == "spmm" and x.ndim != 2:
            raise ProtocolError(f"spmm x must be 2-D, got shape {list(x.shape)}")
        req.x = x
        deadline = msg.get("deadline_ms")
        if deadline is not None:
            if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
                raise ProtocolError("deadline_ms must be a number")
            if deadline <= 0:
                raise ProtocolError(f"deadline_ms must be > 0, got {deadline}")
            req.deadline_ms = float(deadline)
        policy = msg.get("policy", "strict")
        if policy not in POLICIES:
            raise ProtocolError(f"policy must be one of {list(POLICIES)}, got {policy!r}")
        req.policy = policy
        return req


def parse_line(line: bytes) -> Request:
    """Parse one wire line into a :class:`Request`."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON: {exc}") from exc
    return Request.from_wire(msg)


def response(
    rid: str, op: str, status: int = STATUS_OK, **fields
) -> dict:
    """Build a response envelope (``ok`` derived from ``status``)."""
    out = {"id": rid, "op": op, "ok": status == STATUS_OK, "status": status}
    out.update(fields)
    return out


def error_response(
    rid: str, op: str, status: int, err_type: str, message: str, **fields
) -> dict:
    """Build a failure envelope with a typed ``error`` object."""
    error = {"type": err_type, "message": message}
    block_id = fields.pop("block_id", None)
    if block_id is not None:
        error["block_id"] = block_id
    return response(rid, op, status, error=error, **fields)


def dump_line(msg: dict) -> bytes:
    """Serialize one response (or request) as a wire line."""
    return json.dumps(msg, separators=(",", ":"), sort_keys=True).encode() + b"\n"
