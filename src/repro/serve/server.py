"""The ``repro serve`` daemon: an asyncio NDJSON matrix server.

One process serves every ``.dsh`` container under a root directory over
a TCP port. Connections speak the newline-delimited JSON protocol of
:mod:`repro.serve.protocol`; the same port also answers plain HTTP
``GET /metrics`` (Prometheus text exposition of the live registry) and
``GET /health``, so a scrape target needs no second listener.

The request path is deliberately short and every stage refuses rather
than buffers:

    parse -> validate -> admission (429 shed) -> bounded queue (429 shed)
          -> fusion window -> compute pool -> response

Results are **bit-identical** to a direct :func:`repro.core.recoded_spmv`
/ ``recoded_spmm`` call with the same policy — serving, fusion, caching
and degradation never touch the numerics, only who pays for data
movement and when. Under ``strict`` a decode failure is a typed ``500``;
under ``degrade`` the executor substitutes identity blocks and the
response accounts for every degraded block. Shutdown is graceful: stop
accepting, shed new work as ``draining``, drain in-flight batches, then
tear down the engine pool and the mmap readers.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

from repro import obs
from repro.codecs.engine import RecodeEngine
from repro.obs.export import to_prometheus
from repro.serve import protocol
from repro.serve.admission import (
    AdmissionController,
    SHED_DRAINING,
    SHED_INFLIGHT_BYTES,
    SHED_QUEUE,
    SHED_TENANT_RATE,
)
from repro.serve.scheduler import FusionScheduler, WorkItem
from repro.serve.session import (
    DEFAULT_MAX_MATRIX_FRAC,
    DEFAULT_SERVE_CACHE_BYTES,
    MatrixLibrary,
    SharedDecodedCache,
    TenantRegistry,
)

#: Default global inflight-bytes budget (estimated decode traffic).
DEFAULT_INFLIGHT_BUDGET = 1 * 1024 * 1024 * 1024


@dataclass
class ServeConfig:
    """Everything a :class:`MatrixServer` needs, CLI-mappable 1:1."""

    root: str
    host: str = "127.0.0.1"
    port: int = 0
    #: Engine pool width (0 = serial in-process decode).
    workers: int = 0
    executor: str = "thread"
    #: Execution mode for every request: "serial" | "pipelined".
    mode: str = "serial"
    depth: int = 4
    cache_bytes: int = DEFAULT_SERVE_CACHE_BYTES
    max_matrix_frac: float = DEFAULT_MAX_MATRIX_FRAC
    inflight_budget_bytes: int = DEFAULT_INFLIGHT_BUDGET
    #: Per-tenant admission rate (requests/s); None disables.
    tenant_rate: float | None = None
    tenant_burst: float = 8.0
    fusion_window_ms: float = 2.0
    max_fuse: int = 8
    max_queue: int = 64
    compute_threads: int = 2
    #: mmap residency budget per container (PR 7); None = unbounded.
    residency_budget: int | None = None
    #: Seconds to wait for in-flight work at shutdown.
    drain_s: float = 5.0

    def __post_init__(self) -> None:
        if self.mode not in ("serial", "pipelined"):
            raise ValueError(f"mode must be serial|pipelined, got {self.mode!r}")
        if self.mode == "pipelined" and self.workers == 0:
            raise ValueError("mode=pipelined needs workers >= 1 (async decode)")


class MatrixServer:
    """Owns the library, engine, admission, scheduler and the listener."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.library = MatrixLibrary(
            config.root, residency_budget=config.residency_budget
        )
        self.cache = SharedDecodedCache(
            max_bytes=config.cache_bytes, max_matrix_frac=config.max_matrix_frac
        )
        self.engine = RecodeEngine(
            workers=config.workers,
            executor=config.executor,
            cache=self.cache,
        )
        self.admission = AdmissionController(
            inflight_budget_bytes=config.inflight_budget_bytes,
            tenant_rate=config.tenant_rate,
            tenant_burst=config.tenant_burst,
        )
        self.tenants = TenantRegistry()
        self.scheduler = FusionScheduler(
            self.library,
            self.engine,
            mode=config.mode,
            depth=config.depth,
            compute_threads=config.compute_threads,
            fusion_window_ms=config.fusion_window_ms,
            max_fuse=config.max_fuse,
            max_queue=config.max_queue,
            on_done=self._on_done,
        )
        self._server: asyncio.base_events.Server | None = None
        self._draining = False
        self._started = time.time()
        self._conn_tasks: set[asyncio.Task] = set()

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        """The actual bound port (useful with ``port=0``)."""
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        obs.registry().gauge("serve.up").set(1)

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful: stop accepting, drain, tear down pools and mmaps."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.scheduler.stop(drain_s=self.config.drain_s)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.engine.close()
        self.library.close()
        obs.registry().gauge("serve.up").set(0)

    # -- connection handling ------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        obs.registry().counter("serve.connections").inc()
        wlock = asyncio.Lock()
        line_tasks: set[asyncio.Task] = set()
        buf = bytearray()
        try:
            head = await reader.read(5)
            if not head:
                return
            if head[:4] in (b"GET ", b"HEAD") or head == b"POST ":
                await self._handle_http(head, reader, writer)
                return
            buf += head
            while True:
                nl = buf.find(b"\n")
                while nl < 0:
                    if len(buf) > protocol.MAX_LINE_BYTES:
                        raise protocol.ProtocolError(
                            f"request line exceeds {protocol.MAX_LINE_BYTES} bytes"
                        )
                    chunk = await reader.read(1 << 16)
                    if not chunk:
                        return
                    buf += chunk
                    nl = buf.find(b"\n")
                line = bytes(buf[:nl])
                del buf[: nl + 1]
                if not line.strip():
                    continue
                t = asyncio.ensure_future(self._handle_line(line, writer, wlock))
                line_tasks.add(t)
                t.add_done_callback(line_tasks.discard)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        except protocol.ProtocolError as exc:
            await self._write(
                writer,
                wlock,
                protocol.error_response(
                    "", "", protocol.STATUS_BAD_REQUEST, "ProtocolError", str(exc)
                ),
            )
        finally:
            if line_tasks:
                await asyncio.gather(*line_tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _write(
        self, writer: asyncio.StreamWriter, wlock: asyncio.Lock, msg: dict
    ) -> None:
        payload = protocol.dump_line(msg)
        async with wlock:
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- request path -------------------------------------------------------

    async def _handle_line(
        self, line: bytes, writer: asyncio.StreamWriter, wlock: asyncio.Lock
    ) -> None:
        try:
            req = protocol.parse_line(line)
        except protocol.ProtocolError as exc:
            rid = ""
            try:
                import json

                rid = str(json.loads(line).get("id", "")) or ""
            except Exception:
                pass
            await self._write(
                writer,
                wlock,
                protocol.error_response(
                    rid, "", protocol.STATUS_BAD_REQUEST, "ProtocolError", str(exc)
                ),
            )
            return
        if req.op == "health":
            await self._write(writer, wlock, self._health(req))
            return
        if req.op == "stats":
            await self._write(writer, wlock, self._stats(req))
            return
        resp = await self._compute(req)
        await self._write(writer, wlock, resp)

    def _shed(self, req: protocol.Request, reason: str) -> dict:
        reg = obs.registry()
        reg.counter(f"serve.shed_{reason}").inc()
        reg.counter("serve.shed", tenant=req.tenant).inc()
        session = self.tenants.get(req.tenant)
        session.shed += 1
        return protocol.error_response(
            req.id,
            req.op,
            protocol.STATUS_SHED
            if reason != SHED_DRAINING
            else protocol.STATUS_UNAVAILABLE,
            "Shed",
            f"admission refused: {reason}",
            shed=reason,
        )

    async def _compute(self, req: protocol.Request) -> dict:
        reg = obs.registry()
        session = self.tenants.get(req.tenant)
        session.requests += 1
        reg.counter("serve.requests", tenant=req.tenant).inc()
        if self._draining:
            return self._shed(req, SHED_DRAINING)
        if req.matrix not in self.library:
            session.failed += 1
            return protocol.error_response(
                req.id,
                req.op,
                protocol.STATUS_NOT_FOUND,
                "UnknownMatrix",
                f"no matrix {req.matrix!r}; serving {list(self.library.names())}",
            )
        info = self.library.info(req.matrix)
        ncols = info.shape[1]
        if req.x.shape[0] != ncols:
            session.failed += 1
            return protocol.error_response(
                req.id,
                req.op,
                protocol.STATUS_BAD_REQUEST,
                "ShapeMismatch",
                f"x has {req.x.shape[0]} rows; {req.matrix} needs {ncols}",
            )
        cost = info.estimated_cost_bytes(req.nrhs)
        adm = self.admission.try_admit(req.tenant, cost)
        if not adm.admitted:
            return self._shed(req, adm.reason)
        session.admitted += 1
        reg.gauge("serve.inflight_bytes").set(self.admission.inflight_bytes)
        loop = asyncio.get_running_loop()
        item = WorkItem(
            req=req,
            cost_bytes=adm.cost_bytes,
            future=loop.create_future(),
            deadline=(
                None
                if req.deadline_ms is None
                else time.monotonic() + req.deadline_ms / 1000.0
            ),
        )
        if not self.scheduler.try_submit(item):
            self.admission.release(adm.cost_bytes)
            session.admitted -= 1
            reg.gauge("serve.inflight_bytes").set(self.admission.inflight_bytes)
            return self._shed(req, SHED_QUEUE)
        return await item.future

    def _on_done(self, item: WorkItem, resp: dict) -> None:
        """Scheduler completion hook: release capacity, account outcome."""
        self.admission.release(item.cost_bytes)
        reg = obs.registry()
        reg.gauge("serve.inflight_bytes").set(self.admission.inflight_bytes)
        session = self.tenants.get(item.req.tenant)
        status = resp.get("status")
        if resp.get("ok"):
            session.completed += 1
            reg.counter("serve.completed", tenant=item.req.tenant).inc()
            if resp.get("degraded_blocks", 0) > 0:
                session.degraded_requests += 1
                reg.counter("serve.degraded_requests", tenant=item.req.tenant).inc()
        elif status == protocol.STATUS_DEADLINE:
            session.deadline_missed += 1
            reg.counter("serve.deadline_missed", tenant=item.req.tenant).inc()
        else:
            session.failed += 1
            reg.counter("serve.failed", tenant=item.req.tenant).inc()
        reg.histogram("serve.request_ms").observe(
            (time.monotonic() - item.enqueued) * 1e3
        )

    # -- read-only ops ------------------------------------------------------

    def _health(self, req: protocol.Request) -> dict:
        return protocol.response(
            req.id,
            "health",
            protocol.STATUS_UNAVAILABLE if self._draining else protocol.STATUS_OK,
            state="draining" if self._draining else "serving",
            protocol_version=protocol.PROTOCOL_VERSION,
            matrices=list(self.library.names()),
            uptime_s=time.time() - self._started,
        )

    def _stats(self, req: protocol.Request) -> dict:
        cache = self.cache
        return protocol.response(
            req.id,
            "stats",
            protocol.STATUS_OK,
            tenants=[s.as_dict() for s in self.tenants.all()],
            inflight_bytes=self.admission.inflight_bytes,
            inflight_budget_bytes=self.admission.inflight_budget_bytes,
            queue_depth=self.scheduler.queue_depth,
            cache={
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "evictions": cache.stats.evictions,
                "matrix_evictions": cache.matrix_evictions,
                "rejected": cache.rejected,
                "current_bytes": cache.stats.current_bytes,
                "max_bytes": cache.max_bytes,
                "matrix_share_bytes": cache.matrix_share_bytes,
            },
            matrices={
                name: {
                    "shape": list(self.library.info(name).shape),
                    "nnz": self.library.info(name).nnz,
                    "container_bytes": self.library.info(name).container_bytes,
                    "cached_bytes": cache.matrix_bytes(name),
                }
                for name in self.library.names()
            },
        )

    # -- HTTP (Prometheus scrape + health probe) ----------------------------

    async def _handle_http(
        self,
        head: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request_line = head + await asyncio.wait_for(
                reader.readline(), timeout=5.0
            )
        except asyncio.TimeoutError:
            return
        parts = request_line.decode("latin-1", "replace").split()
        path = parts[1] if len(parts) >= 2 else "/"
        # Drain headers (bounded) so keep-alive clients see a clean close.
        for _ in range(100):
            try:
                hdr = await asyncio.wait_for(reader.readline(), timeout=5.0)
            except asyncio.TimeoutError:
                break
            if hdr in (b"\r\n", b"\n", b""):
                break
        if path.startswith("/metrics"):
            body = to_prometheus(obs.registry().snapshot())
            status = "200 OK"
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path.startswith("/health"):
            body = "draining\n" if self._draining else "ok\n"
            status = "503 Service Unavailable" if self._draining else "200 OK"
            ctype = "text/plain; charset=utf-8"
        else:
            body = "try /metrics or /health\n"
            status = "404 Not Found"
            ctype = "text/plain; charset=utf-8"
        payload = body.encode()
        writer.write(
            (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            + payload
        )
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass


class ServerThread:
    """Run a :class:`MatrixServer` on a dedicated event-loop thread.

    The blocking embedding API: benchmarks and tests boot a real server
    (ephemeral port), talk to it over TCP from the calling thread, and
    tear it down deterministically — same code path as ``repro serve``
    minus the signal handlers.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self.server: MatrixServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="serve-daemon", daemon=True
        )

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def _main() -> None:
            self._stop = asyncio.Event()

            def ready(server: MatrixServer) -> None:
                self.server = server
                self._ready.set()

            await run_server(self.config, ready=ready, stop_event=self._stop)

        try:
            self._loop.run_until_complete(_main())
        except BaseException as exc:  # pragma: no cover - surfaced in join
            self._error = exc
        finally:
            self._ready.set()
            self._loop.close()

    def start(self, timeout: float = 30.0) -> int:
        """Boot; returns the bound port."""
        self._thread.start()
        if not self._ready.wait(timeout):  # pragma: no cover - defensive
            raise TimeoutError("server failed to become ready")
        if self._error is not None:
            raise self._error
        assert self.server is not None
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        """Drain and join; re-raises any server-side crash."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        self._thread.join(timeout)
        if self._error is not None:
            raise self._error

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


async def run_server(config: ServeConfig, *, ready=None, stop_event=None) -> None:
    """Boot a server, optionally signal readiness, serve until stopped.

    Args:
        config: the server configuration.
        ready: optional callback invoked with the :class:`MatrixServer`
            once the port is bound (tests grab the ephemeral port here).
        stop_event: optional :class:`asyncio.Event`; when set the server
            drains and exits. Without one, runs until cancelled.
    """
    server = MatrixServer(config)
    await server.start()
    if ready is not None:
        ready(server)
    try:
        if stop_event is not None:
            await stop_event.wait()
        else:
            await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
