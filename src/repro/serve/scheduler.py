"""Request scheduler: bounded queue, same-matrix batch fusion, deadlines.

The scheduler owns the window between admission and execution:

* **bounded in-system window** — at most ``max_queue`` admitted requests
  exist anywhere between intake and response (intake queue, fusion
  windows, the compute pool); overflow is an admission refusal (the
  server sheds with reason ``queue``), never an unbounded buffer;
* **same-matrix batch fusion** — concurrent SpMV requests against the
  same ``(matrix, policy)`` that arrive within ``fusion_window_ms`` of
  each other coalesce into one fused :func:`~repro.core.recoded_spmm`
  call, paying the A-side stream/decode traffic once (PR 5 measured
  ~0.13x per-RHS cost). Column ``j`` of the fused result is bit-identical
  to the SpMV the request would have run alone — fusion is a pure
  data-movement optimization, invisible in the numerics;
* **fairness bounds** — a batch takes at most ``max_fuse`` columns,
  chosen round-robin across tenants, and no request waits longer than
  one fusion window before dispatch: fusion can delay a lone tenant by
  at most ``fusion_window_ms``, never starve it;
* **deadlines and cooperative cancellation** — an item whose deadline
  passes before dispatch is answered ``408`` without touching the
  executor; mid-flight, the executor polls the batch's cancel check at
  every block boundary and abandons the run
  (:class:`~repro.core.executor.RunCancelled`) once every rider's
  deadline has passed, returning borrowed decode/cache capacity early.

Compute runs on a small thread pool (numpy multiplies release the GIL;
block decodes go through the shared engine, which may fan out to its own
worker pool) so the asyncio loop never blocks on linear algebra.
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.codecs.errors import BlockDecodeError, CodecError
from repro.core import RunCancelled, recoded_spmm, recoded_spmv
from repro.serve import protocol
from repro.serve.session import MatrixLibrary

#: Sentinel queued to wake the scheduler loop for shutdown.
_SHUTDOWN = object()


@dataclass(eq=False)
class WorkItem:
    """One admitted compute request travelling through the scheduler.

    Identity equality (``eq=False``): items are unique in-flight objects,
    and the generated ``__eq__`` would compare the numpy payloads inside.
    """

    req: protocol.Request
    cost_bytes: int
    #: Resolved with the response dict (always resolved exactly once).
    future: asyncio.Future = field(repr=False)
    #: Monotonic enqueue instant.
    enqueued: float = 0.0
    #: Absolute monotonic deadline (None = no deadline).
    deadline: float | None = None

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    @property
    def fuse_key(self) -> tuple[str, str]:
        return (self.req.matrix, self.req.policy)

    @property
    def fusable(self) -> bool:
        """Only 1-D SpMV requests fuse; SpMM dispatches alone."""
        return self.req.op == "spmv"


def select_batch(
    items: list[WorkItem], max_fuse: int
) -> tuple[list[WorkItem], list[WorkItem]]:
    """Pick up to ``max_fuse`` items round-robin across tenants.

    Returns ``(picked, leftover)``; within one tenant FIFO order is kept.
    Round-robin means a tenant that queued 50 requests shares a fused
    batch with the tenant that queued 1 — per-tenant fairness inside the
    fusion window, not just across windows.
    """
    if len(items) <= max_fuse:
        return list(items), []
    queues: "collections.OrderedDict[str, collections.deque[WorkItem]]" = (
        collections.OrderedDict()
    )
    for item in items:
        queues.setdefault(item.req.tenant, collections.deque()).append(item)
    picked: list[WorkItem] = []
    while len(picked) < max_fuse and queues:
        for tenant in list(queues):
            picked.append(queues[tenant].popleft())
            if not queues[tenant]:
                del queues[tenant]
            if len(picked) >= max_fuse:
                break
    leftover = [it for it in items if it not in picked]
    return picked, leftover


class FusionScheduler:
    """Asyncio-side intake + thread-pool dispatch with batch fusion."""

    def __init__(
        self,
        library: MatrixLibrary,
        engine,
        *,
        mode: str = "serial",
        depth: int = 4,
        memory=None,
        compute_threads: int = 2,
        fusion_window_ms: float = 2.0,
        max_fuse: int = 8,
        max_queue: int = 64,
        on_done=None,
    ):
        if max_fuse < 1:
            raise ValueError(f"max_fuse must be >= 1, got {max_fuse}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.library = library
        self.engine = engine
        self.mode = mode
        self.depth = depth
        self.memory = memory
        self.fusion_window_s = max(0.0, fusion_window_ms) / 1000.0
        self.max_fuse = max_fuse
        self.max_queue = max_queue
        #: Called (item, response) on the event loop after each item
        #: resolves — the server releases admission reservations here.
        self.on_done = on_done
        self._queue: asyncio.Queue = asyncio.Queue()
        self._depth = 0
        self._depth_lock = threading.Lock()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, compute_threads),
            thread_name_prefix="serve-compute",
        )
        self._task: asyncio.Task | None = None
        self._inflight: set[asyncio.Future] = set()
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._task = self._loop.create_task(self._run(), name="serve-scheduler")

    async def stop(self, drain_s: float = 5.0) -> None:
        """Stop the loop; wait up to ``drain_s`` for in-flight batches."""
        if self._task is not None:
            await self._queue.put(_SHUTDOWN)
            try:
                await asyncio.wait_for(self._task, timeout=drain_s + 1.0)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                self._task.cancel()
            self._task = None
        if self._inflight:
            await asyncio.wait(self._inflight, timeout=drain_s)
        self._pool.shutdown(wait=True, cancel_futures=True)

    @property
    def queue_depth(self) -> int:
        with self._depth_lock:
            return self._depth

    # -- intake -------------------------------------------------------------

    def try_submit(self, item: WorkItem) -> bool:
        """Enqueue; False when the scheduler is full (caller sheds).

        ``max_queue`` bounds *admitted-but-unfinished* requests — the
        count drops when the item's response resolves, not when it moves
        from the intake queue into a fusion window or the compute pool.
        Anything less would just relocate the unbounded buffer.
        """
        with self._depth_lock:
            if self._depth >= self.max_queue:
                return False
            self._depth += 1
        item.enqueued = time.monotonic()
        self._queue.put_nowait(item)
        reg = obs.registry()
        reg.gauge("serve.queue_depth").set(self.queue_depth)
        return True

    # -- scheduler loop -----------------------------------------------------

    async def _run(self) -> None:
        pending: dict[tuple[str, str], list[WorkItem]] = {}
        windows: dict[tuple[str, str], float] = {}
        loop = asyncio.get_running_loop()
        shutting_down = False
        while True:
            timeout = None
            if windows:
                timeout = max(0.0, min(windows.values()) - time.monotonic())
            try:
                if shutting_down:
                    item = self._queue.get_nowait()
                elif timeout is None:
                    item = await self._queue.get()
                else:
                    item = await asyncio.wait_for(self._queue.get(), timeout)
            except (asyncio.TimeoutError, asyncio.QueueEmpty):
                item = None
            if item is _SHUTDOWN:
                shutting_down = True
                item = None
            if item is not None:
                if item.expired():
                    self._expire(item, loop)
                elif not item.fusable or self.fusion_window_s == 0.0:
                    self._dispatch([item], loop)
                else:
                    key = item.fuse_key
                    pending.setdefault(key, []).append(item)
                    windows.setdefault(key, time.monotonic() + self.fusion_window_s)
                    if len(pending[key]) >= self.max_fuse:
                        batch, leftover = select_batch(
                            pending.pop(key), self.max_fuse
                        )
                        windows.pop(key, None)
                        self._dispatch(batch, loop)
                        if leftover:
                            pending[key] = leftover
                            windows[key] = time.monotonic() + self.fusion_window_s
            now = time.monotonic()
            flush_all = shutting_down and self._queue.empty()
            for key in [
                k for k, t in list(windows.items()) if flush_all or t <= now
            ]:
                batch, leftover = select_batch(pending.pop(key), self.max_fuse)
                windows.pop(key, None)
                self._dispatch(batch, loop)
                if leftover:
                    pending[key] = leftover
                    windows[key] = now if flush_all else now + self.fusion_window_s
            if shutting_down and not pending and self._queue.empty():
                return

    def _expire(self, item: WorkItem, loop) -> None:
        """Answer 408 without touching the executor."""
        reg = obs.registry()
        reg.counter("serve.deadline_expired").inc()
        resp = protocol.error_response(
            item.req.id,
            item.req.op,
            protocol.STATUS_DEADLINE,
            "DeadlineExpired",
            f"deadline passed before dispatch (queued "
            f"{(time.monotonic() - item.enqueued) * 1e3:.1f} ms)",
        )
        self._resolve(item, resp, loop)

    def _resolve(self, item: WorkItem, resp: dict, loop) -> None:
        with self._depth_lock:
            self._depth -= 1
        obs.registry().gauge("serve.queue_depth").set(self.queue_depth)
        if not item.future.done():
            item.future.set_result(resp)
        if self.on_done is not None:
            self.on_done(item, resp)

    # -- dispatch -----------------------------------------------------------

    def _dispatch(self, batch: list[WorkItem], loop) -> None:
        """Hand one batch to the compute pool; resolve futures on the loop."""
        live = []
        for item in batch:
            if item.expired():
                self._expire(item, loop)
            else:
                live.append(item)
        if not live:
            return
        reg = obs.registry()
        if len(live) > 1:
            reg.counter("serve.fused_batches").inc()
            reg.counter("serve.fused_requests").inc(len(live))
        reg.histogram("serve.fusion_width").observe(len(live))
        cf = self._pool.submit(self._compute_batch, live)
        afut = asyncio.wrap_future(cf, loop=loop)
        self._inflight.add(afut)

        def _finish(f: asyncio.Future) -> None:
            self._inflight.discard(f)
            try:
                responses = f.result()
            except Exception as exc:  # pragma: no cover - defensive
                responses = [
                    protocol.error_response(
                        it.req.id, it.req.op, protocol.STATUS_ERROR,
                        type(exc).__name__, str(exc),
                    )
                    for it in live
                ]
            for item, resp in zip(live, responses):
                self._resolve(item, resp, loop)

        afut.add_done_callback(_finish)

    # -- compute (runs on the thread pool) ----------------------------------

    def _compute_batch(self, batch: list[WorkItem]) -> list[dict]:
        req0 = batch[0].req
        name, policy = req0.matrix, req0.policy
        source = self.library.reader(name)
        queue_ms = (time.monotonic() - min(it.enqueued for it in batch)) * 1e3

        def cancelled() -> bool:
            # A fused batch aborts only when *every* rider has expired:
            # one late deadline cannot cancel another tenant's result.
            return all(it.expired() for it in batch)

        kwargs = dict(
            engine=self.engine,
            matrix_id=name,
            policy=policy,
            mode=self.mode,
            depth=self.depth,
            cancel=cancelled,
        )
        if self.memory is not None:
            kwargs["memory"] = self.memory
        t0 = time.perf_counter()
        try:
            if req0.op == "spmm":
                y, stats = recoded_spmm(source, req0.x, **kwargs)
                results = [y]
            elif len(batch) == 1:
                y, stats = recoded_spmv(source, req0.x, **kwargs)
                results = [y]
            else:
                X = np.stack([it.req.x for it in batch], axis=1)
                Y, stats = recoded_spmm(source, X, **kwargs)
                results = [np.ascontiguousarray(Y[:, j]) for j in range(len(batch))]
        except RunCancelled:
            obs.registry().counter("serve.deadline_cancelled").inc(len(batch))
            return [
                protocol.error_response(
                    it.req.id, it.req.op, protocol.STATUS_DEADLINE,
                    "DeadlineExpired",
                    "deadline passed mid-compute; run abandoned at a block "
                    "boundary",
                )
                for it in batch
            ]
        except CodecError as exc:
            block_id = getattr(exc, "block_id", None)
            err_name = (
                type(exc).__name__
                if isinstance(exc, BlockDecodeError)
                else "CodecError"
            )
            obs.registry().counter("serve.decode_failures").inc(len(batch))
            return [
                protocol.error_response(
                    it.req.id, it.req.op, protocol.STATUS_ERROR,
                    err_name, str(exc), block_id=block_id,
                )
                for it in batch
            ]
        compute_ms = (time.perf_counter() - t0) * 1e3
        fused = len(batch)
        responses = []
        for item, y in zip(batch, results):
            if item.expired():
                # Computed, but too late for this rider: honest 408 (the
                # result is discarded, never a stale success).
                obs.registry().counter("serve.deadline_expired").inc()
                responses.append(
                    protocol.error_response(
                        item.req.id, item.req.op, protocol.STATUS_DEADLINE,
                        "DeadlineExpired", "result ready after deadline",
                    )
                )
                continue
            responses.append(
                protocol.response(
                    item.req.id,
                    item.req.op,
                    protocol.STATUS_OK,
                    y=protocol.encode_array(y),
                    policy=stats.policy,
                    degraded_blocks=stats.degraded_blocks,
                    fused=fused,
                    traffic_ratio=stats.traffic_ratio,
                    queue_ms=queue_ms,
                    compute_ms=compute_ms,
                )
            )
        return responses
