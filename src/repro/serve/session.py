"""Server-side state: the resident matrix library, the shared decoded-block
cache with per-matrix admission, and per-tenant sessions.

The library holds one lazily-verified :class:`ContainerReader` per
``.dsh`` file under the serve root — pages fault in on demand and the
optional residency budget keeps each mapping O(budget) resident (PR 7),
so a library far larger than RAM stays servable. Per-matrix metadata
(container bytes, nnz) feeds the admission controller's cost model:
*estimated decode traffic*, the paper's data-movement currency.

The shared cache extends the engine's LRU with **per-matrix admission and
eviction**: one matrix may occupy at most ``max_matrix_frac`` of the
budget, and pushing past that share evicts that matrix's own oldest
blocks first — a tenant hammering one huge matrix cannot evict another
tenant's resident working set (the robustness headline of the serve
layer, motivated by SMASH's shared-operand serving model).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.codecs.container import ContainerReader
from repro.codecs.engine import DecodedBlockCache
from repro.sparse.blocked import CSRBlock

#: Default shared-cache budget (decoded 12 B/nnz bytes).
DEFAULT_SERVE_CACHE_BYTES = 256 * 1024 * 1024
#: Default cap on one matrix's share of the shared cache.
DEFAULT_MAX_MATRIX_FRAC = 0.5


class SharedDecodedCache(DecodedBlockCache):
    """Server-wide decoded-block LRU with a per-matrix share cap.

    Keys follow the engine convention ``(matrix_id, block_id,
    fingerprint)``. A ``put`` that would lift the block's matrix over
    ``max_matrix_frac * max_bytes`` evicts that matrix's own LRU entries
    first; only then does the global LRU bound apply. Blocks bigger than
    the whole share are refused outright (``rejected`` counts them).
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_SERVE_CACHE_BYTES,
        max_matrix_frac: float = DEFAULT_MAX_MATRIX_FRAC,
        max_blocks: int | None = None,
    ):
        if not 0.0 < max_matrix_frac <= 1.0:
            raise ValueError(
                f"max_matrix_frac must be in (0, 1], got {max_matrix_frac}"
            )
        super().__init__(max_bytes=max_bytes, max_blocks=max_blocks)
        self.max_matrix_frac = max_matrix_frac
        self.rejected = 0
        self.matrix_evictions = 0
        self._matrix_bytes: dict[str, int] = {}

    @property
    def matrix_share_bytes(self) -> int:
        """The per-matrix byte cap."""
        return int(self.max_bytes * self.max_matrix_frac)

    def matrix_bytes(self, matrix_id: str) -> int:
        """Resident decoded bytes attributed to one matrix."""
        with self._lock:
            return self._matrix_bytes.get(matrix_id, 0)

    def _drop(self, key: tuple) -> None:
        """Remove one entry, maintaining both byte ledgers (lock held)."""
        _, nbytes = self._entries.pop(key)
        self.stats.current_bytes -= nbytes
        mid = key[0]
        left = self._matrix_bytes.get(mid, 0) - nbytes
        if left > 0:
            self._matrix_bytes[mid] = left
        else:
            self._matrix_bytes.pop(mid, None)

    def put(self, key: tuple, block: CSRBlock) -> None:
        matrix_id = key[0]
        nbytes = 12 * block.nnz
        share = self.matrix_share_bytes
        with self._lock:
            if nbytes > share:
                self.rejected += 1
                return
            if key in self._entries:
                self._drop(key)
            self._entries[key] = (block, nbytes)
            self.stats.current_bytes += nbytes
            self._matrix_bytes[matrix_id] = (
                self._matrix_bytes.get(matrix_id, 0) + nbytes
            )
            # Per-matrix eviction first: this matrix pays for its own
            # overshoot before any global pressure lands on others.
            while self._matrix_bytes.get(matrix_id, 0) > share:
                victim = next(
                    k for k in self._entries if k[0] == matrix_id
                )
                self._drop(victim)
                self.stats.evictions += 1
                self.matrix_evictions += 1
            while self._entries and (
                self.stats.current_bytes > self.max_bytes
                or (self.max_blocks is not None and len(self._entries) > self.max_blocks)
            ):
                self._drop(next(iter(self._entries)))
                self.stats.evictions += 1

    def evict_matrix(self, matrix_id: str) -> int:
        """Drop every resident block of one matrix; returns bytes freed."""
        with self._lock:
            victims = [k for k in self._entries if k[0] == matrix_id]
            freed = self._matrix_bytes.get(matrix_id, 0)
            for key in victims:
                self._drop(key)
                self.stats.evictions += 1
                self.matrix_evictions += 1
            return freed

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._matrix_bytes.clear()
            self.stats.current_bytes = 0


@dataclass(frozen=True)
class MatrixInfo:
    """Immutable per-matrix metadata the admission cost model reads."""

    name: str
    path: str
    container_bytes: int
    nnz: int
    nblocks: int
    shape: tuple[int, int]
    block_bytes: int
    #: Compressed record bytes that actually stream per decode, summed
    #: from the resident reader's per-block extents (0 = unknown, fall
    #: back to the whole-file size).
    record_bytes: int = 0
    #: Exact decoded stream bytes (per-record ``orig_len`` sums; 0 =
    #: unknown, fall back to the flat 12 B/nnz estimate).
    decoded_record_bytes: int = 0

    @property
    def decoded_bytes(self) -> int:
        """Decoded stream size: exact per-record sum when the reader's
        extents have been consulted, the flat 12 B/nnz baseline otherwise."""
        if self.decoded_record_bytes:
            return self.decoded_record_bytes
        return 12 * self.nnz

    @property
    def compressed_stream_bytes(self) -> int:
        """Compressed bytes a full decode streams: the per-block record
        extents when known, else the container file size (which also
        counts framing/tables and so over-charges small matrices)."""
        return self.record_bytes or self.container_bytes

    @property
    def bytes_per_nnz(self) -> float:
        return self.container_bytes / self.nnz if self.nnz else 0.0

    def estimated_cost_bytes(self, nrhs: int = 1) -> int:
        """Estimated data movement of one request against this matrix.

        Compressed stream in (``dram -> udp``) + decoded stream out
        (``udp -> cpu``) — paid once regardless of ``nrhs`` thanks to
        fused SpMM — plus the dense input/output vectors per RHS. Both
        stream terms come from the resident reader's per-block compressed
        extents when available (mixed plans make per-block sizes uneven,
        so a flat estimate drifts), falling back to the flat model.
        """
        vectors = 8 * (self.shape[0] + self.shape[1]) * max(1, nrhs)
        return self.compressed_stream_bytes + self.decoded_bytes + vectors


class MatrixLibrary:
    """The set of ``.dsh`` containers a server exposes, readers held open.

    Names are file stems (``web-graph.dsh`` serves as ``web-graph``).
    Readers open lazily on first use (verify="lazy": structural walk up
    front, payload CRCs at access — corruption surfaces as the same typed
    errors the batch path raises) and stay open for the server's life;
    with a ``residency_budget`` each mapping stays O(budget) resident.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        residency_budget: int | None = None,
    ):
        self.root = os.fspath(root)
        if not os.path.isdir(self.root):
            raise FileNotFoundError(f"serve root is not a directory: {self.root}")
        self.residency_budget = residency_budget
        self._paths: dict[str, str] = {}
        self._readers: dict[str, ContainerReader] = {}
        self._infos: dict[str, MatrixInfo] = {}
        self._lock = threading.Lock()
        for entry in sorted(os.listdir(self.root)):
            if entry.endswith(".dsh"):
                self._paths[entry[: -len(".dsh")]] = os.path.join(self.root, entry)
        if not self._paths:
            raise FileNotFoundError(f"no .dsh containers under {self.root}")

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._paths))

    def __contains__(self, name: str) -> bool:
        return name in self._paths

    def __len__(self) -> int:
        return len(self._paths)

    def reader(self, name: str) -> ContainerReader:
        """The (lazily opened, long-lived) reader for one matrix."""
        with self._lock:
            reader = self._readers.get(name)
            if reader is None:
                path = self._paths.get(name)
                if path is None:
                    raise KeyError(name)
                reader = ContainerReader(
                    path, verify="lazy", residency_budget=self.residency_budget
                )
                self._readers[name] = reader
            return reader

    def info(self, name: str) -> MatrixInfo:
        with self._lock:
            cached = self._infos.get(name)
            if cached is not None:
                return cached
        reader = self.reader(name)
        record_bytes = sum(
            ext.index.stored_bytes + ext.value.stored_bytes
            for ext in reader.extents
        )
        decoded_record_bytes = sum(
            ext.index.orig_len + ext.value.orig_len for ext in reader.extents
        )
        info = MatrixInfo(
            name=name,
            path=reader.path,
            container_bytes=reader.nbytes,
            nnz=reader.nnz,
            nblocks=reader.nblocks,
            shape=tuple(reader.shape),
            block_bytes=reader.block_bytes,
            record_bytes=record_bytes,
            decoded_record_bytes=decoded_record_bytes,
        )
        with self._lock:
            self._infos[name] = info
        return info

    def close(self) -> None:
        with self._lock:
            for reader in self._readers.values():
                reader.close()
            self._readers.clear()

    def __enter__(self) -> "MatrixLibrary":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class TenantSession:
    """Mutable per-tenant accounting (the ``stats`` op reports these)."""

    tenant: str
    created_at: float = field(default_factory=time.time)
    requests: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    deadline_missed: int = 0
    degraded_requests: int = 0

    def as_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "requests": self.requests,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "deadline_missed": self.deadline_missed,
            "degraded_requests": self.degraded_requests,
        }


class TenantRegistry:
    """Thread-safe map of tenant name -> :class:`TenantSession`."""

    def __init__(self) -> None:
        self._sessions: dict[str, TenantSession] = {}
        self._lock = threading.Lock()

    def get(self, tenant: str) -> TenantSession:
        with self._lock:
            s = self._sessions.get(tenant)
            if s is None:
                s = TenantSession(tenant)
                self._sessions[tenant] = s
            return s

    def all(self) -> list[TenantSession]:
        with self._lock:
            return [self._sessions[t] for t in sorted(self._sessions)]
