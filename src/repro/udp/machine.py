"""The 64-lane MIMD UDP accelerator.

Paper parameters (Section IV-A): 64 lanes, each with private scratchpad
banks; 14 nm operating point of **1.6 GHz** and **160 mW** for the whole
accelerator (extrapolated by the authors from the published 28 nm
1 GHz / 864 mW implementation via CACTI).

Block decompression tasks are independent — "this transformation can be run
in parallel on all 64 lanes of the UDP" — so the machine is a list
scheduler: each task goes to the least-loaded lane, and the accelerator's
completion time is the makespan.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

#: Paper Fig. 8: 64 parallel UDP lanes.
UDP_LANES = 64
#: 14 nm operating clock (paper Section IV-A).
UDP_CLOCK_HZ = 1.6e9
#: Whole-accelerator power at 14 nm (paper: 160 mW).
UDP_POWER_W = 0.160


@dataclass(frozen=True)
class LaneTask:
    """One unit of lane work (e.g. decode one 8 KB block)."""

    name: str
    cycles: int
    output_bytes: int


@dataclass(frozen=True)
class Schedule:
    """Result of scheduling tasks onto the lanes."""

    nlanes: int
    clock_hz: float
    makespan_cycles: int
    total_cycles: int
    total_output_bytes: int
    lane_cycles: tuple[int, ...]

    @property
    def seconds(self) -> float:
        """Wall time for the accelerator to finish all tasks."""
        return self.makespan_cycles / self.clock_hz

    @property
    def throughput_bytes_per_s(self) -> float:
        """Decompressed-output rate over the makespan."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.total_output_bytes / self.seconds

    @property
    def steady_state_throughput_bytes_per_s(self) -> float:
        """Sustained rate with all lanes kept fed: output / (total busy
        cycles spread over the lanes). Equals the makespan rate when the
        task count saturates the lanes; for short runs it is what a
        continuous block stream (the paper's whole-matrix decode) achieves.
        """
        if self.total_cycles == 0:
            return 0.0
        return self.total_output_bytes * self.nlanes * self.clock_hz / self.total_cycles

    @property
    def utilization(self) -> float:
        """Mean lane busy fraction (1.0 = perfectly balanced)."""
        if self.makespan_cycles == 0:
            return 1.0
        return self.total_cycles / (self.nlanes * self.makespan_cycles)


class UDPMachine:
    """A fixed-lane UDP accelerator with list scheduling."""

    def __init__(self, nlanes: int = UDP_LANES, clock_hz: float = UDP_CLOCK_HZ):
        if nlanes < 1:
            raise ValueError("need at least one lane")
        if clock_hz <= 0:
            raise ValueError("clock must be positive")
        self.nlanes = nlanes
        self.clock_hz = clock_hz

    def schedule(self, tasks: Sequence[LaneTask] | Iterable[LaneTask]) -> Schedule:
        """Greedy least-loaded-lane assignment, in task order.

        Blocks arrive in stream order (the DMA engine feeds them as they
        come off DRAM), so tasks are *not* sorted — this is online list
        scheduling, a 2-approximation of the optimal makespan, which is
        what a real work-queue would achieve.
        """
        tasks = list(tasks)
        heap = [(0, lane) for lane in range(self.nlanes)]
        heapq.heapify(heap)
        lane_cycles = [0] * self.nlanes
        total_cycles = 0
        total_out = 0
        for task in tasks:
            if task.cycles < 0:
                raise ValueError(f"task {task.name!r} has negative cycles")
            load, lane = heapq.heappop(heap)
            load += task.cycles
            lane_cycles[lane] = load
            heapq.heappush(heap, (load, lane))
            total_cycles += task.cycles
            total_out += task.output_bytes
        return Schedule(
            nlanes=self.nlanes,
            clock_hz=self.clock_hz,
            makespan_cycles=max(lane_cycles) if lane_cycles else 0,
            total_cycles=total_cycles,
            total_output_bytes=total_out,
            lane_cycles=tuple(lane_cycles),
        )

    def power_watts(self) -> float:
        """Accelerator power, scaled by lane count from the paper's 64-lane
        160 mW figure."""
        return UDP_POWER_W * self.nlanes / UDP_LANES
