"""Two-pass UDP assembler.

Pass 1 collects dispatch families (blocks carrying a ``dispatch_key``) and
free blocks, and validates that every transition target exists. Pass 2 runs
EffCLiP placement and emits an :class:`AssembledProgram`: an address-indexed
image plus the family base table, which is all the lane needs — dispatch at
runtime is literally ``base + key``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.udp.effclip import Placement, pack
from repro.udp.isa import Block, Br, Dispatch, Halt, Jmp, Program


@dataclass(frozen=True)
class AssembledProgram:
    """An executable UDP program image."""

    name: str
    image: tuple[Block | None, ...]
    addr_of: dict[str, int]
    family_base: dict[str, int]
    family_sizes: dict[str, int]
    entry_addr: int
    density: float

    @property
    def size(self) -> int:
        return len(self.image)

    @property
    def nblocks(self) -> int:
        return sum(1 for b in self.image if b is not None)

    def block_at(self, addr: int) -> Block:
        """Fetch the block at ``addr`` (dispatch landing site).

        Raises:
            ValueError: when the address holds no block — a dispatch key
                outside the family, which real hardware would fault on.
        """
        if not 0 <= addr < len(self.image) or self.image[addr] is None:
            raise ValueError(f"no block at address {addr}")
        return self.image[addr]  # type: ignore[return-value]


def assemble(program: Program) -> AssembledProgram:
    """Assemble ``program``: validate, place with EffCLiP, emit the image.

    Raises:
        ValueError: undefined targets, dispatches to unknown families,
            duplicate (family, key) pins, or unreachable-key dispatch
            families with no members.
    """
    labels = {b.label for b in program.blocks}

    families: dict[str, dict[int, str]] = {}
    singles: list[str] = []
    for block in program.blocks:
        if block.dispatch_key is not None:
            fam, key = block.dispatch_key
            members = families.setdefault(fam, {})
            if key in members:
                raise ValueError(
                    f"family {fam!r} key {key} pinned twice "
                    f"({members[key]!r} and {block.label!r})"
                )
            members[key] = block.label
        else:
            singles.append(block.label)

    # Validate transitions.
    for block in program.blocks:
        t = block.transition
        if isinstance(t, Jmp):
            targets = [t.target]
        elif isinstance(t, Br):
            targets = [t.then_target, t.else_target]
        elif isinstance(t, Dispatch):
            if t.family not in families:
                raise ValueError(
                    f"block {block.label!r} dispatches to unknown family {t.family!r}"
                )
            targets = []
        elif isinstance(t, Halt):
            targets = []
        else:
            raise ValueError(f"unknown transition {t!r} in block {block.label!r}")
        for target in targets:
            if target not in labels:
                raise ValueError(
                    f"block {block.label!r} targets undefined label {target!r}"
                )

    placement: Placement = pack(families, singles)

    image: list[Block | None] = [None] * placement.size
    by_label = {b.label: b for b in program.blocks}
    for label, addr in placement.addr_of.items():
        image[addr] = by_label[label]

    return AssembledProgram(
        name=program.name,
        image=tuple(image),
        addr_of=dict(placement.addr_of),
        family_base=dict(placement.family_base),
        family_sizes={fam: len(members) for fam, members in families.items()},
        entry_addr=placement.addr_of[program.entry],
        density=placement.density,
    )
