"""UDP program disassembler / pretty-printer.

Developer tooling for inspecting generated programs (especially the
per-matrix Huffman dispatch families) and EffCLiP placements::

    >>> from repro.udp import assemble
    >>> from repro.udp.programs import build_snappy_decode
    >>> print(disassemble(assemble(build_snappy_decode())))  # doctest: +SKIP
"""

from __future__ import annotations

from repro.udp.assembler import AssembledProgram
from repro.udp.isa import (
    Action,
    AluI,
    AluR,
    Block,
    Br,
    CopyBack,
    CopyIn,
    Dispatch,
    EmitB,
    EmitI,
    EmitWLE,
    Halt,
    Jmp,
    MovI,
    MovR,
    ReadBytesLE,
    ReadSym,
    Transition,
)


def format_action(action: Action) -> str:
    """One action as assembly-ish text."""
    if isinstance(action, MovI):
        return f"movi  r{action.dst}, {action.imm:#x}"
    if isinstance(action, MovR):
        return f"mov   r{action.dst}, r{action.src}"
    if isinstance(action, AluR):
        return f"{action.op:<5} r{action.dst}, r{action.a}, r{action.b}"
    if isinstance(action, AluI):
        return f"{action.op}i{' ' * max(1, 4 - len(action.op))}r{action.dst}, r{action.a}, {action.imm:#x}"
    if isinstance(action, ReadSym):
        eof = f", eof={action.eof_value}" if action.eof_value is not None else ""
        return f"rdsym r{action.dst}, {action.nbits}b{eof}"
    if isinstance(action, ReadBytesLE):
        return f"rdle  r{action.dst}, {action.nbytes}B"
    if isinstance(action, EmitB):
        return f"emitb r{action.src}"
    if isinstance(action, EmitI):
        return f"emiti {action.imm:#04x}"
    if isinstance(action, EmitWLE):
        return f"emitw r{action.src}, {action.nbytes}B"
    if isinstance(action, CopyIn):
        return f"cpyin len=r{action.len_reg}"
    if isinstance(action, CopyBack):
        return f"cpybk off=r{action.offset_reg}, len=r{action.len_reg}"
    return repr(action)


def format_transition(t: Transition) -> str:
    """The block's control transfer as text."""
    if isinstance(t, Jmp):
        return f"jmp   {t.target}"
    if isinstance(t, Br):
        return f"br.{t.cond:<3} r{t.reg} ? {t.then_target} : {t.else_target}"
    if isinstance(t, Dispatch):
        return f"disp  {t.family}[r{t.key_reg}]"
    if isinstance(t, Halt):
        return f"halt  {t.status}"
    return repr(t)


def format_block(block: Block, addr: int | None = None) -> str:
    """One block, with its pinned dispatch key if any."""
    header = f"{addr:>5}: " if addr is not None else ""
    pin = ""
    if block.dispatch_key is not None:
        fam, key = block.dispatch_key
        pin = f"  ; {fam}+{key}"
    lines = [f"{header}{block.label}:{pin}"]
    for action in block.actions:
        lines.append(f"        {format_action(action)}")
    lines.append(f"        {format_transition(block.transition)}")
    return "\n".join(lines)


def disassemble(program: AssembledProgram, max_blocks: int | None = None) -> str:
    """Whole-image listing in address order (holes shown as gaps).

    Args:
        program: an assembled image.
        max_blocks: truncate huge programs (Huffman families run to
            thousands of blocks); ``None`` lists everything.
    """
    lines = [
        f"; program {program.name}: {program.nblocks} blocks in "
        f"{program.size} slots (density {program.density:.2f})",
        f"; entry @ {program.entry_addr}",
    ]
    for fam, base in sorted(program.family_base.items()):
        lines.append(f"; family {fam}: base {base}, {program.family_sizes[fam]} members")
    shown = 0
    for addr, block in enumerate(program.image):
        if block is None:
            continue
        if max_blocks is not None and shown >= max_blocks:
            lines.append(f"; ... {program.nblocks - shown} more blocks elided")
            break
        lines.append(format_block(block, addr))
        shown += 1
    return "\n".join(lines)
