"""The Unstructured Data Processor (UDP) accelerator simulator.

Models the paper's Section III-E micro-architecture:

* :mod:`~repro.udp.isa` — blocks of actions with a single transition each;
  the key transition is **multi-way dispatch**, which selects among many
  targets by adding a runtime key to a family base address (no prediction,
  no target table).
* :mod:`~repro.udp.effclip` — the EffCLiP coupled-linear-packing layout
  engine that places dispatch families so that ``addr(base) + key`` is a
  perfect hash into code memory.
* :mod:`~repro.udp.assembler` — two-pass assembler: collects families,
  runs EffCLiP, and emits an executable image.
* :mod:`~repro.udp.lane` — one UDP lane (Dispatch / Stream-Prefetch /
  Action units, scratchpad) with cycle accounting.
* :mod:`~repro.udp.machine` — the 64-lane MIMD accelerator
  (1.6 GHz, 160 mW at 14 nm per the paper's scaling).
* :mod:`~repro.udp.programs` — the DSH decode programs (delta, Snappy,
  Huffman) written against this ISA; the Huffman program is compiled from
  each matrix's code table, exactly as the real UDP toolchain would.
* :mod:`~repro.udp.runtime` — block-level decompression runs over a
  :class:`~repro.codecs.pipeline.MatrixCompression` plan, producing cycle
  counts, latencies, and throughput.
"""

from repro.udp.assembler import AssembledProgram, assemble
from repro.udp.isa import (
    AluI,
    AluR,
    Block,
    Br,
    CopyBack,
    CopyIn,
    Dispatch,
    EmitB,
    EmitI,
    EmitWLE,
    Halt,
    Jmp,
    MovI,
    MovR,
    Program,
    ReadBytesLE,
    ReadSym,
)
from repro.udp.lane import Lane, LaneResult, UDPFault
from repro.udp.machine import UDP_CLOCK_HZ, UDP_LANES, UDP_POWER_W, UDPMachine

__all__ = [
    "Program",
    "Block",
    "MovI",
    "MovR",
    "AluR",
    "AluI",
    "ReadSym",
    "ReadBytesLE",
    "EmitB",
    "EmitI",
    "EmitWLE",
    "CopyIn",
    "CopyBack",
    "Jmp",
    "Br",
    "Dispatch",
    "Halt",
    "assemble",
    "AssembledProgram",
    "Lane",
    "LaneResult",
    "UDPFault",
    "UDPMachine",
    "UDP_LANES",
    "UDP_CLOCK_HZ",
    "UDP_POWER_W",
]
