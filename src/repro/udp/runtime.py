"""UDP runtime: execute DSH decode chains over compressed matrix plans.

For each 8 KB block the runtime runs the paper's three steps on one lane —
Huffman decode, Snappy decode, inverse delta (index stream only) — chaining
each stage's output into the next, accumulating cycles. Results are
verified bit-exact against the stored originals.

Whole-suite experiments don't need every block simulated: cycle counts per
block are tightly clustered, so :func:`simulate_plan` can simulate a
deterministic sample and extrapolate the rest (per stream kind) before
scheduling all tasks on the 64-lane machine. ``sample=None`` simulates
everything (tests do this).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.codecs.pipeline import MatrixCompression
from repro.udp.assembler import AssembledProgram, assemble
from repro.udp.lane import Lane, TraceEvent
from repro.udp.machine import LaneTask, Schedule, UDPMachine
from repro.udp.programs.delta_prog import REG_COUNT, build_delta_decode
from repro.udp.programs.huffman_prog import build_huffman_decode
from repro.udp.programs.snappy_prog import build_snappy_decode
from repro.util.rng import derive_seed, seeded_rng

#: Stream kinds within a block.
INDEX, VALUE = "index", "value"

#: Per-lane local memory (64 lanes x 64 KB = the 4 MB UDP local store).
LANE_SCRATCHPAD_BYTES = 64 * 1024
#: Machine-code footprint of one placed block slot.
BYTES_PER_CODE_SLOT = 8


@dataclass(frozen=True)
class FootprintReport:
    """Per-lane scratchpad budget check for a toolchain.

    A lane must hold the largest decode program's code image plus three
    streaming buffers (compressed input, Snappy intermediate, 8 KB output)
    — "with enough memory per lane to store the 8KB block and the output
    of each individual step" (paper Section V-A).
    """

    program_bytes: dict[str, int]
    buffer_bytes: int
    lane_budget: int

    @property
    def largest_program(self) -> int:
        return max(self.program_bytes.values()) if self.program_bytes else 0

    @property
    def total_bytes(self) -> int:
        return self.largest_program + self.buffer_bytes

    @property
    def fits(self) -> bool:
        return self.total_bytes <= self.lane_budget


@dataclass(frozen=True)
class ChainResult:
    """One record decoded through the full stage chain on one lane."""

    block_index: int
    stream: str
    stage_cycles: dict[str, int]
    output: bytes
    verified: bool
    traces: dict[str, list[TraceEvent]] | None = None

    @property
    def cycles(self) -> int:
        return sum(self.stage_cycles.values())


@dataclass(frozen=True)
class UDPDecodeReport:
    """Aggregate decode simulation for one matrix plan."""

    matrix_blocks: int
    simulated: tuple[ChainResult, ...]
    tasks: tuple[LaneTask, ...]
    schedule: Schedule
    clock_hz: float

    @property
    def all_verified(self) -> bool:
        return all(r.verified for r in self.simulated)

    @property
    def throughput_bytes_per_s(self) -> float:
        """Sustained decompressed-output rate of the whole accelerator
        (steady-state: the paper decodes block streams far longer than the
        lane count, so lanes stay fed)."""
        return self.schedule.steady_state_throughput_bytes_per_s

    @property
    def makespan_throughput_bytes_per_s(self) -> float:
        """Output rate over this finite task set's makespan (lower when the
        task count cannot fill all 64 lanes)."""
        return self.schedule.throughput_bytes_per_s

    @property
    def block_latencies_s(self) -> np.ndarray:
        """Per-block single-lane latency (index + value chain) in seconds,
        over the simulated sample."""
        per_block: dict[int, int] = {}
        for r in self.simulated:
            per_block[r.block_index] = per_block.get(r.block_index, 0) + r.cycles
        return np.array(sorted(per_block.values()), dtype=float) / self.clock_hz


class DecoderToolchain:
    """Assembled programs for one matrix plan (built once, reused per block)."""

    def __init__(self, plan: MatrixCompression, stride: int = 4):
        self.plan = plan
        self.snappy = assemble(build_snappy_decode())
        self.delta = assemble(build_delta_decode())
        self.huffman_index: AssembledProgram | None = None
        self.huffman_value: AssembledProgram | None = None
        if plan.use_huffman:
            if plan.index_table is None or plan.value_table is None:
                raise ValueError("huffman plan is missing tables")
            self.huffman_index = assemble(build_huffman_decode(plan.index_table, stride))
            self.huffman_value = assemble(build_huffman_decode(plan.value_table, stride))

    def footprint(self, lane_budget: int = LANE_SCRATCHPAD_BYTES) -> FootprintReport:
        """Check the toolchain against a lane's local memory.

        Programs run as sequential steps on one lane, so only the largest
        code image is resident at once alongside the three block buffers.
        """
        programs: dict[str, AssembledProgram | None] = {
            "snappy": self.snappy,
            "delta": self.delta,
            "huffman-index": self.huffman_index,
            "huffman-value": self.huffman_value,
        }
        program_bytes = {
            name: prog.size * BYTES_PER_CODE_SLOT
            for name, prog in programs.items()
            if prog is not None
        }
        # Compressed input + Snappy intermediate + decompressed output.
        buffer_bytes = 3 * self.plan.block_bytes
        return FootprintReport(
            program_bytes=program_bytes,
            buffer_bytes=buffer_bytes,
            lane_budget=lane_budget,
        )

    def run_chain(
        self,
        block_index: int,
        stream: str,
        lane: Lane | None = None,
        collect_trace: bool = False,
    ) -> ChainResult:
        """Decode one record through Huffman → Snappy → (inverse delta).

        Raises:
            ValueError: on an unknown stream kind.
        """
        if stream == INDEX:
            record = self.plan.index_records[block_index]
            huffman = self.huffman_index
        elif stream == VALUE:
            record = self.plan.value_records[block_index]
            huffman = self.huffman_value
        else:
            raise ValueError(f"unknown stream kind {stream!r}")
        lane = lane or Lane()
        stage_cycles: dict[str, int] = {}
        traces: dict[str, list[TraceEvent]] = {}

        data = record.payload
        if self.plan.use_huffman:
            assert huffman is not None
            res = lane.run(huffman, data, collect_trace=collect_trace)
            # Padding bits may decode to spurious tail symbols; the record
            # stores the true length.
            data = res.output[: record.snappy_len]
            if len(data) < record.snappy_len:
                raise ValueError(
                    f"huffman produced {len(res.output)} < {record.snappy_len} bytes"
                )
            stage_cycles["huffman"] = res.cycles
            if collect_trace and res.trace is not None:
                traces["huffman"] = res.trace

        res = lane.run(self.snappy, data, collect_trace=collect_trace)
        data = res.output
        stage_cycles["snappy"] = res.cycles
        if collect_trace and res.trace is not None:
            traces["snappy"] = res.trace

        if stream == INDEX and self.plan.use_delta:
            res = lane.run(
                self.delta,
                data,
                init_regs={REG_COUNT: len(data) // 4},
                collect_trace=collect_trace,
            )
            data = res.output
            stage_cycles["delta"] = res.cycles
            if collect_trace and res.trace is not None:
                traces["delta"] = res.trace

        ref_block = self.plan.blocked.blocks[block_index]
        expected = ref_block.index_bytes() if stream == INDEX else ref_block.value_bytes()
        return ChainResult(
            block_index=block_index,
            stream=stream,
            stage_cycles=stage_cycles,
            output=data,
            verified=data == expected,
            traces=traces or None,
        )


def simulate_plan(
    plan: MatrixCompression,
    machine: UDPMachine | None = None,
    sample: int | None = None,
    seed: int = 0,
    stride: int = 4,
) -> UDPDecodeReport:
    """Simulate decoding an entire matrix plan on the UDP accelerator.

    Args:
        plan: the compressed matrix.
        machine: accelerator configuration (default: 64 lanes @ 1.6 GHz).
        sample: number of blocks to cycle-simulate (None = all). The
            remaining blocks become tasks with the sampled per-stream mean
            cycle count, scaled by their payload size.
        seed: sample selection seed.
        stride: Huffman dispatch stride in bits.

    Returns:
        A :class:`UDPDecodeReport` with verified outputs, per-task cycle
        counts, and the 64-lane schedule.
    """
    machine = machine or UDPMachine()
    nblocks = plan.nblocks
    toolchain = DecoderToolchain(plan, stride=stride)

    if nblocks == 0:
        return UDPDecodeReport(
            matrix_blocks=0,
            simulated=(),
            tasks=(),
            schedule=machine.schedule([]),
            clock_hz=machine.clock_hz,
        )

    if sample is None or sample >= nblocks:
        picked = np.arange(nblocks)
    else:
        rng = seeded_rng(derive_seed(seed, "udp-sample"))
        picked = np.sort(rng.choice(nblocks, size=max(1, sample), replace=False))
    picked_set = set(int(i) for i in picked)

    lane = Lane()
    simulated: list[ChainResult] = []
    sim_by_stream: dict[str, list[ChainResult]] = {INDEX: [], VALUE: []}
    with obs.trace("udp.simulate_plan", blocks=nblocks, sampled=len(picked)):
        for i in picked:
            for stream in (INDEX, VALUE):
                result = toolchain.run_chain(int(i), stream, lane=lane)
                simulated.append(result)
                sim_by_stream[stream].append(result)
    reg = obs.registry()
    reg.counter("udp.simulations").inc()
    reg.counter("udp.blocks_simulated").inc(len(picked))
    reg.counter("udp.chain_cycles").inc(sum(r.cycles for r in simulated))
    reg.counter("udp.output_bytes").inc(sum(len(r.output) for r in simulated))

    # Cycles-per-output-byte per stream kind, for extrapolation.
    cpb: dict[str, float] = {}
    for stream, results in sim_by_stream.items():
        out_bytes = sum(len(r.output) for r in results)
        cpb[stream] = sum(r.cycles for r in results) / max(1, out_bytes)

    tasks: list[LaneTask] = []
    sim_lookup = {(r.block_index, r.stream): r for r in simulated}
    for i in range(nblocks):
        block = plan.blocked.blocks[i]
        for stream, nbytes in ((INDEX, 4 * block.nnz), (VALUE, 8 * block.nnz)):
            if i in picked_set:
                cycles = sim_lookup[(i, stream)].cycles
            else:
                cycles = int(round(cpb[stream] * nbytes))
            tasks.append(
                LaneTask(name=f"b{i}/{stream}", cycles=cycles, output_bytes=nbytes)
            )

    return UDPDecodeReport(
        matrix_blocks=nblocks,
        simulated=tuple(simulated),
        tasks=tuple(tasks),
        schedule=machine.schedule(tasks),
        clock_hz=machine.clock_hz,
    )
