"""EffCLiP — Efficient Coupled Linear Packing.

Multi-way dispatch computes a target address as ``family_base + key``; that
only works if, for every family, all of its keyed blocks sit at exactly
those relative positions, and no two families' blocks collide. EffCLiP
(Fang, Lehane & Chien, TR-2015-05) solves this coupled placement problem,
"achieving dense memory utilization and a simple, fixed hash function —
integer addition".

This implementation places families first-fit-decreasing (largest key-span
first), then drops free (non-coupled) blocks into the remaining holes, and
reports the achieved packing density.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Placement:
    """Result of a packing run.

    Attributes:
        addr_of: block label -> code-memory address.
        family_base: family name -> base address (target = base + key).
        size: one past the highest used address.
        density: used slots / size (1.0 = perfectly dense).
    """

    addr_of: dict[str, int]
    family_base: dict[str, int]
    size: int
    density: float


def pack(
    families: dict[str, dict[int, str]],
    singles: list[str],
) -> Placement:
    """Pack dispatch families and free blocks into linear code memory.

    Args:
        families: family name -> {key: block label}. Keys are the dispatch
            offsets; labels must be globally unique.
        singles: labels with no coupling constraint.

    Returns:
        A :class:`Placement` with every label assigned an address.

    Raises:
        ValueError: on duplicate labels or a label in both inputs.
    """
    seen: set[str] = set()
    for fam, keyed in families.items():
        if not keyed:
            raise ValueError(f"family {fam!r} has no members")
        for label in keyed.values():
            if label in seen:
                raise ValueError(f"duplicate block label {label!r}")
            seen.add(label)
    for label in singles:
        if label in seen:
            raise ValueError(f"duplicate block label {label!r}")
        seen.add(label)

    occupied: set[int] = set()
    addr_of: dict[str, int] = {}
    family_base: dict[str, int] = {}

    # First-fit decreasing by key span: big, sparse families are the hard
    # constraints; placing them early keeps the memory dense.
    def span(keyed: dict[int, str]) -> int:
        return max(keyed) - min(keyed) + 1

    for fam in sorted(families, key=lambda f: span(families[f]), reverse=True):
        keyed = families[fam]
        offsets = sorted(keyed)
        # The base may be negative only if keys demand it; we keep base >= 0
        # by shifting: smallest key anchors at candidate position.
        base = 0
        while True:
            if all((base + k) not in occupied for k in offsets):
                break
            base += 1
        family_base[fam] = base
        for k in offsets:
            addr = base + k
            occupied.add(addr)
            addr_of[keyed[k]] = addr

    # Free blocks fill holes lowest-first.
    next_free = 0
    for label in singles:
        while next_free in occupied:
            next_free += 1
        occupied.add(next_free)
        addr_of[label] = next_free
        next_free += 1

    size = (max(occupied) + 1) if occupied else 0
    density = len(occupied) / size if size else 1.0
    return Placement(
        addr_of=addr_of, family_base=family_base, size=size, density=density
    )
