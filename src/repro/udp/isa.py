"""UDP instruction set.

A UDP program is a set of **blocks**. Each block carries a short list of
*actions* (executed by the Action unit) and exactly one *transition*
(resolved by the Dispatch unit). The Stream-Prefetch unit feeds variable-
size symbols to ``ReadSym``-class actions.

The signature transition is :class:`Dispatch`: the next block's address is
``family_base + key`` — a plain integer add, the "perfect hash" that
EffCLiP's placement makes collision-free. Branch-intensive decode loops
(Huffman, Snappy tag parsing) thus never consult a predictor.

Registers are 16 general-purpose 64-bit registers ``r0..r15``. Arithmetic
wraps at 64 bits; ``Br`` conditions interpret registers as signed.
"""

from __future__ import annotations

from dataclasses import dataclass

NUM_REGS = 16
REG_MASK = (1 << 64) - 1

ALU_OPS = ("add", "sub", "and", "or", "xor", "shl", "shr")
BR_CONDS = ("z", "nz", "lez", "gtz")


def _check_reg(r: int, what: str) -> None:
    if not 0 <= r < NUM_REGS:
        raise ValueError(f"{what} register r{r} out of range (0..{NUM_REGS - 1})")


# --------------------------------------------------------------------------
# Actions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Action:
    """Base class; concrete actions define their operands."""


@dataclass(frozen=True)
class MovI(Action):
    """dst <- imm (64-bit immediate)."""

    dst: int
    imm: int

    def __post_init__(self) -> None:
        _check_reg(self.dst, "MovI dst")


@dataclass(frozen=True)
class MovR(Action):
    """dst <- src."""

    dst: int
    src: int

    def __post_init__(self) -> None:
        _check_reg(self.dst, "MovR dst")
        _check_reg(self.src, "MovR src")


@dataclass(frozen=True)
class AluR(Action):
    """dst <- a OP b (register-register)."""

    op: str
    dst: int
    a: int
    b: int

    def __post_init__(self) -> None:
        if self.op not in ALU_OPS:
            raise ValueError(f"unknown ALU op {self.op!r}")
        _check_reg(self.dst, "AluR dst")
        _check_reg(self.a, "AluR a")
        _check_reg(self.b, "AluR b")


@dataclass(frozen=True)
class AluI(Action):
    """dst <- a OP imm (register-immediate)."""

    op: str
    dst: int
    a: int
    imm: int

    def __post_init__(self) -> None:
        if self.op not in ALU_OPS:
            raise ValueError(f"unknown ALU op {self.op!r}")
        _check_reg(self.dst, "AluI dst")
        _check_reg(self.a, "AluI a")


@dataclass(frozen=True)
class ReadSym(Action):
    """dst <- next ``nbits`` of the input stream, MSB-first.

    The Stream-Prefetch unit tracks the stream bound. If ``eof_value`` is
    set and the stream is fully exhausted, dst receives ``eof_value``
    instead (consuming nothing) — this turns end-of-stream into an ordinary
    dispatch key, so decode loops terminate without a branch. Partial reads
    past the end zero-fill and are counted in ``eof_fill_bits``.
    """

    dst: int
    nbits: int
    eof_value: int | None = None

    def __post_init__(self) -> None:
        _check_reg(self.dst, "ReadSym dst")
        if not 1 <= self.nbits <= 64:
            raise ValueError("ReadSym nbits must be in 1..64")
        if self.eof_value is not None and self.eof_value < 0:
            raise ValueError("ReadSym eof_value must be non-negative")


@dataclass(frozen=True)
class ReadBytesLE(Action):
    """dst <- next ``nbytes`` little-endian; stream must be byte-aligned."""

    dst: int
    nbytes: int

    def __post_init__(self) -> None:
        _check_reg(self.dst, "ReadBytesLE dst")
        if not 1 <= self.nbytes <= 8:
            raise ValueError("ReadBytesLE nbytes must be in 1..8")


@dataclass(frozen=True)
class EmitB(Action):
    """Append the low byte of ``src`` to the output stream."""

    src: int

    def __post_init__(self) -> None:
        _check_reg(self.src, "EmitB src")


@dataclass(frozen=True)
class EmitI(Action):
    """Append the constant byte ``imm`` to the output stream."""

    imm: int

    def __post_init__(self) -> None:
        if not 0 <= self.imm <= 0xFF:
            raise ValueError("EmitI imm must be a byte")


@dataclass(frozen=True)
class EmitWLE(Action):
    """Append the low ``nbytes`` of ``src``, little-endian."""

    src: int
    nbytes: int

    def __post_init__(self) -> None:
        _check_reg(self.src, "EmitWLE src")
        if not 1 <= self.nbytes <= 8:
            raise ValueError("EmitWLE nbytes must be in 1..8")


@dataclass(frozen=True)
class CopyIn(Action):
    """Block-move ``len`` bytes from the (byte-aligned) input stream to the
    output. Multi-cycle: the scratchpad datapath moves 8 bytes/cycle."""

    len_reg: int

    def __post_init__(self) -> None:
        _check_reg(self.len_reg, "CopyIn len")


@dataclass(frozen=True)
class CopyBack(Action):
    """Back-reference copy: append ``len`` bytes starting ``offset`` bytes
    back in the output (overlap repeats the pattern, LZ77-style).
    Multi-cycle: 8 bytes/cycle."""

    offset_reg: int
    len_reg: int

    def __post_init__(self) -> None:
        _check_reg(self.offset_reg, "CopyBack offset")
        _check_reg(self.len_reg, "CopyBack len")


# --------------------------------------------------------------------------
# Transitions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Transition:
    """Base class for the single per-block control transfer."""


@dataclass(frozen=True)
class Jmp(Transition):
    """Unconditional transfer."""

    target: str


@dataclass(frozen=True)
class Br(Transition):
    """Two-way branch on a register condition (signed compare with zero)."""

    cond: str
    reg: int
    then_target: str
    else_target: str

    def __post_init__(self) -> None:
        if self.cond not in BR_CONDS:
            raise ValueError(f"unknown branch condition {self.cond!r}")
        _check_reg(self.reg, "Br reg")


@dataclass(frozen=True)
class Dispatch(Transition):
    """Multi-way transfer: next address = base(family) + key register.

    The assembler verifies every reachable key has a block; EffCLiP places
    the family so the add is a perfect hash.
    """

    family: str
    key_reg: int

    def __post_init__(self) -> None:
        _check_reg(self.key_reg, "Dispatch key")


@dataclass(frozen=True)
class Halt(Transition):
    """Stop the program; ``status`` 0 means success."""

    status: int = 0


# --------------------------------------------------------------------------
# Blocks & programs
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Block:
    """One code point: actions + a transition.

    ``dispatch_key``, when set to ``(family, key)``, pins this block as the
    dispatch target for ``key`` within ``family`` — the coupled placement
    constraint EffCLiP resolves.
    """

    label: str
    actions: tuple[Action, ...]
    transition: Transition
    dispatch_key: tuple[str, int] | None = None

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("block label must be non-empty")
        if self.dispatch_key is not None and self.dispatch_key[1] < 0:
            raise ValueError("dispatch key must be non-negative")
        object.__setattr__(self, "actions", tuple(self.actions))


@dataclass(frozen=True)
class Program:
    """An unassembled UDP program."""

    name: str
    blocks: tuple[Block, ...]
    entry: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "blocks", tuple(self.blocks))
        labels = [b.label for b in self.blocks]
        if len(set(labels)) != len(labels):
            dupes = sorted({l for l in labels if labels.count(l) > 1})
            raise ValueError(f"duplicate block labels: {dupes}")
        if self.entry not in set(labels):
            raise ValueError(f"entry label {self.entry!r} not defined")
