"""One UDP lane: Dispatch unit, Stream-Prefetch unit, Action unit, and a
private scratchpad, with cycle accounting.

Cycle model (paper Section III-E: short pipeline, one dispatch per cycle):

* every executed block costs 1 cycle, which covers the transition and up to
  two actions (the Action unit executes a small bundle per dispatch);
* each additional action beyond the first two costs +1 cycle;
* block moves (``CopyIn`` / ``CopyBack``) stream 8 bytes per cycle through
  the 64-bit scratchpad datapath: +ceil(len/8) cycles;
* multi-way dispatch costs nothing extra — the target address is an integer
  add, the whole point of the design.

The lane can record an execution **trace** (one event per block) which the
CPU cost model replays: the same work, priced with branch prediction and
pipeline flushes instead (see :mod:`repro.cpu.pipeline`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.errors import CodecError
from repro.udp.assembler import AssembledProgram
from repro.udp.isa import (
    AluI,
    AluR,
    Br,
    CopyBack,
    CopyIn,
    Dispatch,
    EmitB,
    EmitI,
    EmitWLE,
    Halt,
    Jmp,
    MovI,
    MovR,
    NUM_REGS,
    REG_MASK,
    ReadBytesLE,
    ReadSym,
)

#: Default runaway-program guard.
DEFAULT_MAX_CYCLES = 200_000_000


class UDPFault(CodecError):
    """Raised on conditions real hardware would fault on: dispatch to an
    unoccupied address, byte reads past end-of-stream, bad back-references,
    or exceeding the cycle guard.

    Part of the unified :class:`~repro.codecs.errors.CodecError` hierarchy
    so resilience layers handle simulator faults and software decode
    corruption with one ``except CodecError`` clause."""


@dataclass(frozen=True)
class TraceEvent:
    """One executed block, as the CPU replay model needs to see it.

    Attributes:
        addr: block address (CPU model keys predictor state on this).
        n_actions: actions executed in the block.
        kind: transition kind ("jmp" | "br" | "dispatch" | "halt").
        target: resolved next address (-1 for halt).
        ntargets: dispatch family size (indirect-branch fan-out); 2 for br.
        copy_bytes: bytes moved by CopyIn/CopyBack in this block.
        taken: for "br" events, whether the then-target was taken.
    """

    addr: int
    n_actions: int
    kind: str
    target: int
    ntargets: int
    copy_bytes: int
    taken: bool = False


@dataclass
class LaneCounters:
    """Aggregate execution statistics."""

    cycles: int = 0
    blocks: int = 0
    actions: int = 0
    dispatches: int = 0
    branches: int = 0
    copy_bytes: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    eof_fill_bits: int = 0


@dataclass
class LaneResult:
    """Outcome of one program run on one lane."""

    output: bytes
    status: int
    counters: LaneCounters
    trace: list[TraceEvent] | None = None

    @property
    def cycles(self) -> int:
        return self.counters.cycles


class Lane:
    """A single UDP lane executing an assembled program over a stream."""

    def __init__(self, max_cycles: int = DEFAULT_MAX_CYCLES):
        self.max_cycles = max_cycles

    def run(
        self,
        program: AssembledProgram,
        stream: bytes,
        init_regs: dict[int, int] | None = None,
        max_output: int | None = None,
        collect_trace: bool = False,
    ) -> LaneResult:
        """Execute ``program`` over ``stream`` until :class:`Halt`.

        Args:
            program: assembled image.
            stream: input byte stream (consumed by ReadSym/ReadBytesLE/CopyIn).
            init_regs: initial register values (e.g. expected output count).
            max_output: fault if the output exceeds this many bytes.
            collect_trace: record per-block :class:`TraceEvent`s.

        Raises:
            UDPFault: on hardware-fault conditions (see class docstring).
        """
        regs = [0] * NUM_REGS
        for r, v in (init_regs or {}).items():
            if not 0 <= r < NUM_REGS:
                raise ValueError(f"init reg r{r} out of range")
            regs[r] = v & REG_MASK

        out = bytearray()
        counters = LaneCounters(bytes_in=len(stream))
        trace: list[TraceEvent] | None = [] if collect_trace else None

        bit_pos = 0
        nbits_total = len(stream) * 8
        fam_sizes = program.family_sizes

        def read_bits(n: int) -> int:
            nonlocal bit_pos
            value = 0
            for _ in range(n):
                if bit_pos < nbits_total:
                    byte = stream[bit_pos >> 3]
                    bit = (byte >> (7 - (bit_pos & 7))) & 1
                else:
                    bit = 0
                    counters.eof_fill_bits += 1
                value = (value << 1) | bit
                bit_pos += 1
            return value

        addr = program.entry_addr
        status: int | None = None
        while status is None:
            block = program.image[addr] if 0 <= addr < program.size else None
            if block is None:
                raise UDPFault(f"dispatch to unoccupied address {addr}")
            n_actions = len(block.actions)
            block_copy_bytes = 0
            block_cycles = 1 + max(0, n_actions - 2)

            for action in block.actions:
                if isinstance(action, MovI):
                    regs[action.dst] = action.imm & REG_MASK
                elif isinstance(action, MovR):
                    regs[action.dst] = regs[action.src]
                elif isinstance(action, AluR):
                    regs[action.dst] = _alu(action.op, regs[action.a], regs[action.b])
                elif isinstance(action, AluI):
                    regs[action.dst] = _alu(action.op, regs[action.a], action.imm & REG_MASK)
                elif isinstance(action, ReadSym):
                    if action.eof_value is not None and bit_pos >= nbits_total:
                        regs[action.dst] = action.eof_value
                    else:
                        regs[action.dst] = read_bits(action.nbits)
                elif isinstance(action, ReadBytesLE):
                    if bit_pos % 8:
                        raise UDPFault("ReadBytesLE on unaligned stream")
                    start = bit_pos >> 3
                    if start + action.nbytes > len(stream):
                        raise UDPFault("ReadBytesLE past end of stream")
                    regs[action.dst] = int.from_bytes(
                        stream[start : start + action.nbytes], "little"
                    )
                    bit_pos += 8 * action.nbytes
                elif isinstance(action, EmitB):
                    out.append(regs[action.src] & 0xFF)
                elif isinstance(action, EmitI):
                    out.append(action.imm)
                elif isinstance(action, EmitWLE):
                    out += (regs[action.src] & ((1 << (8 * action.nbytes)) - 1)).to_bytes(
                        action.nbytes, "little"
                    )
                elif isinstance(action, CopyIn):
                    if bit_pos % 8:
                        raise UDPFault("CopyIn on unaligned stream")
                    length = regs[action.len_reg]
                    start = bit_pos >> 3
                    if start + length > len(stream):
                        raise UDPFault("CopyIn past end of stream")
                    out += stream[start : start + length]
                    bit_pos += 8 * length
                    block_copy_bytes += length
                    block_cycles += -(-length // 8)
                elif isinstance(action, CopyBack):
                    length = regs[action.len_reg]
                    offset = regs[action.offset_reg]
                    if offset == 0 or offset > len(out):
                        raise UDPFault(
                            f"CopyBack offset {offset} invalid at output {len(out)}"
                        )
                    if offset >= length:
                        src = len(out) - offset
                        out += out[src : src + length]
                    else:
                        pattern = out[len(out) - offset :]
                        reps = -(-length // offset)
                        out += (pattern * reps)[:length]
                    block_copy_bytes += length
                    block_cycles += -(-length // 8)
                else:  # pragma: no cover - exhaustive over ISA
                    raise UDPFault(f"unknown action {action!r}")

            if max_output is not None and len(out) > max_output:
                raise UDPFault(f"output exceeded {max_output} bytes")

            t = block.transition
            br_taken = False
            if isinstance(t, Jmp):
                next_addr = program.addr_of[t.target]
                kind, ntargets = "jmp", 1
            elif isinstance(t, Br):
                br_taken = _br_taken(t.cond, regs[t.reg])
                next_addr = program.addr_of[t.then_target if br_taken else t.else_target]
                kind, ntargets = "br", 2
                counters.branches += 1
            elif isinstance(t, Dispatch):
                base = program.family_base[t.family]
                next_addr = base + regs[t.key_reg]
                kind, ntargets = "dispatch", fam_sizes[t.family]
                counters.dispatches += 1
            elif isinstance(t, Halt):
                next_addr = -1
                kind, ntargets = "halt", 1
                status = t.status
            else:  # pragma: no cover - exhaustive over ISA
                raise UDPFault(f"unknown transition {t!r}")

            counters.blocks += 1
            counters.actions += n_actions
            counters.copy_bytes += block_copy_bytes
            counters.cycles += block_cycles
            if counters.cycles > self.max_cycles:
                raise UDPFault(f"exceeded cycle guard ({self.max_cycles})")
            if trace is not None:
                trace.append(
                    TraceEvent(
                        addr=addr,
                        n_actions=n_actions,
                        kind=kind,
                        target=next_addr,
                        ntargets=ntargets,
                        copy_bytes=block_copy_bytes,
                        taken=br_taken,
                    )
                )
            addr = next_addr

        counters.bytes_out = len(out)
        return LaneResult(output=bytes(out), status=status, counters=counters, trace=trace)


def _alu(op: str, a: int, b: int) -> int:
    if op == "add":
        return (a + b) & REG_MASK
    if op == "sub":
        return (a - b) & REG_MASK
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return (a << (b & 63)) & REG_MASK
    if op == "shr":
        return a >> (b & 63)
    raise UDPFault(f"unknown ALU op {op!r}")  # pragma: no cover


def _br_taken(cond: str, value: int) -> bool:
    signed = value - (1 << 64) if value >= (1 << 63) else value
    if cond == "z":
        return signed == 0
    if cond == "nz":
        return signed != 0
    if cond == "lez":
        return signed <= 0
    if cond == "gtz":
        return signed > 0
    raise UDPFault(f"unknown branch condition {cond!r}")  # pragma: no cover
