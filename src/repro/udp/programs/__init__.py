"""UDP decode programs for the DSH pipeline.

The decompression of one block "contains these three transformations, run
in the reverse order — huffman decode, snappy decode, inverse delta — that
run as a series of steps in a single lane of the UDP" (paper Section V-A).

* :func:`~repro.udp.programs.delta_prog.build_delta_decode` — static
  program, inverse first-difference over int32 lanes.
* :func:`~repro.udp.programs.snappy_prog.build_snappy_decode` — static
  program; the tag byte's low two bits feed a 4-way dispatch, literal
  extra-length bytes feed a second dispatch family.
* :func:`~repro.udp.programs.huffman_prog.build_huffman_decode` — generated
  per matrix from the Huffman table: the code-tree DFA becomes one dispatch
  family per state, and end-of-stream is a 17th dispatch key, so the hot
  loop is branch-free (exactly the paper's "multi-way dispatch" win).
"""

from repro.udp.programs.delta_prog import build_delta_decode
from repro.udp.programs.huffman_prog import build_huffman_decode
from repro.udp.programs.rle_prog import build_rle_decode
from repro.udp.programs.snappy_prog import build_snappy_decode

__all__ = [
    "build_delta_decode",
    "build_snappy_decode",
    "build_huffman_decode",
    "build_rle_decode",
]
