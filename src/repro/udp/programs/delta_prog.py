"""UDP program: inverse delta (prefix sum) over little-endian int32 lanes.

Register contract:
    r0 (in)  — element count (bytes / 4).
    r1       — running accumulator.
    r2       — scratch (current delta).

The loop body is a single block: read 4 bytes, accumulate, emit 4 bytes,
decrement, conditional-branch back — 4 actions, so 3 cycles per element
(0.75 cycles per output byte).
"""

from __future__ import annotations

from repro.udp.isa import (
    AluI,
    AluR,
    Block,
    Br,
    EmitWLE,
    Halt,
    Program,
    ReadBytesLE,
)

#: Register the caller loads with the element count.
REG_COUNT = 0

_R_ACC = 1
_R_DELTA = 2


def build_delta_decode() -> Program:
    """Build the (static) inverse-delta program."""
    blocks = [
        Block(
            label="check",
            actions=(),
            transition=Br("gtz", REG_COUNT, "body", "done"),
        ),
        Block(
            label="body",
            actions=(
                ReadBytesLE(_R_DELTA, 4),
                AluR("add", _R_ACC, _R_ACC, _R_DELTA),
                EmitWLE(_R_ACC, 4),
                AluI("sub", REG_COUNT, REG_COUNT, 1),
            ),
            transition=Br("gtz", REG_COUNT, "body", "done"),
        ),
        Block(label="done", actions=(), transition=Halt(0)),
    ]
    return Program(name="delta-decode", blocks=tuple(blocks), entry="check")
