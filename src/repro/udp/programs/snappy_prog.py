"""UDP program: Snappy block-format decompression.

This is the poster child for multi-way dispatch: the element loop reads a
tag byte and dispatches on its low two bits (literal / copy-1 / copy-2 /
copy-4) in a single cycle, where a CPU suffers an unpredictable indirect
branch (paper Section III-E). Literal extra-length bytes (codes 60-63) use
a second, 4-way dispatch family.

Register contract:
    r0 — remaining output bytes (loaded from the stream preamble varint).
    r2 — tag byte / scratch.
    r3 — element length (also dispatch key for the tag family, low 2 bits).
    r4 — copy offset.
    r5 — scratch.
    r6 — varint shift counter.
"""

from __future__ import annotations

from repro.udp.isa import (
    AluI,
    AluR,
    Block,
    Br,
    CopyBack,
    CopyIn,
    Dispatch,
    Halt,
    Jmp,
    Program,
    ReadBytesLE,
)

_R_REMAIN = 0
_R_TAG = 2
_R_LEN = 3
_R_OFF = 4
_R_TMP = 5
_R_SHIFT = 6


def build_snappy_decode() -> Program:
    """Build the (static) Snappy-decode program."""
    blocks: list[Block] = []

    # Preamble: uvarint uncompressed length into r0.
    blocks.append(
        Block(
            label="start",
            actions=(
                AluI("and", _R_REMAIN, _R_REMAIN, 0),  # r0 = 0
                AluI("and", _R_SHIFT, _R_SHIFT, 0),  # shift = 0
            ),
            transition=Jmp("varint"),
        )
    )
    blocks.append(
        Block(
            label="varint",
            actions=(
                ReadBytesLE(_R_TAG, 1),
                AluI("and", _R_TMP, _R_TAG, 0x7F),
                AluR("shl", _R_TMP, _R_TMP, _R_SHIFT),
                AluR("or", _R_REMAIN, _R_REMAIN, _R_TMP),
                AluI("add", _R_SHIFT, _R_SHIFT, 7),
                AluI("and", _R_TAG, _R_TAG, 0x80),
            ),
            transition=Br("nz", _R_TAG, "varint", "check"),
        )
    )

    # Main element loop.
    blocks.append(
        Block(
            label="check",
            actions=(),
            transition=Br("gtz", _R_REMAIN, "tag", "done"),
        )
    )
    blocks.append(
        Block(
            label="tag",
            actions=(
                ReadBytesLE(_R_TAG, 1),
                AluI("and", _R_LEN, _R_TAG, 3),
            ),
            transition=Dispatch("tag", _R_LEN),
        )
    )

    # --- tag 0: literal -----------------------------------------------------
    blocks.append(
        Block(
            label="lit",
            dispatch_key=("tag", 0),
            actions=(
                AluI("shr", _R_LEN, _R_TAG, 2),
                AluI("sub", _R_TMP, _R_LEN, 59),
            ),
            transition=Br("gtz", _R_TMP, "lit_ext", "lit_short"),
        )
    )
    blocks.append(
        Block(
            label="lit_short",
            actions=(AluI("add", _R_LEN, _R_LEN, 1),),
            transition=Jmp("lit_copy"),
        )
    )
    # Extra length bytes: r5 in 1..4 selects how many bytes hold (length-1).
    blocks.append(
        Block(
            label="lit_ext",
            actions=(),
            transition=Dispatch("litext", _R_TMP),
        )
    )
    for nbytes in (1, 2, 3, 4):
        blocks.append(
            Block(
                label=f"lit_ext{nbytes}",
                dispatch_key=("litext", nbytes),
                actions=(
                    ReadBytesLE(_R_LEN, nbytes),
                    AluI("add", _R_LEN, _R_LEN, 1),
                ),
                transition=Jmp("lit_copy"),
            )
        )
    blocks.append(
        Block(
            label="lit_copy",
            actions=(
                CopyIn(_R_LEN),
                AluR("sub", _R_REMAIN, _R_REMAIN, _R_LEN),
            ),
            transition=Br("gtz", _R_REMAIN, "tag", "done"),
        )
    )

    # --- tag 1: copy, 1-byte offset ------------------------------------------
    blocks.append(
        Block(
            label="copy1",
            dispatch_key=("tag", 1),
            actions=(
                AluI("shr", _R_TMP, _R_TAG, 2),
                AluI("and", _R_TMP, _R_TMP, 7),
                AluI("add", _R_LEN, _R_TMP, 4),
                AluI("shr", _R_OFF, _R_TAG, 5),
                AluI("shl", _R_OFF, _R_OFF, 8),
                ReadBytesLE(_R_TMP, 1),
                AluR("or", _R_OFF, _R_OFF, _R_TMP),
            ),
            transition=Jmp("do_copy"),
        )
    )
    # --- tag 2: copy, 2-byte offset ------------------------------------------
    blocks.append(
        Block(
            label="copy2",
            dispatch_key=("tag", 2),
            actions=(
                AluI("shr", _R_LEN, _R_TAG, 2),
                AluI("add", _R_LEN, _R_LEN, 1),
                ReadBytesLE(_R_OFF, 2),
            ),
            transition=Jmp("do_copy"),
        )
    )
    # --- tag 3: copy, 4-byte offset ------------------------------------------
    blocks.append(
        Block(
            label="copy3",
            dispatch_key=("tag", 3),
            actions=(
                AluI("shr", _R_LEN, _R_TAG, 2),
                AluI("add", _R_LEN, _R_LEN, 1),
                ReadBytesLE(_R_OFF, 4),
            ),
            transition=Jmp("do_copy"),
        )
    )
    blocks.append(
        Block(
            label="do_copy",
            actions=(
                CopyBack(_R_OFF, _R_LEN),
                AluR("sub", _R_REMAIN, _R_REMAIN, _R_LEN),
            ),
            transition=Br("gtz", _R_REMAIN, "tag", "done"),
        )
    )

    blocks.append(Block(label="done", actions=(), transition=Halt(0)))
    return Program(name="snappy-decode", blocks=tuple(blocks), entry="start")
