"""UDP program: RLE decode for int32 lanes (the custom structured-matrix
codec of :mod:`repro.codecs.rle`).

Demonstrates the paper's programmability claim: a brand-new storage format
costs one new UDP program — no CPU code change, no new hardware. The run
expansion uses the back-reference copy trick (emit the 4-byte value once,
then ``CopyBack(offset=4, len=4*(count-1))``), so a whole run costs ~4
blocks plus 1 cycle per 8 output bytes — cheaper than Snappy-decoding the
same stream.

Stream layout (from ``RLECodec.encode``):
    uvarint(element_count) || ( uvarint(run) uvarint(zigzag(value)) )*

Register contract:
    r0 — remaining elements; r2 — varint byte; r3 — varint accumulator;
    r4 — varint shift; r5 — run length; r6 — decoded value; r7 — scratch.
"""

from __future__ import annotations

from repro.udp.isa import (
    AluI,
    AluR,
    Block,
    Br,
    CopyBack,
    EmitWLE,
    Halt,
    Jmp,
    Program,
    ReadBytesLE,
)

_R_REMAIN = 0
_R_BYTE = 2
_R_ACC = 3
_R_SHIFT = 4
_R_RUN = 5
_R_VALUE = 6
_R_TMP = 7


def _varint_blocks(prefix: str, done_label: str) -> list[Block]:
    """Blocks reading one uvarint into r3, then jumping to ``done_label``."""
    return [
        Block(
            label=f"{prefix}_init",
            actions=(
                AluI("and", _R_ACC, _R_ACC, 0),
                AluI("and", _R_SHIFT, _R_SHIFT, 0),
            ),
            transition=Jmp(f"{prefix}_byte"),
        ),
        Block(
            label=f"{prefix}_byte",
            actions=(
                ReadBytesLE(_R_BYTE, 1),
                AluI("and", _R_TMP, _R_BYTE, 0x7F),
                AluR("shl", _R_TMP, _R_TMP, _R_SHIFT),
                AluR("or", _R_ACC, _R_ACC, _R_TMP),
                AluI("add", _R_SHIFT, _R_SHIFT, 7),
                AluI("and", _R_BYTE, _R_BYTE, 0x80),
            ),
            transition=Br("nz", _R_BYTE, f"{prefix}_byte", done_label),
        ),
    ]


def build_rle_decode() -> Program:
    """Build the (static) RLE-decode program."""
    blocks: list[Block] = []
    # Element count (consumed for validation; loop is count-driven).
    blocks += _varint_blocks("count", "count_done")
    blocks.append(
        Block(
            label="count_done",
            actions=(AluR("or", _R_REMAIN, _R_ACC, _R_ACC),),
            transition=Jmp("check"),
        )
    )
    blocks.append(
        Block(label="check", actions=(), transition=Br("gtz", _R_REMAIN, "run_init", "done"))
    )
    # Run length.
    blocks += _varint_blocks("run", "run_done")
    blocks.append(
        Block(
            label="run_done",
            actions=(AluR("or", _R_RUN, _R_ACC, _R_ACC),),
            transition=Jmp("val_init"),
        )
    )
    # Zigzag value: value = (zz >> 1) ^ -(zz & 1), in 32-bit arithmetic.
    blocks += _varint_blocks("val", "val_done")
    blocks.append(
        Block(
            label="val_done",
            actions=(
                AluI("and", _R_TMP, _R_ACC, 1),
                AluI("shr", _R_ACC, _R_ACC, 1),
            ),
            transition=Br("nz", _R_TMP, "val_neg", "val_pos"),
        )
    )
    blocks.append(
        Block(
            label="val_pos",
            actions=(AluR("or", _R_VALUE, _R_ACC, _R_ACC),),
            transition=Jmp("emit_first"),
        )
    )
    blocks.append(
        Block(
            label="val_neg",
            actions=(
                # value = ~(zz >> 1) in two's complement = -(zz>>1) - 1.
                AluI("xor", _R_VALUE, _R_ACC, (1 << 64) - 1),
            ),
            transition=Jmp("emit_first"),
        )
    )
    # Emit the first element, then block-copy the rest of the run.
    blocks.append(
        Block(
            label="emit_first",
            actions=(
                EmitWLE(_R_VALUE, 4),
                AluI("sub", _R_REMAIN, _R_REMAIN, 1),
                AluI("sub", _R_RUN, _R_RUN, 1),
            ),
            transition=Br("gtz", _R_RUN, "expand", "check"),
        )
    )
    blocks.append(
        Block(
            label="expand",
            actions=(
                AluI("shl", _R_TMP, _R_RUN, 2),  # bytes = 4 * (run - 1)
                AluI("and", _R_BYTE, _R_BYTE, 0),
                AluI("add", _R_BYTE, _R_BYTE, 4),  # offset = 4
                CopyBack(_R_BYTE, _R_TMP),
                AluR("sub", _R_REMAIN, _R_REMAIN, _R_RUN),
            ),
            transition=Jmp("check"),
        )
    )
    blocks.append(Block(label="done", actions=(), transition=Halt(0)))
    return Program(name="rle-decode", blocks=tuple(blocks), entry="count_init")
