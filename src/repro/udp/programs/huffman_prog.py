"""UDP program: canonical Huffman decode, generated from a code table.

This mirrors the real UDP toolchain: the per-matrix Huffman tree is
compiled into a stride-bit DFA (:meth:`HuffmanTable.decode_automaton`),
whose states become **dispatch families** — one family per internal trie
node, one member block per chunk value. The hot loop is a single block per
chunk: emit the decoded symbols, prefetch the next chunk, dispatch. No
branches, no count checks: the Stream-Prefetch unit returns a 17th key
(``EOF_KEY``) when the stream is exhausted, and that key's block halts.

Decoded output may carry a few spurious trailing symbols produced by the
final byte's padding bits; callers truncate to the known output length
(exactly what the paper's ``recode`` runtime does, since every record
stores its decoded size).

Register contract:
    r1 — current chunk (dispatch key).
"""

from __future__ import annotations

from repro.codecs.huffman import HuffmanDFA, HuffmanTable
from repro.udp.isa import Block, Dispatch, EmitI, Halt, Program, ReadSym

_R_CHUNK = 1

#: Default chunk width (bits consumed per dispatch).
DEFAULT_STRIDE = 4


def eof_key(stride: int) -> int:
    """The out-of-band dispatch key returned at end-of-stream."""
    return 1 << stride


def build_huffman_decode(
    table: HuffmanTable, stride: int = DEFAULT_STRIDE
) -> Program:
    """Compile ``table`` into a UDP decode program.

    Args:
        table: the matrix's canonical Huffman table.
        stride: bits per dispatch (8/stride must be integral so chunks
            never straddle the byte-padded payload end).

    Returns:
        An unassembled :class:`Program` (families: one per DFA state).

    ``decode_automaton`` is memoized by table fingerprint, so the index
    and value program for one matrix — and re-builds of the same plan —
    compile against one shared DFA instead of re-walking the trie.
    """
    if 8 % stride != 0:
        raise ValueError("stride must divide 8 so chunks align to payload end")
    dfa: HuffmanDFA = table.decode_automaton(stride=stride)
    eof = eof_key(stride)

    blocks: list[Block] = [
        Block(
            label="start",
            actions=(ReadSym(_R_CHUNK, stride, eof_value=eof),),
            transition=Dispatch(f"st{dfa.root}", _R_CHUNK),
        ),
        Block(label="done", actions=(), transition=Halt(0)),
    ]

    for state, row in enumerate(dfa.transitions):
        if not row:
            continue  # leaf trie node: never a resting state
        for chunk, (next_state, emitted) in enumerate(row):
            actions = tuple(EmitI(sym) for sym in emitted) + (
                ReadSym(_R_CHUNK, stride, eof_value=eof),
            )
            blocks.append(
                Block(
                    label=f"n{state}_{chunk}",
                    dispatch_key=(f"st{state}", chunk),
                    actions=actions,
                    transition=Dispatch(f"st{next_state}", _R_CHUNK),
                )
            )
        # End-of-stream member: halt.
        blocks.append(
            Block(
                label=f"fin{state}",
                dispatch_key=(f"st{state}", eof),
                actions=(),
                transition=Halt(0),
            )
        )

    return Program(name=f"huffman-decode-s{stride}", blocks=tuple(blocks), entry="start")
