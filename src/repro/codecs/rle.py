"""Run-length codec for int32 lanes — a "customized encoding on top of CSR
for matrices with particular structure" (the paper's future-work item).

Delta-encoded index streams of banded/diagonal matrices are almost entirely
runs of one repeated value (the constant stride). RLE represents each run
as ``uvarint(count) || uvarint(zigzag(value))``, collapsing such streams to
a handful of bytes — smaller *and* far cheaper to decode than Snappy, which
is the point of a programmable recoding engine: new formats are a new UDP
program, not new hardware (see
:func:`repro.udp.programs.rle_prog.build_rle_decode`).
"""

from __future__ import annotations

import numpy as np

from repro.codecs.errors import CorruptStreamError

from repro.codecs.base import Codec
from repro.codecs.varint import read_varint, write_varint

_U32 = 1 << 32


def zigzag_encode(value: int) -> int:
    """Map a signed int32 onto an unsigned int (small magnitudes stay small)."""
    if not -(1 << 31) <= value < (1 << 31):
        raise ValueError(f"value {value} out of int32 range")
    return (value << 1) ^ (value >> 31) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(encoded: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    if encoded < 0:
        raise ValueError("zigzag input must be non-negative")
    return (encoded >> 1) if encoded % 2 == 0 else -((encoded + 1) >> 1)


def rle_encode(values: np.ndarray) -> bytes:
    """Encode an int32 array as (count, zigzag(value)) uvarint pairs."""
    arr = np.asarray(values, dtype=np.int32)
    out = bytearray()
    if arr.size == 0:
        return bytes(out)
    # Run boundaries.
    change = np.empty(arr.size, dtype=bool)
    change[0] = True
    change[1:] = arr[1:] != arr[:-1]
    starts = np.flatnonzero(change)
    ends = np.append(starts[1:], arr.size)
    for start, end in zip(starts, ends):
        out += write_varint(int(end - start))
        out += write_varint(zigzag_encode(int(arr[start])))
    return bytes(out)


def rle_decode(data: bytes, count: int | None = None) -> np.ndarray:
    """Decode an RLE stream back to int32.

    Args:
        data: the encoded stream.
        count: expected element count (validated when given).

    Raises:
        CorruptStreamError: truncated stream, zero-length run, or count
            mismatch.
    """
    pos = 0
    chunks: list[np.ndarray] = []
    total = 0
    n = len(data)
    while pos < n:
        run, pos = read_varint(data, pos)
        if run == 0:
            raise CorruptStreamError("zero-length run")
        zz, pos = read_varint(data, pos)
        value = zigzag_decode(zz)
        chunks.append(np.full(run, value, dtype=np.int32))
        total += run
    out = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int32)
    if count is not None and total != count:
        raise CorruptStreamError(f"decoded {total} elements, expected {count}")
    return out


class RLECodec(Codec):
    """Byte-stream adapter: payload is little-endian int32 lanes.

    The encoded form is prefixed with ``uvarint(element_count)`` so decode
    is self-delimiting in a byte pipeline.
    """

    name = "rle"

    def encode(self, data: bytes) -> bytes:
        if len(data) % 4:
            raise ValueError(f"rle payload must be 4-byte aligned, got {len(data)}")
        arr = np.frombuffer(data, dtype="<i4")
        return write_varint(arr.size) + rle_encode(arr)

    def decode(self, data: bytes) -> bytes:
        count, pos = read_varint(data, 0)
        return rle_decode(data[pos:], count=count).astype("<i4").tobytes()
