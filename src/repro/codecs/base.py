"""Codec protocol shared by every stage of the recoding stack."""

from __future__ import annotations

import abc


class Codec(abc.ABC):
    """A reversible byte-stream transform.

    Codecs are *stateless* between calls; any per-matrix state (e.g. the
    Huffman table) is carried by the codec instance, mirroring how the UDP
    is programmed once per matrix and then streams blocks through.
    """

    #: Short name used in reports ("delta", "snappy", "huffman").
    name: str = "codec"

    @abc.abstractmethod
    def encode(self, data: bytes) -> bytes:
        """Transform ``data``; must be inverted exactly by :meth:`decode`."""

    @abc.abstractmethod
    def decode(self, data: bytes) -> bytes:
        """Invert :meth:`encode`."""


class IdentityCodec(Codec):
    """No-op stage (used where the paper's pipeline skips a transform,
    e.g. no delta on the value stream)."""

    name = "identity"

    def encode(self, data: bytes) -> bytes:
        return bytes(data)

    def decode(self, data: bytes) -> bytes:
        return bytes(data)
