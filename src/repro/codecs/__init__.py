"""Recoding codecs: the compression stack the UDP executes.

The paper stores block-CSR matrices under a combined **Delta → Snappy →
Huffman (DSH)** encoding (Section IV-B / V-A). All three codecs are
implemented here from scratch:

* :mod:`~repro.codecs.delta` — first-difference transform on the int32
  column-index stream ("turns arithmetic series into easily compressible
  repeating integers").
* :mod:`~repro.codecs.snappy` — Google's Snappy block format (varint
  preamble; literal / copy tags; hash-table LZ77 greedy matcher), binary
  compatible with the published format specification.
* :mod:`~repro.codecs.huffman` — canonical Huffman coding with the paper's
  per-matrix table built by sampling up to 40% of the 8 KB blocks.
* :mod:`~repro.codecs.pipeline` — block-oriented DSH composition +
  whole-matrix compression plans and bytes-per-nnz statistics.
* :mod:`~repro.codecs.engine` — the parallel block recode engine (worker
  pools over per-block codec work) and the decoded-block LRU cache that
  models the paper's steady-state block reuse.
* :mod:`~repro.codecs.errors` — the unified :class:`CodecError` taxonomy
  every decode-path failure derives from (see docs/ROBUSTNESS.md).
"""

from repro.codecs.base import Codec, IdentityCodec
from repro.codecs.errors import (
    BlockDecodeError,
    CodecError,
    ContainerError,
    CorruptPayloadError,
    CorruptStreamError,
    TruncatedContainerError,
)
from repro.codecs.delta import DeltaCodec, delta_decode, delta_encode
from repro.codecs.huffman import HuffmanCodec, HuffmanTable
from repro.codecs.pipeline import (
    BlockRecord,
    DSH_PIPELINE,
    MatrixCompression,
    RecodePipeline,
    SNAPPY_ONLY,
    compress_matrix,
)
from repro.codecs.autotune import AutotuneResult, CandidateSpec, autotune
from repro.codecs.engine import (
    BlockFailure,
    CacheStats,
    DecodedBlockCache,
    EngineStats,
    RecodeEngine,
    plan_fingerprint,
)
from repro.codecs.container import (
    BlockExtent,
    BlockHealth,
    ContainerReader,
    RecordExtent,
    RecordHealth,
    ScrubReport,
    load_csr,
    load_plan,
    save_plan,
    scrub_container,
)
from repro.codecs.rle import RLECodec, rle_decode, rle_encode
from repro.codecs.shuffle import ShuffleCodec, shuffle_bytes, unshuffle_bytes
from repro.codecs.snappy import SnappyCodec, snappy_compress, snappy_decompress
from repro.codecs.varint import read_varint, write_varint

__all__ = [
    "Codec",
    "IdentityCodec",
    "DeltaCodec",
    "delta_encode",
    "delta_decode",
    "SnappyCodec",
    "snappy_compress",
    "snappy_decompress",
    "HuffmanCodec",
    "HuffmanTable",
    "RecodePipeline",
    "DSH_PIPELINE",
    "SNAPPY_ONLY",
    "BlockRecord",
    "MatrixCompression",
    "compress_matrix",
    "read_varint",
    "write_varint",
    "RLECodec",
    "rle_encode",
    "rle_decode",
    "ShuffleCodec",
    "shuffle_bytes",
    "unshuffle_bytes",
    "autotune",
    "AutotuneResult",
    "CandidateSpec",
    "RecodeEngine",
    "BlockFailure",
    "DecodedBlockCache",
    "EngineStats",
    "CacheStats",
    "plan_fingerprint",
    "save_plan",
    "load_plan",
    "load_csr",
    "scrub_container",
    "ContainerReader",
    "BlockExtent",
    "RecordExtent",
    "ScrubReport",
    "BlockHealth",
    "RecordHealth",
    "CodecError",
    "CorruptStreamError",
    "CorruptPayloadError",
    "ContainerError",
    "TruncatedContainerError",
    "BlockDecodeError",
]
