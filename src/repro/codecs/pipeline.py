"""Block-oriented Delta → Snappy → Huffman (DSH) compression plans.

This is the representation the heterogeneous system stores in DRAM: for
every 8 KB CSR block, the column-index stream and the value stream are
compressed independently (paper Fig. 7 issues separate ``recode`` calls for
``ccol_idx`` and ``cvalues``). Delta applies to the index stream only
(Section IV-B delta-encodes "the matrix indices"); Huffman tables are built
per matrix, per stream, from a deterministic sample of up to 40% of blocks.

The CPU baseline of Fig. 10 — plain Snappy on 32 KB blocks — is the same
machinery with ``use_delta=False, use_huffman=False, block_bytes=32768``.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.codecs.base import Codec
from repro.codecs.delta import DeltaCodec, delta_decode
from repro.codecs.errors import CodecError, CorruptPayloadError, CorruptStreamError
from repro.codecs.huffman import HuffmanCodec, HuffmanTable
from repro.codecs.snappy import snappy_compress, snappy_decompress
from repro.sparse.blocked import BlockedCSR, CSRBlock, UDP_BLOCK_BYTES, partition_csr
from repro.sparse.csr import CSRMatrix
from repro.util.rng import derive_seed, seeded_rng

#: Per-record wire header: u32 orig_len, u32 snappy_len, u32 bit_len.
RECORD_HEADER_BYTES = 12
#: Serialized Huffman table: one length byte per symbol.
TABLE_BYTES = 256

#: Per-record codec-tag stage bits (mixed-plan containers). A record tag
#: is the OR of the stages its payload went through; ``TAG_MASK`` bounds
#: the valid range. ``tag=None`` means "untagged": the record follows the
#: plan-level ``use_delta``/``use_huffman`` flags (legacy behaviour).
STAGE_DELTA = 1
STAGE_SNAPPY = 2
STAGE_HUFFMAN = 4
TAG_MASK = STAGE_DELTA | STAGE_SNAPPY | STAGE_HUFFMAN


@dataclass(frozen=True)
class RecodePipeline:
    """An ordered chain of codecs applied left-to-right on encode."""

    stages: tuple[Codec, ...]
    name: str

    def encode(self, data: bytes) -> bytes:
        for stage in self.stages:
            data = stage.encode(data)
        return data

    def decode(self, data: bytes) -> bytes:
        for stage in reversed(self.stages):
            data = stage.decode(data)
        return data


def make_dsh_pipeline(table: HuffmanTable, use_delta: bool = True) -> RecodePipeline:
    """Construct a Delta→Snappy→Huffman pipeline with a concrete table."""
    from repro.codecs.snappy import SnappyCodec

    stages: list[Codec] = []
    if use_delta:
        stages.append(DeltaCodec())
    stages.append(SnappyCodec())
    stages.append(HuffmanCodec(table))
    return RecodePipeline(tuple(stages), "delta-snappy-huffman" if use_delta else "snappy-huffman")


#: Sentinel names usable in reports.
DSH_PIPELINE = "delta-snappy-huffman"
SNAPPY_ONLY = "snappy"


@dataclass(frozen=True)
class BlockRecord:
    """One compressed stream of one block.

    ``payload`` is the final stage's bytes. ``snappy_len`` is the length of
    the intermediate Snappy stream (what Huffman decoding must reproduce);
    with ``use_huffman=False`` the payload *is* the Snappy stream and
    ``bit_len`` is 0.

    ``payload_crc`` is an end-to-end CRC32 of ``payload`` stamped at encode
    (and recomputed under the container's record CRC at load), so any
    corruption of the stored bytes — a DRAM bit flip, a torn write, an
    injected fault — is *detected* at decode instead of probabilistically
    surfacing as a malformed stream. ``None`` (e.g. hand-built records)
    skips the check.

    ``tag`` is the per-record codec tag of mixed plans: an OR of
    ``STAGE_DELTA``/``STAGE_SNAPPY``/``STAGE_HUFFMAN`` naming exactly the
    stages this record's payload went through. A tagged record is
    self-describing — :func:`decode_record` follows the tag instead of the
    plan-level flags. ``None`` (the default) keeps legacy behaviour: the
    plan flags decide, and serialization is byte-identical to pre-tag
    containers. When snappy is skipped (``tag & STAGE_SNAPPY == 0``) the
    stored ``snappy_len`` equals ``orig_len`` — the "intermediate" stream
    *is* the raw (possibly delta'd) stream.
    """

    orig_len: int
    snappy_len: int
    bit_len: int
    payload: bytes
    payload_crc: int | None = None
    tag: int | None = None

    @property
    def stored_bytes(self) -> int:
        """Bytes this record occupies in DRAM, header included."""
        return RECORD_HEADER_BYTES + len(self.payload)


@dataclass(frozen=True)
class MatrixCompression:
    """A whole-matrix compression plan: per-block records + shared tables."""

    blocked: BlockedCSR
    index_records: tuple[BlockRecord, ...]
    value_records: tuple[BlockRecord, ...]
    index_table: HuffmanTable | None
    value_table: HuffmanTable | None
    use_delta: bool
    use_huffman: bool
    block_bytes: int

    # -- accounting ----------------------------------------------------------

    @property
    def nnz(self) -> int:
        return self.blocked.nnz

    @property
    def nblocks(self) -> int:
        return self.blocked.nblocks

    @property
    def compressed_bytes(self) -> int:
        """Total DRAM bytes of the compressed matrix (records + tables)."""
        total = sum(r.stored_bytes for r in self.index_records)
        total += sum(r.stored_bytes for r in self.value_records)
        if self.index_table is not None:
            total += TABLE_BYTES
        if self.value_table is not None:
            total += TABLE_BYTES
        return total

    @property
    def uncompressed_bytes(self) -> int:
        """Baseline CSR payload: 12 bytes per nnz."""
        return 12 * self.nnz

    @property
    def bytes_per_nnz(self) -> float:
        """The paper's headline compression metric."""
        if self.nnz == 0:
            return 0.0
        return self.compressed_bytes / self.nnz

    @property
    def compression_ratio(self) -> float:
        """uncompressed / compressed (>1 means the recoding won)."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.uncompressed_bytes / self.compressed_bytes

    # -- decompression --------------------------------------------------------

    def _decode_record(
        self, record: BlockRecord, table: HuffmanTable | None, is_index: bool
    ) -> bytes:
        return decode_record(
            record,
            table,
            use_huffman=self.use_huffman,
            apply_delta=is_index and self.use_delta,
        )

    def decompress_block(
        self,
        i: int,
        index_record: BlockRecord | None = None,
        value_record: BlockRecord | None = None,
    ) -> CSRBlock:
        """Reconstruct block *i* (the functional model of the UDP's
        ``recode(DSH_unpack, ...)`` calls).

        ``index_record`` / ``value_record`` override the plan's stored
        records — the SpMV pipeline passes the DMA-streamed copies here so
        a DRAM-side fault hits exactly the bytes that moved.
        """
        ref = self.blocked.blocks[i]
        irec = self.index_records[i] if index_record is None else index_record
        vrec = self.value_records[i] if value_record is None else value_record
        idx_bytes = self._decode_record(irec, self.index_table, True)
        val_bytes = self._decode_record(vrec, self.value_table, False)
        col_idx = np.frombuffer(idx_bytes, dtype="<i4")
        val = np.frombuffer(val_bytes, dtype="<f8")
        return CSRBlock(
            row_start=ref.row_start,
            row_end=ref.row_end,
            row_ptr=ref.row_ptr,
            col_idx=col_idx,
            val=val,
            nnz_start=ref.nnz_start,
            leading_partial=ref.leading_partial,
        )

    def verify(self) -> bool:
        """Round-trip every block against the stored originals."""
        for i, ref in enumerate(self.blocked.blocks):
            got = self.decompress_block(i)
            if not np.array_equal(got.col_idx, ref.col_idx):
                return False
            if not np.array_equal(got.val, ref.val):
                return False
        return True


def decode_record(
    record: BlockRecord,
    table: HuffmanTable | None,
    *,
    use_huffman: bool,
    apply_delta: bool,
) -> bytes:
    """Decode one stream record back to its raw bytes.

    This is the single functional model of the UDP's per-record
    ``recode(DSH_unpack, ...)`` call; both the serial
    :meth:`MatrixCompression.decompress_block` path and the parallel
    :mod:`repro.codecs.engine` workers run exactly this function. The
    Huffman and Snappy stages route through :mod:`repro.kernels`, so the
    active backend (``REPRO_KERNEL_BACKEND`` / ``--kernel-backend``)
    applies here — with byte-identical output either way.

    A record carrying a codec ``tag`` overrides both keyword flags: the
    tag names exactly the stages to undo (mixed-plan containers), including
    skipping Snappy entirely for stored-raw payloads. ``tag=None`` keeps
    the legacy plan-level behaviour bit-for-bit.

    Raises:
        CorruptPayloadError: the payload no longer matches its end-to-end
            CRC (the bytes changed after encode).
        CodecError: any other malformed stream (truncation, bad codes, or
            a decoded length that disagrees with ``record.orig_len``).
    """
    if record.tag is not None:
        use_huffman = bool(record.tag & STAGE_HUFFMAN)
        apply_delta = bool(record.tag & STAGE_DELTA)
        use_snappy = bool(record.tag & STAGE_SNAPPY)
    else:
        use_snappy = True
    start = time.perf_counter()
    with obs.trace("codecs.decode_record", bytes_in=len(record.payload)):
        data = record.payload
        if record.payload_crc is not None and zlib.crc32(data) != record.payload_crc:
            raise CorruptPayloadError(
                f"record payload CRC mismatch (stored {record.payload_crc:#010x}, "
                f"payload is {len(data)} bytes)"
            )
        if use_huffman:
            if table is None:
                raise CodecError("huffman record without table")
            data = table.decode_bits(data, record.snappy_len)
        if use_snappy:
            # The record header bounds the output: a corrupt Snappy preamble
            # can never allocate beyond what the header promised.
            data = snappy_decompress(data, max_output=record.orig_len)
        if len(data) != record.orig_len:
            raise CorruptStreamError(
                f"decompressed {len(data)} bytes, expected {record.orig_len}"
            )
        if apply_delta:
            arr = delta_decode(np.frombuffer(data, dtype="<i4"))
            data = arr.astype("<i4").tobytes()
    reg = obs.registry()
    reg.counter("codecs.decode.records").inc()
    reg.counter("codecs.decode.bytes_in").inc(len(record.payload))
    reg.counter("codecs.decode.bytes_out").inc(len(data))
    if record.tag is not None:
        reg.counter("codec.mix.decode_records").inc()
        if not use_snappy:
            reg.counter("codec.mix.snappy_skipped").inc()
    if use_huffman:
        reg.counter("codecs.huffman.decode_records").inc()
    if apply_delta:
        reg.counter("codecs.delta.decode_records").inc()
    reg.histogram("codecs.decode.record_seconds").observe(time.perf_counter() - start)
    return data


def block_streams(
    blocked: BlockedCSR, use_delta: bool
) -> tuple[list[bytes], list[bytes]]:
    """Raw per-block codec inputs: (index streams, value streams).

    Delta is applied here (cheap numpy) so the expensive Snappy/Huffman
    stages see exactly the bytes they compress.
    """
    delta_codec = DeltaCodec()
    idx_streams: list[bytes] = []
    val_streams: list[bytes] = []
    for block in blocked.blocks:
        raw_idx = block.index_bytes()
        if use_delta:
            raw_idx = delta_codec.encode(raw_idx)
        idx_streams.append(raw_idx)
        val_streams.append(block.value_bytes())
    return idx_streams, val_streams


def snappy_encode_streams(streams: list[bytes]) -> list[bytes]:
    """Snappy-compress a batch of raw streams, with counters.

    The single Snappy entry point for both the serial
    :func:`compress_matrix` path and the parallel engine's chunk workers,
    so process-pool runs report the same ``codecs.snappy.*`` totals as
    serial runs.
    """
    start = time.perf_counter()
    with obs.trace("codecs.snappy.compress", streams=len(streams)):
        snapped = [snappy_compress(s) for s in streams]
    reg = obs.registry()
    reg.counter("codecs.snappy.compress_streams").inc(len(streams))
    reg.counter("codecs.snappy.bytes_in").inc(sum(len(s) for s in streams))
    reg.counter("codecs.snappy.bytes_out").inc(sum(len(s) for s in snapped))
    reg.counter("codecs.snappy.compress_seconds").inc(time.perf_counter() - start)
    return snapped


def sampled_tables(
    idx_snapped: list[bytes],
    val_snapped: list[bytes],
    nblocks: int,
    sample_frac: float,
    seed: int,
    use_huffman: bool,
) -> tuple[HuffmanTable | None, HuffmanTable | None]:
    """Per-stream Huffman tables from a deterministic block sample."""
    if not (use_huffman and nblocks):
        return None, None
    nsample = max(1, int(round(sample_frac * nblocks)))
    rng = seeded_rng(derive_seed(seed, "huffman-sample"))
    picks = rng.choice(nblocks, size=min(nsample, nblocks), replace=False)
    # Tables are built over what Huffman actually sees: Snappy output.
    with obs.trace("codecs.huffman.build_tables", sampled=len(picks)):
        index_table = HuffmanTable.from_samples(idx_snapped[i] for i in picks)
        value_table = HuffmanTable.from_samples(val_snapped[i] for i in picks)
    obs.registry().counter("codecs.huffman.tables_built").inc(2)
    return index_table, value_table


def _finish_record(
    raw_len: int, snapped: bytes, table: HuffmanTable | None, use_huffman: bool
) -> BlockRecord:
    start = time.perf_counter()
    if use_huffman:
        assert table is not None
        with obs.trace("codecs.huffman.encode", bytes_in=len(snapped)):
            payload, bit_len = table.encode_bits(snapped)
        record = BlockRecord(
            orig_len=raw_len,
            snappy_len=len(snapped),
            bit_len=bit_len,
            payload=payload,
            payload_crc=zlib.crc32(payload),
        )
        obs.registry().counter("codecs.huffman.encode_records").inc()
    else:
        record = BlockRecord(
            orig_len=raw_len, snappy_len=len(snapped), bit_len=0, payload=snapped,
            payload_crc=zlib.crc32(snapped),
        )
    reg = obs.registry()
    reg.counter("codecs.encode.records").inc()
    reg.counter("codecs.encode.bytes_raw").inc(raw_len)
    reg.counter("codecs.encode.bytes_snappy").inc(len(snapped))
    reg.counter("codecs.encode.bytes_payload").inc(len(record.payload))
    reg.histogram("codecs.encode.record_seconds").observe(time.perf_counter() - start)
    return record


def _record_plan_metrics(plan: MatrixCompression) -> None:
    """Plan-level accounting shared by the serial and engine encoders."""
    reg = obs.registry()
    reg.counter("codecs.pipeline.compress_calls").inc()
    reg.counter("codecs.pipeline.blocks").inc(plan.nblocks)
    reg.counter("codecs.pipeline.nnz").inc(plan.nnz)
    reg.counter("codecs.pipeline.compressed_bytes").inc(plan.compressed_bytes)
    reg.counter("codecs.pipeline.uncompressed_bytes").inc(plan.uncompressed_bytes)
    reg.gauge("codecs.pipeline.bytes_per_nnz").set(plan.bytes_per_nnz)


def compress_matrix(
    matrix: CSRMatrix,
    block_bytes: int = UDP_BLOCK_BYTES,
    use_delta: bool = True,
    use_huffman: bool = True,
    sample_frac: float = 0.4,
    seed: int = 0,
    workers: int = 0,
) -> MatrixCompression:
    """Compress a CSR matrix into a DSH (or Snappy-only) block plan.

    Args:
        matrix: the input matrix.
        block_bytes: payload budget per block (8 KB for the UDP, 32 KB for
            the CPU Snappy baseline).
        use_delta: delta-transform the index stream before Snappy.
        use_huffman: add the Huffman stage, with per-stream sampled tables.
        sample_frac: fraction of blocks sampled to build Huffman tables
            (paper: "up to 40%").
        seed: RNG seed for the block sample.
        workers: 0 encodes serially in-process; N > 0 fans block work over
            an N-worker :class:`repro.codecs.engine.RecodeEngine` pool.
            Output is byte-identical either way.

    Returns:
        A :class:`MatrixCompression` plan.
    """
    if workers:
        from repro.codecs.engine import RecodeEngine

        return RecodeEngine(workers=workers).encode_blocked(
            matrix,
            block_bytes=block_bytes,
            use_delta=use_delta,
            use_huffman=use_huffman,
            sample_frac=sample_frac,
            seed=seed,
        )
    if not 0.0 < sample_frac <= 1.0:
        raise ValueError(f"sample_frac must be in (0, 1], got {sample_frac}")
    with obs.trace("codecs.compress_matrix", nnz=matrix.nnz):
        blocked = partition_csr(matrix, block_bytes=block_bytes)
        idx_streams, val_streams = block_streams(blocked, use_delta)

        idx_snapped = snappy_encode_streams(idx_streams)
        val_snapped = snappy_encode_streams(val_streams)

        index_table, value_table = sampled_tables(
            idx_snapped, val_snapped, blocked.nblocks, sample_frac, seed, use_huffman
        )

        index_records = tuple(
            _finish_record(len(raw), snapped, index_table, use_huffman)
            for raw, snapped in zip(idx_streams, idx_snapped)
        )
        value_records = tuple(
            _finish_record(len(raw), snapped, value_table, use_huffman)
            for raw, snapped in zip(val_streams, val_snapped)
        )
        plan = MatrixCompression(
            blocked=blocked,
            index_records=index_records,
            value_records=value_records,
            index_table=index_table,
            value_table=value_table,
            use_delta=use_delta,
            use_huffman=use_huffman,
            block_bytes=block_bytes,
        )
    _record_plan_metrics(plan)
    return plan
