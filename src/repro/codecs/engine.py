"""Parallel block recode engine with a decoded-block cache.

The paper's throughput story (Section V, Fig. 12) is 64 UDP lanes each
decompressing an 8 KB block concurrently, with the steady-state SpMV loop
re-streaming the *same* compressed blocks every iteration. This module is
the software analogue of that structure:

* :class:`RecodeEngine` fans per-block encode/decode work across a
  ``concurrent.futures`` pool — a process pool by default (the from-scratch
  Snappy/Huffman codecs are pure Python and therefore GIL-bound), with
  blocks chunked so pickling is amortized. ``workers=0`` is the serial
  fallback and runs the exact same code in-process.
* :class:`DecodedBlockCache` is a bounded LRU over decoded
  :class:`~repro.sparse.blocked.CSRBlock` payloads keyed by
  ``(matrix_id, block_id, plan_hash)``, so iterative workloads (PageRank,
  heat solvers) skip re-decompression exactly like the paper's steady-state
  UDP loop skips nothing *but* the DRAM stream.

Both paths are byte-identical to the serial
:func:`repro.codecs.pipeline.compress_matrix` /
:meth:`~repro.codecs.pipeline.MatrixCompression.decompress_block` code:
workers run the same pure functions on the same inputs in the same order.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
import weakref
from collections import OrderedDict, deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

import numpy as np

from repro import faults, kernels, obs
from repro.codecs.errors import BlockDecodeError, CodecError
from repro.codecs.huffman import HuffmanTable
from repro.codecs.pipeline import (
    BlockRecord,
    MatrixCompression,
    _finish_record,
    _record_plan_metrics,
    block_streams,
    decode_record,
    sampled_tables,
    snappy_encode_streams,
)
from repro.sparse.blocked import CSRBlock, UDP_BLOCK_BYTES, partition_csr
from repro.sparse.csr import CSRMatrix
from repro.util.rng import derive_seed, seeded_rng

#: Blocks per pool task; one task then carries ~256 KB of 8 KB-block work,
#: which keeps pickling overhead well under the codec cost.
DEFAULT_CHUNK_BLOCKS = 32

#: Default decoded-block cache budget (raw CSR payload bytes).
DEFAULT_CACHE_BYTES = 256 << 20

#: Default bound on chunk tasks in flight for :meth:`RecodeEngine.decode_blocks_async`.
DEFAULT_PREFETCH_CHUNKS = 4


# ---------------------------------------------------------------------------
# Plan fingerprinting (the ``plan_hash`` component of cache keys)
# ---------------------------------------------------------------------------

_fingerprints: dict[int, str] = {}


def plan_fingerprint(plan: MatrixCompression) -> str:
    """Stable content hash of a compression plan.

    Covers the scheme flags, block budget, and every record's header and
    payload, so two plans share a fingerprint iff their compressed form is
    byte-identical. Memoized per plan object (plans are frozen).
    """
    key = id(plan)
    cached = _fingerprints.get(key)
    if cached is not None:
        return cached
    h = hashlib.blake2b(digest_size=16)
    h.update(
        b"%d:%d:%d:%d:" % (plan.use_delta, plan.use_huffman, plan.block_bytes, plan.nblocks)
    )
    for rec in plan.index_records:
        h.update(b"%d:%d:%d:" % (rec.orig_len, rec.snappy_len, rec.bit_len))
        if rec.tag is not None:
            h.update(b"t%d:" % rec.tag)
        h.update(rec.payload)
    for rec in plan.value_records:
        h.update(b"%d:%d:%d:" % (rec.orig_len, rec.snappy_len, rec.bit_len))
        if rec.tag is not None:
            h.update(b"t%d:" % rec.tag)
        h.update(rec.payload)
    digest = h.hexdigest()
    _fingerprints[key] = digest
    weakref.finalize(plan, _fingerprints.pop, key, None)
    return digest


# ---------------------------------------------------------------------------
# Decoded-block LRU cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Counters for one :class:`DecodedBlockCache`.

    Plain ints on purpose: cache probes run once per block, so they stay
    lock-free-cheap here and are published to the metrics registry by a
    snapshot-time collector (``codecs.cache.*`` gauges) instead of paying
    a registry op per probe.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    current_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


_cache_ids = itertools.count()


def _register_cache_collector(reg: obs.MetricsRegistry, cache: "DecodedBlockCache") -> None:
    """Publish a cache's counters into ``reg`` at every snapshot.

    Holds only a weakref: when the cache is collected the callback
    deregisters itself (by returning False) and the last published values
    remain in the registry as the cache's final state.
    """
    ref = weakref.ref(cache)
    label = cache.cache_id

    def collect(registry: obs.MetricsRegistry):
        c = ref()
        if c is None:
            return False
        st = c.stats
        registry.gauge("codecs.cache.hits", cache=label).set(st.hits)
        registry.gauge("codecs.cache.misses", cache=label).set(st.misses)
        registry.gauge("codecs.cache.evictions", cache=label).set(st.evictions)
        registry.gauge("codecs.cache.bytes", cache=label).set(st.current_bytes)
        registry.gauge("codecs.cache.entries", cache=label).set(len(c))
        return None

    reg.register_collector(collect)


class DecodedBlockCache:
    """Bounded LRU over decoded blocks, keyed ``(matrix_id, block_id,
    plan_hash)``.

    The budget counts raw CSR payload bytes (12 B/nnz), i.e. what the
    blocks would occupy decompressed in UDP scratchpads. Thread-safe: the
    engine's decode pool may probe it concurrently.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES, max_blocks: int | None = None):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if max_blocks is not None and max_blocks <= 0:
            raise ValueError(f"max_blocks must be positive, got {max_blocks}")
        self.max_bytes = max_bytes
        self.max_blocks = max_blocks
        self.stats = CacheStats()
        self.cache_id = f"c{next(_cache_ids)}"
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[CSRBlock, int]] = OrderedDict()
        _register_cache_collector(obs.registry(), self)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> CSRBlock | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0]

    def put(self, key: tuple, block: CSRBlock) -> None:
        nbytes = 12 * block.nnz
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.stats.current_bytes -= old[1]
            self._entries[key] = (block, nbytes)
            self.stats.current_bytes += nbytes
            while self._entries and (
                self.stats.current_bytes > self.max_bytes
                or (self.max_blocks is not None and len(self._entries) > self.max_blocks)
            ):
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self.stats.current_bytes -= evicted_bytes
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats.current_bytes = 0


# ---------------------------------------------------------------------------
# Pool worker functions (module-level so they pickle)
# ---------------------------------------------------------------------------


def _snappy_chunk(streams: list[bytes]) -> list[bytes]:
    return snappy_encode_streams(streams)


def _finish_chunk(
    args: tuple[list[int], list[bytes], HuffmanTable | None, bool]
) -> list[BlockRecord]:
    raw_lens, snapped, table, use_huffman = args
    return [
        _finish_record(raw_len, snap, table, use_huffman)
        for raw_len, snap in zip(raw_lens, snapped)
    ]


def _decode_chunk(
    args: tuple[list[BlockRecord], HuffmanTable | None, bool, bool]
) -> list[bytes]:
    records, table, use_huffman, apply_delta = args
    return [
        decode_record(rec, table, use_huffman=use_huffman, apply_delta=apply_delta)
        for rec in records
    ]


def _decode_chunk_faulted(
    args: tuple["faults.FaultPlan", list[int], bool, tuple]
) -> list[bytes]:
    """Worker shim for chaos runs: fire any armed worker-site faults for
    the chunk's blocks (latency, injected exception, worker kill), then
    decode. Only ever dispatched when a :class:`~repro.faults.FaultPlan`
    with worker faults is active; the normal path pays nothing for it."""
    fault_plan, block_ids, allow_kill, inner = args
    for bid in block_ids:
        fault_plan.fire_worker_faults(bid, allow_kill)
    return _decode_chunk(inner)


def _decode_pair_chunk(
    args: tuple[list[BlockRecord], list[BlockRecord], HuffmanTable | None,
                HuffmanTable | None, bool, bool]
) -> list[tuple[bytes, bytes]]:
    """Decode a chunk of blocks' index+value record pairs in one task.

    The async pipeline wants each chunk to complete as a *unit* (a block
    is only useful once both its streams are back), so unlike the batch
    path's separate index/value task lists, one task here carries both
    streams for its blocks. Byte-identical: same ``decode_record`` on the
    same inputs.
    """
    idx_records, val_records, index_table, value_table, use_huffman, use_delta = args
    out = []
    for irec, vrec in zip(idx_records, val_records):
        idx = decode_record(irec, index_table, use_huffman=use_huffman,
                            apply_delta=use_delta)
        val = decode_record(vrec, value_table, use_huffman=use_huffman,
                            apply_delta=False)
        out.append((idx, val))
    return out


def _decode_pair_chunk_faulted(
    args: tuple["faults.FaultPlan", list[int], bool, tuple]
) -> list[tuple[bytes, bytes]]:
    """Chaos shim for :func:`_decode_pair_chunk`: fire armed worker-site
    faults per block per stream (twice per block, mirroring the batch
    path's separate index/value chunks), then decode."""
    fault_plan, block_ids, allow_kill, inner = args
    idx_records, val_records, index_table, value_table, use_huffman, use_delta = inner
    out = []
    for bid, irec, vrec in zip(block_ids, idx_records, val_records):
        fault_plan.fire_worker_faults(bid, allow_kill)
        idx = decode_record(irec, index_table, use_huffman=use_huffman,
                            apply_delta=use_delta)
        fault_plan.fire_worker_faults(bid, allow_kill)
        val = decode_record(vrec, value_table, use_huffman=use_huffman,
                            apply_delta=False)
        out.append((idx, val))
    return out


def _assemble_block(plan: MatrixCompression, i: int, idx_bytes: bytes,
                    val_bytes: bytes) -> CSRBlock:
    ref = plan.blocked.blocks[i]
    return CSRBlock(
        row_start=ref.row_start,
        row_end=ref.row_end,
        row_ptr=ref.row_ptr,
        col_idx=np.frombuffer(idx_bytes, dtype="<i4"),
        val=np.frombuffer(val_bytes, dtype="<f8"),
        nnz_start=ref.nnz_start,
        leading_partial=ref.leading_partial,
    )


@dataclass(frozen=True)
class BlockFailure:
    """One block the engine could not decode, after retries.

    ``error`` is always a :class:`~repro.codecs.errors.BlockDecodeError`
    carrying the block id; its ``__cause__`` is the underlying codec
    failure from the final attempt.
    """

    block_id: int
    attempts: int
    error: BlockDecodeError


def _pool_warmup(_i: int) -> None:
    return None


def _shutdown_pool(pool) -> None:
    pool.shutdown(wait=False, cancel_futures=True)


def _run_isolated(args: tuple) -> tuple:
    """Pool-worker shim: run one chunk under a fresh per-worker registry
    (and tracer, when the parent is tracing), pinned to the parent's
    kernel backend — a CLI/set_backend selection is process-local state a
    spawned worker would not otherwise see — and ship the captured
    telemetry back with the result for merge-on-join."""
    fn, task, tracing, kernel_backend = args
    reg = obs.MetricsRegistry()
    worker_tracer = obs.Tracer(enabled=tracing)
    with obs.scoped_registry(reg), obs.scoped_tracer(worker_tracer):
        with kernels.use_backend(kernel_backend):
            result = fn(task)
    return result, reg.snapshot(), worker_tracer.events()


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


_engine_ids = itertools.count()

#: Registry counter suffixes backing one :class:`EngineStats` view.
_ENGINE_COUNTERS = (
    "blocks_encoded",
    "blocks_decoded",
    "cache_hits",
    "cache_misses",
    "bytes_decoded",
    "encode_seconds",
    "decode_seconds",
    "pool_startup_seconds",
)


class EngineStats:
    """Cumulative per-engine tallies mirrored into ``codecs.engine.*``.

    The former bespoke dataclass fields survive as read-only properties,
    so existing callers (``stats.blocks_decoded``, ``as_dict()``) keep
    working. The authoritative numbers are plain in-object totals that
    only :meth:`reset` can zero — an engine outliving a
    ``obs.scoped_registry()`` block (the serve and ablation per-request
    pattern) keeps its lifetime tallies, which is what session-scoped
    steady-state hit rates are computed from. Each :meth:`add` also
    increments the counter of whatever registry is active *at add time*,
    so scoped snapshots see exactly the work done inside their scope.

    ``decode_seconds`` covers the map phase plus cache probing only; pool
    spin-up (process fork/exec) is accounted separately in
    ``pool_startup_seconds`` so cold-start MB/s is not understated.
    """

    def __init__(self, workers: int = 0, engine_label: str = "",
                 registry: obs.MetricsRegistry | None = None):
        reg = registry if registry is not None else obs.registry()
        self.workers = workers
        self.engine_label = engine_label
        self._labels = {"engine": engine_label} if engine_label else {}
        self._lock = threading.Lock()
        self._totals = dict.fromkeys(_ENGINE_COUNTERS, 0.0)
        # Pre-create the counters so every name is present (value 0) in
        # the construction-time registry even before any work lands —
        # conformance suites compare metric-name sets across configs.
        for name in _ENGINE_COUNTERS:
            reg.counter(f"codecs.engine.{name}", **self._labels)
        reg.gauge("codecs.engine.workers", **self._labels).set(workers)

    def add(self, name: str, amount: float) -> None:
        if not amount:
            return  # skip the lock on no-op adds (all-hit decode passes)
        with self._lock:
            self._totals[name] += amount
        obs.registry().counter(f"codecs.engine.{name}", **self._labels).inc(amount)

    @property
    def blocks_encoded(self) -> int:
        return int(self._totals["blocks_encoded"])

    @property
    def blocks_decoded(self) -> int:
        return int(self._totals["blocks_decoded"])

    @property
    def cache_hits(self) -> int:
        return int(self._totals["cache_hits"])

    @property
    def cache_misses(self) -> int:
        return int(self._totals["cache_misses"])

    @property
    def bytes_decoded(self) -> int:
        return int(self._totals["bytes_decoded"])

    @property
    def encode_seconds(self) -> float:
        return self._totals["encode_seconds"]

    @property
    def decode_seconds(self) -> float:
        return self._totals["decode_seconds"]

    @property
    def pool_startup_seconds(self) -> float:
        return self._totals["pool_startup_seconds"]

    @property
    def decode_mb_per_s(self) -> float:
        """Raw (decoded) MB/s over the engine's decode calls, cache
        included — the software counterpart of Fig. 12's GB/s axis.
        Excludes one-time pool spin-up (see ``pool_startup_seconds``)."""
        if self.decode_seconds <= 0:
            return 0.0
        return self.bytes_decoded / self.decode_seconds / 1e6

    def reset(self) -> None:
        with self._lock:
            self._totals = dict.fromkeys(_ENGINE_COUNTERS, 0.0)
        reg = obs.registry()
        for name in _ENGINE_COUNTERS:
            reg.counter(f"codecs.engine.{name}", **self._labels).reset()

    def as_dict(self) -> dict[str, float]:
        return {
            "workers": self.workers,
            "blocks_encoded": self.blocks_encoded,
            "blocks_decoded": self.blocks_decoded,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "bytes_decoded": self.bytes_decoded,
            "encode_seconds": self.encode_seconds,
            "decode_seconds": self.decode_seconds,
            "pool_startup_seconds": self.pool_startup_seconds,
            "decode_mb_per_s": self.decode_mb_per_s,
        }


@dataclass
class RecodeEngine:
    """Block-parallel encode/decode with an optional decoded-block cache.

    Attributes:
        workers: pool width. ``0`` = serial fallback (no pool, no pickling;
            byte-identical results).
        executor: ``"process"`` (default — the codecs are GIL-bound pure
            Python) or ``"thread"`` (useful when a C-extension codec is
            swapped in, or to avoid fork cost on tiny plans).
        chunk_blocks: blocks per pool task.
        cache: a :class:`DecodedBlockCache`, or ``None`` to decode cold
            every time.
        max_retries: extra serial decode attempts per failing block before
            it is quarantined (the first attempt is not a retry).
        retry_base_s: base delay of the exponential backoff between
            retries; attempt ``k`` sleeps ``retry_base_s * 2**(k-1)``
            scaled by a deterministic jitter in ``[0.5, 1.5)``. ``0``
            disables sleeping (tests).
    """

    workers: int = 0
    executor: str = "process"
    chunk_blocks: int = DEFAULT_CHUNK_BLOCKS
    cache: DecodedBlockCache | None = None
    max_retries: int = 2
    retry_base_s: float = 0.02
    stats: EngineStats = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.executor not in ("process", "thread"):
            raise ValueError(f"executor must be 'process' or 'thread', got {self.executor!r}")
        if self.chunk_blocks < 1:
            raise ValueError(f"chunk_blocks must be >= 1, got {self.chunk_blocks}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_base_s < 0:
            raise ValueError(f"retry_base_s must be >= 0, got {self.retry_base_s}")
        self.stats = EngineStats(
            workers=self.workers, engine_label=f"e{next(_engine_ids)}"
        )
        self._pool = None
        #: Blocks that exhausted their retries: ``(matrix_id, plan
        #: fingerprint, block_id)``. Memoized so steady-state loops skip
        #: known-bad blocks instead of re-failing them every iteration.
        self.quarantined: set[tuple[str, str, int]] = set()

    # -- pool plumbing -------------------------------------------------------

    def _ensure_pool(self):
        """Create (once) and reuse the executor; spin-up cost is timed into
        ``pool_startup_seconds``, not the encode/decode timers."""
        if self._pool is None:
            start = time.perf_counter()
            pool_cls = ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
            pool = pool_cls(max_workers=self.workers)
            if self.executor == "process":
                # Force worker spawn now so the map timers below measure
                # codec work, not fork/exec.
                list(pool.map(_pool_warmup, range(self.workers)))
            self._pool = pool
            weakref.finalize(self, _shutdown_pool, pool)
            self.stats.add("pool_startup_seconds", time.perf_counter() - start)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (engines are also cleaned up on GC)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _handle_pool_crash(self, fault_plan, missing: list[int]) -> None:
        """A worker died mid-chunk (BrokenExecutor). Tear the broken pool
        down so the next parallel call rebuilds it instead of hanging on a
        dead executor; the current call re-dispatches serially."""
        obs.registry().counter("faults.pool_rebuilds").inc()
        if fault_plan is not None and set(fault_plan.worker_kill_blocks) & set(missing):
            obs.registry().counter("faults.injected.worker_kills").inc()
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def __enter__(self) -> "RecodeEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _run_chunked(self, fn, tasks: list) -> list:
        """Apply ``fn`` to every task, in order, flattening list results.

        Process-pool tasks run under per-worker metric registries (and
        tracers, when tracing) whose contents merge back into the
        parent's on join, so parallel runs report the same counter totals
        as serial ones.
        """
        if self.workers == 0 or len(tasks) <= 1:
            chunks = [fn(t) for t in tasks]
        elif self.executor == "thread":
            # Threads share the process-wide registry; metrics are
            # thread-safe, so record directly.
            chunks = list(self._ensure_pool().map(fn, tasks))
        else:
            pool = self._ensure_pool()
            tracing = obs.tracing_enabled()
            reg = obs.registry()
            parent_tracer = obs.tracer()
            backend = kernels.backend()
            chunks = []
            for result, snapshot, events in pool.map(
                _run_isolated, [(fn, task, tracing, backend) for task in tasks]
            ):
                chunks.append(result)
                reg.merge_snapshot(snapshot)
                if events:
                    parent_tracer.add_events(events)
        return [item for chunk in chunks for item in chunk]

    @staticmethod
    def _chunks(items: list, size: int) -> list[list]:
        return [items[i : i + size] for i in range(0, len(items), size)]

    # -- encode --------------------------------------------------------------

    def encode_blocked(
        self,
        matrix: CSRMatrix,
        block_bytes: int = UDP_BLOCK_BYTES,
        use_delta: bool = True,
        use_huffman: bool = True,
        sample_frac: float = 0.4,
        seed: int = 0,
    ) -> MatrixCompression:
        """Compress ``matrix`` into a block plan, block-parallel.

        Byte-identical to :func:`repro.codecs.pipeline.compress_matrix`
        with the same arguments: the workers run the same deterministic
        stage functions, and chunk results are reassembled in block order.
        """
        if not 0.0 < sample_frac <= 1.0:
            raise ValueError(f"sample_frac must be in (0, 1], got {sample_frac}")
        try:
            return self._encode_blocked(
                matrix, block_bytes, use_delta, use_huffman, sample_frac, seed
            )
        except BaseException:
            # Never leak the worker pool when an exception escapes outside
            # the context-manager path (finalizers only run at GC time).
            self.close()
            raise

    def _encode_blocked(
        self,
        matrix: CSRMatrix,
        block_bytes: int,
        use_delta: bool,
        use_huffman: bool,
        sample_frac: float,
        seed: int,
    ) -> MatrixCompression:
        if self.workers:
            # Spin the pool up (timed separately) before the encode timer.
            self._ensure_pool()
        start = time.perf_counter()
        with obs.trace("codecs.engine.encode", workers=self.workers, nnz=matrix.nnz):
            blocked = partition_csr(matrix, block_bytes=block_bytes)
            idx_streams, val_streams = block_streams(blocked, use_delta)

            # Stage 1 — Snappy over both streams, one flat task list.
            snapped = self._run_chunked(
                _snappy_chunk, self._chunks(idx_streams + val_streams, self.chunk_blocks)
            )
            nb = blocked.nblocks
            idx_snapped, val_snapped = snapped[:nb], snapped[nb:]

            # Stage 2 — tables need a global sample, so they build in-process.
            index_table, value_table = sampled_tables(
                idx_snapped, val_snapped, nb, sample_frac, seed, use_huffman
            )

            # Stage 3 — Huffman bit-packing (the dominant encode cost).
            idx_tasks = [
                ([len(s) for s in idx_streams[i : i + self.chunk_blocks]],
                 idx_snapped[i : i + self.chunk_blocks], index_table, use_huffman)
                for i in range(0, nb, self.chunk_blocks)
            ]
            val_tasks = [
                ([len(s) for s in val_streams[i : i + self.chunk_blocks]],
                 val_snapped[i : i + self.chunk_blocks], value_table, use_huffman)
                for i in range(0, nb, self.chunk_blocks)
            ]
            finished = self._run_chunked(_finish_chunk, idx_tasks + val_tasks)
            index_records, value_records = finished[:nb], finished[nb:]

            plan = MatrixCompression(
                blocked=blocked,
                index_records=tuple(index_records),
                value_records=tuple(value_records),
                index_table=index_table,
                value_table=value_table,
                use_delta=use_delta,
                use_huffman=use_huffman,
                block_bytes=block_bytes,
            )
        self.stats.add("blocks_encoded", nb)
        self.stats.add("encode_seconds", time.perf_counter() - start)
        _record_plan_metrics(plan)
        return plan

    # -- decode --------------------------------------------------------------

    def decode_blocked(
        self,
        plan: MatrixCompression,
        block_ids: list[int] | None = None,
        matrix_id: str = "",
    ) -> list[CSRBlock]:
        """Decode the given blocks (all, by default), cache-aware.

        Returns blocks in the requested order, identical to
        ``[plan.decompress_block(i) for i in block_ids]``. Strict: the
        first block that fails (after retries) raises its
        :class:`~repro.codecs.errors.BlockDecodeError`.
        """
        ids = list(range(plan.nblocks)) if block_ids is None else list(block_ids)
        blocks, failures = self.decode_resilient(plan, ids, matrix_id=matrix_id)
        if failures:
            raise failures[0].error
        return [blocks[i] for i in ids]

    def decode_resilient(
        self,
        plan: MatrixCompression,
        block_ids: list[int] | None = None,
        matrix_id: str = "",
    ) -> tuple[dict[int, CSRBlock], tuple[BlockFailure, ...]]:
        """Decode blocks with per-block error isolation.

        Returns ``(blocks, failures)``: every block that decoded (keyed by
        id) plus a :class:`BlockFailure` per block that could not, after
        ``max_retries`` serial retries with exponential backoff. Failed
        blocks are quarantined (skipped on subsequent calls for the same
        plan) and surface in the ``faults.*`` counters; the SpMV
        ``degrade`` policy substitutes them from the raw CSR partition.

        A pool worker dying mid-chunk (BrokenProcessPool) tears the pool
        down, re-dispatches the whole batch serially, and lets the next
        parallel call rebuild a fresh executor.
        """
        ids = list(range(plan.nblocks)) if block_ids is None else list(block_ids)
        for i in ids:
            if not 0 <= i < plan.nblocks:
                raise ValueError(f"block id {i} out of range (nblocks={plan.nblocks})")
        try:
            return self._decode_resilient(plan, ids, matrix_id)
        except BaseException:
            # Never leak the worker pool when an exception escapes outside
            # the context-manager path (finalizers only run at GC time).
            self.close()
            raise

    def _decode_resilient(
        self, plan: MatrixCompression, ids: list[int], matrix_id: str
    ) -> tuple[dict[int, CSRBlock], tuple[BlockFailure, ...]]:
        busy_seconds = 0.0
        start = time.perf_counter()
        out: dict[int, CSRBlock] = {}
        missing: list[int] = []
        hits = misses = 0
        fingerprint = plan_fingerprint(plan) if self.cache is not None else ""
        for i in ids:
            if self.cache is not None:
                hit = self.cache.get((matrix_id, i, fingerprint))
                if hit is not None:
                    out[i] = hit
                    hits += 1
                    continue
                misses += 1
            if i not in out:
                missing.append(i)
        missing = sorted(set(missing))

        failures: list[BlockFailure] = []
        if self.quarantined and missing:
            # Steady-state loops skip known-bad blocks instead of
            # re-failing them (and re-crashing workers) every iteration.
            fq = plan_fingerprint(plan)
            alive: list[int] = []
            for i in missing:
                if (matrix_id, fq, i) in self.quarantined:
                    obs.registry().counter("faults.quarantine_hits").inc()
                    failures.append(BlockFailure(
                        i, 0,
                        BlockDecodeError(f"block {i} is quarantined", block_id=i),
                    ))
                else:
                    alive.append(i)
            missing = alive

        fault_plan = faults.active()
        if fault_plan is not None and missing:
            # Corrupt the engine's *view* of the records once, up front;
            # retries then deterministically re-fail, which is the point.
            idx_recs = {
                i: fault_plan.mutate_record(plan.index_records[i], i, "index")
                for i in missing
            }
            val_recs = {
                i: fault_plan.mutate_record(plan.value_records[i], i, "value")
                for i in missing
            }
        else:
            idx_recs, val_recs = plan.index_records, plan.value_records

        if missing:
            if self.workers:
                # Pause the decode timer around pool spin-up: fork/exec is
                # a one-time cost, accounted in pool_startup_seconds.
                busy_seconds += time.perf_counter() - start
                self._ensure_pool()
                start = time.perf_counter()
            with obs.trace("codecs.engine.decode", blocks=len(missing)):
                idx_tasks = [
                    ([idx_recs[i] for i in missing[j : j + self.chunk_blocks]],
                     plan.index_table, plan.use_huffman, plan.use_delta)
                    for j in range(0, len(missing), self.chunk_blocks)
                ]
                val_tasks = [
                    ([val_recs[i] for i in missing[j : j + self.chunk_blocks]],
                     plan.value_table, plan.use_huffman, False)
                    for j in range(0, len(missing), self.chunk_blocks)
                ]
                fn = _decode_chunk
                tasks = idx_tasks + val_tasks
                if fault_plan is not None and fault_plan.wants_worker_faults:
                    # Kills are only real in a process pool; everywhere
                    # else they downgrade to an in-band InjectedFault so
                    # the main process survives.
                    allow_kill = self.workers > 0 and self.executor == "process"
                    block_lists = [
                        missing[j : j + self.chunk_blocks]
                        for j in range(0, len(missing), self.chunk_blocks)
                    ]
                    fn = _decode_chunk_faulted
                    tasks = [
                        (fault_plan, blist, allow_kill, inner)
                        for blist, inner in zip(block_lists * 2, tasks)
                    ]
                try:
                    decoded = self._run_chunked(fn, tasks)
                except BrokenExecutor:
                    self._handle_pool_crash(fault_plan, missing)
                    failures.extend(self._decode_isolated(
                        plan, missing, idx_recs, val_recs, fault_plan,
                        matrix_id, fingerprint, out,
                    ))
                except CodecError:
                    failures.extend(self._decode_isolated(
                        plan, missing, idx_recs, val_recs, fault_plan,
                        matrix_id, fingerprint, out,
                    ))
                else:
                    nm = len(missing)
                    for i, idx_bytes, val_bytes in zip(missing, decoded[:nm], decoded[nm:]):
                        block = _assemble_block(plan, i, idx_bytes, val_bytes)
                        out[i] = block
                        if self.cache is not None:
                            self.cache.put((matrix_id, i, fingerprint), block)

        if hits:
            self.stats.add("cache_hits", hits)
        if misses:
            self.stats.add("cache_misses", misses)
        self.stats.add("blocks_decoded", len(missing))
        self.stats.add("bytes_decoded", sum(12 * out[i].nnz for i in ids if i in out))
        self.stats.add("decode_seconds", busy_seconds + time.perf_counter() - start)
        return out, tuple(failures)

    def _decode_isolated(
        self,
        plan: MatrixCompression,
        missing: list[int],
        idx_recs,
        val_recs,
        fault_plan,
        matrix_id: str,
        fingerprint: str,
        out: dict[int, CSRBlock],
    ) -> list[BlockFailure]:
        """Serial per-block re-dispatch after a chunked failure.

        The pool (or a chunk in it) is suspect, so every still-missing
        block decodes in-process: a block gets ``1 + max_retries``
        attempts with exponential backoff + deterministic jitter, then is
        quarantined. Healthy blocks from a failed chunk decode fine here
        and land in ``out`` as usual.
        """
        reg = obs.registry()
        fq = plan_fingerprint(plan)
        failures: list[BlockFailure] = []
        fire_workers = fault_plan is not None and fault_plan.wants_worker_faults
        jitter_seed = fault_plan.seed if fault_plan is not None else 0
        for i in missing:
            if i in out:
                continue
            last_exc: CodecError | None = None
            attempts = 0
            for attempt in range(1, self.max_retries + 2):
                attempts = attempt
                try:
                    if fire_workers:
                        fault_plan.fire_worker_faults(i, allow_kill=False)
                    idx_bytes = decode_record(
                        idx_recs[i], plan.index_table,
                        use_huffman=plan.use_huffman, apply_delta=plan.use_delta,
                    )
                    val_bytes = decode_record(
                        val_recs[i], plan.value_table,
                        use_huffman=plan.use_huffman, apply_delta=False,
                    )
                except CodecError as exc:
                    last_exc = exc
                    if attempt <= self.max_retries:
                        reg.counter("faults.retries").inc()
                        if self.retry_base_s > 0:
                            jitter = seeded_rng(derive_seed(
                                jitter_seed, "retry-jitter", matrix_id, str(i),
                                str(attempt),
                            )).random()
                            time.sleep(
                                self.retry_base_s * (2 ** (attempt - 1))
                                * (0.5 + jitter)
                            )
                else:
                    block = _assemble_block(plan, i, idx_bytes, val_bytes)
                    out[i] = block
                    if self.cache is not None:
                        self.cache.put((matrix_id, i, fingerprint), block)
                    break
            else:
                self.quarantined.add((matrix_id, fq, i))
                reg.counter("faults.blocks_quarantined").inc()
                error = BlockDecodeError(
                    f"block {i} failed to decode after {attempts} attempts: "
                    f"{last_exc}",
                    block_id=i,
                )
                error.__cause__ = last_exc
                failures.append(BlockFailure(i, attempts, error))
        return failures

    def decode_block(
        self, plan: MatrixCompression, i: int, matrix_id: str = ""
    ) -> CSRBlock:
        """Decode one block (cache-aware); the per-block SpMV hook."""
        return self.decode_blocked(plan, [i], matrix_id=matrix_id)[0]

    def decode_blocks_async(
        self,
        plan: MatrixCompression,
        block_ids: list[int] | None = None,
        matrix_id: str = "",
        max_inflight: int = DEFAULT_PREFETCH_CHUNKS,
    ) -> "AsyncDecode":
        """Submit block decodes without blocking on the whole batch.

        Returns an :class:`AsyncDecode` handle: iterate it to consume
        ``(block_id, CSRBlock | BlockFailure)`` pairs in *completion*
        order while up to ``max_inflight`` chunk tasks stay in flight in
        the worker pool. This is the paper's decode/compute overlap: the
        pool recodes block *i+1* (and beyond) while the consumer
        multiplies block *i*.

        Per-block semantics (cache probes, quarantine short-circuit,
        fault-plan record mutation, serial retry + quarantine fallback on
        chunk failure, ``codecs.engine.*`` stats) match
        :meth:`decode_resilient`; only the scheduling differs.
        """
        ids = list(range(plan.nblocks)) if block_ids is None else list(block_ids)
        for i in ids:
            if not 0 <= i < plan.nblocks:
                raise ValueError(f"block id {i} out of range (nblocks={plan.nblocks})")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        return AsyncDecode(self, plan, ids, matrix_id, max_inflight)

    def reset_stats(self) -> None:
        self.stats.reset()


# ---------------------------------------------------------------------------
# Asynchronous decode handle
# ---------------------------------------------------------------------------


class AsyncDecode:
    """Handle over an in-flight asynchronous chunked block decode.

    Iterating yields ``(block_id, CSRBlock | BlockFailure)`` in
    completion order: cache hits and quarantined blocks immediately, then
    pool chunks as they finish, with at most ``max_inflight`` chunk tasks
    submitted at once (the pipeline's bounded prefetch depth). Consumers
    needing block order must reorder; the pipelined SpMV executor instead
    accumulates out of order under its row-disjointness merge rule.

    A worker death (BrokenProcessPool) tears the pool down once and
    re-dispatches every unfinished chunk through the engine's serial
    per-block retry/quarantine path, exactly like the batch API. Stats
    (``cache_hits``/``cache_misses``/``blocks_decoded``/``bytes_decoded``
    /``decode_seconds``) are flushed to the engine when the iterator is
    exhausted, closed, or garbage-collected; ``decode_seconds`` counts
    only time spent inside the handle, not in the consumer.
    """

    def __init__(
        self,
        engine: RecodeEngine,
        plan: MatrixCompression,
        ids: list[int],
        matrix_id: str,
        max_inflight: int,
    ):
        self._engine = engine
        self._plan = plan
        self._ids = ids
        self._matrix_id = matrix_id
        self._max_inflight = max_inflight
        self._pending: dict = {}
        self._busy = 0.0
        self._hits = 0
        self._misses = 0
        self._decoded_blocks = 0
        self._yielded_bytes = 0
        self._flushed = False
        if engine.workers:
            # Spin the pool up now so fork/exec cost lands in
            # pool_startup_seconds, never in decode_seconds.
            engine._ensure_pool()
        self._gen = self._timed()

    def __iter__(self) -> "AsyncDecode":
        return self

    def __next__(self):
        return next(self._gen)

    def close(self) -> None:
        """Stop consuming; in-flight pool tasks finish and are dropped."""
        self._gen.close()

    @property
    def inflight(self) -> int:
        """Chunk tasks submitted to the pool and not yet consumed."""
        return len(self._pending)

    @property
    def ready(self) -> int:
        """Chunk tasks finished in the pool but not yet consumed."""
        return sum(1 for f in self._pending if f.done())

    # -- internals -----------------------------------------------------------

    def _timed(self):
        """Drive :meth:`_produce`, charging only in-handle time to
        ``decode_seconds`` (the consumer multiplies between yields)."""
        gen = self._produce()
        try:
            while True:
                seg = time.perf_counter()
                try:
                    item = next(gen)
                except StopIteration:
                    self._busy += time.perf_counter() - seg
                    return
                self._busy += time.perf_counter() - seg
                yield item
        finally:
            gen.close()
            self._flush_stats()

    def _flush_stats(self) -> None:
        if self._flushed:
            return
        self._flushed = True
        stats = self._engine.stats
        if self._hits:
            stats.add("cache_hits", self._hits)
        if self._misses:
            stats.add("cache_misses", self._misses)
        stats.add("blocks_decoded", self._decoded_blocks)
        stats.add("bytes_decoded", self._yielded_bytes)
        stats.add("decode_seconds", self._busy)

    def _count(self, item):
        i, res = item
        if isinstance(res, CSRBlock):
            self._yielded_bytes += 12 * res.nnz
        return item

    def _produce(self):
        eng = self._engine
        plan = self._plan
        matrix_id = self._matrix_id
        fingerprint = plan_fingerprint(plan) if eng.cache is not None else ""

        missing: list[int] = []
        for i in self._ids:
            if eng.cache is not None:
                hit = eng.cache.get((matrix_id, i, fingerprint))
                if hit is not None:
                    self._hits += 1
                    yield self._count((i, hit))
                    continue
                self._misses += 1
            missing.append(i)
        missing = sorted(set(missing))

        if eng.quarantined and missing:
            fq = plan_fingerprint(plan)
            alive: list[int] = []
            for i in missing:
                if (matrix_id, fq, i) in eng.quarantined:
                    obs.registry().counter("faults.quarantine_hits").inc()
                    yield i, BlockFailure(
                        i, 0,
                        BlockDecodeError(f"block {i} is quarantined", block_id=i),
                    )
                else:
                    alive.append(i)
            missing = alive
        if not missing:
            return
        self._decoded_blocks = len(missing)

        fault_plan = faults.active()
        if fault_plan is not None:
            idx_recs = {
                i: fault_plan.mutate_record(plan.index_records[i], i, "index")
                for i in missing
            }
            val_recs = {
                i: fault_plan.mutate_record(plan.value_records[i], i, "value")
                for i in missing
            }
        else:
            idx_recs, val_recs = plan.index_records, plan.value_records

        allow_kill = eng.workers > 0 and eng.executor == "process"
        chunks: deque = deque()
        for j in range(0, len(missing), eng.chunk_blocks):
            chunk_ids = missing[j : j + eng.chunk_blocks]
            inner = (
                [idx_recs[i] for i in chunk_ids],
                [val_recs[i] for i in chunk_ids],
                plan.index_table, plan.value_table,
                plan.use_huffman, plan.use_delta,
            )
            if fault_plan is not None and fault_plan.wants_worker_faults:
                chunks.append(
                    (chunk_ids, _decode_pair_chunk_faulted,
                     (fault_plan, chunk_ids, allow_kill, inner))
                )
            else:
                chunks.append((chunk_ids, _decode_pair_chunk, inner))

        def isolated(chunk_ids: list[int]):
            """Serial per-block fallback after a chunk (or pool) failure."""
            scratch: dict[int, CSRBlock] = {}
            fails = eng._decode_isolated(
                plan, chunk_ids, idx_recs, val_recs, fault_plan,
                matrix_id, fingerprint, scratch,
            )
            items = [(i, scratch[i]) for i in chunk_ids if i in scratch]
            items.extend((f.block_id, f) for f in fails)
            return items

        if eng.workers == 0:
            for chunk_ids, fn, task in chunks:
                with obs.trace("codecs.engine.decode", blocks=len(chunk_ids)):
                    try:
                        result = fn(task)
                    except CodecError:
                        result = None
                items = (
                    isolated(chunk_ids)
                    if result is None
                    else [
                        (i, self._finish(plan, i, ib, vb, fingerprint))
                        for i, (ib, vb) in zip(chunk_ids, result)
                    ]
                )
                for item in items:
                    yield self._count(item)
            return

        tracing = obs.tracing_enabled()
        reg = obs.registry()
        parent_tracer = obs.tracer()
        backend = kernels.backend()
        pool = eng._ensure_pool()
        crashed = False

        def submit_one() -> None:
            chunk_ids, fn, task = chunks.popleft()
            if eng.executor == "process":
                fut = pool.submit(_run_isolated, (fn, task, tracing, backend))
            else:
                fut = pool.submit(fn, task)
            self._pending[fut] = chunk_ids

        while chunks or self._pending:
            while chunks and not crashed and len(self._pending) < self._max_inflight:
                submit_one()
            if crashed and chunks:
                # The pool is gone; never-submitted chunks decode serially.
                chunk_ids, _fn, _task = chunks.popleft()
                for item in isolated(chunk_ids):
                    yield self._count(item)
                continue
            if not self._pending:
                continue
            done, _ = wait(set(self._pending), return_when=FIRST_COMPLETED)
            for fut in done:
                chunk_ids = self._pending.pop(fut)
                try:
                    res = fut.result()
                except (BrokenExecutor, CancelledError):
                    if not crashed:
                        crashed = True
                        eng._handle_pool_crash(fault_plan, chunk_ids)
                    for item in isolated(chunk_ids):
                        yield self._count(item)
                except CodecError:
                    for item in isolated(chunk_ids):
                        yield self._count(item)
                else:
                    if eng.executor == "process":
                        result, snapshot, events = res
                        reg.merge_snapshot(snapshot)
                        if events:
                            parent_tracer.add_events(events)
                    else:
                        result = res
                    for i, (ib, vb) in zip(chunk_ids, result):
                        yield self._count(
                            (i, self._finish(plan, i, ib, vb, fingerprint))
                        )

    def _finish(
        self, plan: MatrixCompression, i: int, idx_bytes: bytes,
        val_bytes: bytes, fingerprint: str,
    ) -> CSRBlock:
        block = _assemble_block(plan, i, idx_bytes, val_bytes)
        if self._engine.cache is not None:
            self._engine.cache.put((self._matrix_id, i, fingerprint), block)
        return block
