"""Compression-effectiveness statistics (paper Figs. 10 & 11).

The paper's metric is **bytes per non-zero element**, "so the original
storage format does not matter". Helpers here compute per-matrix stats for
the three schemes compared in Fig. 10:

* CPU baseline — Snappy on 32 KB blocks (gm 5.20 B/nnz in the paper);
* UDP Delta-Snappy — 8 KB blocks (gm 5.92 B/nnz);
* UDP Delta-Snappy-Huffman — 8 KB blocks (gm 5.00 B/nnz).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.pipeline import MatrixCompression, compress_matrix
from repro.sparse.blocked import CPU_BLOCK_BYTES, UDP_BLOCK_BYTES
from repro.sparse.csr import BYTES_PER_NNZ_CSR, CSRMatrix
from repro.util.geomean import geomean


@dataclass(frozen=True)
class CompressionComparison:
    """Per-matrix bytes/nnz under the three Fig. 10 schemes."""

    name: str
    nnz: int
    cpu_snappy: float
    udp_delta_snappy: float
    udp_dsh: float

    @property
    def baseline(self) -> float:
        return float(BYTES_PER_NNZ_CSR)


def compare_schemes(matrix: CSRMatrix, name: str = "", seed: int = 0) -> CompressionComparison:
    """Compress ``matrix`` under all three Fig. 10 schemes."""
    cpu = compress_matrix(
        matrix,
        block_bytes=CPU_BLOCK_BYTES,
        use_delta=False,
        use_huffman=False,
        seed=seed,
    )
    ds = compress_matrix(
        matrix,
        block_bytes=UDP_BLOCK_BYTES,
        use_delta=True,
        use_huffman=False,
        seed=seed,
    )
    dsh = compress_matrix(
        matrix,
        block_bytes=UDP_BLOCK_BYTES,
        use_delta=True,
        use_huffman=True,
        seed=seed,
    )
    return CompressionComparison(
        name=name,
        nnz=matrix.nnz,
        cpu_snappy=cpu.bytes_per_nnz,
        udp_delta_snappy=ds.bytes_per_nnz,
        udp_dsh=dsh.bytes_per_nnz,
    )


@dataclass(frozen=True)
class SuiteCompressionSummary:
    """Geometric means over a suite (the Fig. 10 bars)."""

    count: int
    gm_cpu_snappy: float
    gm_udp_delta_snappy: float
    gm_udp_dsh: float


def summarize(comparisons: list[CompressionComparison]) -> SuiteCompressionSummary:
    """Aggregate per-matrix comparisons the way the paper reports Fig. 10."""
    if not comparisons:
        raise ValueError("no comparisons to summarize")
    return SuiteCompressionSummary(
        count=len(comparisons),
        gm_cpu_snappy=geomean([c.cpu_snappy for c in comparisons]),
        gm_udp_delta_snappy=geomean([c.udp_delta_snappy for c in comparisons]),
        gm_udp_dsh=geomean([c.udp_dsh for c in comparisons]),
    )


def dsh_plan(matrix: CSRMatrix, seed: int = 0) -> MatrixCompression:
    """Convenience: the paper's production encoding (DSH, 8 KB blocks)."""
    return compress_matrix(
        matrix,
        block_bytes=UDP_BLOCK_BYTES,
        use_delta=True,
        use_huffman=True,
        seed=seed,
    )
