"""Unified error taxonomy for the codec / container / recode stack.

Everything the decode path can raise derives from :class:`CodecError`, so
callers that care about *why* a stream failed can catch a precise subclass
while resilience layers (the recode engine's quarantine logic, the SpMV
``degrade`` policy) catch the base class once. ``CodecError`` deliberately
subclasses :class:`ValueError`: the stack raised bare ``ValueError`` for
corruption since the seed, and every existing ``except ValueError`` keeps
working unchanged.

Taxonomy::

    ValueError
    └── CodecError                  any decode/parse failure in the stack
        ├── CorruptStreamError      malformed compressed stream (Snappy,
        │   │                       Huffman, RLE, varint framing)
        │   └── CorruptPayloadError record payload CRC mismatch — the
        │                           bytes changed after encode (DRAM
        │                           flip, torn write, injected fault)
        ├── ContainerError          .dsh container CRC/structure failure
        │   └── TruncatedContainerError
        ├── BlockDecodeError        block-scoped wrapper carrying the
        │                           failing ``block_id`` (what ``strict``
        │                           SpMV raises and quarantine records)
        └── UDPFault                (repro.udp.lane) hardware-fault
                                    conditions in the cycle-level simulator

:class:`repro.faults.InjectedFault` also derives from ``CodecError`` so
injected chaos flows through exactly the handling real corruption would.
"""

from __future__ import annotations


class CodecError(ValueError):
    """Base class for every decode/parse failure in the codec stack."""


class CorruptStreamError(CodecError):
    """A compressed stream is malformed (truncated, bad codes/offsets, or
    lengths that disagree with its framing)."""


class CorruptPayloadError(CorruptStreamError):
    """A record's payload no longer matches its end-to-end CRC: the bytes
    were altered somewhere between encode and decode."""


class ContainerError(CodecError):
    """A ``.dsh`` container failed CRC or structural validation."""


class TruncatedContainerError(ContainerError):
    """A ``.dsh`` container ends before its declared structure does."""


class BlockDecodeError(CodecError):
    """Decoding one specific block failed (after any retries).

    Attributes:
        block_id: index of the failing block within its plan, or None.
        stream: ``"index"`` / ``"value"`` when one stream is implicated.
    """

    def __init__(self, message: str, *, block_id: int | None = None,
                 stream: str | None = None):
        super().__init__(message)
        self.block_id = block_id
        self.stream = stream

    def __reduce__(self):
        return (
            type(self),
            (self.args[0],),
            {"block_id": self.block_id, "stream": self.stream},
        )

    def __setstate__(self, state):
        self.block_id = state.get("block_id")
        self.stream = state.get("stream")
