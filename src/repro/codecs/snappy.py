"""Snappy block-format codec, implemented from scratch.

Binary compatible with the published Snappy format description
(https://github.com/google/snappy/blob/master/format_description.txt):

* stream preamble: uvarint uncompressed length;
* elements: a tag byte whose low 2 bits select
  ``00`` literal, ``01`` copy with 1-byte offset (len 4-11, offset < 2048),
  ``10`` copy with 2-byte offset (len 1-64), ``11`` copy with 4-byte offset.

The compressor is a greedy hash-chained LZ77 matcher operating on 64 KiB
input fragments (like the reference implementation), with the reference's
"skip" heuristic so incompressible data costs little time. Exact emitted
bytes may differ from C++ Snappy (any spec-conformant element stream is
valid); the decompressor accepts all conformant streams.
"""

from __future__ import annotations

from repro import kernels
from repro.codecs.base import Codec
from repro.codecs.varint import write_varint

#: Reference implementation works in 64 KiB input fragments; back-references
#: never cross a fragment boundary, so 2-byte offsets always suffice.
FRAGMENT_SIZE = 65536

_MIN_MATCH = 4
_MAX_COPY_LEN = 64


def _emit_literal(out: bytearray, data: bytes, start: int, end: int) -> None:
    """Append a literal element for data[start:end]."""
    length = end - start
    if length <= 0:
        return
    n = length - 1
    if n < 60:
        out.append(n << 2)
    elif n < (1 << 8):
        out.append(60 << 2)
        out.append(n)
    elif n < (1 << 16):
        out.append(61 << 2)
        out += n.to_bytes(2, "little")
    elif n < (1 << 24):
        out.append(62 << 2)
        out += n.to_bytes(3, "little")
    else:
        out.append(63 << 2)
        out += n.to_bytes(4, "little")
    out += data[start:end]


def _emit_copy(out: bytearray, offset: int, length: int) -> None:
    """Append copy elements covering ``length`` bytes at ``offset`` back."""
    # Long matches are split into <=64-byte copies.
    while length >= _MAX_COPY_LEN + _MIN_MATCH:
        _emit_one_copy(out, offset, _MAX_COPY_LEN)
        length -= _MAX_COPY_LEN
    if length > _MAX_COPY_LEN:
        # Leave a >=MIN_MATCH tail so the final copy is well-formed.
        half = length - _MIN_MATCH
        _emit_one_copy(out, offset, half)
        length -= half
    _emit_one_copy(out, offset, length)


def _emit_one_copy(out: bytearray, offset: int, length: int) -> None:
    if 4 <= length <= 11 and offset < 2048:
        out.append(1 | ((length - 4) << 2) | ((offset >> 8) << 5))
        out.append(offset & 0xFF)
    elif offset < (1 << 16):
        out.append(2 | ((length - 1) << 2))
        out += offset.to_bytes(2, "little")
    else:
        out.append(3 | ((length - 1) << 2))
        out += offset.to_bytes(4, "little")


def _match_length(data: bytes, a: int, b: int, end: int) -> int:
    """Length of the common prefix of data[a:] and data[b:], capped at end-b."""
    n = 0
    limit = end - b
    # Chunked comparison: big strides first, then 8-byte words, then bytes —
    # near-misses past a 32-byte boundary no longer degrade to per-byte scans.
    while n + 32 <= limit and data[a + n : a + n + 32] == data[b + n : b + n + 32]:
        n += 32
    while n + 8 <= limit and data[a + n : a + n + 8] == data[b + n : b + n + 8]:
        n += 8
    while n < limit and data[a + n] == data[b + n]:
        n += 1
    return n


def _compress_fragment(data: bytes, start: int, end: int, out: bytearray) -> None:
    """Greedy LZ77 over one fragment; back-references stay inside it."""
    table: dict[bytes, int] = {}
    ip = start
    literal_start = start
    skip_fails = 0
    # Last position where a 4-byte key can start.
    last = end - _MIN_MATCH
    while ip <= last:
        key = data[ip : ip + _MIN_MATCH]
        candidate = table.get(key)
        table[key] = ip
        if candidate is not None and data[candidate : candidate + _MIN_MATCH] == key:
            # Found a match: flush pending literal, then extend.
            _emit_literal(out, data, literal_start, ip)
            length = _MIN_MATCH + _match_length(
                data, candidate + _MIN_MATCH, ip + _MIN_MATCH, end
            )
            _emit_copy(out, ip - candidate, length)
            # Seed the table inside the match so nearby repeats are found.
            match_end = ip + length
            seed = ip + 1
            seed_stop = min(match_end, last + 1)
            while seed < seed_stop:
                table[data[seed : seed + _MIN_MATCH]] = seed
                seed += 7
            ip = match_end
            literal_start = ip
            skip_fails = 0
        else:
            # Reference "skip" heuristic: accelerate through incompressible
            # regions by stepping further after repeated misses.
            skip_fails += 1
            ip += 1 + (skip_fails >> 5)
    _emit_literal(out, data, literal_start, end)


def snappy_compress(data: bytes) -> bytes:
    """Compress ``data`` into a Snappy block-format stream."""
    data = bytes(data)
    out = bytearray(write_varint(len(data)))
    for frag_start in range(0, len(data), FRAGMENT_SIZE):
        frag_end = min(frag_start + FRAGMENT_SIZE, len(data))
        _compress_fragment(data, frag_start, frag_end, out)
    return bytes(out)


def snappy_decompress(data: bytes, max_output: int | None = None) -> bytes:
    """Decompress a Snappy block-format stream.

    Args:
        data: the compressed stream.
        max_output: optional cap on the uncompressed size. A stream whose
            varint preamble promises more than this is rejected *before*
            any output is produced, so a corrupt preamble (up to 4 GiB)
            can never drive unbounded allocation. Container readers pass
            the record header's ``orig_len`` here.

    Raises:
        CorruptStreamError: on malformed streams (truncation, bad offsets,
            length mismatch against the preamble, or a preamble exceeding
            ``max_output``).
    """
    return kernels.dispatch("snappy_decompress", data, max_output)


class SnappyCodec(Codec):
    """Codec wrapper around :func:`snappy_compress` / :func:`snappy_decompress`."""

    name = "snappy"

    def encode(self, data: bytes) -> bytes:
        return snappy_compress(data)

    def decode(self, data: bytes) -> bytes:
        return snappy_decompress(data)
