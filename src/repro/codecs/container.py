"""On-disk container for compressed matrix plans (``.dsh`` files).

The architecture's whole premise is that matrices *live* in their
compressed form; this container makes that durable. Layout (little-endian):

.. code-block:: text

    magic   8s   b"RPRODSH1"
    flags   u8   bit0 = delta, bit1 = huffman
    u32     block_bytes
    u32     nrows, u32 ncols, u32 nblocks
    u64     nnz
    [tables]  if huffman: 256 B index lengths, 256 B value lengths
    per block:
      u32 row_start, u32 row_end, u8 leading_partial, u64 nnz_start
      u32 x (row_end - row_start + 1)   local row_ptr
      2 records (index, value):
        u32 orig_len, u32 snappy_len, u32 bit_len, u32 payload_len,
        u32 crc32(payload), payload bytes

Every payload carries a CRC so corruption is detected at load time, before
a bad stream ever reaches a decoder.
"""

from __future__ import annotations

import io
import struct
import zlib
from os import PathLike

import numpy as np

from repro.codecs.huffman import HuffmanTable
from repro.codecs.pipeline import BlockRecord, MatrixCompression
from repro.sparse.blocked import BlockedCSR, CSRBlock
from repro.sparse.csr import CSRMatrix

MAGIC = b"RPRODSH1"

_FLAG_DELTA = 1
_FLAG_HUFFMAN = 2


def _write_record(out: io.BufferedIOBase, record: BlockRecord) -> None:
    out.write(
        struct.pack(
            "<IIIII",
            record.orig_len,
            record.snappy_len,
            record.bit_len,
            len(record.payload),
            zlib.crc32(record.payload),
        )
    )
    out.write(record.payload)


def _read_record(data: memoryview, pos: int) -> tuple[BlockRecord, int]:
    orig_len, snappy_len, bit_len, payload_len, crc = struct.unpack_from("<IIIII", data, pos)
    pos += 20
    payload = bytes(data[pos : pos + payload_len])
    if len(payload) != payload_len:
        raise ValueError("truncated container: record payload")
    if zlib.crc32(payload) != crc:
        raise ValueError("container corruption: record CRC mismatch")
    pos += payload_len
    return BlockRecord(orig_len, snappy_len, bit_len, payload), pos


def save_plan(plan: MatrixCompression, dest: str | PathLike | io.BufferedIOBase) -> None:
    """Serialize a plan to a ``.dsh`` container."""
    if isinstance(dest, (str, PathLike)):
        with open(dest, "wb") as fh:
            save_plan(plan, fh)
            return
    dest.write(MAGIC)
    flags = (_FLAG_DELTA if plan.use_delta else 0) | (
        _FLAG_HUFFMAN if plan.use_huffman else 0
    )
    m, n = plan.blocked.shape
    dest.write(struct.pack("<BIIIIQ", flags, plan.block_bytes, m, n, plan.nblocks, plan.nnz))
    if plan.use_huffman:
        assert plan.index_table is not None and plan.value_table is not None
        dest.write(plan.index_table.serialize())
        dest.write(plan.value_table.serialize())
    for block, irec, vrec in zip(
        plan.blocked.blocks, plan.index_records, plan.value_records
    ):
        dest.write(
            struct.pack(
                "<IIBQ", block.row_start, block.row_end, int(block.leading_partial),
                block.nnz_start,
            )
        )
        dest.write(block.row_ptr.astype("<u4").tobytes())
        _write_record(dest, irec)
        _write_record(dest, vrec)


def load_plan(source: str | PathLike | io.BufferedIOBase | bytes) -> MatrixCompression:
    """Load a container and reconstruct a fully-functional plan.

    Blocks are decompressed once at load to rebuild the in-memory
    :class:`~repro.sparse.blocked.BlockedCSR` (so SpMV and re-verification
    work immediately); the records themselves are kept verbatim.

    Raises:
        ValueError: bad magic, truncation, CRC mismatch, or inconsistent
            structure.
    """
    if isinstance(source, (str, PathLike)):
        with open(source, "rb") as fh:
            return load_plan(fh.read())
    if not isinstance(source, bytes):
        source = source.read()
    data = memoryview(source)
    if bytes(data[:8]) != MAGIC:
        raise ValueError("not a repro DSH container (bad magic)")
    pos = 8
    flags, block_bytes, m, n, nblocks, nnz = struct.unpack_from("<BIIIIQ", data, pos)
    pos += struct.calcsize("<BIIIIQ")
    use_delta = bool(flags & _FLAG_DELTA)
    use_huffman = bool(flags & _FLAG_HUFFMAN)
    index_table = value_table = None
    if use_huffman:
        index_table = HuffmanTable.deserialize(bytes(data[pos : pos + 256]))
        pos += 256
        value_table = HuffmanTable.deserialize(bytes(data[pos : pos + 256]))
        pos += 256

    index_records: list[BlockRecord] = []
    value_records: list[BlockRecord] = []
    block_meta: list[tuple[int, int, bool, int, np.ndarray]] = []
    for _ in range(nblocks):
        row_start, row_end, leading, nnz_start = struct.unpack_from("<IIBQ", data, pos)
        pos += struct.calcsize("<IIBQ")
        nrows_local = row_end - row_start
        if nrows_local < 1:
            raise ValueError("container corruption: empty block row range")
        ptr_bytes = 4 * (nrows_local + 1)
        row_ptr = np.frombuffer(data[pos : pos + ptr_bytes], dtype="<u4").astype(np.int64)
        if len(row_ptr) != nrows_local + 1:
            raise ValueError("truncated container: row_ptr")
        pos += ptr_bytes
        irec, pos = _read_record(data, pos)
        vrec, pos = _read_record(data, pos)
        index_records.append(irec)
        value_records.append(vrec)
        block_meta.append((row_start, row_end, bool(leading), nnz_start, row_ptr))

    # Rebuild the blocked structure by decoding each block once.
    shell_blocks = [
        CSRBlock(
            row_start=rs,
            row_end=re_,
            row_ptr=ptr,
            col_idx=np.zeros(int(ptr[-1]), dtype=np.int32),
            val=np.zeros(int(ptr[-1]), dtype=np.float64),
            nnz_start=ns,
            leading_partial=lead,
        )
        for rs, re_, lead, ns, ptr in block_meta
    ]
    shell = MatrixCompression(
        blocked=BlockedCSR((m, n), tuple(shell_blocks), block_bytes),
        index_records=tuple(index_records),
        value_records=tuple(value_records),
        index_table=index_table,
        value_table=value_table,
        use_delta=use_delta,
        use_huffman=use_huffman,
        block_bytes=block_bytes,
    )
    real_blocks = tuple(shell.decompress_block(i) for i in range(nblocks))
    plan = MatrixCompression(
        blocked=BlockedCSR((m, n), real_blocks, block_bytes),
        index_records=tuple(index_records),
        value_records=tuple(value_records),
        index_table=index_table,
        value_table=value_table,
        use_delta=use_delta,
        use_huffman=use_huffman,
        block_bytes=block_bytes,
    )
    if plan.nnz != nnz:
        raise ValueError(f"container corruption: nnz {plan.nnz} != header {nnz}")
    return plan


def load_csr(source: str | PathLike | io.BufferedIOBase | bytes) -> CSRMatrix:
    """Load a container straight into an uncompressed :class:`CSRMatrix`."""
    plan = load_plan(source)
    m, n = plan.blocked.shape
    col_idx = np.concatenate(
        [b.col_idx for b in plan.blocked.blocks]
    ) if plan.nblocks else np.zeros(0, dtype=np.int32)
    val = np.concatenate(
        [b.val for b in plan.blocked.blocks]
    ) if plan.nblocks else np.zeros(0, dtype=np.float64)
    # Global row_ptr from per-block local pointers (split rows merge).
    row_ptr = np.zeros(m + 1, dtype=np.int64)
    for block in plan.blocked.blocks:
        counts = np.diff(block.row_ptr)
        row_ptr[block.row_start + 1 : block.row_end + 1] += counts
    row_ptr = np.cumsum(row_ptr)
    return CSRMatrix((m, n), row_ptr, col_idx, val)
