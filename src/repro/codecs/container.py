"""On-disk container for compressed matrix plans (``.dsh`` files).

The architecture's whole premise is that matrices *live* in their
compressed form; this container makes that durable. Layout (little-endian):

.. code-block:: text

    magic   8s   b"RPRODSH2"
    flags   u8   bit0 = delta, bit1 = huffman
    u32     block_bytes
    u32     nrows, u32 ncols, u32 nblocks
    u64     nnz
    [tables]  if huffman: 256 B index lengths, 256 B value lengths
    u32     crc32 of everything from magic through the tables (header CRC)
    per block:
      u32 row_start, u32 row_end, u8 leading_partial, u64 nnz_start
      u32 x (row_end - row_start + 1)   local row_ptr
      u32 crc32 of the block meta above (meta CRC)
      2 records (index, value):
        u32 orig_len, u32 snappy_len, u32 bit_len, u32 payload_len,
        u32 crc32(record header + payload), payload bytes
    u32     crc32 of every preceding byte (stream trailer)

Corruption is detected in layers, every layer raising a typed
:class:`~repro.codecs.errors.ContainerError` (a ``CodecError``, which
subclasses ``ValueError``):

* the stream trailer CRC rejects any byte flip or truncation up front;
* every region carries a local CRC — the header (flags, shape, tables),
  each block's row metadata, and each record (header *and* payload) — so a
  single flipped byte is caught even if the trailer were recomputed to
  match, and a bad stream never reaches a decoder;
* the parser validates structure independently of every CRC — block row
  ranges must chain contiguously and cover ``nrows``, local ``row_ptr``
  must be monotone and fit the block's byte budget, record ``orig_len``
  must match the row_ptr entry count, and decoded column indices must fall
  inside ``ncols`` — so even a wholly forged stream cannot make the
  loader allocate unbounded memory or return silently wrong data.
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass
from os import PathLike

import numpy as np

from repro.codecs.errors import (
    CodecError,
    ContainerError,
    TruncatedContainerError,
)
from repro.codecs.huffman import HuffmanTable
from repro.codecs.pipeline import BlockRecord, MatrixCompression
from repro.sparse.blocked import BlockedCSR, CSRBlock
from repro.sparse.csr import CSRMatrix
from repro import faults

MAGIC = b"RPRODSH2"

_FLAG_DELTA = 1
_FLAG_HUFFMAN = 2

#: Upper bound accepted for the per-block byte budget: real plans use 8 KB
#: (UDP) or 32 KB (CPU); anything above this is a corrupt header, and the
#: cap keeps a forged budget from licensing huge per-block allocations.
MAX_BLOCK_BYTES = 1 << 30


def _write_record(out: io.BufferedIOBase, record: BlockRecord) -> None:
    header = struct.pack(
        "<IIII",
        record.orig_len,
        record.snappy_len,
        record.bit_len,
        len(record.payload),
    )
    out.write(header)
    out.write(struct.pack("<I", zlib.crc32(record.payload, zlib.crc32(header))))
    out.write(record.payload)


def _read_record(data: memoryview, pos: int) -> tuple[BlockRecord, int]:
    header = bytes(data[pos : pos + 16])
    orig_len, snappy_len, bit_len, payload_len = struct.unpack_from("<IIII", data, pos)
    (crc,) = struct.unpack_from("<I", data, pos + 16)
    pos += 20
    payload = bytes(data[pos : pos + payload_len])
    if len(payload) != payload_len:
        raise TruncatedContainerError("truncated container: record payload")
    if zlib.crc32(payload, zlib.crc32(header)) != crc:
        raise ContainerError("container corruption: record CRC mismatch")
    pos += payload_len
    record = BlockRecord(
        orig_len, snappy_len, bit_len, payload, payload_crc=zlib.crc32(payload)
    )
    return record, pos


def save_plan(plan: MatrixCompression, dest: str | PathLike | io.BufferedIOBase) -> None:
    """Serialize a plan to a ``.dsh`` container (stream-CRC trailed)."""
    if isinstance(dest, (str, PathLike)):
        with open(dest, "wb") as fh:
            save_plan(plan, fh)
            return
    buf = io.BytesIO()
    buf.write(MAGIC)
    flags = (_FLAG_DELTA if plan.use_delta else 0) | (
        _FLAG_HUFFMAN if plan.use_huffman else 0
    )
    m, n = plan.blocked.shape
    buf.write(struct.pack("<BIIIIQ", flags, plan.block_bytes, m, n, plan.nblocks, plan.nnz))
    if plan.use_huffman:
        assert plan.index_table is not None and plan.value_table is not None
        buf.write(plan.index_table.serialize())
        buf.write(plan.value_table.serialize())
    buf.write(struct.pack("<I", zlib.crc32(buf.getvalue())))
    for block, irec, vrec in zip(
        plan.blocked.blocks, plan.index_records, plan.value_records
    ):
        meta = struct.pack(
            "<IIBQ", block.row_start, block.row_end, int(block.leading_partial),
            block.nnz_start,
        ) + block.row_ptr.astype("<u4").tobytes()
        buf.write(meta)
        buf.write(struct.pack("<I", zlib.crc32(meta)))
        _write_record(buf, irec)
        _write_record(buf, vrec)
    body = buf.getvalue()
    dest.write(body)
    dest.write(struct.pack("<I", zlib.crc32(body)))


def load_plan(source: str | PathLike | io.BufferedIOBase | bytes) -> MatrixCompression:
    """Load a container and reconstruct a fully-functional plan.

    Blocks are decompressed once at load to rebuild the in-memory
    :class:`~repro.sparse.blocked.BlockedCSR` (so SpMV and re-verification
    work immediately); the records themselves are kept verbatim.

    Raises:
        ContainerError: bad magic, CRC mismatch, or inconsistent structure
            (:class:`TruncatedContainerError` when the stream ends early).
    """
    if isinstance(source, (str, PathLike)):
        with open(source, "rb") as fh:
            return load_plan(fh.read())
    if not isinstance(source, bytes):
        source = source.read()
    fault_plan = faults.active()
    if fault_plan is not None:
        source = fault_plan.mutate_container(source)
    try:
        return _parse_plan(memoryview(source))
    except struct.error as exc:
        # struct.unpack_from past the end of a truncated stream.
        raise TruncatedContainerError(f"truncated container: {exc}") from exc


def _parse_plan(data: memoryview) -> MatrixCompression:
    if len(data) < len(MAGIC) + 4:
        raise TruncatedContainerError("truncated container: shorter than magic + trailer")
    if bytes(data[:8]) != MAGIC:
        raise ContainerError("not a repro DSH container (bad magic)")
    (trailer,) = struct.unpack_from("<I", data, len(data) - 4)
    if zlib.crc32(data[:-4]) != trailer:
        raise ContainerError("container corruption: stream CRC mismatch")
    end = len(data) - 4
    pos = 8
    flags, block_bytes, m, n, nblocks, nnz = struct.unpack_from("<BIIIIQ", data, pos)
    pos += struct.calcsize("<BIIIIQ")
    use_delta = bool(flags & _FLAG_DELTA)
    use_huffman = bool(flags & _FLAG_HUFFMAN)
    if not 12 <= block_bytes <= MAX_BLOCK_BYTES:
        raise ContainerError(f"container corruption: implausible block_bytes {block_bytes}")
    if nblocks == 0 and (m or nnz):
        raise ContainerError("container corruption: blockless container with rows/nnz")
    entries_cap = block_bytes // 12
    table_pos = pos
    if use_huffman:
        if pos + 512 + 4 > end:
            raise TruncatedContainerError("truncated container: huffman tables")
        pos += 512
    # Header CRC is verified before the tables are even deserialized, so a
    # corrupt length byte can never reach the table constructor.
    (header_crc,) = struct.unpack_from("<I", data, pos)
    if zlib.crc32(data[:pos]) != header_crc:
        raise ContainerError("container corruption: header CRC mismatch")
    pos += 4
    index_table = value_table = None
    if use_huffman:
        index_table = HuffmanTable.deserialize(bytes(data[table_pos : table_pos + 256]))
        value_table = HuffmanTable.deserialize(
            bytes(data[table_pos + 256 : table_pos + 512])
        )

    index_records: list[BlockRecord] = []
    value_records: list[BlockRecord] = []
    block_meta: list[tuple[int, int, bool, int, np.ndarray]] = []
    prev_row_end = 0
    running_nnz = 0
    for _ in range(nblocks):
        meta_start = pos
        row_start, row_end, leading, nnz_start = struct.unpack_from("<IIBQ", data, pos)
        pos += struct.calcsize("<IIBQ")
        nrows_local = row_end - row_start
        if nrows_local < 1:
            raise ContainerError("container corruption: empty block row range")
        if row_end > m:
            raise ContainerError("container corruption: block rows beyond nrows")
        # Blocks must chain contiguously: a continuation block re-opens the
        # previous block's last row, anything else starts right after it.
        expected_start = prev_row_end - 1 if leading else prev_row_end
        if row_start != max(expected_start, 0) or (leading and prev_row_end == 0):
            raise ContainerError("container corruption: block row ranges do not chain")
        prev_row_end = row_end
        ptr_bytes = 4 * (nrows_local + 1)
        if pos + ptr_bytes + 4 > end:
            raise TruncatedContainerError("truncated container: row_ptr")
        row_ptr = np.frombuffer(data[pos : pos + ptr_bytes], dtype="<u4").astype(np.int64)
        pos += ptr_bytes
        (meta_crc,) = struct.unpack_from("<I", data, pos)
        if zlib.crc32(data[meta_start:pos]) != meta_crc:
            raise ContainerError("container corruption: block meta CRC mismatch")
        pos += 4
        if row_ptr[0] != 0 or np.any(np.diff(row_ptr) < 0):
            raise ContainerError("container corruption: row_ptr not monotone from 0")
        block_nnz = int(row_ptr[-1])
        if block_nnz > entries_cap:
            raise ContainerError("container corruption: block exceeds its byte budget")
        if nnz_start != running_nnz:
            raise ContainerError("container corruption: nnz_start does not chain")
        running_nnz += block_nnz
        irec, pos = _read_record(data, pos)
        vrec, pos = _read_record(data, pos)
        if irec.orig_len != 4 * block_nnz or vrec.orig_len != 8 * block_nnz:
            raise ContainerError("container corruption: record lengths disagree with row_ptr")
        index_records.append(irec)
        value_records.append(vrec)
        block_meta.append((row_start, row_end, bool(leading), nnz_start, row_ptr))
    if nblocks and prev_row_end != m:
        raise ContainerError("container corruption: blocks do not cover all rows")
    if pos != end:
        raise ContainerError("container corruption: trailing bytes after last block")

    # Rebuild the blocked structure by decoding each block once.
    shell_blocks = [
        CSRBlock(
            row_start=rs,
            row_end=re_,
            row_ptr=ptr,
            col_idx=np.zeros(int(ptr[-1]), dtype=np.int32),
            val=np.zeros(int(ptr[-1]), dtype=np.float64),
            nnz_start=ns,
            leading_partial=lead,
        )
        for rs, re_, lead, ns, ptr in block_meta
    ]
    shell = MatrixCompression(
        blocked=BlockedCSR((m, n), tuple(shell_blocks), block_bytes),
        index_records=tuple(index_records),
        value_records=tuple(value_records),
        index_table=index_table,
        value_table=value_table,
        use_delta=use_delta,
        use_huffman=use_huffman,
        block_bytes=block_bytes,
    )
    real_blocks = tuple(shell.decompress_block(i) for i in range(nblocks))
    for block in real_blocks:
        if block.nnz and (block.col_idx.min() < 0 or block.col_idx.max() >= n):
            raise ContainerError("container corruption: column index outside ncols")
    plan = MatrixCompression(
        blocked=BlockedCSR((m, n), real_blocks, block_bytes),
        index_records=tuple(index_records),
        value_records=tuple(value_records),
        index_table=index_table,
        value_table=value_table,
        use_delta=use_delta,
        use_huffman=use_huffman,
        block_bytes=block_bytes,
    )
    if plan.nnz != nnz:
        raise ContainerError(f"container corruption: nnz {plan.nnz} != header {nnz}")
    return plan


def load_csr(source: str | PathLike | io.BufferedIOBase | bytes) -> CSRMatrix:
    """Load a container straight into an uncompressed :class:`CSRMatrix`."""
    plan = load_plan(source)
    m, n = plan.blocked.shape
    col_idx = np.concatenate(
        [b.col_idx for b in plan.blocked.blocks]
    ) if plan.nblocks else np.zeros(0, dtype=np.int32)
    val = np.concatenate(
        [b.val for b in plan.blocked.blocks]
    ) if plan.nblocks else np.zeros(0, dtype=np.float64)
    # Global row_ptr from per-block local pointers (split rows merge).
    row_ptr = np.zeros(m + 1, dtype=np.int64)
    for block in plan.blocked.blocks:
        counts = np.diff(block.row_ptr)
        row_ptr[block.row_start + 1 : block.row_end + 1] += counts
    row_ptr = np.cumsum(row_ptr)
    return CSRMatrix((m, n), row_ptr, col_idx, val)


# ---------------------------------------------------------------------------
# Scrubbing (tolerant per-block health walk; the ``repro scrub`` command)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecordHealth:
    """Health of one stream record: CRC layer and decode layer."""

    stream: str
    crc_ok: bool
    decode_ok: bool
    payload_bytes: int
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.crc_ok and self.decode_ok


@dataclass(frozen=True)
class BlockHealth:
    """Health of one block: row-metadata CRC plus both stream records."""

    block_id: int
    offset: int
    meta_ok: bool
    index: RecordHealth | None
    value: RecordHealth | None
    errors: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return (
            self.meta_ok
            and not self.errors
            and self.index is not None
            and self.index.ok
            and self.value is not None
            and self.value.ok
        )


@dataclass(frozen=True)
class ScrubReport:
    """Per-block health of a ``.dsh`` container.

    Unlike :func:`load_plan` — which rejects the whole stream on the first
    CRC or structure failure — the scrubber keeps walking, so one flipped
    byte reports as one sick block instead of an opaque load error. The
    same layered CRCs drive both; scrub just refuses to give up early.
    """

    nbytes: int
    magic_ok: bool
    header_ok: bool
    trailer_ok: bool
    nblocks: int
    blocks: tuple[BlockHealth, ...] = ()
    fatal: str | None = None

    @property
    def blocks_ok(self) -> int:
        return sum(1 for b in self.blocks if b.ok)

    @property
    def blocks_bad(self) -> int:
        return len(self.blocks) - self.blocks_ok

    @property
    def healthy(self) -> bool:
        return (
            self.magic_ok
            and self.header_ok
            and self.trailer_ok
            and self.fatal is None
            and len(self.blocks) == self.nblocks
            and self.blocks_bad == 0
        )

    def as_dict(self) -> dict:
        return {
            "nbytes": self.nbytes,
            "magic_ok": self.magic_ok,
            "header_ok": self.header_ok,
            "trailer_ok": self.trailer_ok,
            "nblocks_declared": self.nblocks,
            "blocks_walked": len(self.blocks),
            "blocks_ok": self.blocks_ok,
            "blocks_bad": self.blocks_bad,
            "healthy": self.healthy,
            "fatal": self.fatal,
            "blocks": [
                {
                    "block": b.block_id,
                    "offset": b.offset,
                    "meta_ok": b.meta_ok,
                    "index": None if b.index is None else {
                        "crc_ok": b.index.crc_ok,
                        "decode_ok": b.index.decode_ok,
                        "payload_bytes": b.index.payload_bytes,
                        "error": b.index.error,
                    },
                    "value": None if b.value is None else {
                        "crc_ok": b.value.crc_ok,
                        "decode_ok": b.value.decode_ok,
                        "payload_bytes": b.value.payload_bytes,
                        "error": b.value.error,
                    },
                    "errors": list(b.errors),
                    "ok": b.ok,
                }
                for b in self.blocks
            ],
        }


def _scrub_record(
    data: memoryview,
    pos: int,
    end: int,
    stream: str,
    table: "HuffmanTable | None",
    use_huffman: bool,
    apply_delta: bool,
) -> tuple[RecordHealth | None, int | None]:
    """Walk one record leniently. Returns (health, next_pos); (None, None)
    when the stream is too mangled to even skip past the record."""
    from repro.codecs.pipeline import decode_record

    if pos + 20 > end:
        return None, None
    header = bytes(data[pos : pos + 16])
    orig_len, snappy_len, bit_len, payload_len = struct.unpack_from("<IIII", data, pos)
    (crc,) = struct.unpack_from("<I", data, pos + 16)
    pos += 20
    if pos + payload_len > end:
        return None, None
    payload = bytes(data[pos : pos + payload_len])
    pos += payload_len
    crc_ok = zlib.crc32(payload, zlib.crc32(header)) == crc
    record = BlockRecord(
        orig_len, snappy_len, bit_len, payload, payload_crc=zlib.crc32(payload)
    )
    decode_ok, error = True, None
    if use_huffman and table is None:
        decode_ok, error = False, "no usable huffman table"
    else:
        try:
            decode_record(record, table, use_huffman=use_huffman, apply_delta=apply_delta)
        except CodecError as exc:
            decode_ok, error = False, str(exc)
    return RecordHealth(stream, crc_ok, decode_ok, payload_len, error), pos


def scrub_container(source: "str | PathLike | io.BufferedIOBase | bytes") -> ScrubReport:
    """Walk a ``.dsh`` container and report per-block health.

    Never raises on corruption: every CRC layer (trailer, header, block
    meta, record) and every record decode is attempted independently and
    reported, so an operator can see *which* blocks a damaged file loses
    before deciding whether ``degrade``-mode SpMV or a re-encode is the
    right response. Only an unreadable source (OSError) propagates.
    """
    if isinstance(source, (str, PathLike)):
        with open(source, "rb") as fh:
            return scrub_container(fh.read())
    if not isinstance(source, bytes):
        source = source.read()
    data = memoryview(source)
    nbytes = len(data)
    header_fmt = "<BIIIIQ"
    header_size = struct.calcsize(header_fmt)
    if nbytes < len(MAGIC) + 4 + header_size:
        return ScrubReport(
            nbytes=nbytes, magic_ok=bytes(data[:8]) == MAGIC if nbytes >= 8 else False,
            header_ok=False, trailer_ok=False, nblocks=0,
            fatal="container shorter than its fixed header",
        )
    magic_ok = bytes(data[:8]) == MAGIC
    (trailer,) = struct.unpack_from("<I", data, nbytes - 4)
    trailer_ok = zlib.crc32(data[:-4]) == trailer
    end = nbytes - 4
    pos = 8
    flags, block_bytes, m, n, nblocks, nnz = struct.unpack_from(header_fmt, data, pos)
    pos += header_size
    use_delta = bool(flags & _FLAG_DELTA)
    use_huffman = bool(flags & _FLAG_HUFFMAN)
    table_pos = pos
    if use_huffman:
        if pos + 512 + 4 > end:
            return ScrubReport(
                nbytes=nbytes, magic_ok=magic_ok, header_ok=False,
                trailer_ok=trailer_ok, nblocks=nblocks,
                fatal="truncated before huffman tables",
            )
        pos += 512
    if pos + 4 > end:
        return ScrubReport(
            nbytes=nbytes, magic_ok=magic_ok, header_ok=False,
            trailer_ok=trailer_ok, nblocks=nblocks,
            fatal="truncated before header CRC",
        )
    (header_crc,) = struct.unpack_from("<I", data, pos)
    header_ok = magic_ok and zlib.crc32(data[:pos]) == header_crc
    pos += 4
    index_table = value_table = None
    if use_huffman:
        try:
            index_table = HuffmanTable.deserialize(bytes(data[table_pos : table_pos + 256]))
            value_table = HuffmanTable.deserialize(
                bytes(data[table_pos + 256 : table_pos + 512])
            )
        except CodecError:
            pass  # reported per record as "no usable huffman table"

    blocks: list[BlockHealth] = []
    fatal = None
    meta_fmt = "<IIBQ"
    meta_size = struct.calcsize(meta_fmt)
    for k in range(nblocks):
        block_offset = pos
        if pos + meta_size > end:
            fatal = f"truncated at block {k} metadata (offset {pos})"
            break
        row_start, row_end, leading, nnz_start = struct.unpack_from(meta_fmt, data, pos)
        nrows_local = row_end - row_start
        ptr_bytes = 4 * (nrows_local + 1)
        if nrows_local < 1 or nrows_local > m or pos + meta_size + ptr_bytes + 4 > end:
            fatal = f"implausible row range at block {k} (offset {pos})"
            break
        meta_end = pos + meta_size + ptr_bytes
        (meta_crc,) = struct.unpack_from("<I", data, meta_end)
        meta_ok = zlib.crc32(data[pos:meta_end]) == meta_crc
        pos = meta_end + 4
        errors: list[str] = []
        index_health, next_pos = _scrub_record(
            data, pos, end, "index", index_table, use_huffman, use_delta
        )
        if next_pos is None:
            fatal = f"unwalkable index record at block {k} (offset {pos})"
            blocks.append(BlockHealth(k, block_offset, meta_ok, None, None,
                                      ("index record unwalkable",)))
            break
        pos = next_pos
        value_health, next_pos = _scrub_record(
            data, pos, end, "value", value_table, use_huffman, False
        )
        if next_pos is None:
            fatal = f"unwalkable value record at block {k} (offset {pos})"
            blocks.append(BlockHealth(k, block_offset, meta_ok, index_health, None,
                                      ("value record unwalkable",)))
            break
        pos = next_pos
        blocks.append(
            BlockHealth(k, block_offset, meta_ok, index_health, value_health,
                        tuple(errors))
        )
    else:
        if pos != end:
            fatal = f"{end - pos} trailing bytes after last block"
    return ScrubReport(
        nbytes=nbytes, magic_ok=magic_ok, header_ok=header_ok,
        trailer_ok=trailer_ok, nblocks=nblocks, blocks=tuple(blocks), fatal=fatal,
    )
