"""On-disk container for compressed matrix plans (``.dsh`` files).

The architecture's whole premise is that matrices *live* in their
compressed form; this container makes that durable. Layout (little-endian):

.. code-block:: text

    magic   8s   b"RPRODSH2"
    flags   u8   bit0 = delta, bit1 = huffman / index table,
                 bit2 = tagged records, bit3 = value table (tagged only)
    u32     block_bytes
    u32     nrows, u32 ncols, u32 nblocks
    u64     nnz
    [tables]  256 B index lengths iff bit1, 256 B value lengths iff
              bit3 (tagged) / bit1 (legacy: both tables or neither)
    u32     crc32 of everything from magic through the tables (header CRC)
    per block:
      u32 row_start, u32 row_end, u8 leading_partial, u64 nnz_start
      u32 x (row_end - row_start + 1)   local row_ptr
      u32 crc32 of the block meta above (meta CRC)
      2 records (index, value):
        [u8 codec tag]  only when flags bit2 (tagged) is set
        u32 orig_len, u32 snappy_len, u32 bit_len, u32 payload_len,
        u32 crc32(tag byte if tagged + record header + payload),
        payload bytes
    u32     crc32 of every preceding byte (stream trailer)

Untagged containers (flags bit2 clear) are the legacy layout, bit-for-bit:
every record follows the header's delta/huffman flags. Tagged containers
(mixed plans) prefix every record with a one-byte codec tag — an OR of
``STAGE_DELTA``/``STAGE_SNAPPY``/``STAGE_HUFFMAN`` naming exactly the
stages that record's payload went through — covered by the record CRC so a
flipped tag is caught before it can misroute a decoder. Tagged containers
also persist each side's Huffman table independently (bit1 index, bit3
value): a stream side whose records are all huffman-free drops its
256-byte table from the file. Bit3 without bit2, or a huffman-tagged
record in a container missing its side's table, is rejected as
corruption.

Corruption is detected in layers, every layer raising a typed
:class:`~repro.codecs.errors.ContainerError` (a ``CodecError``, which
subclasses ``ValueError``):

* the stream trailer CRC rejects any byte flip or truncation up front;
* every region carries a local CRC — the header (flags, shape, tables),
  each block's row metadata, and each record (header *and* payload) — so a
  single flipped byte is caught even if the trailer were recomputed to
  match, and a bad stream never reaches a decoder;
* the parser validates structure independently of every CRC — block row
  ranges must chain contiguously and cover ``nrows``, local ``row_ptr``
  must be monotone and fit the block's byte budget, record ``orig_len``
  must match the row_ptr entry count, and decoded column indices must fall
  inside ``ncols`` — so even a wholly forged stream cannot make the
  loader allocate unbounded memory or return silently wrong data.
"""

from __future__ import annotations

import io
import mmap
import os
import struct
import zlib
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass
from os import PathLike

import numpy as np

from repro.codecs.errors import (
    CodecError,
    ContainerError,
    TruncatedContainerError,
)
from repro.codecs.huffman import HuffmanTable
from repro.codecs.pipeline import (
    STAGE_HUFFMAN,
    STAGE_SNAPPY,
    TAG_MASK,
    BlockRecord,
    MatrixCompression,
)
from repro.sparse.blocked import BlockedCSR, CSRBlock
from repro.sparse.csr import CSRMatrix
from repro import faults

MAGIC = b"RPRODSH2"

_FLAG_DELTA = 1
_FLAG_HUFFMAN = 2
_FLAG_TAGGED = 4
#: Tagged containers carry tables per stream side: ``_FLAG_HUFFMAN`` means
#: the *index* table is present and ``_FLAG_VTABLE`` the *value* table —
#: an adaptive plan that huffmans only one side doesn't pay for the other
#: side's 256-byte table. Untagged (legacy) containers keep the original
#: all-or-nothing meaning of ``_FLAG_HUFFMAN``; ``_FLAG_VTABLE`` is only
#: valid alongside ``_FLAG_TAGGED``.
_FLAG_VTABLE = 8

#: Upper bound accepted for the per-block byte budget: real plans use 8 KB
#: (UDP) or 32 KB (CPU); anything above this is a corrupt header, and the
#: cap keeps a forged budget from licensing huge per-block allocations.
MAX_BLOCK_BYTES = 1 << 30


def _write_record(out: io.BufferedIOBase, record: BlockRecord, tagged: bool) -> None:
    header = struct.pack(
        "<IIII",
        record.orig_len,
        record.snappy_len,
        record.bit_len,
        len(record.payload),
    )
    if tagged:
        # The tag byte rides under the record CRC: a flipped tag fails the
        # CRC check instead of silently rerouting the decoder.
        header = struct.pack("<B", record.tag) + header
    out.write(header)
    out.write(struct.pack("<I", zlib.crc32(record.payload, zlib.crc32(header))))
    out.write(record.payload)


def _read_record(
    data: memoryview, pos: int, tagged: bool = False
) -> tuple[BlockRecord, int]:
    tag: int | None = None
    if tagged:
        (tag,) = struct.unpack_from("<B", data, pos)
        if tag > TAG_MASK:
            raise ContainerError("container corruption: invalid codec tag")
    hdr_len = 17 if tagged else 16
    header = bytes(data[pos : pos + hdr_len])
    orig_len, snappy_len, bit_len, payload_len = struct.unpack_from(
        "<IIII", data, pos + (1 if tagged else 0)
    )
    (crc,) = struct.unpack_from("<I", data, pos + hdr_len)
    pos += hdr_len + 4
    payload = bytes(data[pos : pos + payload_len])
    if len(payload) != payload_len:
        raise TruncatedContainerError("truncated container: record payload")
    if zlib.crc32(payload, zlib.crc32(header)) != crc:
        raise ContainerError("container corruption: record CRC mismatch")
    pos += payload_len
    record = BlockRecord(
        orig_len, snappy_len, bit_len, payload,
        payload_crc=zlib.crc32(payload), tag=tag,
    )
    return record, pos


def _plan_tagged(plan: MatrixCompression) -> bool:
    """Whether a plan serializes with per-record codec tags.

    All-or-nothing: a plan whose records mix tagged and untagged entries
    has no consistent wire form and is rejected.
    """
    tags = [r.tag for r in plan.index_records] + [r.tag for r in plan.value_records]
    if not tags:
        return False
    n_tagged = sum(1 for t in tags if t is not None)
    if n_tagged == 0:
        return False
    if n_tagged != len(tags):
        raise ValueError(
            "cannot serialize a plan mixing tagged and untagged records"
        )
    return True


def save_plan(plan: MatrixCompression, dest: str | PathLike | io.BufferedIOBase) -> None:
    """Serialize a plan to a ``.dsh`` container (stream-CRC trailed)."""
    if isinstance(dest, (str, PathLike)):
        with open(dest, "wb") as fh:
            save_plan(plan, fh)
            return
    buf = io.BytesIO()
    buf.write(MAGIC)
    tagged = _plan_tagged(plan)
    flags = _FLAG_DELTA if plan.use_delta else 0
    if tagged:
        # Tables travel per stream side: pay only for the sides that
        # actually huffman (table amortization is the point of a mixed
        # plan on small matrices).
        has_itab = plan.index_table is not None
        has_vtab = plan.value_table is not None
        for rec, present in (
            *((r, has_itab) for r in plan.index_records),
            *((r, has_vtab) for r in plan.value_records),
        ):
            if rec.tag & STAGE_HUFFMAN and not present:
                raise ValueError(
                    "cannot serialize huffman-tagged records without tables"
                )
        flags |= _FLAG_TAGGED
        flags |= _FLAG_HUFFMAN if has_itab else 0
        flags |= _FLAG_VTABLE if has_vtab else 0
    else:
        has_itab = has_vtab = plan.use_huffman
        flags |= _FLAG_HUFFMAN if plan.use_huffman else 0
    m, n = plan.blocked.shape
    buf.write(struct.pack("<BIIIIQ", flags, plan.block_bytes, m, n, plan.nblocks, plan.nnz))
    if has_itab:
        assert plan.index_table is not None
        buf.write(plan.index_table.serialize())
    if has_vtab:
        assert plan.value_table is not None
        buf.write(plan.value_table.serialize())
    buf.write(struct.pack("<I", zlib.crc32(buf.getvalue())))
    for block, irec, vrec in zip(
        plan.blocked.blocks, plan.index_records, plan.value_records
    ):
        meta = struct.pack(
            "<IIBQ", block.row_start, block.row_end, int(block.leading_partial),
            block.nnz_start,
        ) + block.row_ptr.astype("<u4").tobytes()
        buf.write(meta)
        buf.write(struct.pack("<I", zlib.crc32(meta)))
        _write_record(buf, irec, tagged)
        _write_record(buf, vrec, tagged)
    body = buf.getvalue()
    dest.write(body)
    dest.write(struct.pack("<I", zlib.crc32(body)))


def load_plan(source: str | PathLike | io.BufferedIOBase | bytes) -> MatrixCompression:
    """Load a container and reconstruct a fully-functional plan.

    Blocks are decompressed once at load to rebuild the in-memory
    :class:`~repro.sparse.blocked.BlockedCSR` (so SpMV and re-verification
    work immediately); the records themselves are kept verbatim.

    Raises:
        ContainerError: bad magic, CRC mismatch, or inconsistent structure
            (:class:`TruncatedContainerError` when the stream ends early).
    """
    if isinstance(source, (str, PathLike)):
        with open(source, "rb") as fh:
            return load_plan(fh.read())
    if not isinstance(source, bytes):
        source = source.read()
    fault_plan = faults.active()
    if fault_plan is not None:
        source = fault_plan.mutate_container(source)
    try:
        return _parse_plan(memoryview(source))
    except struct.error as exc:
        # struct.unpack_from past the end of a truncated stream.
        raise TruncatedContainerError(f"truncated container: {exc}") from exc


def _parse_plan(data: memoryview) -> MatrixCompression:
    return ContainerReader(data, verify="eager").materialize()


# ---------------------------------------------------------------------------
# Lazily-addressable container access (``ContainerReader``)
# ---------------------------------------------------------------------------

#: Page size used for the ``pages_touched`` accounting (fixed, not the
#: host's, so the metric is comparable across machines).
PAGE_BYTES = 4096

#: How many materialized records each lazy record sequence memoizes. The
#: window only needs to outlive one block's stream→compare→decode span;
#: keeping it small is what bounds resident payload bytes to O(depth × block).
_LAZY_RECORD_MEMO = 32


@dataclass(frozen=True)
class RecordExtent:
    """Byte extent of one stream record inside the container.

    ``offset`` is the first byte of the record on the wire — the codec tag
    byte in tagged containers, the 16-byte record header otherwise; the
    payload spans ``[payload_offset, end)``. The header fields, the codec
    tag, and the record CRC are captured at walk time (cheap), the payload
    bytes are not.
    """

    offset: int
    orig_len: int
    snappy_len: int
    bit_len: int
    payload_len: int
    crc: int
    tag: int | None = None

    @property
    def payload_offset(self) -> int:
        return self.offset + (21 if self.tag is not None else 20)

    @property
    def end(self) -> int:
        return self.payload_offset + self.payload_len

    @property
    def stored_bytes(self) -> int:
        """Bytes the record occupies in DRAM once materialized (see
        :attr:`BlockRecord.stored_bytes`)."""
        return 12 + self.payload_len


@dataclass(frozen=True)
class BlockExtent:
    """Byte extents and row metadata of one block, payloads untouched."""

    block_id: int
    offset: int
    row_start: int
    row_end: int
    leading_partial: bool
    nnz_start: int
    index: RecordExtent
    value: RecordExtent

    @property
    def end(self) -> int:
        return self.value.end


def _page_span(start: int, end: int) -> int:
    """Number of PAGE_BYTES pages the byte range [start, end) touches."""
    if end <= start:
        return 0
    return (end - 1) // PAGE_BYTES - start // PAGE_BYTES + 1


class _LazyRecords(Sequence):
    """Sequence view over one stream's records, materialized on access.

    ``__getitem__`` resolves the record's extent, slices header+payload out
    of the reader's mapping, and verifies the record CRC — so a lazy reader
    raises the exact same record-layer errors eager loading would, just at
    access time. A small LRU memo keeps the *same object* coming back for
    repeated accesses within a working window (the executor compares
    streamed records by identity to detect DRAM-side faults) without
    retaining every payload.
    """

    def __init__(self, reader: "ContainerReader", stream: str):
        self._reader = reader
        self._stream = stream
        self._memo: OrderedDict[int, BlockRecord] = OrderedDict()

    def __len__(self) -> int:
        return self._reader.nblocks

    def __getitem__(self, i):
        if isinstance(i, slice):
            return tuple(self[j] for j in range(*i.indices(len(self))))
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(i)
        rec = self._memo.get(i)
        if rec is not None:
            self._memo.move_to_end(i)
            return rec
        rec = self._reader.record(i, self._stream)
        self._memo[i] = rec
        while len(self._memo) > _LAZY_RECORD_MEMO:
            self._memo.popitem(last=False)
        return rec

    def __reduce__(self):
        # A process-pool engine pickles the whole plan; the mmap behind this
        # view cannot cross the process boundary, so ship materialized
        # records instead (loses laziness, keeps correctness).
        return (tuple, (tuple(self),))


class ContainerReader:
    """Lazily-addressable view of a ``.dsh`` container.

    Maps the file with ``mmap`` (or wraps an in-memory buffer) and resolves
    per-block record *extents* from the block metadata without materializing
    payload bytes. Structural validation — magic, header fields and CRC,
    table deserialization, block row-range chaining, row_ptr monotonicity,
    byte budgets, nnz chaining, record framing and truncation, row
    coverage, trailing bytes — always runs at construction, with the exact
    error types and messages of :func:`load_plan`. What ``verify`` controls
    is the CRC layers over *payload bytes*:

    * ``verify="eager"`` — the stream trailer CRC is checked up front and
      every record CRC is checked during the walk, reproducing
      :func:`load_plan`'s behavior (and check *order*) exactly.
    * ``verify="lazy"`` — the trailer check is skipped (call
      :meth:`verify_stream` to run it on demand) and record CRCs are
      checked when a record is materialized by :meth:`record`, raising the
      identical ``ContainerError("container corruption: record CRC
      mismatch")`` eager loading would have raised.

    Unlike :func:`load_plan`, the reader never routes the stream through
    the container-site fault hook (mutating the whole stream would defeat
    the zero-copy mapping); record-site and DRAM-site fault injection still
    apply downstream, and file-level corruption tests simply corrupt the
    file. Decode-layer checks (column bounds, header-nnz agreement) happen
    where decode happens: at :meth:`materialize` for eager loads, in the
    executor for streamed runs.
    """

    def __init__(
        self,
        source: "str | PathLike | bytes | bytearray | memoryview | io.BufferedIOBase",
        *,
        verify: str = "eager",
        residency_budget: int | None = None,
    ):
        if verify not in ("eager", "lazy"):
            raise ValueError(f"verify must be 'eager' or 'lazy', got {verify!r}")
        if residency_budget is not None and residency_budget < PAGE_BYTES:
            raise ValueError(
                f"residency_budget must be >= {PAGE_BYTES} bytes, got {residency_budget}"
            )
        self.verify = verify
        self.residency_budget = residency_budget
        self._release_frontier = 0
        self.path: str | None = None
        self._file = None
        self._mm = None
        self._buf = None
        self._closed = False
        self.pages_touched = 0
        self._crc_memo: dict[tuple[int, str], int] | None = None
        self.crc_skips = 0
        if isinstance(source, (str, PathLike)):
            self.path = os.fspath(source)
            self._file = open(self.path, "rb")
            try:
                self._mm = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError:
                # Zero-length files cannot be mapped; an empty buffer walks
                # to the same TruncatedContainerError load_plan raises.
                self._buf = self._file.read()
        elif isinstance(source, (bytes, bytearray, memoryview)):
            self._buf = source
        elif hasattr(source, "read"):
            self._buf = source.read()
        else:
            raise TypeError(f"unsupported container source: {type(source).__name__}")
        self._data = memoryview(self._mm if self._mm is not None else self._buf)
        self._plan: MatrixCompression | None = None
        try:
            self._walk()
        except struct.error as exc:
            self.close()
            raise TruncatedContainerError(f"truncated container: {exc}") from exc
        except Exception:
            self.close()
            raise
        if self.residency_budget is not None and self._mm is not None:
            # The walk released pages behind its cursor as it went; drop the
            # final in-budget window too, and rewind the release frontier so
            # record streaming (which restarts at the file head) can release
            # behind its own cursor.
            try:
                self._mm.madvise(mmap.MADV_DONTNEED)
            except (AttributeError, ValueError, OSError):  # pragma: no cover
                pass
            self._release_frontier = 0

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release the mapping and file handle (idempotent)."""
        if self._closed:
            return
        self._closed = True
        data = self.__dict__.pop("_data", None)
        if data is not None:
            data.release()
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._file is not None:
            self._file.close()
            self._file = None
        self._buf = None

    def __enter__(self) -> "ContainerReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    @property
    def _view(self) -> memoryview:
        if self._closed:
            raise ValueError("ContainerReader is closed")
        return self._data

    # -- structural walk ----------------------------------------------------

    def _walk(self) -> None:
        data = self._data
        if len(data) < len(MAGIC) + 4:
            raise TruncatedContainerError(
                "truncated container: shorter than magic + trailer"
            )
        if bytes(data[:8]) != MAGIC:
            raise ContainerError("not a repro DSH container (bad magic)")
        if self.verify == "eager":
            self.verify_stream()
        end = len(data) - 4
        pos = 8
        flags, block_bytes, m, n, nblocks, nnz = struct.unpack_from("<BIIIIQ", data, pos)
        pos += struct.calcsize("<BIIIIQ")
        use_delta = bool(flags & _FLAG_DELTA)
        tagged = bool(flags & _FLAG_TAGGED)
        if flags & _FLAG_VTABLE and not tagged:
            raise ContainerError(
                "container corruption: value-table flag without codec tags"
            )
        has_itab = bool(flags & _FLAG_HUFFMAN)
        has_vtab = bool(flags & _FLAG_VTABLE) if tagged else has_itab
        use_huffman = has_itab or has_vtab
        if not 12 <= block_bytes <= MAX_BLOCK_BYTES:
            raise ContainerError(
                f"container corruption: implausible block_bytes {block_bytes}"
            )
        if nblocks == 0 and (m or nnz):
            raise ContainerError("container corruption: blockless container with rows/nnz")
        # _walk_record consults these while the walk is still in flight.
        self.tagged = tagged
        self.use_delta = use_delta
        self.use_huffman = use_huffman
        self._has_itab = has_itab
        self._has_vtab = has_vtab
        entries_cap = block_bytes // 12
        table_pos = pos
        table_bytes = 256 * (int(has_itab) + int(has_vtab))
        if table_bytes:
            if pos + table_bytes + 4 > end:
                raise TruncatedContainerError("truncated container: huffman tables")
            pos += table_bytes
        # Header CRC is verified before the tables are even deserialized, so
        # a corrupt length byte can never reach the table constructor.
        (header_crc,) = struct.unpack_from("<I", data, pos)
        if zlib.crc32(data[:pos]) != header_crc:
            raise ContainerError("container corruption: header CRC mismatch")
        pos += 4
        index_table = value_table = None
        if has_itab:
            index_table = HuffmanTable.deserialize(
                bytes(data[table_pos : table_pos + 256])
            )
        if has_vtab:
            voff = table_pos + (256 if has_itab else 0)
            value_table = HuffmanTable.deserialize(bytes(data[voff : voff + 256]))

        extents: list[BlockExtent] = []
        row_ptrs: list[np.ndarray] = []
        prev_row_end = 0
        running_nnz = 0
        for k in range(nblocks):
            meta_start = pos
            row_start, row_end, leading, nnz_start = struct.unpack_from("<IIBQ", data, pos)
            pos += struct.calcsize("<IIBQ")
            nrows_local = row_end - row_start
            if nrows_local < 1:
                raise ContainerError("container corruption: empty block row range")
            if row_end > m:
                raise ContainerError("container corruption: block rows beyond nrows")
            # Blocks must chain contiguously: a continuation block re-opens
            # the previous block's last row, anything else starts right
            # after it.
            expected_start = prev_row_end - 1 if leading else prev_row_end
            if row_start != max(expected_start, 0) or (leading and prev_row_end == 0):
                raise ContainerError("container corruption: block row ranges do not chain")
            prev_row_end = row_end
            ptr_bytes = 4 * (nrows_local + 1)
            if pos + ptr_bytes + 4 > end:
                raise TruncatedContainerError("truncated container: row_ptr")
            row_ptr = np.frombuffer(data[pos : pos + ptr_bytes], dtype="<u4").astype(
                np.int64
            )
            pos += ptr_bytes
            (meta_crc,) = struct.unpack_from("<I", data, pos)
            if zlib.crc32(data[meta_start:pos]) != meta_crc:
                raise ContainerError("container corruption: block meta CRC mismatch")
            pos += 4
            if row_ptr[0] != 0 or np.any(np.diff(row_ptr) < 0):
                raise ContainerError("container corruption: row_ptr not monotone from 0")
            block_nnz = int(row_ptr[-1])
            if block_nnz > entries_cap:
                raise ContainerError("container corruption: block exceeds its byte budget")
            if nnz_start != running_nnz:
                raise ContainerError("container corruption: nnz_start does not chain")
            running_nnz += block_nnz
            iext, pos = self._walk_record(pos, self._has_itab)
            vext, pos = self._walk_record(pos, self._has_vtab)
            if iext.orig_len != 4 * block_nnz or vext.orig_len != 8 * block_nnz:
                raise ContainerError(
                    "container corruption: record lengths disagree with row_ptr"
                )
            extents.append(
                BlockExtent(
                    block_id=k,
                    offset=meta_start,
                    row_start=row_start,
                    row_end=row_end,
                    leading_partial=bool(leading),
                    nnz_start=nnz_start,
                    index=iext,
                    value=vext,
                )
            )
            row_ptrs.append(row_ptr)
            # The walk itself faults in meta pages across the whole file;
            # under a residency budget, release behind the cursor as we go
            # so even construction peaks at O(budget). Safe: row_ptr was
            # copied out of the mapping by .astype above.
            self._maybe_release(pos)
        if nblocks and prev_row_end != m:
            raise ContainerError("container corruption: blocks do not cover all rows")
        if pos != end:
            raise ContainerError("container corruption: trailing bytes after last block")

        self.shape = (m, n)
        self.nrows = m
        self.ncols = n
        self.nblocks = nblocks
        self.nnz = nnz
        self.block_bytes = block_bytes
        self.use_delta = use_delta
        self.use_huffman = use_huffman
        self.index_table = index_table
        self.value_table = value_table
        self.extents: tuple[BlockExtent, ...] = tuple(extents)
        self._row_ptrs = row_ptrs

    def _walk_record(self, pos: int, table_present: bool) -> tuple[RecordExtent, int]:
        """Capture one record's extent; same framing checks (and, when
        eager, the same CRC check) as :func:`_read_record`, payload bytes
        untouched in lazy mode. ``table_present`` is this stream side's
        table flag — a huffman tag on a table-less side is corruption."""
        data = self._data
        tag: int | None = None
        hdr_pos = pos
        if self.tagged:
            (tag,) = struct.unpack_from("<B", data, pos)
            if tag > TAG_MASK:
                raise ContainerError("container corruption: invalid codec tag")
            if (tag & STAGE_HUFFMAN) and not table_present:
                raise ContainerError(
                    "container corruption: huffman codec tag without tables"
                )
            hdr_pos = pos + 1
        orig_len, snappy_len, bit_len, payload_len = struct.unpack_from(
            "<IIII", data, hdr_pos
        )
        (crc,) = struct.unpack_from("<I", data, hdr_pos + 16)
        if tag is not None and not (tag & STAGE_SNAPPY) and snappy_len != orig_len:
            raise ContainerError(
                "container corruption: snappy-less record lengths disagree"
            )
        ext = RecordExtent(pos, orig_len, snappy_len, bit_len, payload_len, crc, tag)
        if ext.end > len(data):
            raise TruncatedContainerError("truncated container: record payload")
        if self.verify == "eager":
            running = zlib.crc32(data[pos : ext.payload_offset - 4])
            if zlib.crc32(data[ext.payload_offset : ext.end], running) != crc:
                raise ContainerError("container corruption: record CRC mismatch")
        return ext, ext.end

    # -- accessors ----------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total mapped (or buffered) container size in bytes."""
        return len(self._view)

    def verify_stream(self) -> None:
        """Check the stream-trailer CRC (reads the whole mapping once).

        Runs automatically at construction under ``verify="eager"``; under
        ``verify="lazy"`` call it explicitly when a full-stream check is
        worth a sequential pass.
        """
        data = self._view
        (trailer,) = struct.unpack_from("<I", data, len(data) - 4)
        if zlib.crc32(data[:-4]) != trailer:
            raise ContainerError("container corruption: stream CRC mismatch")

    def _extent(self, block_id: int, stream: str) -> RecordExtent:
        if stream == "index":
            return self.extents[block_id].index
        if stream == "value":
            return self.extents[block_id].value
        raise ValueError(f"stream must be 'index' or 'value', got {stream!r}")

    def record_window(self, block_id: int, stream: str) -> tuple[int, int]:
        """``(offset, length)`` of one record — header plus payload."""
        ext = self._extent(block_id, stream)
        return ext.offset, ext.end - ext.offset

    def enable_crc_memo(self) -> None:
        """Opt in to verified-once record CRCs.

        After a record's CRC passes once, later materializations of the
        same ``(block, stream)`` skip both the record-CRC check and the
        payload-CRC restamp (the memoized payload CRC is reused), so
        steady-state iteration over an immutable container pays the
        verification cost exactly once per record. First-touch semantics
        are unchanged — corruption present before the first access raises
        identically — and :meth:`record_health` (scrub) always re-checks.
        Off by default; :class:`~repro.core.session.ExecutionSession`
        enables it on its long-lived reader.
        """
        if self._crc_memo is None:
            self._crc_memo = {}

    def record(self, block_id: int, stream: str) -> BlockRecord:
        """Materialize one record, verifying its CRC at access time.

        Raises the identical errors eager loading raises for the same
        corruption: ``TruncatedContainerError("truncated container: record
        payload")`` if the mapping no longer covers the payload, and
        ``ContainerError("container corruption: record CRC mismatch")`` on
        a CRC failure. With :meth:`enable_crc_memo`, accesses after the
        first verified one skip the redundant CRC passes.
        """
        ext = self._extent(block_id, stream)
        data = self._view
        header = bytes(data[ext.offset : ext.payload_offset - 4])
        payload = bytes(data[ext.payload_offset : ext.end])
        if len(payload) != ext.payload_len:
            raise TruncatedContainerError("truncated container: record payload")
        memo = self._crc_memo
        payload_crc = memo.get((block_id, stream)) if memo is not None else None
        if payload_crc is None:
            if zlib.crc32(payload, zlib.crc32(header)) != ext.crc:
                raise ContainerError("container corruption: record CRC mismatch")
            payload_crc = zlib.crc32(payload)
            if memo is not None:
                memo[(block_id, stream)] = payload_crc
        else:
            self.crc_skips += 1
        self.pages_touched += _page_span(ext.offset, ext.end)
        self._maybe_release(ext.offset)
        return BlockRecord(
            ext.orig_len,
            ext.snappy_len,
            ext.bit_len,
            payload,
            payload_crc=payload_crc,
            tag=ext.tag,
        )

    def _maybe_release(self, current_offset: int) -> None:
        """Drop mapped pages that fell more than ``residency_budget`` bytes
        behind the access cursor.

        Records are copied out of the mapping on materialization, so pages
        behind the cursor hold nothing live; for the sequential block-order
        access pattern of a streaming run this keeps peak mapped residency
        at O(residency_budget) no matter the container size. Released pages
        simply re-fault from the file if revisited.
        """
        if self.residency_budget is None or self._mm is None:
            return
        target = (
            (current_offset - self.residency_budget) // PAGE_BYTES
        ) * PAGE_BYTES
        if target <= self._release_frontier:
            return
        try:
            self._mm.madvise(
                mmap.MADV_DONTNEED, self._release_frontier, target - self._release_frontier
            )
        except (AttributeError, ValueError, OSError):  # pragma: no cover
            return
        self._release_frontier = target

    def record_health(self, block_id: int, stream: str) -> tuple[BlockRecord, bool]:
        """Tolerant variant of :meth:`record` for scrubbing: always returns
        the record, plus whether its CRC matched."""
        ext = self._extent(block_id, stream)
        data = self._view
        header = bytes(data[ext.offset : ext.payload_offset - 4])
        payload = bytes(data[ext.payload_offset : ext.end])
        crc_ok = zlib.crc32(payload, zlib.crc32(header)) == ext.crc
        record = BlockRecord(
            ext.orig_len,
            ext.snappy_len,
            ext.bit_len,
            payload,
            payload_crc=zlib.crc32(payload),
            tag=ext.tag,
        )
        return record, crc_ok

    def shell_blocks(self) -> tuple[CSRBlock, ...]:
        """Structure-only CSR blocks: real row metadata, zero payloads.

        ``np.zeros`` payload arrays stay copy-on-write untouched pages, so
        a shell of a multi-GB matrix costs O(rows), not O(nnz), resident.
        """
        return tuple(
            CSRBlock(
                row_start=ext.row_start,
                row_end=ext.row_end,
                row_ptr=ptr,
                col_idx=np.zeros(int(ptr[-1]), dtype=np.int32),
                val=np.zeros(int(ptr[-1]), dtype=np.float64),
                nnz_start=ext.nnz_start,
                leading_partial=ext.leading_partial,
            )
            for ext, ptr in zip(self.extents, self._row_ptrs)
        )

    def plan(self) -> MatrixCompression:
        """A streaming :class:`MatrixCompression` view over the mapping.

        The blocked structure holds shell blocks (row metadata only) and
        the record sequences are lazy: payload bytes are sliced out of the
        mapping when a record is accessed, with record CRCs checked at that
        moment. Memoized per reader.
        """
        if self._plan is None:
            self._plan = MatrixCompression(
                blocked=BlockedCSR(self.shape, self.shell_blocks(), self.block_bytes),
                index_records=_LazyRecords(self, "index"),
                value_records=_LazyRecords(self, "value"),
                index_table=self.index_table,
                value_table=self.value_table,
                use_delta=self.use_delta,
                use_huffman=self.use_huffman,
                block_bytes=self.block_bytes,
            )
        return self._plan

    def materialize(self) -> MatrixCompression:
        """Fully materialize the plan (what :func:`load_plan` returns).

        Decodes every block to rebuild the raw :class:`BlockedCSR`, then
        runs the decode-layer checks in :func:`load_plan`'s order: column
        bounds per block, total nnz against the header.
        """
        m, n = self.shape
        index_records = tuple(self.record(i, "index") for i in range(self.nblocks))
        value_records = tuple(self.record(i, "value") for i in range(self.nblocks))
        shell = MatrixCompression(
            blocked=BlockedCSR((m, n), self.shell_blocks(), self.block_bytes),
            index_records=index_records,
            value_records=value_records,
            index_table=self.index_table,
            value_table=self.value_table,
            use_delta=self.use_delta,
            use_huffman=self.use_huffman,
            block_bytes=self.block_bytes,
        )
        real_blocks = tuple(shell.decompress_block(i) for i in range(self.nblocks))
        for block in real_blocks:
            if block.nnz and (block.col_idx.min() < 0 or block.col_idx.max() >= n):
                raise ContainerError("container corruption: column index outside ncols")
        plan = MatrixCompression(
            blocked=BlockedCSR((m, n), real_blocks, self.block_bytes),
            index_records=index_records,
            value_records=value_records,
            index_table=self.index_table,
            value_table=self.value_table,
            use_delta=self.use_delta,
            use_huffman=self.use_huffman,
            block_bytes=self.block_bytes,
        )
        if plan.nnz != self.nnz:
            raise ContainerError(
                f"container corruption: nnz {plan.nnz} != header {self.nnz}"
            )
        return plan


def load_csr(source: str | PathLike | io.BufferedIOBase | bytes) -> CSRMatrix:
    """Load a container straight into an uncompressed :class:`CSRMatrix`."""
    plan = load_plan(source)
    m, n = plan.blocked.shape
    col_idx = np.concatenate(
        [b.col_idx for b in plan.blocked.blocks]
    ) if plan.nblocks else np.zeros(0, dtype=np.int32)
    val = np.concatenate(
        [b.val for b in plan.blocked.blocks]
    ) if plan.nblocks else np.zeros(0, dtype=np.float64)
    # Global row_ptr from per-block local pointers (split rows merge).
    row_ptr = np.zeros(m + 1, dtype=np.int64)
    for block in plan.blocked.blocks:
        counts = np.diff(block.row_ptr)
        row_ptr[block.row_start + 1 : block.row_end + 1] += counts
    row_ptr = np.cumsum(row_ptr)
    return CSRMatrix((m, n), row_ptr, col_idx, val)


# ---------------------------------------------------------------------------
# Scrubbing (tolerant per-block health walk; the ``repro scrub`` command)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecordHealth:
    """Health of one stream record: CRC layer and decode layer."""

    stream: str
    crc_ok: bool
    decode_ok: bool
    payload_bytes: int
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.crc_ok and self.decode_ok


@dataclass(frozen=True)
class BlockHealth:
    """Health of one block: row-metadata CRC plus both stream records."""

    block_id: int
    offset: int
    meta_ok: bool
    index: RecordHealth | None
    value: RecordHealth | None
    errors: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return (
            self.meta_ok
            and not self.errors
            and self.index is not None
            and self.index.ok
            and self.value is not None
            and self.value.ok
        )


@dataclass(frozen=True)
class ScrubReport:
    """Per-block health of a ``.dsh`` container.

    Unlike :func:`load_plan` — which rejects the whole stream on the first
    CRC or structure failure — the scrubber keeps walking, so one flipped
    byte reports as one sick block instead of an opaque load error. The
    same layered CRCs drive both; scrub just refuses to give up early.
    """

    nbytes: int
    magic_ok: bool
    header_ok: bool
    trailer_ok: bool
    nblocks: int
    blocks: tuple[BlockHealth, ...] = ()
    fatal: str | None = None

    @property
    def blocks_ok(self) -> int:
        return sum(1 for b in self.blocks if b.ok)

    @property
    def blocks_bad(self) -> int:
        return len(self.blocks) - self.blocks_ok

    @property
    def healthy(self) -> bool:
        return (
            self.magic_ok
            and self.header_ok
            and self.trailer_ok
            and self.fatal is None
            and len(self.blocks) == self.nblocks
            and self.blocks_bad == 0
        )

    def as_dict(self) -> dict:
        return {
            "nbytes": self.nbytes,
            "magic_ok": self.magic_ok,
            "header_ok": self.header_ok,
            "trailer_ok": self.trailer_ok,
            "nblocks_declared": self.nblocks,
            "blocks_walked": len(self.blocks),
            "blocks_ok": self.blocks_ok,
            "blocks_bad": self.blocks_bad,
            "healthy": self.healthy,
            "fatal": self.fatal,
            "blocks": [
                {
                    "block": b.block_id,
                    "offset": b.offset,
                    "meta_ok": b.meta_ok,
                    "index": None if b.index is None else {
                        "crc_ok": b.index.crc_ok,
                        "decode_ok": b.index.decode_ok,
                        "payload_bytes": b.index.payload_bytes,
                        "error": b.index.error,
                    },
                    "value": None if b.value is None else {
                        "crc_ok": b.value.crc_ok,
                        "decode_ok": b.value.decode_ok,
                        "payload_bytes": b.value.payload_bytes,
                        "error": b.value.error,
                    },
                    "errors": list(b.errors),
                    "ok": b.ok,
                }
                for b in self.blocks
            ],
        }


def _scrub_record(
    data: memoryview,
    pos: int,
    end: int,
    stream: str,
    table: "HuffmanTable | None",
    use_huffman: bool,
    apply_delta: bool,
    tagged: bool = False,
) -> tuple[RecordHealth | None, int | None]:
    """Walk one record leniently. Returns (health, next_pos); (None, None)
    when the stream is too mangled to even skip past the record."""
    from repro.codecs.pipeline import decode_record

    hdr_len = 17 if tagged else 16
    if pos + hdr_len + 4 > end:
        return None, None
    tag: int | None = None
    if tagged:
        (tag,) = struct.unpack_from("<B", data, pos)
        tag &= TAG_MASK  # a flipped tag byte already fails the record CRC
    header = bytes(data[pos : pos + hdr_len])
    orig_len, snappy_len, bit_len, payload_len = struct.unpack_from(
        "<IIII", data, pos + (1 if tagged else 0)
    )
    (crc,) = struct.unpack_from("<I", data, pos + hdr_len)
    pos += hdr_len + 4
    if pos + payload_len > end:
        return None, None
    payload = bytes(data[pos : pos + payload_len])
    pos += payload_len
    crc_ok = zlib.crc32(payload, zlib.crc32(header)) == crc
    record = BlockRecord(
        orig_len, snappy_len, bit_len, payload,
        payload_crc=zlib.crc32(payload), tag=tag,
    )
    needs_table = (tag & STAGE_HUFFMAN) if tag is not None else use_huffman
    decode_ok, error = True, None
    if needs_table and table is None:
        decode_ok, error = False, "no usable huffman table"
    else:
        try:
            decode_record(record, table, use_huffman=use_huffman, apply_delta=apply_delta)
        except CodecError as exc:
            decode_ok, error = False, str(exc)
    return RecordHealth(stream, crc_ok, decode_ok, payload_len, error), pos


def _scrub_via_reader(reader: ContainerReader) -> ScrubReport:
    """Health report over a structurally-sound container.

    Reuses the reader's already-resolved record extents instead of
    re-scanning the stream: every block/record boundary comes straight from
    :attr:`ContainerReader.extents`; only the CRC and decode layers are
    (tolerantly) exercised here.
    """
    from repro.codecs.pipeline import decode_record

    try:
        reader.verify_stream()
        trailer_ok = True
    except ContainerError:
        trailer_ok = False
    blocks: list[BlockHealth] = []
    for ext in reader.extents:
        healths: dict[str, RecordHealth] = {}
        for stream, table, apply_delta in (
            ("index", reader.index_table, reader.use_delta),
            ("value", reader.value_table, False),
        ):
            record, crc_ok = reader.record_health(ext.block_id, stream)
            decode_ok, error = True, None
            needs_table = (
                bool(record.tag & STAGE_HUFFMAN)
                if record.tag is not None
                else reader.use_huffman
            )
            if needs_table and table is None:
                decode_ok, error = False, "no usable huffman table"
            else:
                try:
                    decode_record(
                        record, table,
                        use_huffman=reader.use_huffman, apply_delta=apply_delta,
                    )
                except CodecError as exc:
                    decode_ok, error = False, str(exc)
            healths[stream] = RecordHealth(
                stream, crc_ok, decode_ok,
                len(record.payload), error,
            )
        blocks.append(
            BlockHealth(
                ext.block_id, ext.offset, True, healths["index"], healths["value"],
            )
        )
    return ScrubReport(
        nbytes=reader.nbytes, magic_ok=True, header_ok=True, trailer_ok=trailer_ok,
        nblocks=reader.nblocks, blocks=tuple(blocks), fatal=None,
    )


def scrub_container(source: "str | PathLike | io.BufferedIOBase | bytes") -> ScrubReport:
    """Walk a ``.dsh`` container and report per-block health.

    Never raises on corruption: every CRC layer (trailer, header, block
    meta, record) and every record decode is attempted independently and
    reported, so an operator can see *which* blocks a damaged file loses
    before deciding whether ``degrade``-mode SpMV or a re-encode is the
    right response. Only an unreadable source (OSError) propagates.

    Structurally-sound containers (the common case: healthy, or record
    payload/trailer corruption) are walked through
    :class:`ContainerReader`'s extents — one resolution of the boundaries
    shared with every other consumer. Streams the reader rejects
    (truncation, meta/header damage, broken chaining) fall back to the
    tolerant legacy scan below.
    """
    if isinstance(source, (str, PathLike)):
        with open(source, "rb") as fh:
            return scrub_container(fh.read())
    if not isinstance(source, bytes):
        source = source.read()
    try:
        with ContainerReader(source, verify="lazy") as reader:
            return _scrub_via_reader(reader)
    except CodecError:
        pass
    data = memoryview(source)
    nbytes = len(data)
    header_fmt = "<BIIIIQ"
    header_size = struct.calcsize(header_fmt)
    if nbytes < len(MAGIC) + 4 + header_size:
        return ScrubReport(
            nbytes=nbytes, magic_ok=bytes(data[:8]) == MAGIC if nbytes >= 8 else False,
            header_ok=False, trailer_ok=False, nblocks=0,
            fatal="container shorter than its fixed header",
        )
    magic_ok = bytes(data[:8]) == MAGIC
    (trailer,) = struct.unpack_from("<I", data, nbytes - 4)
    trailer_ok = zlib.crc32(data[:-4]) == trailer
    end = nbytes - 4
    pos = 8
    flags, block_bytes, m, n, nblocks, nnz = struct.unpack_from(header_fmt, data, pos)
    pos += header_size
    use_delta = bool(flags & _FLAG_DELTA)
    tagged = bool(flags & _FLAG_TAGGED)
    has_itab = bool(flags & _FLAG_HUFFMAN)
    has_vtab = bool(flags & _FLAG_VTABLE) if tagged else has_itab
    table_pos = pos
    table_bytes = 256 * (int(has_itab) + int(has_vtab))
    if table_bytes:
        if pos + table_bytes + 4 > end:
            return ScrubReport(
                nbytes=nbytes, magic_ok=magic_ok, header_ok=False,
                trailer_ok=trailer_ok, nblocks=nblocks,
                fatal="truncated before huffman tables",
            )
        pos += table_bytes
    if pos + 4 > end:
        return ScrubReport(
            nbytes=nbytes, magic_ok=magic_ok, header_ok=False,
            trailer_ok=trailer_ok, nblocks=nblocks,
            fatal="truncated before header CRC",
        )
    (header_crc,) = struct.unpack_from("<I", data, pos)
    header_ok = magic_ok and zlib.crc32(data[:pos]) == header_crc
    pos += 4
    index_table = value_table = None
    if has_itab:
        try:
            index_table = HuffmanTable.deserialize(bytes(data[table_pos : table_pos + 256]))
        except CodecError:
            pass  # reported per record as "no usable huffman table"
    if has_vtab:
        voff = table_pos + (256 if has_itab else 0)
        try:
            value_table = HuffmanTable.deserialize(bytes(data[voff : voff + 256]))
        except CodecError:
            pass  # reported per record as "no usable huffman table"

    blocks: list[BlockHealth] = []
    fatal = None
    meta_fmt = "<IIBQ"
    meta_size = struct.calcsize(meta_fmt)
    for k in range(nblocks):
        block_offset = pos
        if pos + meta_size > end:
            fatal = f"truncated at block {k} metadata (offset {pos})"
            break
        row_start, row_end, leading, nnz_start = struct.unpack_from(meta_fmt, data, pos)
        nrows_local = row_end - row_start
        ptr_bytes = 4 * (nrows_local + 1)
        if nrows_local < 1 or nrows_local > m or pos + meta_size + ptr_bytes + 4 > end:
            fatal = f"implausible row range at block {k} (offset {pos})"
            break
        meta_end = pos + meta_size + ptr_bytes
        (meta_crc,) = struct.unpack_from("<I", data, meta_end)
        meta_ok = zlib.crc32(data[pos:meta_end]) == meta_crc
        pos = meta_end + 4
        errors: list[str] = []
        index_health, next_pos = _scrub_record(
            data, pos, end, "index", index_table, has_itab, use_delta, tagged
        )
        if next_pos is None:
            fatal = f"unwalkable index record at block {k} (offset {pos})"
            blocks.append(BlockHealth(k, block_offset, meta_ok, None, None,
                                      ("index record unwalkable",)))
            break
        pos = next_pos
        value_health, next_pos = _scrub_record(
            data, pos, end, "value", value_table, has_vtab, False, tagged
        )
        if next_pos is None:
            fatal = f"unwalkable value record at block {k} (offset {pos})"
            blocks.append(BlockHealth(k, block_offset, meta_ok, index_health, None,
                                      ("value record unwalkable",)))
            break
        pos = next_pos
        blocks.append(
            BlockHealth(k, block_offset, meta_ok, index_health, value_health,
                        tuple(errors))
        )
    else:
        if pos != end:
            fatal = f"{end - pos} trailing bytes after last block"
    return ScrubReport(
        nbytes=nbytes, magic_ok=magic_ok, header_ok=header_ok,
        trailer_ok=trailer_ok, nblocks=nblocks, blocks=tuple(blocks), fatal=fatal,
    )
