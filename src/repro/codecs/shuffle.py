"""Byte-plane shuffle for float64 value streams.

Another "novel encoding on top of CSR" (paper future work): doubles from
physical simulations share exponent and high-mantissa bytes; transposing an
8-byte-lane block so all first bytes come first, then all second bytes,
etc. (the classic HDF5/Blosc *shuffle* filter) groups those similar bytes
into runs that Snappy and Huffman can finally see.

Length-preserving and cheap: on the UDP this is a strided block move
through the scratchpad (~1 cycle per 8 bytes, like any block copy); we
model it functionally here and account its cost alongside the other
stages.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.base import Codec


def shuffle_bytes(data: bytes, lane: int = 8) -> bytes:
    """Transpose a byte stream of ``lane``-byte elements into byte planes.

    A trailing partial element (< ``lane`` bytes) is passed through
    unshuffled at the end.
    """
    if lane < 1:
        raise ValueError("lane must be positive")
    n_full = len(data) // lane
    head = np.frombuffer(data[: n_full * lane], dtype=np.uint8)
    tail = data[n_full * lane :]
    planes = head.reshape(n_full, lane).T
    return planes.tobytes() + tail


def unshuffle_bytes(data: bytes, lane: int = 8) -> bytes:
    """Inverse of :func:`shuffle_bytes`."""
    if lane < 1:
        raise ValueError("lane must be positive")
    n_full = len(data) // lane
    head = np.frombuffer(data[: n_full * lane], dtype=np.uint8)
    tail = data[n_full * lane :]
    elements = head.reshape(lane, n_full).T
    return elements.tobytes() + tail


class ShuffleCodec(Codec):
    """Codec adapter; ``lane=8`` matches float64 value streams."""

    name = "shuffle"

    def __init__(self, lane: int = 8):
        if lane < 1:
            raise ValueError("lane must be positive")
        self.lane = lane

    def encode(self, data: bytes) -> bytes:
        return shuffle_bytes(data, self.lane)

    def decode(self, data: bytes) -> bytes:
        return unshuffle_bytes(data, self.lane)
