"""Per-matrix encoding selection.

The related-work section notes that auto-tuners "pick the best [format]
for execution" per matrix; on the CPU-UDP architecture this is nearly free,
because switching format only swaps the UDP program. This module tries a
candidate set of encodings and returns the smallest plan — the knob a
deployment would actually turn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.pipeline import MatrixCompression, compress_matrix
from repro.sparse.blocked import CPU_BLOCK_BYTES, UDP_BLOCK_BYTES
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class CandidateSpec:
    """One encoding candidate."""

    name: str
    block_bytes: int
    use_delta: bool
    use_huffman: bool


#: Default candidate set: the paper's production encoding plus its
#: ablations and a large-block variant.
DEFAULT_CANDIDATES: tuple[CandidateSpec, ...] = (
    CandidateSpec("dsh-8k", UDP_BLOCK_BYTES, True, True),
    CandidateSpec("delta-snappy-8k", UDP_BLOCK_BYTES, True, False),
    CandidateSpec("snappy-8k", UDP_BLOCK_BYTES, False, False),
    CandidateSpec("snappy-huffman-8k", UDP_BLOCK_BYTES, False, True),
    CandidateSpec("dsh-32k", CPU_BLOCK_BYTES, True, True),
)


@dataclass(frozen=True)
class AutotuneResult:
    """Outcome of a per-matrix tuning pass."""

    best_name: str
    best_plan: MatrixCompression
    bytes_per_nnz: dict[str, float]

    @property
    def win_over_dsh(self) -> float:
        """Bytes/nnz ratio of the default DSH encoding over the winner
        (>1 means tuning helped)."""
        dsh = self.bytes_per_nnz.get("dsh-8k")
        if dsh is None or self.best_plan.bytes_per_nnz == 0:
            return 1.0
        return dsh / self.best_plan.bytes_per_nnz


def autotune(
    matrix: CSRMatrix,
    candidates: tuple[CandidateSpec, ...] = DEFAULT_CANDIDATES,
    seed: int = 0,
) -> AutotuneResult:
    """Compress under every candidate and keep the smallest.

    Raises:
        ValueError: with an empty candidate set.
    """
    if not candidates:
        raise ValueError("need at least one candidate")
    plans: dict[str, MatrixCompression] = {}
    sizes: dict[str, float] = {}
    for cand in candidates:
        plan = compress_matrix(
            matrix,
            block_bytes=cand.block_bytes,
            use_delta=cand.use_delta,
            use_huffman=cand.use_huffman,
            seed=seed,
        )
        plans[cand.name] = plan
        sizes[cand.name] = plan.bytes_per_nnz
    best_name = min(sizes, key=sizes.__getitem__)
    return AutotuneResult(
        best_name=best_name, best_plan=plans[best_name], bytes_per_nnz=sizes
    )
