"""Per-matrix and per-block encoding selection.

The related-work section notes that auto-tuners "pick the best [format]
for execution" per matrix; on the CPU-UDP architecture this is nearly free,
because switching format only swaps the UDP program. :func:`autotune` tries
a candidate set of whole-matrix encodings and returns the smallest plan —
the knob a deployment would actually turn.

:func:`compress_adaptive` goes further: compression-format choice is
strongly structure-dependent (Copernicus), so each block's index and value
stream independently carries the stage combination (delta × snappy ×
huffman) that minimizes a data-movement cost — measured encode size plus
the estimated decode time converted to equivalent link traffic through a
:class:`StageProfile` of per-stage decode throughputs. The profile is
seeded from live ``repro.obs`` telemetry when a calibration has published
one (falling back to deterministic defaults) and is persisted in the
:class:`AdaptiveReport` alongside the plan, so a selection can always be
reproduced from its artifact. Every chosen combination is recorded as a
per-record codec tag (:data:`~repro.codecs.pipeline.STAGE_DELTA` etc.), so
decode stays fully self-describing.

Selection is conservative by construction. Within the regime that keeps a
stream side's Huffman table, a candidate is only eligible when its stored
size does not exceed the fixed DSH encoding of the same stream (DSH itself
is always a candidate). A side may instead drop its Huffman stage — and
with it the side's 256-byte table — when the whole-matrix byte total still
does not exceed fixed DSH's: on matrices too small (or too snappy-friendly)
to amortize a table, that is *both* smaller and much faster, which is
exactly the region where the fixed pipeline is dominated. Either way an
adaptive plan's bytes/nnz is **never worse** than fixed DSH, and the cost
model can only trade within that envelope for cheaper decodes.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass

from repro import obs
from repro.codecs.delta import DeltaCodec
from repro.codecs.huffman import HuffmanTable
from repro.codecs.pipeline import (
    STAGE_DELTA,
    STAGE_HUFFMAN,
    STAGE_SNAPPY,
    TAG_MASK,
    BlockRecord,
    MatrixCompression,
    _record_plan_metrics,
    compress_matrix,
    sampled_tables,
)
from repro.codecs.snappy import snappy_compress
from repro.sparse.blocked import CPU_BLOCK_BYTES, UDP_BLOCK_BYTES, partition_csr
from repro.sparse.csr import CSRMatrix
from repro.util.rng import derive_seed, seeded_rng


@dataclass(frozen=True)
class CandidateSpec:
    """One encoding candidate."""

    name: str
    block_bytes: int
    use_delta: bool
    use_huffman: bool


#: Default candidate set: the paper's production encoding plus its
#: ablations and a large-block variant.
DEFAULT_CANDIDATES: tuple[CandidateSpec, ...] = (
    CandidateSpec("dsh-8k", UDP_BLOCK_BYTES, True, True),
    CandidateSpec("delta-snappy-8k", UDP_BLOCK_BYTES, True, False),
    CandidateSpec("snappy-8k", UDP_BLOCK_BYTES, False, False),
    CandidateSpec("snappy-huffman-8k", UDP_BLOCK_BYTES, False, True),
    CandidateSpec("dsh-32k", CPU_BLOCK_BYTES, True, True),
)


@dataclass(frozen=True)
class AutotuneResult:
    """Outcome of a per-matrix tuning pass."""

    best_name: str
    best_plan: MatrixCompression
    bytes_per_nnz: dict[str, float]

    @property
    def win_over_dsh(self) -> float:
        """Bytes/nnz ratio of the default DSH encoding over the winner
        (>1 means tuning helped)."""
        dsh = self.bytes_per_nnz.get("dsh-8k")
        if dsh is None or self.best_plan.bytes_per_nnz == 0:
            return 1.0
        return dsh / self.best_plan.bytes_per_nnz


def autotune(
    matrix: CSRMatrix,
    candidates: tuple[CandidateSpec, ...] = DEFAULT_CANDIDATES,
    seed: int = 0,
) -> AutotuneResult:
    """Compress under every candidate and keep the smallest.

    Raises:
        ValueError: with an empty candidate set.
    """
    if not candidates:
        raise ValueError("need at least one candidate")
    plans: dict[str, MatrixCompression] = {}
    sizes: dict[str, float] = {}
    for cand in candidates:
        plan = compress_matrix(
            matrix,
            block_bytes=cand.block_bytes,
            use_delta=cand.use_delta,
            use_huffman=cand.use_huffman,
            seed=seed,
        )
        plans[cand.name] = plan
        sizes[cand.name] = plan.bytes_per_nnz
    best_name = min(sizes, key=sizes.__getitem__)
    return AutotuneResult(
        best_name=best_name, best_plan=plans[best_name], bytes_per_nnz=sizes
    )


# ---------------------------------------------------------------------------
# Per-block adaptive selection (mixed plans)
# ---------------------------------------------------------------------------

#: Tag the fixed pipeline assigns an index stream (delta→snappy→huffman).
DSH_INDEX_TAG = STAGE_DELTA | STAGE_SNAPPY | STAGE_HUFFMAN
#: Tag the fixed pipeline assigns a value stream (snappy→huffman).
DSH_VALUE_TAG = STAGE_SNAPPY | STAGE_HUFFMAN

#: Candidate stage combinations per stream, in deterministic tie-break
#: order (fewer stages first). Delta is an index-stream transform only —
#: it reinterprets the bytes as ``<i4`` — so value candidates exclude it.
INDEX_TAG_CANDIDATES: tuple[int, ...] = (
    0,
    STAGE_DELTA,
    STAGE_SNAPPY,
    STAGE_HUFFMAN,
    STAGE_DELTA | STAGE_SNAPPY,
    STAGE_DELTA | STAGE_HUFFMAN,
    STAGE_SNAPPY | STAGE_HUFFMAN,
    DSH_INDEX_TAG,
)
VALUE_TAG_CANDIDATES: tuple[int, ...] = (
    0,
    STAGE_SNAPPY,
    STAGE_HUFFMAN,
    DSH_VALUE_TAG,
)

_STAGE_NAMES = ((STAGE_DELTA, "delta"), (STAGE_SNAPPY, "snappy"), (STAGE_HUFFMAN, "huffman"))


def combo_name(tag: int) -> str:
    """Human name of a stage combination (``0`` → ``"raw"``)."""
    if not 0 <= tag <= TAG_MASK:
        raise ValueError(f"codec tag out of range: {tag}")
    parts = [name for bit, name in _STAGE_NAMES if tag & bit]
    return "-".join(parts) if parts else "raw"


@dataclass(frozen=True)
class StageProfile:
    """Calibrated per-stage decode throughputs driving the cost model.

    Decode time for a candidate is estimated stage by stage (bytes each
    stage must produce over its throughput) and converted into *equivalent
    link traffic* via ``link_mb_per_s`` — the bandwidth the memory system
    could have spent moving bytes while the host was busy decoding. The
    resulting cost is in bytes on both axes, which is what a data-movement
    limited system actually optimizes.
    """

    delta_mb_per_s: float
    snappy_mb_per_s: float
    huffman_mb_per_s: float
    #: Equivalent link bandwidth used to price decode seconds in bytes.
    link_mb_per_s: float
    #: ``default`` | ``telemetry`` | ``calibrated`` — provenance, persisted
    #: with every report so a selection is reproducible from its artifact.
    source: str = "default"

    #: Registry gauges a calibration publishes and ``from_registry`` reads.
    GAUGES = {
        "delta_mb_per_s": "autotune.profile.delta_mb_per_s",
        "snappy_mb_per_s": "autotune.profile.snappy_mb_per_s",
        "huffman_mb_per_s": "autotune.profile.huffman_mb_per_s",
        "link_mb_per_s": "autotune.profile.link_mb_per_s",
    }

    @classmethod
    def default(cls) -> "StageProfile":
        """Deterministic baseline ratios for this functional model.

        Absolute numbers matter less than ratios: delta is a vectorized
        cumsum (fast), snappy a token copy loop, huffman a bit-serial
        table walk (slowest by an order of magnitude even on the numpy
        backend).
        """
        return cls(
            delta_mb_per_s=600.0,
            snappy_mb_per_s=4.0,
            huffman_mb_per_s=6.0,
            link_mb_per_s=40.0,
            source="default",
        )

    @classmethod
    def from_registry(cls, reg: "obs.MetricsRegistry | None" = None) -> "StageProfile":
        """Seed a profile from live telemetry, field by field.

        Reads the ``autotune.profile.*`` gauges a previous
        :func:`calibrate_profile` run published into the active metrics
        registry; any gauge that has not been published falls back to the
        :meth:`default` value, so a cold registry yields the deterministic
        default profile.
        """
        reg = reg if reg is not None else obs.registry()
        base = cls.default()
        fields = {}
        seeded = False
        for field, gauge in cls.GAUGES.items():
            value = reg.gauge(gauge).value
            if value and value > 0:
                fields[field] = float(value)
                seeded = True
            else:
                fields[field] = getattr(base, field)
        return cls(source="telemetry" if seeded else "default", **fields)

    def as_dict(self) -> dict:
        return {
            "delta_mb_per_s": self.delta_mb_per_s,
            "snappy_mb_per_s": self.snappy_mb_per_s,
            "huffman_mb_per_s": self.huffman_mb_per_s,
            "link_mb_per_s": self.link_mb_per_s,
            "source": self.source,
        }

    def est_decode_seconds(self, record: BlockRecord) -> float:
        """Estimated wall time to decode one tagged record.

        Huffman walks its whole intermediate stream bit-serially, so it is
        priced on ``snappy_len``. Snappy decode is priced on the bytes it
        *reconstructs from copy tokens* (``orig_len - snappy_len``):
        incompressible streams come back as a few large literal runs at
        near-memcpy speed, so skipping snappy there buys almost nothing —
        the token loop only gets expensive on streams it actually shrank.
        """
        tag = record.tag if record.tag is not None else (
            DSH_INDEX_TAG  # untagged records behave like the full pipeline
        )
        seconds = 0.0
        if tag & STAGE_HUFFMAN:
            seconds += record.snappy_len / (self.huffman_mb_per_s * 1e6)
        if tag & STAGE_SNAPPY:
            copied = max(record.orig_len - record.snappy_len, 0)
            seconds += copied / (self.snappy_mb_per_s * 1e6)
        if tag & STAGE_DELTA:
            seconds += record.orig_len / (self.delta_mb_per_s * 1e6)
        return seconds

    def cost_bytes(self, record: BlockRecord) -> float:
        """Stored bytes plus decode time priced as equivalent traffic."""
        return record.stored_bytes + self.est_decode_seconds(record) * (
            self.link_mb_per_s * 1e6
        )


def calibrate_profile(
    seed: int = 0, sample_bytes: int = 1 << 15, publish: bool = True
) -> StageProfile:
    """Measure per-stage decode throughput on synthetic streams.

    Times each stage of the pipeline over a deterministic sample and
    (optionally) publishes the result as ``autotune.profile.*`` gauges so
    subsequent :meth:`StageProfile.from_registry` calls — and therefore
    :func:`compress_adaptive` — are seeded from live telemetry. The
    *measurement* is wall-clock and host-dependent; reproducibility comes
    from persisting the resulting profile with every selection.
    """
    rng = seeded_rng(derive_seed(seed, "stage-calibration"))
    # Index-like content: small sorted deltas, compressible.
    idx = rng.integers(0, 48, size=sample_bytes // 4, dtype="<i4").cumsum()
    raw = idx.astype("<i4").tobytes()
    delta_codec = DeltaCodec()
    deltaed = delta_codec.encode(raw)
    snapped = snappy_compress(deltaed)
    table = HuffmanTable.from_samples([snapped])
    payload, bit_len = table.encode_bits(snapped)

    def _rate(bytes_out: int, fn) -> float:
        start = time.perf_counter()
        fn()
        elapsed = max(time.perf_counter() - start, 1e-9)
        return bytes_out / elapsed / 1e6

    from repro.codecs.snappy import snappy_decompress

    delta_rate = _rate(len(raw), lambda: delta_codec.decode(deltaed))
    # Snappy throughput over copy-reconstructed bytes, matching how
    # StageProfile.est_decode_seconds prices the stage.
    snappy_rate = _rate(
        max(len(deltaed) - len(snapped), 1), lambda: snappy_decompress(snapped)
    )
    huffman_rate = _rate(len(snapped), lambda: table.decode_bits(payload, len(snapped)))
    base = StageProfile.default()
    profile = StageProfile(
        delta_mb_per_s=delta_rate,
        snappy_mb_per_s=snappy_rate,
        huffman_mb_per_s=huffman_rate,
        link_mb_per_s=base.link_mb_per_s,
        source="calibrated",
    )
    if publish:
        reg = obs.registry()
        for field, gauge in StageProfile.GAUGES.items():
            reg.gauge(gauge).set(getattr(profile, field))
    return profile


def encode_stream_record(
    raw: bytes, tag: int, table: HuffmanTable | None
) -> BlockRecord:
    """Encode one raw stream under an explicit stage combination.

    ``raw`` is the pre-delta stream (block ``index_bytes()`` or
    ``value_bytes()``); the returned record carries ``tag`` so
    :func:`~repro.codecs.pipeline.decode_record` can invert exactly these
    stages. The helper mixed-plan tests build arbitrary assignments with.

    Raises:
        ValueError: tag out of range, or a huffman tag without a table.
    """
    if not 0 <= tag <= TAG_MASK:
        raise ValueError(f"codec tag out of range: {tag}")
    orig_len = len(raw)
    data = raw
    if tag & STAGE_DELTA:
        data = DeltaCodec().encode(data)
    if tag & STAGE_SNAPPY:
        data = snappy_compress(data)
    snappy_len = len(data)
    bit_len = 0
    if tag & STAGE_HUFFMAN:
        if table is None:
            raise ValueError("huffman tag requires a table")
        data, bit_len = table.encode_bits(data)
    return BlockRecord(
        orig_len=orig_len,
        snappy_len=snappy_len,
        bit_len=bit_len,
        payload=data,
        payload_crc=zlib.crc32(data),
        tag=tag,
    )


#: Serialized size of one Huffman table in a container (256 length bytes).
TABLE_BYTES = 256


def _encode_candidates(
    raw: bytes, candidates: tuple[int, ...], table: HuffmanTable | None
) -> dict[int, BlockRecord]:
    """Encode one stream under every expressible candidate (measured
    sizes, not estimates). Huffman combinations are skipped when the side
    has no table to encode against."""
    encoded = {
        tag: encode_stream_record(raw, tag, table)
        for tag in candidates
        if table is not None or not tag & STAGE_HUFFMAN
    }
    obs.registry().counter("autotune.candidates").inc(len(encoded))
    return encoded


@dataclass(frozen=True)
class _SideSelection:
    """One stream side under one table regime."""

    records: tuple[BlockRecord, ...]
    #: Records plus the side's table, when any record still huffmans.
    stored_bytes: int
    cost: float

    @property
    def keeps_table(self) -> bool:
        return any(r.tag & STAGE_HUFFMAN for r in self.records)


def _pick_tabled(
    encoded: dict[int, BlockRecord],
    candidates: tuple[int, ...],
    base_tag: int,
    profile: StageProfile,
) -> BlockRecord:
    """Cheapest combination no larger than the fixed encoding (which is
    always a candidate). Ties break on fewer stages, then candidate
    order — fully deterministic."""
    budget = encoded[base_tag].stored_bytes
    best: BlockRecord | None = None
    best_key: tuple | None = None
    for order, tag in enumerate(candidates):
        record = encoded.get(tag)
        if record is None or record.stored_bytes > budget:
            continue
        key = (profile.cost_bytes(record), bin(tag).count("1"), order)
        if best_key is None or key < best_key:
            best, best_key = record, key
    assert best is not None  # the fixed candidate always fits its own budget
    return best


def _pick_plain(
    encoded: dict[int, BlockRecord],
    candidates: tuple[int, ...],
    profile: StageProfile,
) -> BlockRecord:
    """Smallest huffman-free combination (ties: cheaper decode, fewer
    stages, candidate order). Used by the table-dropping regime, where
    the byte case is made at the side level — records may individually
    exceed their fixed encoding as long as the dropped table pays for it."""
    best: BlockRecord | None = None
    best_key: tuple | None = None
    for order, tag in enumerate(candidates):
        if tag & STAGE_HUFFMAN:
            continue
        record = encoded[tag]
        key = (record.stored_bytes, profile.cost_bytes(record), bin(tag).count("1"), order)
        if best_key is None or key < best_key:
            best, best_key = record, key
    assert best is not None  # tag 0 (raw) is always expressible
    return best


def _select_side(
    raws: "list[bytes]",
    candidates: tuple[int, ...],
    dsh_tag: int,
    table: HuffmanTable | None,
    profile: StageProfile,
) -> tuple[tuple[BlockRecord, ...], int, _SideSelection, _SideSelection]:
    """Evaluate one stream side under both table regimes.

    Returns ``(dsh_records, dsh_stored, tabled, plain)``: the fixed DSH
    encoding of the side (baseline, including its table), the selection
    that keeps the side's Huffman table (per-record never-larger than
    fixed), and the selection that drops it (smallest huffman-free
    encodings; the 256-byte table plus every record's huffman stage are
    saved, typically the win on matrices too small to amortize a table).
    """
    encoded = [_encode_candidates(raw, candidates, table) for raw in raws]
    base_tag = dsh_tag if table is not None else dsh_tag & ~STAGE_HUFFMAN
    dsh_records = tuple(enc[base_tag] for enc in encoded)
    table_cost = TABLE_BYTES if table is not None else 0
    dsh_stored = sum(r.stored_bytes for r in dsh_records) + table_cost

    tabled_records = tuple(
        _pick_tabled(enc, candidates, base_tag, profile) for enc in encoded
    )
    tabled_cost = TABLE_BYTES if any(
        r.tag & STAGE_HUFFMAN for r in tabled_records
    ) else 0
    tabled = _SideSelection(
        records=tabled_records,
        stored_bytes=sum(r.stored_bytes for r in tabled_records) + tabled_cost,
        cost=sum(profile.cost_bytes(r) for r in tabled_records) + tabled_cost,
    )
    plain_records = tuple(
        _pick_plain(enc, candidates, profile) for enc in encoded
    )
    plain = _SideSelection(
        records=plain_records,
        stored_bytes=sum(r.stored_bytes for r in plain_records),
        cost=sum(profile.cost_bytes(r) for r in plain_records),
    )
    return dsh_records, dsh_stored, tabled, plain


@dataclass(frozen=True)
class AdaptiveReport:
    """Why a mixed plan looks the way it does — persisted for replay."""

    profile: StageProfile
    index_tags: tuple[int, ...]
    value_tags: tuple[int, ...]
    index_table_kept: bool
    value_table_kept: bool
    bytes_per_nnz: float
    dsh_bytes_per_nnz: float
    est_decode_seconds: float
    dsh_est_decode_seconds: float

    @property
    def nblocks(self) -> int:
        return len(self.index_tags)

    def stage_histogram(self, stream: str = "both") -> dict[str, int]:
        """Counts of chosen stage combinations, by stream."""
        tags: tuple[int, ...]
        if stream == "index":
            tags = self.index_tags
        elif stream == "value":
            tags = self.value_tags
        elif stream == "both":
            tags = self.index_tags + self.value_tags
        else:
            raise ValueError(f"stream must be index|value|both, got {stream!r}")
        hist: dict[str, int] = {}
        for tag in tags:
            name = combo_name(tag)
            hist[name] = hist.get(name, 0) + 1
        return dict(sorted(hist.items()))

    @property
    def bytes_win_over_dsh(self) -> float:
        """DSH bytes/nnz over adaptive bytes/nnz (>= 1 by construction)."""
        if self.bytes_per_nnz == 0:
            return 1.0
        return self.dsh_bytes_per_nnz / self.bytes_per_nnz

    @property
    def est_decode_speedup(self) -> float:
        """Estimated DSH decode time over adaptive decode time."""
        if self.est_decode_seconds == 0:
            return 1.0
        return self.dsh_est_decode_seconds / self.est_decode_seconds

    def as_dict(self) -> dict:
        return {
            "profile": self.profile.as_dict(),
            "nblocks": self.nblocks,
            "index_histogram": self.stage_histogram("index"),
            "value_histogram": self.stage_histogram("value"),
            "index_table_kept": self.index_table_kept,
            "value_table_kept": self.value_table_kept,
            "bytes_per_nnz": self.bytes_per_nnz,
            "dsh_bytes_per_nnz": self.dsh_bytes_per_nnz,
            "bytes_win_over_dsh": self.bytes_win_over_dsh,
            "est_decode_speedup": self.est_decode_speedup,
        }


def compress_adaptive(
    matrix: CSRMatrix,
    block_bytes: int = UDP_BLOCK_BYTES,
    sample_frac: float = 0.4,
    seed: int = 0,
    profile: StageProfile | None = None,
) -> tuple[MatrixCompression, AdaptiveReport]:
    """Compress with per-block, per-stream stage selection (mixed plan).

    Huffman tables are the same deterministic sample-built tables the
    fixed DSH pipeline would use (add-one smoothing makes them valid over
    *any* intermediate stream), so when a mixed plan keeps a table it is
    byte-for-byte the fixed plan's. A stream side whose records all end up
    huffman-free drops its table from the plan entirely (see the module
    docstring for the byte-envelope argument). With ``profile=None`` the
    profile is seeded from live telemetry via
    :meth:`StageProfile.from_registry`.

    Returns:
        ``(plan, report)`` — a :class:`MatrixCompression` whose records
        all carry codec tags, and the :class:`AdaptiveReport` documenting
        the selection (persist it next to the container).
    """
    if not 0.0 < sample_frac <= 1.0:
        raise ValueError(f"sample_frac must be in (0, 1], got {sample_frac}")
    if profile is None:
        profile = StageProfile.from_registry()
    with obs.trace("autotune.compress_adaptive", nnz=matrix.nnz):
        blocked = partition_csr(matrix, block_bytes=block_bytes)
        delta_codec = DeltaCodec()
        raw_idx = [b.index_bytes() for b in blocked.blocks]
        raw_val = [b.value_bytes() for b in blocked.blocks]
        # Tables are built over exactly what fixed DSH feeds its Huffman
        # stage: snappy(delta(index)) and snappy(value).
        idx_snapped = [snappy_compress(delta_codec.encode(r)) for r in raw_idx]
        val_snapped = [snappy_compress(r) for r in raw_val]
        index_table, value_table = sampled_tables(
            idx_snapped, val_snapped, blocked.nblocks, sample_frac, seed, True
        )
        dsh_idx, dsh_idx_stored, idx_tabled, idx_plain = _select_side(
            raw_idx, INDEX_TAG_CANDIDATES, DSH_INDEX_TAG, index_table, profile
        )
        dsh_val, dsh_val_stored, val_tabled, val_plain = _select_side(
            raw_val, VALUE_TAG_CANDIDATES, DSH_VALUE_TAG, value_table, profile
        )
        # Regime choice: minimize modeled cost subject to the matrix-level
        # byte envelope — an adaptive plan (records + kept tables) never
        # stores more than fixed DSH (records + both tables). The
        # both-tabled combination is per-record never-larger, so a feasible
        # assignment always exists; ties prefer keeping tables (closer to
        # the fixed plan).
        fixed_total = dsh_idx_stored + dsh_val_stored
        combos = sorted(
            (
                (isel.cost + vsel.cost, ni + nv, isel, vsel)
                for ni, isel in ((0, idx_tabled), (1, idx_plain))
                for nv, vsel in ((0, val_tabled), (1, val_plain))
            ),
            key=lambda c: (c[0], c[1]),
        )
        index_sel, value_sel = next(
            (isel, vsel)
            for _, _, isel, vsel in combos
            if isel.stored_bytes + vsel.stored_bytes <= fixed_total
        )
        index_records = index_sel.records
        value_records = value_sel.records
        kept_itab = index_table if index_sel.keeps_table else None
        kept_vtab = value_table if value_sel.keeps_table else None
        plan = MatrixCompression(
            blocked=blocked,
            index_records=index_records,
            value_records=value_records,
            index_table=kept_itab,
            value_table=kept_vtab,
            use_delta=True,
            use_huffman=kept_itab is not None or kept_vtab is not None,
            block_bytes=block_bytes,
        )
        dsh_records = (*dsh_idx, *dsh_val)
        report = AdaptiveReport(
            profile=profile,
            index_tags=tuple(r.tag for r in index_records),
            value_tags=tuple(r.tag for r in value_records),
            index_table_kept=kept_itab is not None,
            value_table_kept=kept_vtab is not None,
            bytes_per_nnz=plan.bytes_per_nnz,
            dsh_bytes_per_nnz=(fixed_total / plan.nnz) if plan.nnz else 0.0,
            est_decode_seconds=sum(
                profile.est_decode_seconds(r)
                for r in (*index_records, *value_records)
            ),
            dsh_est_decode_seconds=sum(
                profile.est_decode_seconds(r) for r in dsh_records
            ),
        )
    _record_plan_metrics(plan)
    reg = obs.registry()
    reg.counter("autotune.plans").inc()
    reg.counter("codec.mix.records_tagged").inc(
        len(index_records) + len(value_records)
    )
    tables_dropped = int(index_table is not None and kept_itab is None) + int(
        value_table is not None and kept_vtab is None
    )
    if tables_dropped:
        reg.counter("autotune.tables_dropped").inc(tables_dropped)
    reg.gauge("autotune.bytes_win_over_dsh").set(report.bytes_win_over_dsh)
    reg.gauge("autotune.est_decode_speedup").set(report.est_decode_speedup)
    return plan, report


def reencode_with_tags(
    plan: MatrixCompression,
    index_tags: "tuple[int, ...] | list[int]",
    value_tags: "tuple[int, ...] | list[int]",
) -> MatrixCompression:
    """Re-encode a materialized plan under explicit per-block tags.

    Test scaffolding for mixed-plan properties: any per-block stage
    assignment becomes a real plan sharing the source plan's blocked data
    and Huffman tables. The source plan must hold real (non-shell) blocks.

    Raises:
        ValueError: tag-list lengths disagree with the plan's block count.
    """
    if len(index_tags) != plan.nblocks or len(value_tags) != plan.nblocks:
        raise ValueError(
            f"need {plan.nblocks} tags per stream, got "
            f"{len(index_tags)}/{len(value_tags)}"
        )
    index_records = tuple(
        encode_stream_record(block.index_bytes(), tag, plan.index_table)
        for block, tag in zip(plan.blocked.blocks, index_tags)
    )
    value_records = tuple(
        encode_stream_record(block.value_bytes(), tag, plan.value_table)
        for block, tag in zip(plan.blocked.blocks, value_tags)
    )
    return MatrixCompression(
        blocked=plan.blocked,
        index_records=index_records,
        value_records=value_records,
        index_table=plan.index_table,
        value_table=plan.value_table,
        use_delta=True,
        use_huffman=plan.index_table is not None or plan.value_table is not None,
        block_bytes=plan.block_bytes,
    )
