"""First-difference (delta) transform on int32 streams.

Paper Section IV-B: "Delta encoding of the matrix indices provides large
benefits for matrices that are symmetrical and have diagonal structure, as
it turns arithmetic series into easily compressible repeating integers. The
delta encoding step on its own provides no benefit, but combined with a
compression algorithm helps to reduce the bytes per non-zero value
significantly."

The transform is length-preserving: ``out[0] = in[0]``, ``out[i] = in[i] -
in[i-1]`` with int32 wrap-around, so it composes with Snappy/Huffman as a
pure byte-stream stage (4-byte little-endian lanes).
"""

from __future__ import annotations

import numpy as np

from repro.codecs.base import Codec


def delta_encode(values: np.ndarray) -> np.ndarray:
    """First difference of an int32 array (wrapping int32 arithmetic)."""
    arr = np.asarray(values, dtype=np.int32)
    out = np.empty_like(arr)
    if arr.size == 0:
        return out
    out[0] = arr[0]
    # Wrap-around semantics make the transform a bijection on int32.
    np.subtract(arr[1:], arr[:-1], out=out[1:], dtype=np.int32, casting="unsafe")
    return out


def delta_decode(deltas: np.ndarray) -> np.ndarray:
    """Inverse of :func:`delta_encode` (wrapping cumulative sum)."""
    arr = np.asarray(deltas, dtype=np.int32)
    if arr.size == 0:
        return arr.copy()
    # np.cumsum on int32 wraps, matching the encode side.
    return np.cumsum(arr, dtype=np.int32)


class DeltaCodec(Codec):
    """Byte-stream adapter: interpret the payload as little-endian int32
    lanes and delta them. The payload length must be a multiple of 4."""

    name = "delta"

    def encode(self, data: bytes) -> bytes:
        if len(data) % 4:
            raise ValueError(f"delta payload must be 4-byte aligned, got {len(data)}")
        arr = np.frombuffer(data, dtype="<i4")
        return delta_encode(arr).astype("<i4").tobytes()

    def decode(self, data: bytes) -> bytes:
        if len(data) % 4:
            raise ValueError(f"delta payload must be 4-byte aligned, got {len(data)}")
        arr = np.frombuffer(data, dtype="<i4")
        return delta_decode(arr).astype("<i4").tobytes()
