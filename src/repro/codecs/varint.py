"""Little-endian base-128 varints (LEB128), as used by the Snappy preamble."""

from __future__ import annotations

from repro.codecs.errors import CorruptStreamError

MAX_UVARINT32 = (1 << 32) - 1


def write_varint(value: int) -> bytes:
    """Encode a non-negative integer < 2**32 as a Snappy-style uvarint."""
    if value < 0:
        raise ValueError(f"varint must be non-negative, got {value}")
    if value > MAX_UVARINT32:
        raise ValueError(f"varint out of 32-bit range: {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a uvarint starting at ``offset``.

    Returns:
        ``(value, next_offset)``.

    Raises:
        CorruptStreamError: on truncated input or a varint exceeding 32 bits.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise CorruptStreamError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result > MAX_UVARINT32:
                raise CorruptStreamError("varint exceeds 32 bits")
            return result, pos
        shift += 7
        if shift > 35:
            raise CorruptStreamError("varint too long")
