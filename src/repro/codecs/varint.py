"""Little-endian base-128 varints (LEB128), as used by the Snappy preamble.

Scalar :func:`write_varint`/:func:`read_varint` are the hot-path framing
primitives; the batch forms (:func:`write_varints`, :func:`read_varints`)
and the zigzag pair route through :mod:`repro.kernels` so vectorized
backends apply when many values are coded back-to-back.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.codecs.errors import CorruptStreamError

MAX_UVARINT32 = (1 << 32) - 1


def write_varint(value: int) -> bytes:
    """Encode a non-negative integer < 2**32 as a Snappy-style uvarint."""
    if value < 0:
        raise ValueError(f"varint must be non-negative, got {value}")
    if value > MAX_UVARINT32:
        raise ValueError(f"varint out of 32-bit range: {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a uvarint starting at ``offset``.

    Returns:
        ``(value, next_offset)``.

    Raises:
        CorruptStreamError: on truncated input or a varint exceeding 32 bits.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise CorruptStreamError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result > MAX_UVARINT32:
                raise CorruptStreamError("varint exceeds 32 bits")
            return result, pos
        shift += 7
        if shift > 35:
            raise CorruptStreamError("varint too long")


def write_varints(values) -> bytes:
    """Concatenated uvarints for a batch of values (array or sequence).

    Byte-identical to joining :func:`write_varint` over the batch; raises
    the same ``ValueError`` on the first negative/overflowing value.
    """
    return kernels.dispatch("varint_encode_batch", values)


def read_varints(data: bytes, count: int, offset: int = 0) -> tuple[np.ndarray, int]:
    """Decode ``count`` back-to-back uvarints starting at ``offset``.

    Returns:
        ``(values, next_offset)`` with ``values`` a uint32 array.

    Raises:
        CorruptStreamError: exactly as ``count`` sequential
            :func:`read_varint` calls would (earliest fault wins).
    """
    return kernels.dispatch("varint_decode_batch", data, count, offset)


def zigzag_encode(values) -> np.ndarray:
    """Map int32 to uint32 so sign alternates from zero: 0,-1,1,-2,2 → 0,1,2,3,4."""
    return kernels.dispatch("zigzag_encode", values)


def zigzag_decode(values) -> np.ndarray:
    """Inverse of :func:`zigzag_encode` (uint32 → int32)."""
    return kernels.dispatch("zigzag_decode", values)
