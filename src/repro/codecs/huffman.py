"""Canonical Huffman codec with sampled per-matrix tables.

Paper Section IV-B: "We generate a Huffman tree for each sparse matrix by
sampling a subset of the 8KB blocks. The number of blocks sampled was varied
(up to 40% of the total number of blocks) to get good coverage."

Because the table is built from a *sample*, symbols outside the sample must
still be encodable: frequencies are add-one smoothed over the full 256-byte
alphabet, so every byte always has a code.

Besides plain encode/decode, :meth:`HuffmanTable.decode_automaton` exports
the code tree as a stride-bit DFA — the exact artifact the UDP toolchain
compiles into multi-way-dispatch blocks (see
:mod:`repro.udp.programs.huffman_prog`).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro import kernels
from repro.codecs.errors import CorruptStreamError

from repro.codecs.base import Codec

ALPHABET = 256


def _code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman code lengths for strictly positive frequencies (package
    merge is unnecessary: depths here stay well under 64)."""
    heap: list[tuple[int, int, tuple]] = []
    for sym in range(ALPHABET):
        # (freq, tiebreak, leaf-set) — the tiebreak keeps heap ordering total.
        heap.append((int(freqs[sym]), sym, (sym,)))
    heapq.heapify(heap)
    lengths = np.zeros(ALPHABET, dtype=np.uint8)
    counter = ALPHABET
    while len(heap) > 1:
        f1, _, s1 = heapq.heappop(heap)
        f2, _, s2 = heapq.heappop(heap)
        merged = s1 + s2
        for sym in merged:
            lengths[sym] += 1
        heapq.heappush(heap, (f1 + f2, counter, merged))
        counter += 1
    return lengths


@lru_cache(maxsize=256)
def _canonical_codes_cached(lengths_blob: bytes) -> np.ndarray:
    """Canonical code assignment, memoized by table fingerprint.

    Every table with the same length vector has the same codes, and
    steady-state loops rebuild tables from the same 256-byte wire blob per
    record — so codes are computed once per distinct table, not per call.
    The cached array is frozen read-only because it is shared.
    """
    lengths = np.frombuffer(lengths_blob, dtype=np.uint8)
    order = sorted(range(ALPHABET), key=lambda s: (int(lengths[s]), s))
    codes = np.zeros(ALPHABET, dtype=np.uint64)
    code = 0
    prev_len = 0
    for sym in order:
        length = int(lengths[sym])
        if length == 0:
            continue
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    codes.flags.writeable = False
    return codes


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes: symbols sorted by (length, value), codes
    increase sequentially, left-shifted at each length boundary."""
    return _canonical_codes_cached(np.ascontiguousarray(lengths, dtype=np.uint8).tobytes())


@dataclass(frozen=True)
class HuffmanTable:
    """A canonical Huffman code over the byte alphabet.

    Attributes:
        lengths: per-symbol code length in bits (uint8[256]).
        codes: per-symbol canonical code value (uint64[256]).
    """

    lengths: np.ndarray
    codes: np.ndarray

    @classmethod
    def from_frequencies(cls, freqs: Iterable[int]) -> "HuffmanTable":
        """Build from raw byte counts; add-one smoothing guarantees every
        symbol is encodable."""
        f = np.asarray(list(freqs), dtype=np.int64)
        if f.shape != (ALPHABET,):
            raise ValueError(f"need {ALPHABET} frequencies, got {f.shape}")
        if np.any(f < 0):
            raise ValueError("negative frequency")
        f = f + 1  # smoothing
        lengths = _code_lengths(f)
        return cls(lengths=lengths, codes=_canonical_codes(lengths))

    @classmethod
    def from_samples(cls, samples: Iterable[bytes]) -> "HuffmanTable":
        """Build from sampled blobs (the paper's sampled 8 KB blocks)."""
        counts = np.zeros(ALPHABET, dtype=np.int64)
        for blob in samples:
            if blob:
                counts += np.bincount(
                    np.frombuffer(blob, dtype=np.uint8), minlength=ALPHABET
                )
        return cls.from_frequencies(counts)

    @classmethod
    def from_lengths(cls, lengths: Iterable[int]) -> "HuffmanTable":
        """Rebuild from serialized code lengths (canonical codes are implied)."""
        arr = np.asarray(list(lengths), dtype=np.uint8)
        if arr.shape != (ALPHABET,):
            raise ValueError(f"need {ALPHABET} lengths, got {arr.shape}")
        return cls(lengths=arr, codes=_canonical_codes(arr))

    def serialize(self) -> bytes:
        """Wire form: one length byte per symbol (256 bytes)."""
        return self.lengths.astype(np.uint8).tobytes()

    @classmethod
    def deserialize(cls, blob: bytes) -> "HuffmanTable":
        if len(blob) != ALPHABET:
            raise CorruptStreamError(f"table blob must be {ALPHABET} bytes")
        lengths = np.frombuffer(blob, dtype=np.uint8)
        # Canonical codes live in uint64; a length past 63 bits can only
        # come from a corrupt stream, so reject it as data (not overflow).
        if lengths.max(initial=0) > 63:
            raise CorruptStreamError("corrupt huffman table: code length exceeds 63 bits")
        return cls.from_lengths(lengths)

    @property
    def max_length(self) -> int:
        return int(self.lengths.max())

    @property
    def fingerprint(self) -> bytes:
        """Identity key for kernel/automaton caches (the wire-form blob:
        canonical codes are implied by lengths, so this is total)."""
        return self.serialize()

    def expected_bits_per_byte(self, freqs: np.ndarray) -> float:
        """Average code length under a byte distribution (for stats)."""
        f = np.asarray(freqs, dtype=np.float64)
        total = f.sum()
        if total == 0:
            return 0.0
        return float((f * self.lengths).sum() / total)

    # -- streaming ----------------------------------------------------------

    def encode_bits(self, data: bytes) -> tuple[bytes, int]:
        """Encode to a MSB-first bitstream.

        Returns:
            ``(payload, bit_length)`` — payload is zero-padded to a byte.
        """
        return kernels.dispatch("huffman_encode", self.lengths, self.codes, data)

    def decode_bits(self, payload: bytes, out_len: int) -> bytes:
        """Decode ``out_len`` symbols from a MSB-first bitstream.

        Uses the canonical first-code/first-index tables (the per-length
        interval test), i.e. the standard canonical decoder.

        Raises:
            CorruptStreamError: if the stream ends, or hits an invalid
                code, before ``out_len`` symbols.
        """
        return kernels.dispatch("huffman_decode", self.lengths, self.codes, payload, out_len)

    # -- DFA export (consumed by the UDP program generator) ------------------

    def decode_automaton(self, stride: int = 4) -> "HuffmanDFA":
        """Compile the code tree into a DFA consuming ``stride`` bits per
        step. States are trie nodes; each transition emits 0+ symbols.

        Memoized by table fingerprint: every plan compiled against the
        same table (and every UDP program sharing a matrix) reuses one
        compiled — and treated as immutable — automaton.
        """
        if not 1 <= stride <= 8:
            raise ValueError("stride must be in 1..8")
        return _decode_automaton_cached(self.fingerprint, stride)


@lru_cache(maxsize=128)
def _decode_automaton_cached(lengths_blob: bytes, stride: int) -> "HuffmanDFA":
    lengths = np.frombuffer(lengths_blob, dtype=np.uint8)
    codes = _canonical_codes(lengths)
    # Build the binary trie: node -> (child0, child1) or leaf symbol.
    children: list[list[int]] = [[-1, -1]]  # node 0 = root
    leaf_symbol: dict[int, int] = {}
    for sym in range(ALPHABET):
        length = int(lengths[sym])
        if length == 0:
            continue
        code = int(codes[sym])
        node = 0
        for i in range(length - 1, -1, -1):
            bit = (code >> i) & 1
            if children[node][bit] == -1:
                children.append([-1, -1])
                children[node][bit] = len(children) - 1
            node = children[node][bit]
        leaf_symbol[node] = sym
    # Walk every (state, chunk) pair.
    nstates = len(children)
    table: list[list[tuple[int, tuple[int, ...]]]] = []
    for state in range(nstates):
        if state in leaf_symbol:
            table.append([])  # leaves are never resting states
            continue
        row: list[tuple[int, tuple[int, ...]]] = []
        for chunk in range(1 << stride):
            node = state
            emitted: list[int] = []
            for i in range(stride - 1, -1, -1):
                bit = (chunk >> i) & 1
                node = children[node][bit]
                if node == -1:
                    # Dead path (padding bits); stay dead.
                    node = 0
                    emitted = emitted  # unchanged; treated as no-emit
                    break
                if node in leaf_symbol:
                    emitted.append(leaf_symbol[node])
                    node = 0
            row.append((node, tuple(emitted)))
        table.append(row)
    return HuffmanDFA(stride=stride, transitions=table, root=0)


@dataclass(frozen=True)
class HuffmanDFA:
    """Stride-bit decode DFA.

    ``transitions[state][chunk] = (next_state, emitted_symbols)``; leaf trie
    nodes have empty rows (decoding always rests on internal nodes).
    """

    stride: int
    transitions: list[list[tuple[int, tuple[int, ...]]]]
    root: int

    @property
    def nstates(self) -> int:
        return len(self.transitions)

    def decode(self, payload: bytes, out_len: int) -> bytes:
        """Reference DFA decode (must agree with
        :meth:`HuffmanTable.decode_bits`); used to validate the UDP program."""
        out = bytearray()
        state = self.root
        for byte in payload:
            for shift in range(8 - self.stride, -1, -self.stride):
                chunk = (byte >> shift) & ((1 << self.stride) - 1)
                state, emitted = self.transitions[state][chunk]
                for sym in emitted:
                    if len(out) < out_len:
                        out.append(sym)
                if len(out) >= out_len:
                    return bytes(out)
        if len(out) < out_len:
            raise CorruptStreamError("bitstream exhausted before out_len symbols")
        return bytes(out)


class HuffmanCodec(Codec):
    """Codec wrapper: frames the bitstream as ``uvarint(out_len) ||
    uvarint(bit_len) || payload`` so it composes in a byte pipeline."""

    name = "huffman"

    def __init__(self, table: HuffmanTable):
        self.table = table

    def encode(self, data: bytes) -> bytes:
        from repro.codecs.varint import write_varint

        payload, bit_len = self.table.encode_bits(data)
        return write_varint(len(data)) + write_varint(bit_len) + payload

    def decode(self, data: bytes) -> bytes:
        from repro.codecs.varint import read_varint

        out_len, pos = read_varint(data, 0)
        bit_len, pos = read_varint(data, pos)
        payload = data[pos:]
        if len(payload) * 8 < bit_len:
            raise CorruptStreamError("truncated huffman payload")
        return self.table.decode_bits(payload, out_len)
