"""Tests for the UDP disassembler."""

import pytest

from repro.codecs.huffman import HuffmanTable
from repro.udp import assemble
from repro.udp.disasm import disassemble, format_action, format_block, format_transition
from repro.udp.isa import (
    AluI,
    Block,
    Br,
    CopyBack,
    Dispatch,
    EmitI,
    Halt,
    Jmp,
    MovI,
    ReadSym,
)
from repro.udp.programs import build_huffman_decode, build_snappy_decode


class TestFormatters:
    def test_actions(self):
        assert format_action(MovI(1, 255)) == "movi  r1, 0xff"
        assert "add" in format_action(AluI("add", 0, 1, 2))
        assert "rdsym r3, 4b, eof=16" == format_action(ReadSym(3, 4, eof_value=16))
        assert "emiti 0x41" == format_action(EmitI(0x41))
        assert "cpybk off=r4, len=r3" == format_action(CopyBack(4, 3))

    def test_transitions(self):
        assert format_transition(Jmp("loop")) == "jmp   loop"
        assert "br.gtz r0 ? a : b" == format_transition(Br("gtz", 0, "a", "b"))
        assert "disp  tag[r3]" == format_transition(Dispatch("tag", 3))
        assert "halt  0" == format_transition(Halt(0))

    def test_block_with_pin(self):
        block = Block("k1", (EmitI(1),), Halt(0), dispatch_key=("f", 1))
        out = format_block(block, addr=7)
        assert out.startswith("    7: k1:  ; f+1")
        assert "emiti" in out and "halt" in out


class TestDisassemble:
    def test_snappy_program_listing(self):
        asm = assemble(build_snappy_decode())
        out = disassemble(asm)
        assert "program snappy-decode" in out
        assert "family tag: base" in out
        assert "start:" in out
        assert "disp  tag[r3]" in out
        # Every placed block appears.
        assert out.count(":") >= asm.nblocks

    def test_truncation(self):
        table = HuffmanTable.from_samples([b"abc" * 50])
        asm = assemble(build_huffman_decode(table))
        out = disassemble(asm, max_blocks=10)
        assert "more blocks elided" in out
        assert len(out.splitlines()) < 500

    def test_round_trips_all_isa_forms(self):
        # A block exercising every action/transition formatter.
        from repro.udp.isa import (
            AluR,
            CopyIn,
            EmitB,
            EmitWLE,
            MovR,
            Program,
            ReadBytesLE,
        )

        blocks = (
            Block(
                "start",
                (
                    MovI(0, 4),
                    MovR(1, 0),
                    AluR("xor", 2, 0, 1),
                    AluI("shl", 2, 2, 1),
                    ReadSym(3, 8),
                    ReadBytesLE(4, 2),
                    EmitB(0),
                    EmitI(9),
                    EmitWLE(4, 2),
                    CopyIn(0),
                ),
                Br("z", 2, "start", "end"),
            ),
            Block("end", (), Halt(1)),
        )
        asm = assemble(Program("all-forms", blocks, entry="start"))
        out = disassemble(asm)
        for token in ["movi", "mov ", "xor", "shli", "rdsym", "rdle", "emitb",
                      "emiti", "emitw", "cpyin", "br.z", "halt  1"]:
            assert token in out, token
