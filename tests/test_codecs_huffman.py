"""Tests for the canonical Huffman codec and its decode DFA."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs import HuffmanCodec, HuffmanTable


def table_for(data: bytes) -> HuffmanTable:
    return HuffmanTable.from_samples([data])


class TestTableConstruction:
    def test_all_symbols_have_codes(self):
        # Add-one smoothing: even unseen symbols are encodable.
        table = table_for(b"aaaa")
        assert np.all(table.lengths > 0)

    def test_skew_gives_short_code_to_common_symbol(self):
        data = b"a" * 10_000 + bytes(range(256))
        table = table_for(data)
        assert table.lengths[ord("a")] == table.lengths.min()
        assert table.lengths[ord("a")] <= 2

    def test_uniform_gives_eight_bit_codes(self):
        table = HuffmanTable.from_frequencies([1000] * 256)
        assert np.all(table.lengths == 8)

    def test_kraft_inequality_holds_with_equality(self):
        # A full Huffman tree satisfies Kraft with equality.
        for blob in [b"", b"abc", b"a" * 500, bytes(range(256)) * 3]:
            table = table_for(blob)
            kraft = np.sum(2.0 ** -table.lengths.astype(float))
            assert kraft == pytest.approx(1.0, rel=1e-9)

    def test_canonical_codes_are_prefix_free(self):
        table = table_for(b"hello huffman world" * 20)
        entries = sorted(
            ((int(table.lengths[s]), int(table.codes[s])) for s in range(256))
        )
        for (l1, c1), (l2, c2) in zip(entries, entries[1:]):
            # No code is a prefix of a longer one.
            assert (c2 >> (l2 - l1)) != c1 or l1 == l2

    def test_wrong_frequency_count_raises(self):
        with pytest.raises(ValueError):
            HuffmanTable.from_frequencies([1] * 255)

    def test_negative_frequency_raises(self):
        with pytest.raises(ValueError):
            HuffmanTable.from_frequencies([-1] + [1] * 255)

    def test_serialize_round_trip(self):
        table = table_for(b"serialize me" * 50)
        back = HuffmanTable.deserialize(table.serialize())
        np.testing.assert_array_equal(back.lengths, table.lengths)
        np.testing.assert_array_equal(back.codes, table.codes)

    def test_deserialize_wrong_size_raises(self):
        with pytest.raises(ValueError):
            HuffmanTable.deserialize(b"\x01" * 255)

    def test_expected_bits_per_byte(self):
        table = HuffmanTable.from_frequencies([1000] * 256)
        freqs = np.ones(256)
        assert table.expected_bits_per_byte(freqs) == pytest.approx(8.0)
        assert table.expected_bits_per_byte(np.zeros(256)) == 0.0


class TestEncodeDecode:
    def test_round_trip_text(self):
        data = b"the quick brown fox jumps over the lazy dog" * 10
        table = table_for(data)
        payload, bits = table.encode_bits(data)
        assert table.decode_bits(payload, len(data)) == data
        assert len(payload) == (bits + 7) // 8

    def test_compresses_skewed_data(self):
        data = b"a" * 9000 + b"b" * 900 + b"c" * 90
        table = table_for(data)
        payload, _ = table.encode_bits(data)
        assert len(payload) < len(data) // 4

    def test_empty(self):
        table = table_for(b"anything")
        payload, bits = table.encode_bits(b"")
        assert payload == b"" and bits == 0
        assert table.decode_bits(b"", 0) == b""

    def test_symbols_outside_sample_still_work(self):
        table = table_for(b"aaaa")
        data = bytes(range(256))
        payload, _ = table.encode_bits(data)
        assert table.decode_bits(payload, len(data)) == data

    def test_truncated_stream_raises(self):
        table = table_for(b"xy" * 100)
        payload, _ = table.encode_bits(b"xyxy")
        with pytest.raises(ValueError):
            table.decode_bits(payload, 1000)

    def test_codec_wrapper_framing(self):
        data = b"frame me please " * 30
        codec = HuffmanCodec(table_for(data))
        assert codec.decode(codec.encode(data)) == data

    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=600))
    def test_property_round_trip(self, data):
        table = table_for(data if data else b"\x00")
        payload, _ = table.encode_bits(data)
        assert table.decode_bits(payload, len(data)) == data

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=300), st.binary(max_size=300))
    def test_property_table_from_different_sample(self, sample, data):
        # Decoding with a table built from unrelated data must still
        # round-trip (smoothing covers the whole alphabet).
        table = table_for(sample)
        payload, _ = table.encode_bits(data)
        assert table.decode_bits(payload, len(data)) == data


class TestDFA:
    def test_dfa_matches_reference_decoder(self):
        data = b"huffman dfa check " * 40
        table = table_for(data)
        payload, _ = table.encode_bits(data)
        dfa = table.decode_automaton(stride=4)
        assert dfa.decode(payload, len(data)) == data

    @pytest.mark.parametrize("stride", [1, 2, 4, 8])
    def test_dfa_strides(self, stride):
        data = bytes(np.random.default_rng(stride).integers(0, 256, 500, dtype=np.uint8))
        table = table_for(data)
        payload, _ = table.encode_bits(data)
        dfa = table.decode_automaton(stride=stride)
        assert dfa.decode(payload, len(data)) == data

    def test_dfa_state_count_bounded(self):
        # Full binary tree over 256 leaves has 255 internal nodes; the DFA
        # has one row per trie node (leaf rows empty).
        table = table_for(bytes(range(256)) * 4)
        dfa = table.decode_automaton(stride=4)
        assert dfa.nstates == 511

    def test_dfa_emits_multiple_symbols_per_chunk(self):
        # Highly skewed table: 1-bit code => 4-bit chunk can emit 4 symbols.
        data = b"a" * 100_000
        table = table_for(data)
        dfa = table.decode_automaton(stride=4)
        payload, _ = table.encode_bits(b"aaaa")
        assert dfa.decode(payload, 4) == b"aaaa"

    def test_bad_stride_raises(self):
        table = table_for(b"x")
        with pytest.raises(ValueError):
            table.decode_automaton(stride=0)
        with pytest.raises(ValueError):
            table.decode_automaton(stride=9)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=400))
    def test_property_dfa_equals_reference(self, data):
        table = table_for(data)
        payload, _ = table.encode_bits(data)
        dfa = table.decode_automaton(stride=4)
        assert dfa.decode(payload, len(data)) == table.decode_bits(payload, len(data))
