"""Cross-module property tests: scheduler bounds, pipeline composition,
roofline monotonicity, and end-to-end compression invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs.base import IdentityCodec
from repro.codecs.delta import DeltaCodec
from repro.codecs.huffman import HuffmanCodec, HuffmanTable
from repro.codecs.pipeline import RecodePipeline, compress_matrix
from repro.codecs.rle import RLECodec
from repro.codecs.shuffle import ShuffleCodec
from repro.codecs.snappy import SnappyCodec
from repro.core.roofline import spmv_gflops
from repro.memsys.dram import MemorySystem
from repro.sparse.csr import CSRMatrix
from repro.udp.machine import LaneTask, UDPMachine


class TestSchedulerProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 32),
        st.lists(st.integers(0, 10_000), max_size=100),
    )
    def test_makespan_bounds(self, nlanes, cycles):
        machine = UDPMachine(nlanes=nlanes)
        tasks = [LaneTask(f"t{i}", c, 1) for i, c in enumerate(cycles)]
        sched = machine.schedule(tasks)
        total = sum(cycles)
        longest = max(cycles, default=0)
        # Classic list-scheduling bounds.
        assert sched.makespan_cycles >= max(longest, -(-total // nlanes) if cycles else 0)
        assert sched.makespan_cycles <= (total // nlanes) + longest + 1
        assert sched.total_cycles == total
        assert 0 <= sched.utilization <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=60))
    def test_more_lanes_never_slower(self, cycles):
        tasks = [LaneTask(f"t{i}", c, 1) for i, c in enumerate(cycles)]
        small = UDPMachine(nlanes=2).schedule(tasks)
        big = UDPMachine(nlanes=8).schedule(tasks)
        assert big.makespan_cycles <= small.makespan_cycles

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=40))
    def test_steady_state_at_least_makespan_rate(self, cycles):
        tasks = [LaneTask(f"t{i}", c, 8) for i, c in enumerate(cycles)]
        sched = UDPMachine(nlanes=16).schedule(tasks)
        assert (
            sched.steady_state_throughput_bytes_per_s
            >= sched.throughput_bytes_per_s * (1 - 1e-12)
        )


class TestPipelineComposition:
    _int32_stage_pool = [DeltaCodec, RLECodec]
    _byte_stage_pool = [SnappyCodec, ShuffleCodec, IdentityCodec]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.sampled_from(range(3)), max_size=3),
        st.lists(st.integers(-(1 << 20), 1 << 20), max_size=200),
    )
    def test_random_stage_stacks_round_trip(self, stage_picks, values):
        # int32 payload so the lane-oriented codecs are applicable.
        data = np.array(values, dtype="<i4").tobytes()
        stages = [self._byte_stage_pool[i]() for i in stage_picks]
        pipe = RecodePipeline(tuple(stages), name="fuzz")
        assert pipe.decode(pipe.encode(data)) == data

    def test_full_custom_stack(self):
        data = np.arange(2048, dtype="<i4").tobytes()
        table = HuffmanTable.from_samples([data])
        pipe = RecodePipeline(
            (DeltaCodec(), RLECodec(), SnappyCodec(), HuffmanCodec(table)),
            name="delta-rle-snappy-huffman",
        )
        encoded = pipe.encode(data)
        assert pipe.decode(encoded) == data
        assert len(encoded) < len(data) // 20  # arithmetic stream crushes


class TestRooflineProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 10**8),
        st.floats(1.0, 1e10),
        st.floats(1e9, 2e12),
        st.floats(1e-12, 1e-9),
    )
    def test_gflops_positive_and_linear_in_bw(self, nnz, traffic, bw, epb):
        mem1 = MemorySystem("m1", bw, epb)
        mem2 = MemorySystem("m2", 2 * bw, epb)
        g1 = spmv_gflops(nnz, traffic, mem1)
        g2 = spmv_gflops(nnz, traffic, mem2)
        assert g1 > 0
        assert g2 == pytest.approx(2 * g1, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(1e3, 1e9), st.floats(1e3, 1e9))
    def test_less_traffic_never_slower(self, t1, t2):
        mem = MemorySystem("m", 100e9, 100e-12)
        lo, hi = sorted((t1, t2))
        assert spmv_gflops(10**6, lo, mem) >= spmv_gflops(10**6, hi, mem)


class TestDSHRoundTrip:
    """Full delta→snappy→huffman stack over arbitrary streams — the exact
    per-block pipeline of the DSH plan, table built from the snappy output
    just like :func:`repro.codecs.pipeline.sampled_tables` does."""

    @staticmethod
    def _dsh_pipe(data: bytes) -> RecodePipeline:
        snapped = SnappyCodec().encode(DeltaCodec().encode(data))
        table = HuffmanTable.from_samples([snapped])
        return RecodePipeline(
            (DeltaCodec(), SnappyCodec(), HuffmanCodec(table)), name="dsh"
        )

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(-(1 << 31), (1 << 31) - 1), max_size=300))
    def test_arbitrary_int32_index_stream(self, values):
        data = np.array(values, dtype="<i4").tobytes()
        pipe = self._dsh_pipe(data)
        assert pipe.decode(pipe.encode(data)) == data

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 40), min_size=1, max_size=300), st.integers(0, 1 << 20))
    def test_sorted_index_stream_like_csr_rows(self, deltas, base):
        # Monotone column indices — the actual shape of a CSR index stream.
        cols = (base + np.cumsum(deltas)) % (1 << 31)
        data = cols.astype("<i4").tobytes()
        pipe = self._dsh_pipe(data)
        assert pipe.decode(pipe.encode(data)) == data

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64), max_size=200
        )
    )
    def test_arbitrary_float64_value_block(self, values):
        # Value stream skips delta (floats don't delta); bytes must survive
        # exactly, NaN payload bits included — hence tobytes comparison.
        data = np.array(values, dtype="<f8").tobytes()
        snapped = SnappyCodec().encode(data)
        table = HuffmanTable.from_samples([snapped])
        pipe = RecodePipeline((SnappyCodec(), HuffmanCodec(table)), name="sh")
        assert pipe.decode(pipe.encode(data)) == data

    @pytest.mark.parametrize(
        "data",
        [
            b"",
            np.array([0], dtype="<i4").tobytes(),
            np.array([-1], dtype="<i4").tobytes(),
            np.array([(1 << 31) - 1], dtype="<i4").tobytes(),
            np.array([0.0], dtype="<f8").tobytes(),
            np.array([np.nan], dtype="<f8").tobytes(),
        ],
        ids=["empty", "zero", "minus-one", "int32-max", "zero-f64", "nan-f64"],
    )
    def test_empty_and_single_element_blocks(self, data):
        pipe = self._dsh_pipe(data)
        assert pipe.decode(pipe.encode(data)) == data

    @settings(max_examples=6, deadline=None)
    @given(st.integers(30, 120), st.integers(0, 30))
    def test_engine_decode_equals_serial_per_block(self, n, seed):
        import scipy.sparse as sp

        from repro.codecs.engine import RecodeEngine

        m = CSRMatrix.from_scipy(
            sp.random(n, n, density=0.15, format="csr", random_state=seed)
        )
        plan = compress_matrix(m, seed=seed)
        for got, i in zip(RecodeEngine().decode_blocked(plan), range(plan.nblocks)):
            want = plan.decompress_block(i)
            assert np.array_equal(got.col_idx, want.col_idx)
            assert got.val.tobytes() == want.val.tobytes()
            assert np.array_equal(got.row_ptr, want.row_ptr)

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=512))
    def test_container_round_trip_survives_arbitrary_values(self, raw):
        # Bytes → a synthetic value payload via a one-block matrix: pack the
        # raw bytes (padded to a float64 multiple) as the value stream.
        from repro.codecs.container import load_plan, save_plan
        import io

        nnz = max(1, len(raw) // 8)
        val = np.frombuffer((raw + b"\0" * (8 * nnz))[: 8 * nnz], dtype="<f8")
        row_ptr = np.arange(nnz + 1, dtype=np.int64)
        col = np.zeros(nnz, dtype=np.int32)
        m = CSRMatrix((nnz, 4), row_ptr, col, val.copy())
        plan = compress_matrix(m)
        buf = io.BytesIO()
        save_plan(plan, buf)
        loaded = load_plan(buf.getvalue())
        for i in range(plan.nblocks):
            assert (
                loaded.decompress_block(i).val.tobytes()
                == plan.decompress_block(i).val.tobytes()
            )


class TestCompressionInvariants:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(30, 150), st.floats(0.02, 0.3), st.integers(0, 50))
    def test_plan_accounting_consistent(self, n, density, seed):
        import scipy.sparse as sp

        m = CSRMatrix.from_scipy(sp.random(n, n, density=density, format="csr", random_state=seed))
        plan = compress_matrix(m, seed=seed)
        assert plan.nnz == m.nnz
        assert len(plan.index_records) == len(plan.value_records) == plan.nblocks
        assert plan.uncompressed_bytes == 12 * m.nnz
        if m.nnz:
            assert plan.bytes_per_nnz * m.nnz == pytest.approx(plan.compressed_bytes)
        # orig_len of each index record is 4 bytes/entry; value 8.
        for block, irec, vrec in zip(
            plan.blocked.blocks, plan.index_records, plan.value_records
        ):
            assert irec.orig_len == 4 * block.nnz
            assert vrec.orig_len == 8 * block.nnz

    @settings(max_examples=6, deadline=None)
    @given(st.integers(40, 120), st.integers(0, 20))
    def test_snappy_never_expands_much(self, n, seed):
        # Spec bound: worst case ~ len + len/6 + preamble slack per block.
        import scipy.sparse as sp

        m = CSRMatrix.from_scipy(sp.random(n, n, density=0.2, format="csr", random_state=seed))
        plan = compress_matrix(m, use_delta=False, use_huffman=False)
        for rec in list(plan.index_records) + list(plan.value_records):
            assert len(rec.payload) <= rec.orig_len + rec.orig_len // 6 + 32
