"""Cross-module property tests: scheduler bounds, pipeline composition,
roofline monotonicity, and end-to-end compression invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs.base import IdentityCodec
from repro.codecs.delta import DeltaCodec
from repro.codecs.huffman import HuffmanCodec, HuffmanTable
from repro.codecs.pipeline import RecodePipeline, compress_matrix
from repro.codecs.rle import RLECodec
from repro.codecs.shuffle import ShuffleCodec
from repro.codecs.snappy import SnappyCodec
from repro.core.roofline import spmv_gflops
from repro.memsys.dram import MemorySystem
from repro.sparse.csr import CSRMatrix
from repro.udp.machine import LaneTask, UDPMachine


class TestSchedulerProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 32),
        st.lists(st.integers(0, 10_000), max_size=100),
    )
    def test_makespan_bounds(self, nlanes, cycles):
        machine = UDPMachine(nlanes=nlanes)
        tasks = [LaneTask(f"t{i}", c, 1) for i, c in enumerate(cycles)]
        sched = machine.schedule(tasks)
        total = sum(cycles)
        longest = max(cycles, default=0)
        # Classic list-scheduling bounds.
        assert sched.makespan_cycles >= max(longest, -(-total // nlanes) if cycles else 0)
        assert sched.makespan_cycles <= (total // nlanes) + longest + 1
        assert sched.total_cycles == total
        assert 0 <= sched.utilization <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=60))
    def test_more_lanes_never_slower(self, cycles):
        tasks = [LaneTask(f"t{i}", c, 1) for i, c in enumerate(cycles)]
        small = UDPMachine(nlanes=2).schedule(tasks)
        big = UDPMachine(nlanes=8).schedule(tasks)
        assert big.makespan_cycles <= small.makespan_cycles

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=40))
    def test_steady_state_at_least_makespan_rate(self, cycles):
        tasks = [LaneTask(f"t{i}", c, 8) for i, c in enumerate(cycles)]
        sched = UDPMachine(nlanes=16).schedule(tasks)
        assert (
            sched.steady_state_throughput_bytes_per_s
            >= sched.throughput_bytes_per_s * (1 - 1e-12)
        )


class TestPipelineComposition:
    _int32_stage_pool = [DeltaCodec, RLECodec]
    _byte_stage_pool = [SnappyCodec, ShuffleCodec, IdentityCodec]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.sampled_from(range(3)), max_size=3),
        st.lists(st.integers(-(1 << 20), 1 << 20), max_size=200),
    )
    def test_random_stage_stacks_round_trip(self, stage_picks, values):
        # int32 payload so the lane-oriented codecs are applicable.
        data = np.array(values, dtype="<i4").tobytes()
        stages = [self._byte_stage_pool[i]() for i in stage_picks]
        pipe = RecodePipeline(tuple(stages), name="fuzz")
        assert pipe.decode(pipe.encode(data)) == data

    def test_full_custom_stack(self):
        data = np.arange(2048, dtype="<i4").tobytes()
        table = HuffmanTable.from_samples([data])
        pipe = RecodePipeline(
            (DeltaCodec(), RLECodec(), SnappyCodec(), HuffmanCodec(table)),
            name="delta-rle-snappy-huffman",
        )
        encoded = pipe.encode(data)
        assert pipe.decode(encoded) == data
        assert len(encoded) < len(data) // 20  # arithmetic stream crushes


class TestRooflineProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 10**8),
        st.floats(1.0, 1e10),
        st.floats(1e9, 2e12),
        st.floats(1e-12, 1e-9),
    )
    def test_gflops_positive_and_linear_in_bw(self, nnz, traffic, bw, epb):
        mem1 = MemorySystem("m1", bw, epb)
        mem2 = MemorySystem("m2", 2 * bw, epb)
        g1 = spmv_gflops(nnz, traffic, mem1)
        g2 = spmv_gflops(nnz, traffic, mem2)
        assert g1 > 0
        assert g2 == pytest.approx(2 * g1, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(1e3, 1e9), st.floats(1e3, 1e9))
    def test_less_traffic_never_slower(self, t1, t2):
        mem = MemorySystem("m", 100e9, 100e-12)
        lo, hi = sorted((t1, t2))
        assert spmv_gflops(10**6, lo, mem) >= spmv_gflops(10**6, hi, mem)


class TestCompressionInvariants:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(30, 150), st.floats(0.02, 0.3), st.integers(0, 50))
    def test_plan_accounting_consistent(self, n, density, seed):
        import scipy.sparse as sp

        m = CSRMatrix.from_scipy(sp.random(n, n, density=density, format="csr", random_state=seed))
        plan = compress_matrix(m, seed=seed)
        assert plan.nnz == m.nnz
        assert len(plan.index_records) == len(plan.value_records) == plan.nblocks
        assert plan.uncompressed_bytes == 12 * m.nnz
        if m.nnz:
            assert plan.bytes_per_nnz * m.nnz == pytest.approx(plan.compressed_bytes)
        # orig_len of each index record is 4 bytes/entry; value 8.
        for block, irec, vrec in zip(
            plan.blocked.blocks, plan.index_records, plan.value_records
        ):
            assert irec.orig_len == 4 * block.nnz
            assert vrec.orig_len == 8 * block.nnz

    @settings(max_examples=6, deadline=None)
    @given(st.integers(40, 120), st.integers(0, 20))
    def test_snappy_never_expands_much(self, n, seed):
        # Spec bound: worst case ~ len + len/6 + preamble slack per block.
        import scipy.sparse as sp

        m = CSRMatrix.from_scipy(sp.random(n, n, density=0.2, format="csr", random_state=seed))
        plan = compress_matrix(m, use_delta=False, use_huffman=False)
        for rec in list(plan.index_records) + list(plan.value_records):
            assert len(rec.payload) <= rec.orig_len + rec.orig_len // 6 + 32
