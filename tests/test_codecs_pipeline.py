"""Tests for the DSH pipeline and compression statistics."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.codecs import IdentityCodec, compress_matrix
from repro.codecs.pipeline import RECORD_HEADER_BYTES, TABLE_BYTES, make_dsh_pipeline
from repro.codecs.huffman import HuffmanTable
from repro.codecs.stats import compare_schemes, dsh_plan, summarize
from repro.sparse import CSRMatrix, spmv, spmv_blocked
from repro.sparse.blocked import CPU_BLOCK_BYTES, UDP_BLOCK_BYTES


def banded_matrix(n=400, band=5, seed=0) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    diags = [rng.normal(size=n - abs(k)) for k in range(-band, band + 1)]
    mat = sp.diags(diags, offsets=range(-band, band + 1), format="csr")
    return CSRMatrix.from_scipy(mat)


def random_matrix(n=300, density=0.02, seed=1) -> CSRMatrix:
    return CSRMatrix.from_scipy(sp.random(n, n, density=density, format="csr", random_state=seed))


class TestIdentity:
    def test_identity_codec(self):
        c = IdentityCodec()
        assert c.decode(c.encode(b"abc")) == b"abc"


class TestRecodePipeline:
    def test_dsh_round_trip(self):
        data = np.arange(512, dtype="<i4").tobytes()
        table = HuffmanTable.from_samples([data])
        pipe = make_dsh_pipeline(table, use_delta=True)
        assert pipe.decode(pipe.encode(data)) == data
        assert pipe.name == "delta-snappy-huffman"

    def test_sh_round_trip(self):
        data = b"value stream bytes" * 40
        table = HuffmanTable.from_samples([data])
        pipe = make_dsh_pipeline(table, use_delta=False)
        assert pipe.decode(pipe.encode(data)) == data


class TestCompressMatrix:
    def test_verify_round_trip_dsh(self):
        assert dsh_plan(banded_matrix()).verify()

    def test_verify_round_trip_snappy_only(self):
        plan = compress_matrix(
            banded_matrix(), block_bytes=CPU_BLOCK_BYTES, use_delta=False, use_huffman=False
        )
        assert plan.verify()

    def test_verify_unstructured(self):
        assert dsh_plan(random_matrix()).verify()

    def test_banded_compresses_better_than_12(self):
        plan = dsh_plan(banded_matrix(n=800, band=7))
        assert plan.bytes_per_nnz < 12.0
        assert plan.compression_ratio > 1.0

    def test_delta_helps_banded_indices(self):
        # The paper's core claim for delta: banded/diagonal structure.
        m = banded_matrix(n=1000, band=9)
        with_delta = compress_matrix(m, use_delta=True, use_huffman=False)
        without = compress_matrix(m, use_delta=False, use_huffman=False)
        assert with_delta.bytes_per_nnz < without.bytes_per_nnz

    def test_huffman_reduces_over_delta_snappy(self):
        m = banded_matrix(n=1000, band=9, seed=3)
        ds = compress_matrix(m, use_delta=True, use_huffman=False)
        dsh = compress_matrix(m, use_delta=True, use_huffman=True)
        # Paper: adding Huffman reduced gm 5.92 -> 5.00 B/nnz.
        assert dsh.bytes_per_nnz < ds.bytes_per_nnz * 1.02

    def test_accounting_includes_headers_and_tables(self):
        plan = dsh_plan(banded_matrix())
        payload = sum(len(r.payload) for r in plan.index_records) + sum(
            len(r.payload) for r in plan.value_records
        )
        expected = (
            payload
            + RECORD_HEADER_BYTES * (len(plan.index_records) + len(plan.value_records))
            + 2 * TABLE_BYTES
        )
        assert plan.compressed_bytes == expected

    def test_uncompressed_is_12_bytes_per_nnz(self):
        m = banded_matrix()
        plan = dsh_plan(m)
        assert plan.uncompressed_bytes == 12 * m.nnz

    def test_decompress_block_matches_original(self):
        m = random_matrix(n=200, density=0.05, seed=9)
        plan = dsh_plan(m)
        for i, ref in enumerate(plan.blocked.blocks):
            got = plan.decompress_block(i)
            np.testing.assert_array_equal(got.col_idx, ref.col_idx)
            np.testing.assert_array_equal(got.val, ref.val)

    def test_spmv_through_decompression_hook(self):
        # End-to-end: Fig 7 — SpMV over blocks decompressed on the fly.
        m = banded_matrix(n=500, band=4, seed=5)
        plan = dsh_plan(m)
        x = np.random.default_rng(2).normal(size=m.ncols)
        counter = {"i": 0}

        def recode(_block):
            block = plan.decompress_block(counter["i"])
            counter["i"] += 1
            return block

        got = spmv_blocked(plan.blocked, x, recode=recode)
        np.testing.assert_allclose(got, spmv(m, x), rtol=1e-12)

    def test_deterministic_given_seed(self):
        m = random_matrix(seed=4)
        a = dsh_plan(m, seed=11)
        b = dsh_plan(m, seed=11)
        assert a.compressed_bytes == b.compressed_bytes
        assert [r.payload for r in a.index_records] == [r.payload for r in b.index_records]

    def test_bad_sample_frac_raises(self):
        with pytest.raises(ValueError):
            compress_matrix(banded_matrix(), sample_frac=0.0)
        with pytest.raises(ValueError):
            compress_matrix(banded_matrix(), sample_frac=1.5)

    def test_empty_matrix(self):
        m = CSRMatrix((10, 10), np.zeros(11), np.zeros(0), np.zeros(0))
        plan = dsh_plan(m)
        assert plan.bytes_per_nnz == 0.0
        assert plan.verify()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(20, 120), st.floats(0.01, 0.2), st.integers(0, 100))
    def test_property_round_trip_random_matrices(self, n, density, seed):
        m = random_matrix(n=n, density=density, seed=seed)
        assert dsh_plan(m, seed=seed).verify()


class TestStats:
    def test_compare_schemes_fields(self):
        m = banded_matrix(n=600, band=6)
        cmp = compare_schemes(m, name="banded600")
        assert cmp.name == "banded600"
        assert cmp.nnz == m.nnz
        assert cmp.baseline == 12.0
        assert 0 < cmp.udp_dsh <= 13.0

    def test_dsh_beats_cpu_snappy_on_structured(self):
        # Fig 10's headline: DSH (gm 5.00) < CPU Snappy (gm 5.20).
        m = banded_matrix(n=1500, band=10, seed=8)
        cmp = compare_schemes(m)
        assert cmp.udp_dsh < cmp.cpu_snappy

    def test_summarize_geomeans(self):
        comps = [compare_schemes(banded_matrix(seed=s), name=str(s)) for s in range(3)]
        summary = summarize(comps)
        assert summary.count == 3
        assert summary.gm_udp_dsh > 0

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
