"""Golden metrics-snapshot suite.

A fixed synthetic matrix runs through ``compress_matrix`` +
``recoded_spmv`` inside a fresh scoped registry; the aggregated snapshot
must match ``tests/data/metrics_golden.json``. Counts, bytes, and modeled
quantities (energy, ratios) are deterministic and compare exactly (float
tolerance only for rounding); wall-clock metrics — any name containing
``seconds`` — compare by *presence* and observation count, never by value.

Regenerate after intentionally changing the instrumentation::

    PYTHONPATH=src python -m pytest tests/test_metrics_snapshot.py --update-goldens
"""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.codecs.engine import DecodedBlockCache, RecodeEngine
from repro.codecs.pipeline import compress_matrix
from repro.collection import generators
from repro.core.spmv_pipeline import recoded_spmv

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "metrics_golden.json")

#: Any metric whose name contains one of these is wall-clock-dependent.
_TIMING_MARKERS = ("seconds",)


def _is_timing(name: str) -> bool:
    return any(marker in name for marker in _TIMING_MARKERS)


def _workload_snapshot() -> dict[str, dict]:
    """The fixed workload, recorded into a fresh registry, label-collapsed."""
    with obs.scoped_registry() as reg:
        matrix = generators.banded(1500, bandwidth=5, seed=7)
        plan = compress_matrix(matrix)
        engine = RecodeEngine(workers=0, cache=DecodedBlockCache())
        x = np.ones(matrix.ncols)
        for _ in range(2):  # second pass exercises the decoded-block cache
            y, _stats = recoded_spmv(plan, x, engine=engine, matrix_id="golden")
            x = y / float(np.abs(y).max())
        snapshot = reg.snapshot()
    return obs.aggregate_by_name(snapshot)


def _comparable(agg: dict[str, dict]) -> dict[str, dict]:
    """Reduce an aggregated snapshot to its deterministic projection."""
    out = {}
    for name, record in sorted(agg.items()):
        if record["type"] == "histogram":
            # Observation counts are deterministic; durations are not.
            out[name] = {"type": "histogram", "count": record["count"]}
        elif _is_timing(name):
            out[name] = {"type": record["type"], "present": True}
        else:
            out[name] = {"type": record["type"], "value": record["value"]}
    return out


@pytest.fixture(scope="module")
def workload_comparable():
    return _comparable(_workload_snapshot())


def test_golden_snapshot(workload_comparable, update_goldens):
    if update_goldens:
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
            json.dump(workload_comparable, fh, indent=2, sort_keys=True)
            fh.write("\n")
        pytest.skip("golden rewritten")
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        golden = json.load(fh)
    assert set(workload_comparable) == set(golden), (
        "metric name set drifted; rerun with --update-goldens if intended"
    )
    for name, expected in golden.items():
        actual = workload_comparable[name]
        if "value" in expected and isinstance(expected["value"], float):
            assert actual["type"] == expected["type"], name
            assert actual["value"] == pytest.approx(expected["value"], rel=1e-9), name
        else:
            assert actual == expected, name


def test_workload_is_deterministic_across_runs(workload_comparable):
    second = _comparable(_workload_snapshot())
    assert workload_comparable == second


def test_timing_metrics_are_present_and_positive():
    agg = _workload_snapshot()
    timed = {n: r for n, r in agg.items() if _is_timing(n)}
    assert timed, "expected wall-clock metrics in the workload"
    for name, record in timed.items():
        if record["type"] == "histogram":
            assert record["count"] > 0, name
            assert record["sum"] >= 0, name
        else:
            assert record["value"] >= 0, name


def test_snapshot_spans_all_layers(workload_comparable):
    prefixes = {name.split(".")[0] for name in workload_comparable}
    assert {"codecs", "spmv", "memsys"} <= prefixes
