"""Differential corruption fuzzing for the DSH codec stack.

Contract under test: a corrupted Snappy stream or ``.dsh`` container must
make ``decode``/``load_plan`` raise :class:`ValueError` — never hang, never
allocate unboundedly, and never return silently wrong data. All fuzzing is
seeded, so failures reproduce exactly.
"""

import dataclasses
import io
import struct
import zlib

import numpy as np
import pytest

from repro.codecs.container import MAGIC, load_csr, load_plan, save_plan
from repro.codecs.pipeline import BlockRecord, compress_matrix
from repro.codecs.snappy import snappy_compress, snappy_decompress
from repro.codecs.varint import write_varint
from repro.collection import generators
from repro.sparse.csr import CSRMatrix

SEED = 20260806


# ---------------------------------------------------------------------------
# Snappy stream fuzzing
# ---------------------------------------------------------------------------

def _snappy_corpus():
    rng = np.random.default_rng(SEED)
    payloads = {
        "delta-indices": np.cumsum(rng.integers(0, 6, 800)).astype("<i4").tobytes(),
        "random-bytes": rng.integers(0, 256, 700, dtype=np.uint8).tobytes(),
        "zeros": bytes(1200),
        "text": b"the quick brown matrix streams compressed blocks " * 20,
        "single": b"x",
    }
    return {name: (data, snappy_compress(data)) for name, data in payloads.items()}


SNAPPY_CORPUS = _snappy_corpus()


@pytest.mark.parametrize("name", sorted(SNAPPY_CORPUS))
def test_snappy_every_truncation_raises(name):
    data, stream = SNAPPY_CORPUS[name]
    for cut in range(len(stream)):
        with pytest.raises(ValueError):
            snappy_decompress(stream[:cut], max_output=len(data))


@pytest.mark.parametrize("name", sorted(SNAPPY_CORPUS))
def test_snappy_mutations_never_silently_lengthen(name):
    # Snappy carries no checksum, so a flipped literal byte can legally
    # surface in the output — but the preamble pins the *length*, and
    # max_output bounds allocation. Differential contract: ValueError or an
    # output of exactly the promised length.
    data, stream = SNAPPY_CORPUS[name]
    rng = np.random.default_rng(SEED + 1)
    for _ in range(120):
        pos = int(rng.integers(0, len(stream)))
        flip = int(rng.integers(1, 256))
        mutated = bytearray(stream)
        mutated[pos] ^= flip
        try:
            out = snappy_decompress(bytes(mutated), max_output=len(data))
        except ValueError:
            continue
        assert len(out) == len(data)


@pytest.mark.parametrize("name", sorted(SNAPPY_CORPUS))
def test_snappy_round_trip_baseline(name):
    data, stream = SNAPPY_CORPUS[name]
    assert snappy_decompress(stream, max_output=len(data)) == data


def test_snappy_preamble_over_cap_rejected():
    stream = snappy_compress(b"a" * 1000)
    with pytest.raises(ValueError, match="preamble|allows"):
        snappy_decompress(stream, max_output=999)
    assert snappy_decompress(stream, max_output=1000) == b"a" * 1000


@pytest.mark.parametrize("promised", [1 << 20, 1 << 31, (1 << 32) - 1])
def test_snappy_huge_preamble_rejected_before_allocation(promised):
    forged = write_varint(promised) + b"\x00" * 16
    with pytest.raises(ValueError):
        snappy_decompress(forged, max_output=1024)


def test_snappy_truncated_varint_raises():
    with pytest.raises(ValueError):
        snappy_decompress(b"\xff\xff\xff")
    with pytest.raises(ValueError):
        snappy_decompress(b"")


# ---------------------------------------------------------------------------
# Container fuzzing
# ---------------------------------------------------------------------------

def _split_row_matrix() -> CSRMatrix:
    # One 400-entry row forces the partitioner to split it across blocks
    # (leading_partial continuation) at the 8 KB budget? 400*12 < 8 KB, so
    # shrink the budget at compress time instead — see _PLANS below.
    rng = np.random.default_rng(SEED + 2)
    nnz = 400
    row_ptr = np.array([0, nnz, nnz, nnz + 1], dtype=np.int64)
    col = np.concatenate([
        np.sort(rng.choice(500, nnz, replace=False)), [7],
    ]).astype(np.int32)
    val = rng.standard_normal(nnz + 1)
    return CSRMatrix((3, 500), row_ptr, col, val)


def _plans():
    banded = generators.banded(n=400, bandwidth=3, seed=SEED % 97)
    return {
        "dsh": compress_matrix(banded),
        "snappy-only": compress_matrix(banded, use_delta=False, use_huffman=False),
        "split-row": compress_matrix(_split_row_matrix(), block_bytes=1024),
    }


PLANS = _plans()


def _blob(plan) -> bytes:
    buf = io.BytesIO()
    save_plan(plan, buf)
    return buf.getvalue()


BLOBS = {name: _blob(plan) for name, plan in PLANS.items()}


def _payload(plan):
    """Decoded content that must never silently change."""
    return [
        (b.row_ptr.tobytes(), b.col_idx.tobytes(), b.val.tobytes())
        for b in (plan.decompress_block(i) for i in range(plan.nblocks))
    ]


def _with_fixed_trailer(body: bytes) -> bytes:
    return body + struct.pack("<I", zlib.crc32(body))


def test_split_row_plan_actually_splits():
    assert any(b.leading_partial for b in PLANS["split-row"].blocked.blocks)


@pytest.mark.parametrize("name", sorted(BLOBS))
def test_container_every_truncation_raises(name):
    blob = BLOBS[name]
    for cut in range(len(blob)):
        with pytest.raises(ValueError):
            load_plan(blob[:cut])


@pytest.mark.parametrize("name", sorted(BLOBS))
def test_container_mutation_raises_trailer_intact(name):
    # Any single byte flip (trailer included) trips the stream CRC or, for
    # flips inside the trailer itself, the trailer comparison.
    blob = BLOBS[name]
    rng = np.random.default_rng(SEED + 3)
    for _ in range(200):
        pos = int(rng.integers(0, len(blob)))
        flip = int(rng.integers(1, 256))
        mutated = bytearray(blob)
        mutated[pos] ^= flip
        with pytest.raises(ValueError):
            load_plan(bytes(mutated))


@pytest.mark.parametrize("name", sorted(BLOBS))
def test_container_mutation_caught_even_with_forged_trailer(name):
    # The adversarial case: flip a body byte AND recompute the stream
    # trailer. The layered header/meta/record CRCs must still catch every
    # single-byte flip (CRC32 detects all single-byte errors); if a flip
    # ever slipped through, the decoded payload must be identical.
    blob, original = BLOBS[name], _payload(PLANS[name])
    body = blob[:-4]
    rng = np.random.default_rng(SEED + 4)
    for _ in range(200):
        pos = int(rng.integers(0, len(body)))
        flip = int(rng.integers(1, 256))
        mutated = bytearray(body)
        mutated[pos] ^= flip
        try:
            plan = load_plan(_with_fixed_trailer(bytes(mutated)))
        except ValueError:
            continue
        pytest.fail(f"byte {pos} ^ {flip:#x} slipped past every CRC") \
            if _payload(plan) != original else None


def test_container_exhaustive_flip_dsh_forged_trailer():
    # Exhaustive single-position sweep (two flip patterns per byte) on the
    # smallest plan: every body byte is covered by some local CRC.
    blob = BLOBS["split-row"]
    body = blob[:-4]
    for pos in range(len(body)):
        for flip in (0x01, 0xFF):
            mutated = bytearray(body)
            mutated[pos] ^= flip
            with pytest.raises(ValueError):
                load_plan(_with_fixed_trailer(bytes(mutated)))


# -- structural forgery: all CRCs recomputed, parser checks must hold ------


def _forge_header(blob: bytes, plan, offset: int, fmt: str, value) -> bytes:
    """Rewrite a fixed-header field and fix up the header CRC + trailer."""
    body = bytearray(blob[:-4])
    struct.pack_into(fmt, body, offset, value)
    crc_pos = 33 + (512 if plan.use_huffman else 0)
    struct.pack_into("<I", body, crc_pos, zlib.crc32(body[:crc_pos]))
    return _with_fixed_trailer(bytes(body))


_HEADER_FIELDS = {  # offset, fmt within the fixed header
    "block_bytes": (9, "<I"),
    "m": (13, "<I"),
    "n": (17, "<I"),
    "nblocks": (21, "<I"),
    "nnz": (25, "<Q"),
}


@pytest.mark.parametrize(
    "field,value",
    [
        ("block_bytes", 4),
        ("block_bytes", 1 << 31),
        ("m", 10_000),
        ("n", 1),
        ("nblocks", 0),
        ("nnz", 1),
    ],
)
@pytest.mark.parametrize("name", ["dsh", "snappy-only"])
def test_container_forged_header_fields_rejected(name, field, value):
    plan = PLANS[name]
    offset, fmt = _HEADER_FIELDS[field]
    forged = _forge_header(BLOBS[name], plan, offset, fmt, value)
    with pytest.raises(ValueError):
        load_plan(forged)


def test_container_forged_record_orig_len_rejected():
    # A self-consistent container (all CRCs valid) whose record header lies
    # about the decoded size must fail structural validation, not allocate.
    plan = PLANS["dsh"]
    rec = plan.index_records[0]
    forged = dataclasses.replace(
        plan,
        index_records=(BlockRecord(10**9, rec.snappy_len, rec.bit_len, rec.payload),)
        + plan.index_records[1:],
    )
    with pytest.raises(ValueError, match="disagree|budget"):
        load_plan(_blob(forged))


def test_container_forged_snappy_preamble_capped():
    # Valid structure, but the (uncompressed-scheme) payload promises 1 GB:
    # the reader's max_output cap must reject it before any allocation.
    plan = PLANS["snappy-only"]
    rec = plan.index_records[0]
    huge = write_varint(1 << 30) + b"\x00" * 8
    forged = dataclasses.replace(
        plan,
        index_records=(BlockRecord(rec.orig_len, len(huge), 0, huge),)
        + plan.index_records[1:],
    )
    with pytest.raises(ValueError):
        load_plan(_blob(forged))


def test_container_trailing_garbage_rejected():
    body = BLOBS["dsh"][:-4] + b"\x00" * 8
    with pytest.raises(ValueError, match="trailing|CRC|corruption"):
        load_plan(_with_fixed_trailer(body))


@pytest.mark.parametrize(
    "blob",
    [b"", b"RPRO", b"NOTDSH00" + bytes(64), MAGIC, MAGIC + bytes(4)],
    ids=["empty", "short", "bad-magic", "magic-only", "magic-trailer"],
)
def test_container_garbage_prefixes_rejected(blob):
    with pytest.raises(ValueError):
        load_plan(blob)


def test_load_csr_differential_on_clean_stream():
    # Sanity for the differential baseline itself: a clean save/load cycle
    # reproduces the matrix exactly through load_csr.
    m = generators.banded(n=200, bandwidth=4, seed=5)
    buf = io.BytesIO()
    save_plan(compress_matrix(m), buf)
    got = load_csr(buf.getvalue())
    assert np.array_equal(got.row_ptr, m.row_ptr)
    assert np.array_equal(got.col_idx, m.col_idx)
    assert got.val.tobytes() == m.val.tobytes()
