"""Unit layer for repro.serve: wire protocol, admission, shared cache,
and the fusion scheduler's fairness policy — no sockets, no asyncio."""

import numpy as np
import pytest

from repro.serve import (
    Admission,
    AdmissionController,
    SHED_INFLIGHT_BYTES,
    SHED_TENANT_RATE,
    SharedDecodedCache,
    TokenBucket,
    select_batch,
)
from repro.serve import protocol
from repro.serve.scheduler import WorkItem
from repro.serve.server import ServeConfig
from repro.serve.session import MatrixInfo
from repro.sparse.blocked import CSRBlock


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


class TestArrayCodec:
    def test_roundtrip_bit_exact(self):
        x = np.random.default_rng(3).standard_normal(257)
        back = protocol.decode_array(protocol.encode_array(x))
        assert back.dtype == x.dtype
        assert np.array_equal(back, x)
        assert back.tobytes() == x.tobytes()

    def test_roundtrip_2d(self):
        X = np.random.default_rng(4).standard_normal((13, 5))
        back = protocol.decode_array(protocol.encode_array(X))
        assert back.shape == (13, 5)
        assert np.array_equal(back, X)

    def test_payload_length_mismatch_rejected(self):
        obj = protocol.encode_array(np.ones(8))
        obj["shape"] = [9]
        with pytest.raises(protocol.ProtocolError, match="payload bytes"):
            protocol.decode_array(obj)

    def test_bad_base64_rejected(self):
        obj = protocol.encode_array(np.ones(4))
        obj["data"] = "!!!not-base64!!!"
        with pytest.raises(protocol.ProtocolError, match="malformed"):
            protocol.decode_array(obj)

    def test_negative_dimension_rejected(self):
        obj = protocol.encode_array(np.ones(4))
        obj["shape"] = [-4]
        with pytest.raises(protocol.ProtocolError, match="negative"):
            protocol.decode_array(obj)

    def test_non_object_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_array([1, 2, 3])


def _wire_spmv(**over):
    msg = {
        "op": "spmv",
        "id": "r1",
        "tenant": "acme",
        "matrix": "m",
        "x": protocol.encode_array(np.ones(16)),
    }
    msg.update(over)
    return msg


class TestRequestValidation:
    def test_valid_spmv(self):
        req = protocol.Request.from_wire(_wire_spmv(deadline_ms=250, policy="degrade"))
        assert (req.op, req.tenant, req.matrix) == ("spmv", "acme", "m")
        assert req.deadline_ms == 250.0
        assert req.policy == "degrade"
        assert req.nrhs == 1

    def test_unknown_op(self):
        with pytest.raises(protocol.ProtocolError, match="unknown op"):
            protocol.Request.from_wire(_wire_spmv(op="solve"))

    def test_missing_id(self):
        msg = _wire_spmv()
        del msg["id"]
        with pytest.raises(protocol.ProtocolError, match="id"):
            protocol.Request.from_wire(msg)

    def test_spmv_rejects_2d_x(self):
        with pytest.raises(protocol.ProtocolError, match="1-D"):
            protocol.Request.from_wire(
                _wire_spmv(x=protocol.encode_array(np.ones((4, 4))))
            )

    def test_spmm_rejects_1d_x(self):
        with pytest.raises(protocol.ProtocolError, match="2-D"):
            protocol.Request.from_wire(_wire_spmv(op="spmm"))

    def test_spmm_nrhs(self):
        req = protocol.Request.from_wire(
            _wire_spmv(op="spmm", x=protocol.encode_array(np.ones((16, 3))))
        )
        assert req.nrhs == 3

    @pytest.mark.parametrize("deadline", [0, -5, "soon", True])
    def test_bad_deadline(self, deadline):
        with pytest.raises(protocol.ProtocolError, match="deadline_ms"):
            protocol.Request.from_wire(_wire_spmv(deadline_ms=deadline))

    def test_bad_policy(self):
        with pytest.raises(protocol.ProtocolError, match="policy"):
            protocol.Request.from_wire(_wire_spmv(policy="yolo"))

    def test_stats_needs_no_matrix(self):
        req = protocol.Request.from_wire({"op": "stats", "id": "s1"})
        assert req.op == "stats" and req.x is None

    def test_parse_line_bad_json(self):
        with pytest.raises(protocol.ProtocolError, match="bad JSON"):
            protocol.parse_line(b"{nope")

    def test_non_float64_upcast(self):
        req = protocol.Request.from_wire(
            _wire_spmv(x=protocol.encode_array(np.ones(16, dtype=np.float32)))
        )
        assert req.x.dtype == np.float64


class TestEnvelopes:
    def test_ok_derived_from_status(self):
        assert protocol.response("r", "spmv", 200)["ok"] is True
        assert protocol.response("r", "spmv", 429)["ok"] is False

    def test_error_response_typed(self):
        resp = protocol.error_response(
            "r", "spmv", 500, "BlockDecodeError", "block 3 failed", block_id=3
        )
        assert resp["error"] == {
            "type": "BlockDecodeError",
            "message": "block 3 failed",
            "block_id": 3,
        }

    def test_dump_line_is_one_line(self):
        line = protocol.dump_line({"id": "r", "y": [1, 2]})
        assert line.endswith(b"\n") and line.count(b"\n") == 1


# ---------------------------------------------------------------------------
# Admission
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestTokenBucket:
    def test_burst_then_refill(self):
        clk = FakeClock()
        b = TokenBucket(rate=2.0, burst=3.0, clock=clk)
        assert [b.try_acquire() for _ in range(4)] == [True, True, True, False]
        clk.t += 1.0  # 2 tokens back
        assert b.try_acquire() and b.try_acquire() and not b.try_acquire()

    def test_burst_is_ceiling(self):
        clk = FakeClock()
        b = TokenBucket(rate=10.0, burst=2.0, clock=clk)
        clk.t += 100.0
        assert b.tokens == 2.0

    def test_none_rate_always_grants(self):
        b = TokenBucket(rate=None)
        assert all(b.try_acquire() for _ in range(1000))

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestAdmissionController:
    def test_tenant_rate_shed(self):
        clk = FakeClock()
        ctl = AdmissionController(10**6, tenant_rate=1.0, tenant_burst=1.0, clock=clk)
        assert ctl.try_admit("a", 10).admitted
        refused = ctl.try_admit("a", 10)
        assert refused == Admission(False, SHED_TENANT_RATE)
        # A different tenant has its own bucket.
        assert ctl.try_admit("b", 10).admitted

    def test_inflight_budget_shed_and_release(self):
        ctl = AdmissionController(100)
        assert ctl.try_admit("a", 70).admitted
        refused = ctl.try_admit("a", 40)
        assert refused.reason == SHED_INFLIGHT_BYTES
        ctl.release(70)
        assert ctl.inflight_bytes == 0
        assert ctl.try_admit("a", 40).admitted

    def test_oversized_request_admitted_when_idle(self):
        # The budget gates concurrency, not request size: a request
        # bigger than the whole budget must run when nothing else does.
        ctl = AdmissionController(100)
        grant = ctl.try_admit("a", 10**9)
        assert grant.admitted
        assert not ctl.try_admit("b", 1).admitted
        ctl.release(grant.cost_bytes)
        assert ctl.try_admit("b", 1).admitted

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(100).try_admit("a", -1)


# ---------------------------------------------------------------------------
# Shared decoded cache
# ---------------------------------------------------------------------------


def _block(nnz: int) -> CSRBlock:
    return CSRBlock(
        row_start=0,
        row_end=1,
        row_ptr=np.array([0, nnz], dtype=np.int64),
        col_idx=np.arange(nnz, dtype=np.int32),
        val=np.ones(nnz),
        nnz_start=0,
    )


class TestSharedDecodedCache:
    def test_block_bigger_than_share_refused(self):
        c = SharedDecodedCache(max_bytes=1200, max_matrix_frac=0.5)
        c.put(("m", 0, "f"), _block(nnz=100))  # 1200 B > 600 B share
        assert c.rejected == 1
        assert c.get(("m", 0, "f")) is None

    def test_matrix_evicts_its_own_lru_first(self):
        # 10 B/nnz... nbytes = 12 * nnz; budget 1200, share 600.
        c = SharedDecodedCache(max_bytes=1200, max_matrix_frac=0.5)
        c.put(("a", 0, "f"), _block(20))  # 240 B
        c.put(("b", 0, "f"), _block(20))  # 240 B
        c.put(("a", 1, "f"), _block(20))
        c.put(("a", 2, "f"), _block(20))  # a at 720 > 600: evict a's oldest
        assert c.get(("a", 0, "f")) is None
        assert c.get(("b", 0, "f")) is not None
        assert c.matrix_evictions == 1
        assert c.matrix_bytes("a") == 480

    def test_global_bound_still_applies(self):
        c = SharedDecodedCache(max_bytes=400, max_matrix_frac=1.0)
        for i in range(4):
            c.put(("m", i, "f"), _block(10))  # 120 B each
        assert c.stats.current_bytes <= 400
        assert c.get(("m", 0, "f")) is None
        assert c.get(("m", 3, "f")) is not None

    def test_evict_matrix(self):
        c = SharedDecodedCache(max_bytes=10**6)
        c.put(("a", 0, "f"), _block(10))
        c.put(("b", 0, "f"), _block(10))
        freed = c.evict_matrix("a")
        assert freed == 120
        assert c.matrix_bytes("a") == 0
        assert c.get(("b", 0, "f")) is not None

    def test_frac_validation(self):
        with pytest.raises(ValueError):
            SharedDecodedCache(max_matrix_frac=0.0)
        with pytest.raises(ValueError):
            SharedDecodedCache(max_matrix_frac=1.5)


# ---------------------------------------------------------------------------
# Scheduler policy + config
# ---------------------------------------------------------------------------


def _item(tenant: str, tag: int) -> WorkItem:
    req = protocol.Request(op="spmv", id=f"{tenant}-{tag}", tenant=tenant)
    return WorkItem(req=req, cost_bytes=0, future=None)


class TestSelectBatch:
    def test_round_robin_across_tenants(self):
        items = [_item("a", i) for i in range(5)] + [_item("b", 0)]
        picked, leftover = select_batch(items, max_fuse=4)
        tenants = [it.req.tenant for it in picked]
        # b's lone request rides the first batch despite a's backlog.
        assert "b" in tenants
        assert len(picked) == 4 and len(leftover) == 2

    def test_fifo_within_tenant(self):
        items = [_item("a", i) for i in range(6)]
        picked, leftover = select_batch(items, max_fuse=4)
        assert [it.req.id for it in picked] == ["a-0", "a-1", "a-2", "a-3"]
        assert [it.req.id for it in leftover] == ["a-4", "a-5"]

    def test_no_split_needed(self):
        items = [_item("a", 0), _item("b", 0)]
        picked, leftover = select_batch(items, max_fuse=8)
        assert picked == items and leftover == []


class TestConfigAndCost:
    def test_pipelined_needs_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ServeConfig(root=".", mode="pipelined", workers=0)

    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ServeConfig(root=".", mode="warp")

    def test_cost_model_monotonic_in_nrhs(self):
        info = MatrixInfo(
            name="m", path="m.dsh", container_bytes=1000, nnz=500,
            nblocks=4, shape=(100, 100), block_bytes=256,
        )
        assert info.decoded_bytes == 6000
        costs = [info.estimated_cost_bytes(k) for k in (1, 2, 8)]
        assert costs == sorted(costs) and costs[0] < costs[-1]
        # The compressed+decoded streams are paid once (fused SpMM),
        # only the dense vectors scale with nrhs.
        assert costs[1] - costs[0] == 8 * 200
