"""Tests for the UDP ISA, EffCLiP packing, and the assembler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.udp.effclip import pack
from repro.udp.isa import (
    AluI,
    Block,
    Br,
    Dispatch,
    EmitI,
    Halt,
    Jmp,
    MovI,
    Program,
    ReadSym,
)
from repro.udp.assembler import assemble


class TestISAValidation:
    def test_bad_register_rejected(self):
        with pytest.raises(ValueError):
            MovI(dst=16, imm=0)
        with pytest.raises(ValueError):
            AluI("add", dst=0, a=-1, imm=0)

    def test_bad_alu_op_rejected(self):
        with pytest.raises(ValueError):
            AluI("mul", dst=0, a=0, imm=1)

    def test_bad_branch_cond_rejected(self):
        with pytest.raises(ValueError):
            Br("eq", 0, "a", "b")

    def test_readsym_bounds(self):
        with pytest.raises(ValueError):
            ReadSym(0, 0)
        with pytest.raises(ValueError):
            ReadSym(0, 65)
        with pytest.raises(ValueError):
            ReadSym(0, 4, eof_value=-1)

    def test_emit_i_byte_only(self):
        with pytest.raises(ValueError):
            EmitI(256)

    def test_duplicate_labels_rejected(self):
        b = Block("x", (), Halt())
        with pytest.raises(ValueError):
            Program("p", (b, b), entry="x")

    def test_missing_entry_rejected(self):
        b = Block("x", (), Halt())
        with pytest.raises(ValueError):
            Program("p", (b,), entry="y")

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            Block("", (), Halt())


class TestEffCLiP:
    def test_single_family_dense(self):
        families = {"f": {0: "a", 1: "b", 2: "c"}}
        placement = pack(families, [])
        base = placement.family_base["f"]
        assert placement.addr_of["a"] == base
        assert placement.addr_of["b"] == base + 1
        assert placement.addr_of["c"] == base + 2
        assert placement.density == 1.0

    def test_coupling_constraint_always_holds(self):
        families = {
            "f": {0: "f0", 3: "f3", 7: "f7"},
            "g": {0: "g0", 1: "g1"},
            "h": {2: "h2", 5: "h5"},
        }
        placement = pack(families, ["s1", "s2", "s3"])
        for fam, keyed in families.items():
            base = placement.family_base[fam]
            for k, label in keyed.items():
                assert placement.addr_of[label] == base + k

    def test_no_collisions(self):
        families = {f"f{i}": {k: f"f{i}_{k}" for k in range(4)} for i in range(10)}
        placement = pack(families, [f"s{i}" for i in range(7)])
        addrs = list(placement.addr_of.values())
        assert len(addrs) == len(set(addrs))

    def test_singles_fill_family_holes(self):
        # Family with keys {0, 5} leaves a hole singles should reuse.
        placement = pack({"f": {0: "a", 5: "b"}}, ["s1", "s2", "s3", "s4"])
        assert placement.density == pytest.approx(1.0)

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError):
            pack({"f": {}}, [])

    def test_duplicate_label_rejected(self):
        with pytest.raises(ValueError):
            pack({"f": {0: "x"}}, ["x"])

    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.text(st.characters(categories=("Ll",)), min_size=1, max_size=4),
            st.sets(st.integers(0, 30), min_size=1, max_size=8),
            max_size=6,
        ),
        st.integers(0, 10),
    )
    def test_property_perfect_hash(self, fam_keys, nsingles):
        families = {
            fam: {k: f"{fam}#{k}" for k in keys} for fam, keys in fam_keys.items()
        }
        singles = [f"single{i}" for i in range(nsingles)]
        placement = pack(families, singles)
        # Perfect-hash property & no collisions.
        addrs = list(placement.addr_of.values())
        assert len(addrs) == len(set(addrs))
        for fam, keyed in families.items():
            base = placement.family_base[fam]
            for k, label in keyed.items():
                assert placement.addr_of[label] == base + k


class TestAssembler:
    def _simple_program(self):
        return Program(
            "p",
            (
                Block("start", (MovI(0, 1),), Jmp("end")),
                Block("end", (), Halt(0)),
            ),
            entry="start",
        )

    def test_assemble_simple(self):
        asm = assemble(self._simple_program())
        assert asm.nblocks == 2
        assert asm.entry_addr == asm.addr_of["start"]
        assert asm.block_at(asm.addr_of["end"]).label == "end"

    def test_undefined_target_rejected(self):
        prog = Program(
            "p", (Block("start", (), Jmp("nowhere")),), entry="start"
        )
        with pytest.raises(ValueError, match="nowhere"):
            assemble(prog)

    def test_unknown_family_rejected(self):
        prog = Program(
            "p", (Block("start", (), Dispatch("ghost", 0)),), entry="start"
        )
        with pytest.raises(ValueError, match="ghost"):
            assemble(prog)

    def test_duplicate_family_key_rejected(self):
        prog = Program(
            "p",
            (
                Block("start", (), Halt()),
                Block("a", (), Halt(), dispatch_key=("f", 0)),
                Block("b", (), Halt(), dispatch_key=("f", 0)),
            ),
            entry="start",
        )
        with pytest.raises(ValueError, match="pinned twice"):
            assemble(prog)

    def test_dispatch_addresses_satisfy_base_plus_key(self):
        prog = Program(
            "p",
            (
                Block("start", (MovI(1, 2),), Dispatch("f", 1)),
                Block("k0", (), Halt(0), dispatch_key=("f", 0)),
                Block("k1", (), Halt(1), dispatch_key=("f", 1)),
                Block("k2", (), Halt(2), dispatch_key=("f", 2)),
            ),
            entry="start",
        )
        asm = assemble(prog)
        base = asm.family_base["f"]
        for k, label in ((0, "k0"), (1, "k1"), (2, "k2")):
            assert asm.addr_of[label] == base + k
        assert asm.family_sizes["f"] == 3

    def test_block_at_empty_address_faults(self):
        # Family {0, 2} with no other blocks leaves address base+1 empty.
        prog = Program(
            "p",
            (
                Block("k0", (), Halt(), dispatch_key=("f", 0)),
                Block("k2", (), Halt(), dispatch_key=("f", 2)),
            ),
            entry="k0",
        )
        asm = assemble(prog)
        base = asm.family_base["f"]
        with pytest.raises(ValueError):
            asm.block_at(base + 1)

    def test_density_reported(self):
        asm = assemble(self._simple_program())
        assert asm.density == 1.0
