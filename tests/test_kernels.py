"""Differential tests for the kernel backend-dispatch layer.

The ``numpy`` backend's contract is *byte-identical output and identical
:mod:`repro.codecs.errors` behaviour* vs the ``python`` reference loops.
These tests enforce it the blunt way: run every op under both backends on
Hypothesis-generated inputs — valid, corrupt, and degenerate — and demand
the outcomes (bytes or exception type + message) match exactly. Backend
selection (set_backend / env var / autodetect), fallback on
:class:`KernelUnavailable`, the observability counters, and pool-worker
backend inheritance are covered alongside.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import kernels, obs
from repro.codecs.huffman import HuffmanTable
from repro.codecs.snappy import snappy_compress, snappy_decompress
from repro.codecs.varint import (
    read_varint,
    read_varints,
    write_varint,
    write_varints,
    zigzag_decode,
    zigzag_encode,
)

BACKENDS = ("python", "numpy")

#: Ops the numpy backend must actually implement (no silent reference-only).
VECTORIZED_OPS = (
    "huffman_encode",
    "huffman_decode",
    "snappy_decompress",
    "varint_encode_batch",
    "varint_decode_batch",
    "zigzag_encode",
    "zigzag_decode",
)


def _outcome(fn, *args, **kwargs):
    """Normalize a call to a comparable outcome: value or (type, message)."""
    try:
        return ("ok", fn(*args, **kwargs))
    except Exception as exc:  # noqa: BLE001 - parity includes the exact type
        return ("err", type(exc).__name__, str(exc))


def _under_backends(fn, *args, **kwargs):
    """The same call's outcome under each backend, keyed by backend name."""
    out = {}
    for backend in BACKENDS:
        with kernels.use_backend(backend):
            out[backend] = _outcome(fn, *args, **kwargs)
    return out


def _assert_parity(fn, *args, **kwargs):
    """Assert both backends produce the same outcome; return it."""
    res = _under_backends(fn, *args, **kwargs)
    assert res["python"] == res["numpy"], res
    return res["python"]


def _assert_parity_ok(fn, *args, **kwargs):
    """Like :func:`_assert_parity` but the call must succeed; returns the value."""
    outcome = _assert_parity(fn, *args, **kwargs)
    assert outcome[0] == "ok", outcome
    return outcome[1]


# ---------------------------------------------------------------------------
# Registry / backend selection
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_every_op_has_reference_and_numpy_impls(self):
        ops = kernels.ops()
        for op in VECTORIZED_OPS:
            assert op in ops
            assert kernels.backends_for(op) == ("numpy", "python"), op

    def test_set_backend_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_backend("fortran")

    def test_use_backend_scopes_and_restores(self):
        before = kernels.backend()
        with kernels.use_backend("python"):
            assert kernels.backend() == "python"
            with kernels.use_backend("numpy"):
                assert kernels.backend() == "numpy"
            assert kernels.backend() == "python"
        assert kernels.backend() == before

    def test_env_var_selects_backend_when_unpinned(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "python")
        with kernels.use_backend(None):  # drop any pin for the duration
            assert kernels.backend() == "python"
        monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "auto")
        with kernels.use_backend(None):
            assert kernels.backend() == kernels.REGISTRY.autodetect()

    def test_explicit_pin_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "python")
        with kernels.use_backend("numpy"):
            assert kernels.backend() == "numpy"

    def test_bad_env_var_falls_back_and_ticks_counter(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "fortran")
        with obs.scoped_registry() as reg, kernels.use_backend(None):
            assert kernels.backend() == kernels.REGISTRY.autodetect()
            assert reg.value("kernels.bad_backend_env", value="fortran") == 1

    def test_dispatch_ticks_labelled_counter(self):
        with obs.scoped_registry() as reg, kernels.use_backend("numpy"):
            zigzag_encode(np.arange(4, dtype=np.int32))
            assert reg.value("kernels.dispatch", op="zigzag_encode", backend="numpy") == 1
            assert reg.value("kernels.fallback", op="zigzag_encode", backend="numpy") == 0


# ---------------------------------------------------------------------------
# Huffman
# ---------------------------------------------------------------------------

data_blobs = st.binary(min_size=1, max_size=1024)


class TestHuffmanParity:
    @settings(max_examples=60, deadline=None)
    @given(data_blobs)
    def test_encode_decode_byte_identical(self, data):
        table = HuffmanTable.from_samples([data])
        payload, bit_len = _assert_parity_ok(table.encode_bits, data)
        assert _assert_parity_ok(table.decode_bits, payload, len(data)) == data
        assert bit_len == int(table.lengths[np.frombuffer(data, np.uint8)].sum())

    @settings(max_examples=60, deadline=None)
    @given(data_blobs, st.integers(0, 2**32), st.integers(1, 8))
    def test_corrupt_payload_error_parity(self, data, seed, nflips):
        """Bit flips / truncation must fail (or succeed) identically —
        including the exact CorruptStreamError message."""
        table = HuffmanTable.from_samples([data])
        with kernels.use_backend("python"):
            payload, _ = table.encode_bits(data)
        rng = np.random.default_rng(seed)
        buf = bytearray(payload)
        if buf and rng.integers(2):
            del buf[int(rng.integers(len(buf))):]  # truncate
        for _ in range(int(nflips)):
            if not buf:
                break
            buf[int(rng.integers(len(buf)))] ^= int(rng.integers(1, 256))
        outcome = _assert_parity(table.decode_bits, bytes(buf), len(data))
        if outcome[0] == "err":
            assert outcome[1] == "CorruptStreamError", outcome

    @settings(max_examples=40, deadline=None)
    @given(data_blobs, st.integers(1, 4096))
    def test_out_len_overrun_error_parity(self, data, extra):
        """Asking for more symbols than the stream holds must raise the
        same exhaustion error on both backends."""
        table = HuffmanTable.from_samples([data])
        with kernels.use_backend("python"):
            payload, _ = table.encode_bits(data)
        outcome = _assert_parity(table.decode_bits, payload, len(data) + extra)
        if outcome[0] == "err":
            assert outcome[1] == "CorruptStreamError", outcome

    def test_degenerate_single_symbol_table(self):
        data = b"\x07" * 300
        table = HuffmanTable.from_samples([data])
        payload, _bit_len = _assert_parity_ok(table.encode_bits, data)
        assert _assert_parity_ok(table.decode_bits, payload, len(data)) == data

    def test_non_kraft_table_falls_back_with_identical_bytes(self):
        """``from_lengths`` accepts wire tables the vectorized kernels
        cannot represent (overfull/colliding codes). Dispatch must fall
        back to the reference loops — ticking ``kernels.fallback`` — and
        still hand back the reference's exact bytes."""
        lengths = [1, 1, 1] + [0] * 253  # code 2 overflows length 1
        table = HuffmanTable.from_lengths(lengths)
        data = bytes([0, 1, 2, 1, 0, 2, 2, 1])
        with kernels.use_backend("python"):
            ref = _outcome(table.encode_bits, data)
        with obs.scoped_registry() as reg, kernels.use_backend("numpy"):
            vec = _outcome(table.encode_bits, data)
            assert reg.value("kernels.fallback", op="huffman_encode", backend="numpy") == 1
            # The fallback result is attributed to the backend that served it.
            assert reg.value("kernels.dispatch", op="huffman_encode", backend="python") == 1
            assert reg.value("kernels.dispatch", op="huffman_encode", backend="numpy") == 0
        assert vec == ref

    def test_decode_automaton_memoized_by_fingerprint(self):
        a = HuffmanTable.from_samples([b"memoize me"])
        b = HuffmanTable.from_lengths(a.lengths)  # same wire table, new object
        assert a.decode_automaton(stride=4) is a.decode_automaton(stride=4)
        assert a.decode_automaton(stride=4) is b.decode_automaton(stride=4)
        assert a.decode_automaton(stride=4) is not a.decode_automaton(stride=8)

    def test_canonical_codes_shared_across_rebuilds(self):
        a = HuffmanTable.from_samples([b"canonical cache"])
        b = HuffmanTable.deserialize(a.serialize())
        assert a.codes is b.codes  # one frozen array per distinct table
        assert not a.codes.flags.writeable


# ---------------------------------------------------------------------------
# Snappy
# ---------------------------------------------------------------------------


class TestSnappyParity:
    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=4096))
    def test_roundtrip_byte_identical(self, data):
        compressed = snappy_compress(data)
        assert _assert_parity_ok(snappy_decompress, compressed) == data

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=16, max_size=2048), st.integers(0, 2**32), st.integers(1, 6))
    def test_corrupt_stream_error_parity(self, data, seed, nflips):
        compressed = bytearray(snappy_compress(data))
        rng = np.random.default_rng(seed)
        if rng.integers(2):
            del compressed[int(rng.integers(1, len(compressed))):]
        for _ in range(int(nflips)):
            if not compressed:
                break
            compressed[int(rng.integers(len(compressed)))] ^= int(rng.integers(1, 256))
        outcome = _assert_parity(snappy_decompress, bytes(compressed))
        if outcome[0] == "err":
            assert outcome[1] == "CorruptStreamError", outcome

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=64))
    def test_garbage_stream_error_parity(self, blob):
        """Arbitrary bytes fed straight in: same accept/reject decision,
        same message, on both backends."""
        _assert_parity(snappy_decompress, blob)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=1, max_size=512), st.integers(0, 600))
    def test_max_output_guard_parity(self, data, cap):
        compressed = snappy_compress(data)
        outcome = _assert_parity(snappy_decompress, compressed, cap)
        if cap >= len(data):
            assert outcome == ("ok", data)
        else:
            assert outcome[:2] == ("err", "CorruptStreamError"), outcome


# ---------------------------------------------------------------------------
# Varint / zigzag batches
# ---------------------------------------------------------------------------

varint_values = st.lists(
    st.one_of(
        st.integers(0, 127),  # 1-byte dense region
        st.integers(0, (1 << 32) - 1),  # full range
        st.sampled_from([0, 127, 128, (1 << 14) - 1, 1 << 14, (1 << 32) - 1]),
    ),
    max_size=64,
)


class TestVarintParity:
    @settings(max_examples=80, deadline=None)
    @given(varint_values)
    def test_encode_batch_matches_sequential(self, values):
        expected = b"".join(write_varint(v) for v in values)
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                assert write_varints(values) == expected, backend

    @settings(max_examples=80, deadline=None)
    @given(varint_values, st.integers(0, 3))
    def test_decode_batch_matches_sequential(self, values, pad):
        blob = b"\x00" * pad + b"".join(write_varint(v) for v in values)
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                out, end = read_varints(blob, len(values), offset=pad)
            assert out.dtype == np.uint32
            assert list(out) == values, backend
            assert end == len(blob), backend

    @settings(max_examples=120, deadline=None)
    @given(st.binary(max_size=24), st.integers(0, 6), st.integers(0, 2))
    def test_arbitrary_bytes_error_parity(self, blob, count, offset):
        """Fuzzed streams: the batch decode must agree with ``count``
        sequential ``read_varint`` calls — values, final offset, and the
        first fault's type and message."""

        def sequential():
            vals, pos = [], offset
            for _ in range(count):
                v, pos = read_varint(blob, pos)
                vals.append(v)
            return vals, pos

        ref = _outcome(sequential)
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                got = _outcome(read_varints, blob, count, offset)
            if got[0] == "ok":
                values, end = got[1]
                got = ("ok", (list(values), end))
            assert got == ref, backend
        if ref[0] == "err":
            assert ref[1] == "CorruptStreamError", ref

    def test_encode_batch_rejects_bad_values_identically(self):
        for bad in ([3, -1, 5], [1, 1 << 32]):
            res = _under_backends(write_varints, bad)
            assert res["python"] == res["numpy"], res
            assert res["python"][:2] == ("err", "ValueError"), res

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(-(2**31), 2**31 - 1), max_size=64))
    def test_zigzag_roundtrip_parity(self, values):
        arr = np.asarray(values, dtype=np.int32)
        encoded = {}
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                enc = zigzag_encode(arr)
                assert enc.dtype == np.uint32
                np.testing.assert_array_equal(zigzag_decode(enc), arr)
                encoded[backend] = enc
        np.testing.assert_array_equal(encoded["python"], encoded["numpy"])


# ---------------------------------------------------------------------------
# Engine: pool workers inherit the parent's backend
# ---------------------------------------------------------------------------


class TestEngineBackendInheritance:
    def test_worker_shim_pins_parent_backend(self):
        """The pool shim runs its task under the backend the parent
        resolved — the selection is process-local state a spawned worker
        would not otherwise see."""
        from repro.codecs.engine import _run_isolated

        for backend in BACKENDS:
            result, _snapshot, _events = _run_isolated(
                (lambda _task: [kernels.backend()], None, False, backend)
            )
            assert result == [backend]

    def test_process_pool_workers_dispatch_on_parent_backend(self):
        """End-to-end: pin the parent to the *non-default* reference
        backend, encode on a process pool, and check the merged worker
        telemetry shows every kernel dispatch ran on ``python``."""
        from repro.codecs.engine import RecodeEngine
        from repro.collection import generators

        matrix = generators.banded(n=600, bandwidth=4, seed=9)
        with obs.scoped_registry() as reg, kernels.use_backend("python"):
            with RecodeEngine(workers=2) as engine:
                plan = engine.encode_blocked(matrix)
        assert plan.nblocks >= 1
        dispatched = {
            key: rec["value"]
            for key, rec in reg.snapshot().items()
            if key.startswith("kernels.dispatch")
        }
        assert dispatched, "pool encode must record kernel dispatches"
        assert all("backend=python" in key for key in dispatched), dispatched
