"""Property tests for the metrics merge algebra.

The process-pool engine relies on merge-on-join being exact: any
partition of the recorded events across worker registries, merged in any
order, must equal one registry that saw everything. These properties pin
that down for counters (associative, commutative addition), histograms
(bucket-count addition, min/max combine), and whole-registry merges.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import Histogram, MetricsRegistry

# Observations that keep float addition exact-ish; sums compare with approx.
observations = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)
obs_lists = st.lists(observations, max_size=60)

counter_amounts = st.lists(st.integers(min_value=0, max_value=10**9), max_size=40)


def _hist_equal(a: Histogram, b: Histogram) -> None:
    ra, rb = a._snapshot(), b._snapshot()
    assert ra["counts"] == rb["counts"]
    assert ra["count"] == rb["count"]
    assert ra["min"] == rb["min"] and ra["max"] == rb["max"]
    assert ra["sum"] == pytest.approx(rb["sum"], rel=1e-9, abs=1e-12)


@given(obs_lists, obs_lists)
def test_histogram_merge_order_independent(xs, ys):
    ab, ba = Histogram("h"), Histogram("h")
    hx, hy = Histogram("h"), Histogram("h")
    for v in xs:
        hx.observe(v)
    for v in ys:
        hy.observe(v)
    ab.merge(hx)
    ab.merge(hy)
    ba.merge(hy)
    ba.merge(hx)
    _hist_equal(ab, ba)


@given(obs_lists, obs_lists)
def test_histogram_merge_equals_single_histogram(xs, ys):
    merged, single = Histogram("h"), Histogram("h")
    shard = Histogram("h")
    for v in xs:
        merged.observe(v)
    for v in ys:
        shard.observe(v)
    merged.merge(shard)
    for v in xs + ys:
        single.observe(v)
    _hist_equal(merged, single)


@given(counter_amounts, counter_amounts, counter_amounts)
def test_registry_counter_merge_associative(xs, ys, zs):
    def _reg(amounts):
        reg = MetricsRegistry()
        for a in amounts:
            reg.counter("c").inc(a)
        return reg

    left = _reg(xs)
    mid = _reg(ys)
    mid.merge(_reg(zs))
    left.merge(mid)  # x + (y + z)

    right = _reg(xs)
    right.merge(_reg(ys))
    right.merge(_reg(zs))  # (x + y) + z

    assert left.value("c") == right.value("c") == sum(xs) + sum(ys) + sum(zs)


@given(
    st.lists(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), observations), max_size=20
        ),
        min_size=1,
        max_size=5,
    ),
    st.randoms(use_true_random=False),
)
def test_sharded_recording_equals_single_registry(shards, rnd):
    """Partition events across N worker registries, merge snapshots in a
    shuffled order: counters and histogram counts match one registry that
    recorded every event itself."""
    single = MetricsRegistry()
    workers = []
    for shard in shards:
        worker = MetricsRegistry()
        for name, value in shard:
            worker.counter(f"count.{name}").inc(1)
            worker.histogram(f"hist.{name}").observe(value)
            single.counter(f"count.{name}").inc(1)
            single.histogram(f"hist.{name}").observe(value)
        workers.append(worker)

    merged = MetricsRegistry()
    snapshots = [w.snapshot() for w in workers]
    rnd.shuffle(snapshots)
    for snap in snapshots:
        merged.merge_snapshot(snap)

    assert merged.snapshot().keys() == single.snapshot().keys()
    for key, record in single.snapshot().items():
        got = merged.snapshot()[key]
        if record["type"] == "histogram":
            assert got["counts"] == record["counts"]
            assert got["min"] == record["min"] and got["max"] == record["max"]
        else:
            assert got["value"] == record["value"]
