"""Tests for the from-scratch Snappy codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs import SnappyCodec, snappy_compress, snappy_decompress
from repro.codecs.varint import read_varint


class TestFormat:
    def test_preamble_is_uncompressed_length(self):
        data = b"hello world, hello world, hello world"
        compressed = snappy_compress(data)
        length, _ = read_varint(compressed)
        assert length == len(data)

    def test_empty_input(self):
        compressed = snappy_compress(b"")
        assert snappy_decompress(compressed) == b""

    def test_single_byte(self):
        assert snappy_decompress(snappy_compress(b"x")) == b"x"

    def test_known_literal_element(self):
        # 3 incompressible bytes: preamble 0x03, tag (3-1)<<2 = 0x08, bytes.
        compressed = snappy_compress(b"\x01\x02\x03")
        assert compressed == b"\x03\x08\x01\x02\x03"

    def test_decodes_spec_example_with_copy(self):
        # Hand-built stream: "abcd" literal then copy(offset=4, len=4)
        # => "abcdabcd".
        stream = bytes([8, (4 - 1) << 2]) + b"abcd" + bytes([2 | ((4 - 1) << 2), 4, 0])
        assert snappy_decompress(stream) == b"abcdabcd"

    def test_decodes_copy1_element(self):
        # copy-1: tag&3==1, len=4+((tag>>2)&7), offset=((tag>>5)<<8)|byte.
        stream = bytes([8, (4 - 1) << 2]) + b"abcd" + bytes([1 | (0 << 2), 4])
        assert snappy_decompress(stream) == b"abcdabcd"

    def test_decodes_copy4_element(self):
        stream = bytes([8, (4 - 1) << 2]) + b"abcd" + bytes([3 | ((4 - 1) << 2), 4, 0, 0, 0])
        assert snappy_decompress(stream) == b"abcdabcd"

    def test_overlapping_copy_rle(self):
        # "a" then copy(offset=1, len=7) => "aaaaaaaa" (classic RLE trick).
        stream = bytes([8, 0]) + b"a" + bytes([2 | ((7 - 1) << 2), 1, 0])
        assert snappy_decompress(stream) == b"aaaaaaaa"

    def test_long_literal_length_encodings(self):
        for n in [59, 60, 61, 100, 255, 256, 300, 70000]:
            data = np.random.default_rng(n).bytes(n)
            assert snappy_decompress(snappy_compress(data)) == data


class TestErrors:
    def test_bad_offset_zero(self):
        stream = bytes([4, 0]) + b"a" + bytes([2 | ((3 - 1) << 2), 0, 0])
        with pytest.raises(ValueError):
            snappy_decompress(stream)

    def test_offset_beyond_output(self):
        stream = bytes([8, 0]) + b"a" + bytes([2 | ((4 - 1) << 2), 9, 0])
        with pytest.raises(ValueError):
            snappy_decompress(stream)

    def test_truncated_literal(self):
        stream = bytes([8, (8 - 1) << 2]) + b"abc"
        with pytest.raises(ValueError):
            snappy_decompress(stream)

    def test_length_mismatch(self):
        stream = bytes([9, (4 - 1) << 2]) + b"abcd"
        with pytest.raises(ValueError):
            snappy_decompress(stream)

    def test_output_exceeds_preamble(self):
        stream = bytes([2, (4 - 1) << 2]) + b"abcd"
        with pytest.raises(ValueError):
            snappy_decompress(stream)

    def test_truncated_copy(self):
        stream = bytes([8, (4 - 1) << 2]) + b"abcd" + bytes([2 | ((4 - 1) << 2), 4])
        with pytest.raises(ValueError):
            snappy_decompress(stream)


class TestRoundTrip:
    def test_repetitive_compresses_well(self):
        data = b"the quick brown fox " * 500
        compressed = snappy_compress(data)
        assert snappy_decompress(compressed) == data
        assert len(compressed) < len(data) // 5

    def test_random_data_small_overhead(self):
        data = np.random.default_rng(7).bytes(10_000)
        compressed = snappy_compress(data)
        assert snappy_decompress(compressed) == data
        # Spec guarantees at most ~1/6 expansion; our encoder stays close.
        assert len(compressed) <= len(data) + len(data) // 6 + 32

    def test_multi_fragment_input(self):
        # > 64 KiB exercises fragment splitting.
        base = np.random.default_rng(3).bytes(1000)
        data = base * 80  # ~80 KB, crosses fragment boundary
        assert snappy_decompress(snappy_compress(data)) == data

    def test_long_match_split_into_copies(self):
        data = b"A" * 1000
        compressed = snappy_compress(data)
        assert snappy_decompress(compressed) == data
        assert len(compressed) < 60

    def test_csr_index_stream(self):
        # Delta-encoded banded indices: tiny alphabet, very compressible.
        idx = np.arange(0, 2048, dtype="<i4")
        delta = np.diff(idx, prepend=idx[:1]).astype("<i4").tobytes()
        compressed = snappy_compress(delta)
        assert snappy_decompress(compressed) == delta
        assert len(compressed) < len(delta) // 10

    def test_codec_wrapper(self):
        codec = SnappyCodec()
        data = b"wrap me " * 100
        assert codec.decode(codec.encode(data)) == data
        assert codec.name == "snappy"

    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=3000))
    def test_property_round_trip(self, data):
        assert snappy_decompress(snappy_compress(data)) == data

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=1, max_size=64), st.integers(1, 400))
    def test_property_repeated_round_trip(self, unit, reps):
        data = unit * reps
        assert snappy_decompress(snappy_compress(data)) == data
