"""Unit tests for the ablation harness: grid, ranking math, artifact.

Timing-free where possible: ranking and gate arithmetic are exercised on
hand-built synthetic results so the assertions are exact, and the one
end-to-end leg runs the ``tiny`` profile (thread pools, one repeat).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.ablation import (
    AXES,
    AblationReport,
    AblationRunner,
    ConfigResult,
    PhaseTiming,
    RunnerSettings,
    axis,
    baseline_config,
    build_artifact,
    enumerate_configs,
    enumerate_pair_configs,
    rank_components,
    rank_interactions,
    render_interactions,
    render_ranking,
    validate_artifact,
)
from repro.ablation.report import EXP_ID
from repro.cli import main
from repro.util import SchemaError, non_timing_view


# -- grid ------------------------------------------------------------------


def test_axes_cover_issue_minimum():
    assert len(AXES) >= 6
    names = {a.name for a in AXES}
    assert {
        "cache", "kernel_backend", "executor", "depth", "workers", "policy",
    } <= names
    assert all(a.kind in ("removal", "variation") for a in AXES)
    # Host-dependent knobs must not gate CI.
    assert axis("workers").kind == "variation"
    assert axis("depth").kind == "variation"
    assert axis("cache").kind == "removal"


def test_enumerate_subset_and_unknown():
    configs = enumerate_configs(("cache", "policy"))
    assert [c.run_id for c in configs] == ["baseline", "no-cache", "no-policy"]
    with pytest.raises(ValueError, match="unknown ablation axis"):
        enumerate_configs(("cache", "nope"))


def test_baseline_is_fully_featured():
    base = baseline_config()
    assert base.is_baseline
    assert base.cache and base.spmm_fusion
    assert base.executor == "pipelined"
    assert base.kernel_backend == "numpy"
    assert base.policy == "degrade"


# -- ranking math on synthetic results -------------------------------------


def _result(config, cold, warm, spmm, warm_iters=2):
    return ConfigResult(
        config=config,
        timings={
            "m": PhaseTiming(
                cold_seconds=cold,
                warm_seconds=warm,
                spmm_seconds=spmm,
                warm_iters=warm_iters,
            )
        },
        spmv_checksums={"m": "aa"},
        spmm_checksums={"m": "bb"},
        metric_names=frozenset({"spmv.blocks"}),
    )


def _synthetic_report(no_cache_scale, no_workers_scale):
    settings = dataclasses.replace(
        RunnerSettings.tiny(), harmful_threshold=0.05
    )
    configs = {c.run_id: c for c in enumerate_configs(("cache", "workers"))}
    base = _result(configs["baseline"], cold=1.0, warm=0.1, spmm=0.5)
    results = (
        _result(
            configs["no-cache"],
            cold=1.0 * no_cache_scale,
            warm=0.1 * no_cache_scale,
            spmm=0.5 * no_cache_scale,
        ),
        _result(
            configs["no-workers"],
            cold=1.0 * no_workers_scale,
            warm=0.1 * no_workers_scale,
            spmm=0.5 * no_workers_scale,
        ),
    )
    return AblationReport(
        settings=settings, baseline=base, results=results, mismatches=()
    )


def test_rank_components_orders_by_contribution():
    report = _synthetic_report(no_cache_scale=3.0, no_workers_scale=1.2)
    ranked = rank_components(report)
    assert [r.axis for r in ranked] == ["cache", "workers"]
    assert ranked[0].contribution == pytest.approx(3.0)
    assert ranked[1].contribution == pytest.approx(1.2)
    assert not any(r.harmful for r in ranked)
    assert ranked[0].cold_ratio == pytest.approx(3.0)


def test_harmful_flags_removal_axes_only():
    # Both one-offs are 20% *faster* than baseline: the removal axis
    # (cache) must gate, the variation axis (workers) must not.
    report = _synthetic_report(no_cache_scale=0.8, no_workers_scale=0.8)
    ranked = {r.axis: r for r in rank_components(report)}
    assert ranked["cache"].harmful
    assert ranked["cache"].kind == "removal"
    assert not ranked["workers"].harmful
    assert ranked["workers"].kind == "variation"

    artifact = build_artifact(report)
    assert artifact["gates"]["num_harmful"] == 1
    assert artifact["gates"]["worst_removal_gain"] == pytest.approx(0.8)
    table = render_ranking(report)
    assert "HARMFUL" in table
    assert "alt wins" in table


def test_worst_removal_gain_ignores_variations():
    # Only the variation is fast; removal axes are all fine.
    report = _synthetic_report(no_cache_scale=1.5, no_workers_scale=0.7)
    artifact = build_artifact(report)
    assert artifact["gates"]["num_harmful"] == 0
    assert artifact["gates"]["worst_removal_gain"] == pytest.approx(1.5)


def test_artifact_matches_schema_and_flags_mutations():
    report = _synthetic_report(no_cache_scale=2.0, no_workers_scale=1.1)
    artifact = build_artifact(report)
    assert artifact["exp_id"] == EXP_ID
    validate_artifact(artifact)  # round-trips

    broken = json.loads(json.dumps(artifact))
    del broken["gates"]["worst_removal_gain"]
    with pytest.raises(SchemaError, match="worst_removal_gain"):
        validate_artifact(broken)

    broken = json.loads(json.dumps(artifact))
    broken["context"]["seed"] = "not-an-int"
    with pytest.raises(SchemaError, match="seed"):
        validate_artifact(broken)


def test_non_timing_view_strips_wallclock_but_keeps_identity():
    report = _synthetic_report(no_cache_scale=2.0, no_workers_scale=1.1)
    view = non_timing_view(build_artifact(report))
    assert view["exp_id"] == EXP_ID
    assert view["baseline"]["spmv_checksums"] == {"m": "aa"}
    assert "headline_seconds" not in view["baseline"]
    flat = json.dumps(view)
    assert "_seconds" not in flat
    assert "contribution" not in flat


# -- end-to-end (tiny profile) ---------------------------------------------


def test_runner_rejects_grid_without_baseline():
    runner = AblationRunner(RunnerSettings.tiny())
    with pytest.raises(ValueError, match="baseline"):
        runner.run(enumerate_configs()[1:])


def test_cli_ablate_tiny_roundtrip(tmp_path, monkeypatch, capsys):
    out = tmp_path / "BENCH_ablation.json"
    # The tiny profile isn't CLI-reachable; patch smoke to it so the CLI
    # path (arg parsing -> runner -> artifact -> gate) runs in seconds.
    monkeypatch.setattr(RunnerSettings, "smoke", RunnerSettings.tiny)
    rc = main(
        [
            "ablate", "--smoke",
            "--axes", "cache,executor,policy",
            "--out", str(out),
        ]
    )
    assert rc == 0
    artifact = json.loads(out.read_text())
    validate_artifact(artifact)
    assert artifact["conformance"]["bit_identical"]
    assert artifact["conformance"]["configs_checked"] == 4
    assert [r["run_id"] for r in artifact["ranking"]] == sorted(
        (r["run_id"] for r in artifact["ranking"]),
        key=lambda rid: -next(
            x["contribution"] for x in artifact["ranking"] if x["run_id"] == rid
        ),
    )
    captured = capsys.readouterr()
    assert "conformance: 4 configs bit-identical" in captured.out


# -- pairwise ablations ----------------------------------------------------


def test_enumerate_pair_configs_flip_both_axes():
    (pair,) = enumerate_pair_configs(("workers", "cache"))
    # Stable AXES order, regardless of argument order.
    assert pair.run_id == "no-cache+workers"
    assert pair.ablated_axis == "cache+workers"
    assert pair.is_pair and pair.pair_axes() == ("cache", "workers")
    assert pair.cache is axis("cache").ablated
    assert pair.workers == axis("workers").ablated
    # Everything else stays at baseline.
    assert pair.executor == baseline_config().executor
    assert "removed together" in pair.describe()

    three = enumerate_pair_configs(("cache", "workers", "executor"))
    assert [c.run_id for c in three] == [
        "no-cache+executor", "no-cache+workers", "no-executor+workers",
    ]

    with pytest.raises(ValueError):
        enumerate_pair_configs(("cache",))
    with pytest.raises(ValueError):
        enumerate_pair_configs(("cache", "bogus"))


def _synthetic_pair_report(single_a, single_b, pair_scale):
    """Singles scaled by ``single_a``/``single_b``, their pair by
    ``pair_scale`` — all against a baseline of 1.8 headline seconds."""
    settings = dataclasses.replace(RunnerSettings.tiny(), harmful_threshold=0.05)
    singles = {c.run_id: c for c in enumerate_configs(("cache", "workers"))}
    (pair_cfg,) = enumerate_pair_configs(("cache", "workers"))
    base = _result(singles["baseline"], cold=1.0, warm=0.1, spmm=0.5)
    results = (
        _result(singles["no-cache"], 1.0 * single_a, 0.1 * single_a, 0.5 * single_a),
        _result(singles["no-workers"], 1.0 * single_b, 0.1 * single_b, 0.5 * single_b),
        _result(pair_cfg, 1.0 * pair_scale, 0.1 * pair_scale, 0.5 * pair_scale),
    )
    return AblationReport(
        settings=settings, baseline=base, results=results, mismatches=()
    )


def test_rank_interactions_measures_against_multiplicative_null():
    # Uniform phase scaling makes every contribution exactly the scale:
    # pair 4.5x vs independent prediction 3.0 * 1.2 = 3.6x -> ratio 1.25.
    report = _synthetic_pair_report(single_a=3.0, single_b=1.2, pair_scale=4.5)
    (ranked,) = rank_interactions(report)
    assert ranked.axes == ("cache", "workers")
    assert ranked.run_id == "no-cache+workers"
    assert ranked.pair_contribution == pytest.approx(4.5)
    assert ranked.expected_contribution == pytest.approx(3.6)
    assert ranked.interaction_ratio == pytest.approx(1.25)
    assert "super-additive" in render_interactions(report)

    # A perfectly independent pair scores ~1.0 (redundant pairs score <1).
    indep = _synthetic_pair_report(single_a=2.0, single_b=1.5, pair_scale=3.0)
    assert rank_interactions(indep)[0].interaction_ratio == pytest.approx(1.0)

    # The single-axis ranking must not see the composite run.
    assert [r.axis for r in rank_components(report)] == ["cache", "workers"]


def test_interactions_land_in_schema_validated_artifact():
    report = _synthetic_pair_report(single_a=3.0, single_b=1.2, pair_scale=4.5)
    artifact = build_artifact(report)
    validate_artifact(artifact)
    (entry,) = artifact["interactions"]
    assert entry["axes"] == ["cache", "workers"]
    assert entry["interaction_ratio"] == pytest.approx(1.25)
    # The composite run rides along in configs but never in ranking.
    assert "no-cache+workers" in {c["run_id"] for c in artifact["configs"]}
    assert "no-cache+workers" not in {r["run_id"] for r in artifact["ranking"]}
    # Pair-free reports keep the key absent (schema marks it optional).
    assert "interactions" not in build_artifact(
        _synthetic_report(no_cache_scale=3.0, no_workers_scale=1.2)
    )


def test_rank_interactions_requires_the_single_runs():
    report = _synthetic_pair_report(single_a=3.0, single_b=1.2, pair_scale=4.5)
    clipped = AblationReport(
        settings=report.settings,
        baseline=report.baseline,
        results=report.results[1:],  # drop no-cache
        mismatches=(),
    )
    with pytest.raises(ValueError, match="no-cache\\+workers"):
        rank_interactions(clipped)


def test_cli_ablate_pairs_roundtrip(tmp_path, monkeypatch, capsys):
    out = tmp_path / "BENCH_ablation.json"
    monkeypatch.setattr(RunnerSettings, "smoke", RunnerSettings.tiny)
    rc = main(
        [
            "ablate", "--smoke",
            "--axes", "cache",
            "--pairs", "cache,executor",
            "--out", str(out),
        ]
    )
    assert rc == 0
    artifact = json.loads(out.read_text())
    validate_artifact(artifact)
    # --pairs pulled executor's one-off into the grid for the null model:
    # baseline + no-cache + no-executor + no-cache+executor.
    assert artifact["conformance"]["configs_checked"] == 4
    (entry,) = artifact["interactions"]
    assert entry["axes"] == ["cache", "executor"]
    assert entry["pair_contribution"] > 0
    captured = capsys.readouterr()
    assert "interaction" in captured.out
