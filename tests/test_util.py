"""Tests for repro.util helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util import (
    Table,
    derive_seed,
    fmt_bytes,
    fmt_power,
    fmt_rate,
    fmt_seconds,
    geomean,
    geomean_ratio,
    seeded_rng,
)


class TestGeomean:
    def test_single_value(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_known_pair(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_matches_paper_style_aggregate(self):
        vals = [2.0, 8.0]
        assert geomean(vals) == pytest.approx(4.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])

    def test_no_underflow_on_long_small_inputs(self):
        vals = [1e-12] * 10_000
        assert geomean(vals) == pytest.approx(1e-12, rel=1e-9)

    @given(st.lists(st.floats(min_value=1e-6, max_value=1e6), min_size=1, max_size=64))
    def test_between_min_and_max(self, vals):
        g = geomean(vals)
        assert min(vals) * (1 - 1e-9) <= g <= max(vals) * (1 + 1e-9)

    @given(
        st.lists(st.floats(min_value=1e-3, max_value=1e3), min_size=1, max_size=32),
        st.floats(min_value=1e-3, max_value=1e3),
    )
    def test_scale_equivariance(self, vals, k):
        assert geomean([k * v for v in vals]) == pytest.approx(k * geomean(vals), rel=1e-9)


class TestGeomeanRatio:
    def test_basic(self):
        assert geomean_ratio([2.0, 8.0], [1.0, 2.0]) == pytest.approx(math.sqrt(8.0))

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            geomean_ratio([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean_ratio([], [])

    def test_equals_ratio_of_geomeans(self):
        num = [1.5, 2.5, 9.0]
        den = [0.5, 5.0, 3.0]
        assert geomean_ratio(num, den) == pytest.approx(geomean(num) / geomean(den))


class TestRng:
    def test_deterministic(self):
        a = seeded_rng(123).integers(0, 1 << 30, size=16)
        b = seeded_rng(123).integers(0, 1 << 30, size=16)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = seeded_rng(1).integers(0, 1 << 30, size=16)
        b = seeded_rng(2).integers(0, 1 << 30, size=16)
        assert not np.array_equal(a, b)

    def test_negative_seed_raises(self):
        with pytest.raises(ValueError):
            seeded_rng(-1)

    def test_derive_seed_stable(self):
        assert derive_seed(42, "suite", 7) == derive_seed(42, "suite", 7)

    def test_derive_seed_label_sensitivity(self):
        assert derive_seed(42, "suite", 7) != derive_seed(42, "suite", 8)
        assert derive_seed(42, "a", "b") != derive_seed(42, "ab")

    def test_derive_seed_no_concat_collision(self):
        # "1" + "23" must differ from "12" + "3".
        assert derive_seed(0, "1", "23") != derive_seed(0, "12", "3")


class TestUnits:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(8192) == "8.00 KiB"
        assert fmt_bytes(3 * 1024 * 1024) == "3.00 MiB"

    def test_fmt_rate_paper_conventions(self):
        assert fmt_rate(100e9) == "100.00 GB/s"
        assert fmt_rate(1e12) == "1.00 TB/s"

    def test_fmt_seconds(self):
        assert fmt_seconds(21.7e-6) == "21.70 us"
        assert fmt_seconds(1.5) == "1.500 s"
        assert fmt_seconds(2e-3) == "2.00 ms"

    def test_fmt_power(self):
        assert fmt_power(0.160) == "160.0 mW"
        assert fmt_power(80) == "80.00 W"


class TestTable:
    def test_render_alignment(self):
        t = Table(["matrix", "B/nnz"], formats=["{}", "{:.2f}"])
        t.add_row("copter2", 5.125)
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("matrix")
        assert "5.12" in lines[2]

    def test_markdown(self):
        t = Table(["a", "b"])
        t.add_row("x", "y")
        md = t.render_markdown()
        assert md.splitlines()[0] == "| a | b |"
        assert "| x | y |" in md

    def test_wrong_arity_raises(self):
        t = Table(["a"])
        with pytest.raises(ValueError):
            t.add_row("x", "y")

    def test_empty_columns_raises(self):
        with pytest.raises(ValueError):
            Table([])

    def test_bad_formats_length_raises(self):
        with pytest.raises(ValueError):
            Table(["a", "b"], formats=["{}"])
