"""Back-to-back benchmark runs agree on every non-timing field.

The determinism contract behind all BENCH artifacts: given the same
``context.seed``, two independent runs must produce identical artifacts
once wall-clock-derived fields (the ``repro.util.schema`` timing-key
convention) are stripped — same checksums, same configs, same metric
names, same block counts. Runs here use the ``tiny`` ablation profile
(thread pools, one repeat) so the double run stays tier-1 fast; it is
structurally the same sweep ``repro ablate --smoke`` performs.
"""

from __future__ import annotations

import dataclasses
import json

from repro.ablation import (
    AblationRunner,
    RunnerSettings,
    build_artifact,
    enumerate_configs,
)
from repro.util import non_timing_view


def _artifact(seed: int) -> dict:
    settings = dataclasses.replace(RunnerSettings.tiny(), seed=seed)
    report = AblationRunner(settings).run(enumerate_configs())
    assert report.bit_identical, report.mismatches
    return build_artifact(report)


def test_back_to_back_runs_identical_non_timing_fields():
    first = _artifact(seed=2019)
    second = _artifact(seed=2019)
    assert first != second, "wall-clock fields should differ between runs"
    va, vb = non_timing_view(first), non_timing_view(second)
    # Ranking order is timing-derived; compare it as a set of rows.
    ra = {r["run_id"]: r for r in va.pop("ranking")}
    rb = {r["run_id"]: r for r in vb.pop("ranking")}
    assert ra == rb
    assert json.dumps(va, sort_keys=True) == json.dumps(vb, sort_keys=True)
    # The strongest clause: bit-identical numeric results across runs.
    assert (
        va["baseline"]["spmv_checksums"] == vb["baseline"]["spmv_checksums"]
    )


def test_seed_actually_steers_the_workload():
    first = _artifact(seed=2019)
    other = _artifact(seed=2020)
    assert (
        first["baseline"]["spmv_checksums"]
        != other["baseline"]["spmv_checksums"]
    ), "different seeds must generate different matrices/vectors"
    assert first["context"]["seed"] != other["context"]["seed"]
