"""Tests for the byte-plane shuffle codec and the attachment-point model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs import ShuffleCodec, shuffle_bytes, unshuffle_bytes
from repro.codecs.snappy import snappy_compress
from repro.codecs.stats import dsh_plan
from repro.collection import generators
from repro.core.attach import on_die_udp, pcie_attached
from repro.memsys import DDR4_100GBS
from repro.udp.runtime import simulate_plan


class TestShuffle:
    def test_known_transpose(self):
        data = bytes([1, 2, 3, 4, 5, 6])
        assert shuffle_bytes(data, lane=2) == bytes([1, 3, 5, 2, 4, 6])
        assert unshuffle_bytes(shuffle_bytes(data, lane=2), lane=2) == data

    def test_partial_tail_preserved(self):
        data = bytes(range(10))
        out = shuffle_bytes(data, lane=4)
        assert out[-2:] == data[-2:]  # 2-byte tail passes through
        assert unshuffle_bytes(out, lane=4) == data

    def test_empty(self):
        assert shuffle_bytes(b"", 8) == b""
        assert unshuffle_bytes(b"", 8) == b""

    def test_lane_validation(self):
        with pytest.raises(ValueError):
            shuffle_bytes(b"x", 0)
        with pytest.raises(ValueError):
            ShuffleCodec(lane=0)

    def test_codec_wrapper(self):
        codec = ShuffleCodec(lane=8)
        data = np.random.default_rng(0).normal(size=100).tobytes()
        assert codec.decode(codec.encode(data)) == data

    def test_groups_exponent_bytes(self):
        # Doubles in [1, 2): identical exponent bytes land contiguously,
        # so the shuffled stream has a long constant run snappy can eat.
        vals = 1.0 + np.random.default_rng(1).random(512)
        raw = vals.tobytes()
        shuffled = shuffle_bytes(raw, 8)
        # Last plane = highest-significance byte of little-endian doubles.
        plane = shuffled[7 * 512 :]
        assert len(set(plane)) <= 2

    def test_helps_smooth_unique_doubles(self):
        vals = np.sort(1.0 + np.random.default_rng(2).random(2048) * 1e-3)
        raw = vals.tobytes()
        assert len(snappy_compress(shuffle_bytes(raw, 8))) < len(snappy_compress(raw))

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=500), st.integers(1, 16))
    def test_property_bijection(self, data, lane):
        assert unshuffle_bytes(shuffle_bytes(data, lane), lane) == data


class TestAttach:
    @pytest.fixture(scope="class")
    def plan(self):
        return dsh_plan(generators.banded(3000, bandwidth=5, seed=2))

    @pytest.fixture(scope="class")
    def udp_tput(self, plan):
        return simulate_plan(plan, sample=2).throughput_bytes_per_s

    def test_on_die_faster_than_pcie(self, plan, udp_tput):
        ondie = on_die_udp(plan, DDR4_100GBS, udp_tput)
        pcie = pcie_attached(plan, DDR4_100GBS)
        assert ondie.seconds < pcie.seconds
        assert ondie.speedup_over(pcie) > 3.0

    def test_pcie_capped_by_device_rate(self, plan):
        pcie = pcie_attached(plan, DDR4_100GBS, device_rate=4e9)
        assert pcie.effective_output_rate <= 4e9 * 1.01

    def test_pcie_moves_more_dram_bytes(self, plan, udp_tput):
        ondie = on_die_udp(plan, DDR4_100GBS, udp_tput)
        pcie = pcie_attached(plan, DDR4_100GBS)
        # comp + 2*out vs comp alone.
        assert pcie.dram_bytes > 2 * plan.uncompressed_bytes
        assert ondie.dram_bytes == plan.compressed_bytes

    def test_on_die_pipelines_stream_and_decode(self, plan):
        # Huge UDP throughput -> bound by the compressed stream time.
        fast = on_die_udp(plan, DDR4_100GBS, udp_output_throughput=1e15)
        expected = DDR4_100GBS.transfer_seconds(plan.compressed_bytes)
        assert fast.seconds == pytest.approx(expected)

    def test_validation(self, plan):
        with pytest.raises(ValueError):
            on_die_udp(plan, DDR4_100GBS, 0)
        with pytest.raises(ValueError):
            pcie_attached(plan, DDR4_100GBS, device_rate=0)
