"""Tests for the NoC fabric model and the UDP scratchpad footprint check."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs.stats import dsh_plan
from repro.collection import generators
from repro.memsys import DDR4_100GBS, MeshNoC, default_chip
from repro.udp.runtime import (
    BYTES_PER_CODE_SLOT,
    DecoderToolchain,
    LANE_SCRATCHPAD_BYTES,
)


class TestMeshNoC:
    def test_place_and_hops(self):
        noc = MeshNoC(4, 4)
        noc.place("a", 0, 0)
        noc.place("b", 3, 2)
        assert noc.hops("a", "b") == 5
        assert noc.hops("b", "a") == 5
        assert noc.hops("a", "a") == 0

    def test_transfer_pricing(self):
        noc = MeshNoC(2, 2, hop_latency_s=1e-9, link_bytes_per_s=64e9)
        noc.place("a", 0, 0)
        noc.place("b", 1, 1)
        t = noc.transfer("a", "b", 8192)
        assert t.hops == 2
        assert t.seconds == pytest.approx(2e-9 + 8192 / 64e9)
        assert t.energy_j > 0

    def test_zero_bytes(self):
        noc = MeshNoC(2, 1)
        noc.place("a", 0, 0)
        noc.place("b", 1, 0)
        t = noc.transfer("a", "b", 0)
        assert t.seconds == pytest.approx(noc.hop_latency_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshNoC(0, 2)
        noc = MeshNoC(2, 2)
        with pytest.raises(ValueError):
            noc.place("x", 5, 0)
        noc.place("x", 0, 0)
        with pytest.raises(ValueError):
            noc.place("x", 1, 1)
        with pytest.raises(ValueError):
            noc.hops("x", "ghost")
        noc.place("y", 1, 0)
        with pytest.raises(ValueError):
            noc.transfer("x", "y", -1)

    def test_default_chip_floorplan(self):
        noc = default_chip(ncores=8)
        # The UDP sits beside the memory controller — the paper's point.
        assert noc.hops("udp", "memctrl") <= 1
        for i in range(8):
            assert noc.hops(f"core{i}", "udp") >= 1

    def test_on_die_transfer_negligible_vs_dram(self):
        # 8 KB across the die vs the same 8 KB from DRAM.
        noc = default_chip()
        on_die = noc.transfer("udp", "core0", 8192)
        dram_s = DDR4_100GBS.transfer_seconds(8192)
        assert on_die.energy_j < 0.1 * DDR4_100GBS.transfer_energy_j(8192)
        assert on_die.seconds < 10 * dram_s  # same order; energy is the win

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 7), st.integers(0, 7),
           st.integers(0, 7), st.integers(0, 7))
    def test_property_hops_metric(self, w, h, ax, ay, bx, by):
        noc = MeshNoC(8, 8)
        noc.place("a", ax, ay)
        noc.place("b", bx, by)
        hops = noc.hops("a", "b")
        assert hops == abs(ax - bx) + abs(ay - by)
        assert hops == noc.hops("b", "a")


class TestFootprint:
    @pytest.fixture(scope="class")
    def toolchain(self):
        return DecoderToolchain(dsh_plan(generators.banded(1500, bandwidth=4, seed=3)))

    def test_default_toolchain_fits_a_lane(self, toolchain):
        report = toolchain.footprint()
        assert report.fits, report
        assert report.lane_budget == LANE_SCRATCHPAD_BYTES
        assert set(report.program_bytes) == {
            "snappy", "delta", "huffman-index", "huffman-value",
        }

    def test_buffers_are_three_blocks(self, toolchain):
        report = toolchain.footprint()
        assert report.buffer_bytes == 3 * 8192

    def test_huffman_dominates_code_size(self, toolchain):
        report = toolchain.footprint()
        assert report.program_bytes["huffman-index"] > report.program_bytes["snappy"]
        assert report.largest_program == max(report.program_bytes.values())

    def test_stride8_bursts_the_budget(self):
        # The abl_stride finding, as a hard check: byte-wide dispatch
        # tables do not fit a 64 KB lane.
        plan = dsh_plan(generators.banded(800, bandwidth=3, seed=4))
        wide = DecoderToolchain(plan, stride=8)
        assert not wide.footprint().fits

    def test_snappy_only_plan_small(self):
        from repro.codecs.pipeline import compress_matrix

        plan = compress_matrix(
            generators.banded(500, bandwidth=3, seed=5),
            use_delta=False,
            use_huffman=False,
        )
        report = DecoderToolchain(plan).footprint()
        assert report.fits
        assert "huffman-index" not in report.program_bytes
        assert report.largest_program < 1024

    def test_custom_budget(self, toolchain):
        tight = toolchain.footprint(lane_budget=1024)
        assert not tight.fits
