"""Tests for repro.sparse.csr and repro.sparse.coo."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.sparse import COOMatrix, CSRMatrix
from repro.sparse.csr import BYTES_PER_NNZ_CSR


def paper_example() -> CSRMatrix:
    """The 4x4 matrix of paper Fig. 2."""
    dense = np.array(
        [
            [1, 0, 2, 0],
            [0, 0, 0, 0],
            [3, 0, 4, 5],
            [0, 6, 0, 7],
        ],
        dtype=float,
    )
    return CSRMatrix.from_dense(dense)


class TestCSRConstruction:
    def test_paper_fig2_arrays(self):
        a = paper_example()
        np.testing.assert_array_equal(a.row_ptr, [0, 2, 2, 5, 7])
        np.testing.assert_array_equal(a.col_idx, [0, 2, 0, 2, 3, 1, 3])
        np.testing.assert_array_equal(a.val, [1, 2, 3, 4, 5, 6, 7])

    def test_dtypes_match_paper_baseline(self):
        a = paper_example()
        assert a.col_idx.dtype == np.int32
        assert a.val.dtype == np.float64
        assert a.storage_bytes() == BYTES_PER_NNZ_CSR * 7

    def test_round_trip_dense(self):
        a = paper_example()
        np.testing.assert_array_equal(
            a.to_dense(),
            [[1, 0, 2, 0], [0, 0, 0, 0], [3, 0, 4, 5], [0, 6, 0, 7]],
        )

    def test_scipy_round_trip(self):
        a = paper_example()
        back = CSRMatrix.from_scipy(a.to_scipy())
        np.testing.assert_array_equal(back.to_dense(), a.to_dense())

    def test_properties(self):
        a = paper_example()
        assert a.nnz == 7
        assert a.nrows == 4 and a.ncols == 4
        assert a.density == pytest.approx(7 / 16)

    def test_row_access(self):
        a = paper_example()
        cols, vals = a.row(2)
        np.testing.assert_array_equal(cols, [0, 2, 3])
        np.testing.assert_array_equal(vals, [3, 4, 5])
        with pytest.raises(IndexError):
            a.row(4)

    def test_row_nnz(self):
        np.testing.assert_array_equal(paper_example().row_nnz(), [2, 0, 3, 2])

    def test_sorted_indices(self):
        assert paper_example().has_sorted_indices()

    def test_sorted_indices_with_leading_empty_rows(self):
        # Regression: a single entry in the last row used to index the
        # boundary mask at -1 (hypothesis-found).
        a = CSRMatrix((2, 1), np.array([0, 0, 1]), np.array([0]), np.array([1.0]))
        assert a.has_sorted_indices()
        b = CSRMatrix(
            (3, 2),
            np.array([0, 1, 1, 2]),
            np.array([1, 0]),
            np.array([1.0, 2.0]),
        )
        assert b.has_sorted_indices()

    def test_unsorted_indices_detected(self):
        a = CSRMatrix((1, 3), np.array([0, 2]), np.array([2, 0]), np.array([1.0, 2.0]))
        assert not a.has_sorted_indices()

    def test_empty_matrix(self):
        a = CSRMatrix((3, 3), np.zeros(4), np.zeros(0), np.zeros(0))
        assert a.nnz == 0
        assert a.density == 0.0
        np.testing.assert_array_equal(a.to_dense(), np.zeros((3, 3)))

    def test_zero_by_zero(self):
        a = CSRMatrix((0, 0), np.zeros(1), np.zeros(0), np.zeros(0))
        assert a.nnz == 0 and a.density == 0.0


class TestCSRValidation:
    def test_bad_row_ptr_length(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_row_ptr_must_end_at_nnz(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1, 3]), np.array([0]), np.array([1.0]))

    def test_row_ptr_monotone(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 2, 1]), np.array([0]), np.array([1.0]))

    def test_col_out_of_range(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1, 1]), np.array([5]), np.array([1.0]))

    def test_len_mismatch(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1, 1]), np.array([0]), np.array([1.0, 2.0]))

    def test_negative_shape(self):
        with pytest.raises(ValueError):
            CSRMatrix((-1, 2), np.array([0]), np.zeros(0), np.zeros(0))

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_dense(np.ones(4))


class TestCOO:
    def test_to_csr_matches_scipy(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 20, size=100)
        cols = rng.integers(0, 30, size=100)
        vals = rng.normal(size=100)
        ours = COOMatrix((20, 30), rows, cols, vals).to_csr()
        ref = sp.coo_matrix((vals, (rows, cols)), shape=(20, 30)).tocsr()
        ref.sum_duplicates()
        np.testing.assert_allclose(ours.to_dense(), ref.toarray())

    def test_duplicates_summed(self):
        coo = COOMatrix((2, 2), [0, 0, 1], [1, 1, 0], [2.0, 3.0, 1.0])
        csr = coo.to_csr()
        assert csr.nnz == 2
        assert csr.to_dense()[0, 1] == 5.0

    def test_cancellation_dropped(self):
        coo = COOMatrix((1, 1), [0, 0], [0, 0], [2.0, -2.0])
        assert coo.to_csr().nnz == 0

    def test_empty(self):
        coo = COOMatrix((4, 4), [], [], [])
        csr = coo.to_csr()
        assert csr.nnz == 0
        assert csr.shape == (4, 4)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            COOMatrix((2, 2), [2], [0], [1.0])
        with pytest.raises(ValueError):
            COOMatrix((2, 2), [0], [-1], [1.0])

    def test_from_csr_round_trip(self):
        a = paper_example()
        back = COOMatrix.from_csr(a).to_csr()
        np.testing.assert_array_equal(back.to_dense(), a.to_dense())


@st.composite
def random_coo(draw, max_dim=24, max_nnz=80):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    k = draw(st.integers(0, max_nnz))
    rows = draw(st.lists(st.integers(0, m - 1), min_size=k, max_size=k))
    cols = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    vals = draw(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=k,
            max_size=k,
        )
    )
    return COOMatrix((m, n), np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64), np.array(vals))


class TestCSRProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_coo())
    def test_coo_csr_agrees_with_scipy(self, coo):
        ours = coo.to_csr().to_dense()
        ref = sp.coo_matrix(
            (coo.vals, (coo.rows, coo.cols)), shape=coo.shape
        ).toarray()
        np.testing.assert_allclose(ours, ref, rtol=1e-12, atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(random_coo())
    def test_csr_invariants(self, coo):
        csr = coo.to_csr()
        assert csr.row_ptr[0] == 0
        assert csr.row_ptr[-1] == csr.nnz
        assert np.all(np.diff(csr.row_ptr) >= 0)
        assert csr.has_sorted_indices()
