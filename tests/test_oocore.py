"""Out-of-core differential test layer: mmap streaming vs in-memory truth.

The contract under test (ISSUE acceptance): an mmap-backed
:class:`~repro.codecs.container.ContainerReader` — streamed serially,
pipelined, or scatter-gathered over sharded worker processes — must be
*bit-identical* to the in-memory executor: result vector (sha256 of
``y``), ``dma_seconds``, TrafficLog edge totals, degraded-block counts,
and raised error types/messages, across policies and injected faults.
Lazy verification must surface the same errors eager loading raises for
the same corruption, just at access time instead of load time. Shard
boundaries are adversarial: any contiguous partition, folded in any
shard order, must reproduce the serial sum exactly — split rows at the
boundary included.
"""

import hashlib
import io
import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs.container import (
    ContainerReader,
    load_plan,
    save_plan,
    scrub_container,
)
from repro.codecs.errors import (
    BlockDecodeError,
    ContainerError,
    TruncatedContainerError,
)
from repro.codecs.pipeline import compress_matrix
from repro.collection import generators
from repro.core import recoded_spmm, recoded_spmv
from repro.core.executor import (
    BlockAccumulator,
    RunCounters,
    block_row_sums,
    run_sharded,
    shard_ranges,
)
from repro.faults import FaultPlan
from repro.memsys.dram import DDR4_100GBS
from repro.memsys.traffic import TrafficLog


def sha(y: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(y).tobytes()).hexdigest()


@pytest.fixture(scope="module")
def plan():
    m = generators.unstructured(400, density=0.03, seed=3)
    return compress_matrix(m, block_bytes=2048)


@pytest.fixture(scope="module")
def container(plan, tmp_path_factory):
    path = tmp_path_factory.mktemp("oocore") / "m.dsh"
    save_plan(plan, path)
    return str(path)


@pytest.fixture(scope="module")
def x(plan):
    return np.random.default_rng(7).standard_normal(plan.blocked.shape[1])


@pytest.fixture(scope="module")
def split_plan():
    """Tiny byte budget on a dense-ish matrix: most blocks are split-row
    continuations (``leading_partial``) — the shard-boundary hard case."""
    m = generators.unstructured(60, density=0.5, seed=9)
    p = compress_matrix(m, block_bytes=60)
    assert any(b.leading_partial for b in p.blocked.blocks)
    return p


@pytest.fixture(scope="module")
def split_container(split_plan, tmp_path_factory):
    path = tmp_path_factory.mktemp("oocore-split") / "split.dsh"
    save_plan(split_plan, path)
    return str(path)


def assert_stats_parity(a, b):
    assert a.dram_bytes == b.dram_bytes
    assert a.baseline_dram_bytes == b.baseline_dram_bytes
    assert a.traffic.edges() == b.traffic.edges()
    assert a.dma_seconds == b.dma_seconds
    assert a.degraded_blocks == b.degraded_blocks


# ---------------------------------------------------------------------------
# Reader parity: the mmap walk resolves the same plan eager loading does
# ---------------------------------------------------------------------------


class TestReaderParity:
    def test_materialize_matches_load_plan(self, plan, container):
        eager = load_plan(container)
        with ContainerReader(container, verify="lazy") as reader:
            lazy = reader.materialize()
        assert reader.shape == plan.blocked.shape
        assert reader.nnz == plan.nnz == eager.nnz
        assert reader.nblocks == eager.nblocks
        for be, bl in zip(eager.blocked.blocks, lazy.blocked.blocks):
            np.testing.assert_array_equal(be.col_idx, bl.col_idx)
            np.testing.assert_array_equal(be.val, bl.val)
            np.testing.assert_array_equal(be.row_ptr, bl.row_ptr)
            assert (be.row_start, be.row_end, be.leading_partial) == (
                bl.row_start, bl.row_end, bl.leading_partial,
            )

    def test_lazy_block_decode_matches_eager(self, container):
        eager = load_plan(container)
        with ContainerReader(container, verify="lazy") as reader:
            lazy_plan = reader.plan()
            for i in range(reader.nblocks):
                ref = eager.blocked.blocks[i]
                got = lazy_plan.decompress_block(i)
                np.testing.assert_array_equal(ref.col_idx, got.col_idx)
                np.testing.assert_array_equal(ref.val, got.val)

    def test_extents_tile_the_stream(self, container):
        """Record extents are ascending, non-overlapping, and the last
        payload ends exactly at the stream trailer."""
        with ContainerReader(container, verify="lazy") as reader:
            pos = None
            for ext in reader.extents:
                assert ext.index.end <= ext.value.offset
                if pos is not None:
                    assert ext.offset >= pos
                pos = ext.value.end
            assert pos == reader.nbytes - 4

    def test_residency_budget_validated(self, container):
        with pytest.raises(ValueError):
            ContainerReader(container, residency_budget=64)


# ---------------------------------------------------------------------------
# Corruption parity: lazy raises exactly what eager raises
# ---------------------------------------------------------------------------


def _forge_trailer(data: bytearray) -> bytes:
    """Recompute the stream trailer so corruption below it stays 'valid'
    at the whole-stream CRC layer — isolating the per-record CRC check."""
    body = bytes(data[:-4])
    return body + zlib.crc32(body).to_bytes(4, "little")


def _load_eager_error(data: bytes):
    with pytest.raises(ContainerError) as eager_exc:
        load_plan(data)
    with pytest.raises(ContainerError) as reader_exc:
        ContainerReader(data, verify="eager")
    # load_plan *is* the eager reader; both must agree with themselves.
    assert type(eager_exc.value) is type(reader_exc.value)
    assert str(eager_exc.value) == str(reader_exc.value)
    return eager_exc.value


class TestCorruptionParity:
    @pytest.fixture(scope="class")
    def pristine(self, container):
        with open(container, "rb") as fh:
            return fh.read()

    @pytest.fixture(scope="class")
    def victim(self, pristine):
        """A middle block with a non-empty index payload to corrupt."""
        with ContainerReader(pristine, verify="lazy") as reader:
            for ext in reader.extents[1:]:
                if ext.index.payload_len >= 2:
                    return ext
        pytest.skip("no block with a corruptible payload")

    @pytest.mark.parametrize("stream", ["index", "value"])
    def test_payload_flip_identical_errors(self, pristine, victim, stream):
        rext = victim.index if stream == "index" else victim.value
        data = bytearray(pristine)
        data[rext.payload_offset] ^= 0x40
        data = _forge_trailer(data)

        eager_err = _load_eager_error(data)
        assert "record CRC mismatch" in str(eager_err)

        with ContainerReader(data, verify="lazy") as reader:
            # Construction succeeds: the damage sits below the structural
            # layers lazy verification defers.
            with pytest.raises(ContainerError) as lazy_exc:
                reader.record(victim.block_id, stream)
            assert type(lazy_exc.value) is type(eager_err)
            assert str(lazy_exc.value) == str(eager_err)
            # Undamaged records stay readable around the sick one.
            other = victim.block_id - 1
            reader.record(other, "index")
            reader.record(other, "value")

    def test_trailer_flip_identical_errors(self, pristine):
        data = bytearray(pristine)
        data[-2] ^= 0x01
        data = bytes(data)

        eager_err = _load_eager_error(data)
        assert "stream CRC mismatch" in str(eager_err)

        with ContainerReader(data, verify="lazy") as reader:
            with pytest.raises(ContainerError) as lazy_exc:
                reader.verify_stream()
            assert type(lazy_exc.value) is type(eager_err)
            assert str(lazy_exc.value) == str(eager_err)
            # Record CRCs are intact — every block still materializes.
            reader.record(0, "index")

    def test_meta_flip_raises_at_construction_both_modes(self, pristine, victim):
        data = bytearray(pristine)
        data[victim.offset + 1] ^= 0x10  # inside the <IIBQ block meta
        data = _forge_trailer(data)

        eager_err = _load_eager_error(data)
        with pytest.raises(ContainerError) as lazy_exc:
            ContainerReader(data, verify="lazy")
        assert type(lazy_exc.value) is type(eager_err)
        assert str(lazy_exc.value) == str(eager_err)

    def test_truncation_refused_by_both_modes(self, pristine, victim):
        cut = victim.value.payload_offset + 1
        data = bytes(pristine[:cut])
        with pytest.raises(ContainerError):
            load_plan(data)
        # Lazy detects it structurally (sharper type); eager's full-stream
        # CRC pass sees the damage first — both refuse at construction.
        with pytest.raises(TruncatedContainerError):
            ContainerReader(data, verify="lazy")

    def test_faulty_execution_matches_eager(
        self, pristine, victim, x, tmp_path
    ):
        """Streaming SpMV over a genuinely corrupt container surfaces the
        *same* error eager loading raises — in serial mmap mode and from a
        sharded worker process alike. (Real media corruption is not a
        decode failure: there is no pristine copy to degrade to, so it
        must not be swallowed by the policy machinery.)"""
        data = bytearray(pristine)
        data[victim.index.payload_offset] ^= 0x40
        data = _forge_trailer(data)
        eager_err = _load_eager_error(data)

        with ContainerReader(data, verify="lazy") as reader:
            with pytest.raises(ContainerError) as serial_exc:
                recoded_spmv(reader, x, policy="degrade")
        assert type(serial_exc.value) is type(eager_err)
        assert str(serial_exc.value) == str(eager_err)

        path = tmp_path / "corrupt.dsh"
        path.write_bytes(data)
        with pytest.raises(ContainerError) as shard_exc:
            recoded_spmv(str(path), x, policy="degrade", shards=2)
        assert str(shard_exc.value) == str(eager_err)


# ---------------------------------------------------------------------------
# Scrub/reader agreement over a corrupted corpus (satellite: scrub reuse)
# ---------------------------------------------------------------------------


class TestScrubReaderAgreement:
    def test_boundaries_and_sick_blocks_agree(self, container):
        with open(container, "rb") as fh:
            pristine = fh.read()
        with ContainerReader(pristine, verify="lazy") as reader:
            extents = reader.extents
        sick = {1, len(extents) // 2, len(extents) - 1}
        data = bytearray(pristine)
        for k in sick:
            data[extents[k].index.payload_offset] ^= 0x20
        data = _forge_trailer(data)

        report = scrub_container(bytes(data))
        assert report.nblocks == len(extents)
        for health, ext in zip(report.blocks, extents):
            # Every block/record boundary in the report comes from the
            # same extent resolution the reader exposes.
            assert health.block_id == ext.block_id
            assert health.offset == ext.offset
            assert health.index.payload_bytes == ext.index.payload_len
            assert health.value.payload_bytes == ext.value.payload_len
            assert health.index.crc_ok == (ext.block_id not in sick)
            assert health.value.crc_ok

    def test_pristine_corpus_all_ok(self, container):
        report = scrub_container(container)
        assert report.trailer_ok and report.header_ok
        assert all(b.ok for b in report.blocks)


# ---------------------------------------------------------------------------
# Execution parity matrix: in-memory x mmap x sharded x policy x faults
# ---------------------------------------------------------------------------


class TestExecutionParity:
    @pytest.fixture(scope="class")
    def truth(self, plan, x):
        y, stats = recoded_spmv(plan, x)
        return sha(y), stats

    def test_mmap_serial_bit_identical(self, container, x, truth):
        with ContainerReader(container, verify="lazy") as reader:
            y, stats = recoded_spmv(reader, x)
        assert sha(y) == truth[0]
        assert_stats_parity(stats, truth[1])
        assert stats.oocore is not None and stats.oocore["mapped_bytes"] > 0

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_sharded_bit_identical(self, plan, container, x, truth, shards):
        y, stats = recoded_spmv(container, x, shards=shards)
        assert sha(y) == truth[0]
        assert_stats_parity(stats, truth[1])
        assert stats.mode == "sharded"
        assert stats.oocore["shards"] == min(shards, plan.nblocks)

    @pytest.mark.parametrize("workers,depth", [(0, 1), (2, 4)])
    def test_pipelined_mmap_matrix(self, container, x, truth, workers, depth):
        from repro.codecs.engine import RecodeEngine

        engine = RecodeEngine(workers=workers, executor="thread", retry_base_s=0.0)
        with ContainerReader(container, verify="lazy") as reader:
            y, stats = recoded_spmv(
                reader, x, engine=engine, mode="pipelined", depth=depth
            )
        assert sha(y) == truth[0]
        assert_stats_parity(stats, truth[1])

    @pytest.mark.parametrize("policy", ["strict", "degrade"])
    def test_fault_free_policies_identical(self, container, x, truth, policy):
        y, _ = recoded_spmv(container, x, policy=policy, shards=2)
        assert sha(y) == truth[0]

    def test_dram_fault_degrade_parity(self, plan, container, x):
        fp = FaultPlan(seed=5, dram_bitflip_blocks=(1, 3))
        with fp.activate():
            y_mem, s_mem = recoded_spmv(plan, x, policy="degrade")
        with fp.activate():
            with ContainerReader(container, verify="lazy") as reader:
                y_map, s_map = recoded_spmv(reader, x, policy="degrade")
        with fp.activate():
            y_shd, s_shd = recoded_spmv(container, x, policy="degrade", shards=3)
        assert sha(y_mem) == sha(y_map) == sha(y_shd)
        assert s_mem.degraded_blocks == s_map.degraded_blocks == s_shd.degraded_blocks == 2
        assert_stats_parity(s_mem, s_map)
        assert_stats_parity(s_mem, s_shd)

    def test_dram_fault_strict_identical_errors(self, plan, container, x):
        fp = FaultPlan(seed=5, dram_bitflip_blocks=(2,))
        errors = []
        with fp.activate():
            with pytest.raises(BlockDecodeError) as e:
                recoded_spmv(plan, x, policy="strict")
            errors.append(e.value)
        with fp.activate():
            with ContainerReader(container, verify="lazy") as reader:
                with pytest.raises(BlockDecodeError) as e:
                    recoded_spmv(reader, x, policy="strict")
            errors.append(e.value)
        with fp.activate():
            with pytest.raises(BlockDecodeError) as e:
                recoded_spmv(container, x, policy="strict", shards=2)
            errors.append(e.value)
        assert len({str(err) for err in errors}) == 1
        assert len({err.block_id for err in errors}) == 1

    def test_spmm_parity(self, plan, container, x):
        X = np.stack([x, 2.0 * x, x - 1.0], axis=1)
        Y_mem, s_mem = recoded_spmm(plan, X)
        Y_shd, s_shd = recoded_spmm(container, X, shards=2)
        np.testing.assert_array_equal(Y_mem, Y_shd)
        assert_stats_parity(s_mem, s_shd)
        for j in range(X.shape[1]):
            y_col, _ = recoded_spmv(plan, X[:, j])
            np.testing.assert_array_equal(Y_mem[:, j], y_col)

    def test_shards_need_path_backed_container(self, plan, x):
        with pytest.raises(ValueError):
            recoded_spmv(plan, x, shards=2)

    def test_shards_reject_pipelined(self, container, x):
        with pytest.raises(ValueError):
            recoded_spmv(container, x, shards=2, mode="pipelined")


# ---------------------------------------------------------------------------
# Hypothesis: shard boundaries and fold order are free parameters
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def split_truth(split_plan):
    xs = np.random.default_rng(1).standard_normal(split_plan.blocked.shape[1])
    y, stats = recoded_spmv(split_plan, xs)
    return xs, y, stats


@settings(max_examples=6, deadline=None)
@given(cuts=st.lists(st.integers(min_value=1, max_value=10_000), max_size=3))
def test_any_contiguous_partition_is_bit_identical(
    split_container, split_truth, cuts
):
    """run_sharded with *arbitrary* contiguous bounds — shard boundaries
    landing mid split-row included — reproduces serial ``y``, TrafficLog
    edges, and ``dma_seconds`` exactly."""
    xs, y_serial, s_serial = split_truth
    with ContainerReader(split_container, verify="lazy") as reader:
        points = sorted({c % (reader.nblocks + 1) for c in cuts})
        edges_pts = [0] + points + [reader.nblocks]
        bounds = [
            range(a, b) for a, b in zip(edges_pts, edges_pts[1:]) if a < b
        ]
        log = TrafficLog()
        y, dma_seconds, info = run_sharded(
            reader,
            xs,
            shards=len(bounds),
            memory=DDR4_100GBS,
            log=log,
            policy="strict",
            counters=RunCounters(),
            bounds=bounds,
        )
    np.testing.assert_array_equal(y, y_serial)
    assert log.edges() == s_serial.traffic.edges()
    assert dma_seconds == s_serial.dma_seconds
    assert info["shards"] == len(bounds)


@settings(max_examples=30, deadline=None)
@given(
    cuts=st.lists(st.integers(min_value=1, max_value=10_000), max_size=5),
    order_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_accumulator_folds_any_shard_order(split_plan, split_truth, cuts, order_seed):
    """Satellite invariant, in-process: per-block segment sums grouped
    into any contiguous shard partition and folded in any *shard order*
    reproduce the serial result bitwise, and per-shard TrafficLog totals
    replayed in that order sum to the serial edge totals exactly."""
    xs, y_serial, s_serial = split_truth
    blocks = split_plan.blocked.blocks
    n = len(blocks)
    points = sorted({c % (n + 1) for c in cuts})
    edges_pts = [0] + points + [n]
    bounds = [range(a, b) for a, b in zip(edges_pts, edges_pts[1:]) if a < b]
    perm = np.random.default_rng(order_seed).permutation(len(bounds))

    out = np.zeros(split_plan.blocked.shape[0], dtype=np.float64)
    acc = BlockAccumulator(blocks, out)
    log = TrafficLog()
    for s in perm:
        shard_edges: dict[tuple[str, str], int] = {}
        for i in bounds[s]:
            sums = block_row_sums(blocks[i], xs)
            if sums is not None:
                acc.add(i, sums[0], sums[1])
            rec_bytes = (
                split_plan.index_records[i].stored_bytes
                + split_plan.value_records[i].stored_bytes
            )
            shard_edges[("dram", "udp")] = (
                shard_edges.get(("dram", "udp"), 0) + rec_bytes
            )
            shard_edges[("udp", "cpu")] = (
                shard_edges.get(("udp", "cpu"), 0) + 12 * blocks[i].nnz
            )
        for (src, dst), nbytes in sorted(shard_edges.items()):
            log.record(src, dst, nbytes)
    acc.finalize()

    np.testing.assert_array_equal(out, y_serial)
    assert log.bytes_on("dram", "udp") == s_serial.traffic.bytes_on("dram", "udp")
    assert log.bytes_on("udp", "cpu") == s_serial.traffic.bytes_on("udp", "cpu")


def test_shard_ranges_cover_and_balance():
    for nblocks in (0, 1, 7, 29, 360):
        for shards in (1, 2, 5, 16):
            bounds = shard_ranges(nblocks, shards)
            covered = [i for r in bounds for i in r]
            assert covered == list(range(nblocks))
            if bounds:
                sizes = [len(r) for r in bounds]
                assert max(sizes) - min(sizes) <= 1
    with pytest.raises(ValueError):
        shard_ranges(4, 0)


# ---------------------------------------------------------------------------
# Pipelined execution over container sources: path/reader block sources
# must be bit-identical to the in-memory pipelined run (serve satellite)
# ---------------------------------------------------------------------------


class TestPipelinedSourceParity:
    def _pipelined(self, source, x, workers=2, executor="thread", **kw):
        from repro.codecs.engine import RecodeEngine

        engine = RecodeEngine(workers=workers, executor=executor, retry_base_s=0.0)
        try:
            return recoded_spmv(
                source, x, engine=engine, mode="pipelined", depth=4, **kw
            )
        finally:
            engine.close()

    def test_path_source_matches_in_memory_pipelined(self, plan, container, x):
        y_mem, s_mem = self._pipelined(plan, x)
        y_path, s_path = self._pipelined(container, x)
        assert sha(y_path) == sha(y_mem)
        assert_stats_parity(s_path, s_mem)
        assert s_path.mode == "pipelined"
        assert s_path.oocore is not None and s_path.oocore["mapped_bytes"] > 0

    def test_reader_source_process_executor(self, plan, container, x):
        y_mem, s_mem = self._pipelined(plan, x)
        with ContainerReader(container, verify="lazy") as reader:
            y_proc, s_proc = self._pipelined(reader, x, executor="process")
        assert sha(y_proc) == sha(y_mem)
        assert_stats_parity(s_proc, s_mem)

    def test_pipelined_container_fault_parity(self, plan, container, x):
        """Degrade over a pipelined container source: same degraded count
        and bit-identical output as the serial in-memory degrade run."""
        fp = FaultPlan(seed=5, dram_bitflip_blocks=(1, 3))
        with fp.activate():
            y_mem, s_mem = recoded_spmv(plan, x, policy="degrade")
        with fp.activate():
            with ContainerReader(container, verify="lazy") as reader:
                y_pipe, s_pipe = self._pipelined(reader, x, policy="degrade")
        assert sha(y_pipe) == sha(y_mem)
        assert s_pipe.degraded_blocks == s_mem.degraded_blocks == 2
        assert_stats_parity(s_pipe, s_mem)


# ---------------------------------------------------------------------------
# Cooperative cancellation: the serve layer's deadline machinery
# ---------------------------------------------------------------------------


class TestCooperativeCancel:
    def test_serial_cancel_raises_immediately(self, plan, x):
        from repro.core import RunCancelled

        with pytest.raises(RunCancelled) as e:
            recoded_spmv(plan, x, cancel=lambda: True)
        assert e.value.blocks_done == 0

    def test_serial_cancel_mid_run_reports_progress(self, plan, x):
        from repro.core import RunCancelled

        calls = []

        def cancel():
            calls.append(None)
            return len(calls) > 3

        with pytest.raises(RunCancelled) as e:
            recoded_spmv(plan, x, cancel=cancel)
        assert 0 < e.value.blocks_done < plan.nblocks

    def test_pipelined_cancel_over_container(self, container, x):
        from repro.codecs.engine import RecodeEngine
        from repro.core import RunCancelled

        engine = RecodeEngine(workers=2, executor="thread", retry_base_s=0.0)
        try:
            with ContainerReader(container, verify="lazy") as reader:
                with pytest.raises(RunCancelled):
                    recoded_spmv(
                        reader, x, engine=engine, mode="pipelined", depth=2,
                        cancel=lambda: True,
                    )
        finally:
            engine.close()

    def test_cancel_never_fires_is_free(self, plan, x):
        y_plain, _ = recoded_spmv(plan, x)
        y_cancel, _ = recoded_spmv(plan, x, cancel=lambda: False)
        assert sha(y_cancel) == sha(y_plain)

    def test_cancel_rejects_shards(self, container, x):
        with pytest.raises(ValueError, match="cancel"):
            recoded_spmv(container, x, shards=2, cancel=lambda: False)

    def test_spmm_cancel(self, plan, x):
        from repro.core import RunCancelled

        X = np.stack([x, -x], axis=1)
        with pytest.raises(RunCancelled):
            recoded_spmm(plan, X, cancel=lambda: True)
