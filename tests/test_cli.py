"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import load_matrix, main
from repro.sparse import CSRMatrix, write_matrix_market


class TestLoadMatrix:
    def test_synth_spec(self):
        m = load_matrix("synth:banded:n=100,bandwidth=2")
        assert m.shape == (100, 100)

    def test_synth_defaults_need_size(self):
        with pytest.raises(TypeError):
            load_matrix("synth:banded")  # n is required

    def test_synth_float_param(self):
        m = load_matrix("synth:unstructured:n=50,density=0.1")
        assert m.shape == (50, 50)

    def test_synth_string_param(self):
        m = load_matrix("synth:mesh2d:nx=8,value_style=exact")
        assert m.row_nnz().max() == 5

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown synthetic kind"):
            load_matrix("synth:bogus:n=10")

    def test_bad_param_format(self):
        with pytest.raises(ValueError, match="key=value"):
            load_matrix("synth:banded:n")

    def test_mtx_path(self, tmp_path):
        m = CSRMatrix.from_dense(np.eye(4))
        path = tmp_path / "id.mtx"
        write_matrix_market(m, path)
        loaded = load_matrix(str(path))
        np.testing.assert_array_equal(loaded.to_dense(), np.eye(4))


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "synth:banded:n=200,bandwidth=3"]) == 0
        out = capsys.readouterr().out
        assert "200 x 200" in out
        assert "12 B/nnz baseline" in out

    def test_compress_dsh_verify(self, capsys):
        rc = main(["compress", "synth:banded:n=400,bandwidth=3", "--verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "B/nnz" in out
        assert "bit-exact round trip" in out

    def test_compress_auto(self, capsys):
        rc = main(["compress", "synth:banded:n=300,bandwidth=2", "--scheme", "auto"])
        assert rc == 0
        assert "autotune winner" in capsys.readouterr().out

    def test_compress_simulate(self, capsys):
        rc = main(["compress", "synth:mesh2d:nx=30", "--simulate", "--sample-blocks", "1"])
        assert rc == 0
        assert "UDP (64-lane" in capsys.readouterr().out

    def test_spmv(self, capsys):
        rc = main(["spmv", "synth:banded:n=600,bandwidth=4", "--memory", "hbm2",
                   "--sample-blocks", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HBM2" in out
        assert "Max Uncompressed" in out
        assert "Decomp(UDP+CPU)" in out

    def test_suite_listing(self, capsys):
        rc = main(["suite", "--count", "12", "--show", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "synth_" in out

    def test_suite_with_compress(self, capsys):
        rc = main(["suite", "--count", "6", "--scale", "0.0005", "--compress", "2"])
        assert rc == 0
        assert "DSH geomean" in capsys.readouterr().out

    def test_pack_unpack_roundtrip(self, tmp_path, capsys):
        dsh = tmp_path / "m.dsh"
        mtx = tmp_path / "m.mtx"
        rc = main(["pack", "synth:banded:n=300,bandwidth=3", str(dsh)])
        assert rc == 0
        assert "packed" in capsys.readouterr().out
        rc = main(["unpack", str(dsh), str(mtx)])
        assert rc == 0
        from repro.cli import load_matrix

        original = load_matrix("synth:banded:n=300,bandwidth=3")
        back = load_matrix(str(mtx))
        np.testing.assert_array_equal(back.val, original.val)
        np.testing.assert_array_equal(back.col_idx, original.col_idx)

    def test_pack_auto_scheme(self, tmp_path, capsys):
        dsh = tmp_path / "a.dsh"
        assert main(["pack", "synth:mesh2d:nx=20", str(dsh), "--scheme", "auto"]) == 0

    def test_scrub_healthy_and_corrupted(self, tmp_path, capsys):
        dsh = tmp_path / "s.dsh"
        assert main(["pack", "synth:banded:n=300,bandwidth=3", str(dsh)]) == 0
        capsys.readouterr()
        assert main(["scrub", str(dsh)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "healthy" in out
        data = bytearray(dsh.read_bytes())
        data[len(data) * 2 // 3] ^= 0x20
        bad = tmp_path / "bad.dsh"
        bad.write_bytes(bytes(data))
        assert main(["scrub", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "UNHEALTHY" in out

    def test_scrub_json(self, tmp_path, capsys):
        import json

        dsh = tmp_path / "j.dsh"
        assert main(["pack", "synth:banded:n=300,bandwidth=3", str(dsh)]) == 0
        capsys.readouterr()
        assert main(["scrub", str(dsh), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["healthy"] is True
        assert report["blocks_bad"] == 0

    def test_spmv_fault_plan_degrade(self, capsys):
        rc = main(["spmv", "synth:banded:n=600,bandwidth=3", "--policy", "degrade",
                   "--fault-plan", "seed=7,bitflip-blocks=1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault plan armed" in out
        assert "chaos:" in out and "quarantined=1" in out

    def test_spmv_fault_plan_strict_fails(self, capsys):
        rc = main(["spmv", "synth:banded:n=600,bandwidth=3",
                   "--fault-plan", "seed=7,bitflip-blocks=1"])
        assert rc == 1
        assert "error: block 1" in capsys.readouterr().err

    def test_spmv_bad_fault_plan_spec(self, capsys):
        rc = main(["spmv", "synth:banded:n=200,bandwidth=2",
                   "--fault-plan", "seed=7,bogus=1"])
        assert rc == 1
        assert "unknown fault-plan key" in capsys.readouterr().err

    def test_error_path_returns_1(self, capsys):
        rc = main(["info", "/nonexistent/file.mtx"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_synth_spec_returns_1(self, capsys):
        assert main(["info", "synth:bogus:n=1"]) == 1
