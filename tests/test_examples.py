"""Integration: the shipped examples must run end-to-end.

Each example is imported from ``examples/`` and its ``main()`` executed;
internal assertions (bit-exact SpMV equivalence etc.) run as part of it.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart",
    "pde_heat_solver",
    "graph_pagerank",
    "power_tuning",
    "suitesparse_workflow",
]


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_examples_directory_complete():
    present = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert set(ALL_EXAMPLES) <= present
