"""Tests for the synthetic matrix collection."""

import numpy as np
import pytest

from repro.collection import (
    REPRESENTATIVE_NAMES,
    SuiteConfig,
    build_suite,
    generators,
    representative_suite,
)
from repro.codecs.stats import compare_schemes


class TestGenerators:
    def test_banded_structure(self):
        m = generators.banded(100, bandwidth=3, seed=1)
        rows = np.repeat(np.arange(100), np.diff(m.row_ptr))
        assert np.all(np.abs(rows - m.col_idx) <= 3)
        assert m.nnz > 0

    def test_banded_fill(self):
        dense = generators.banded(200, bandwidth=2, fill=1.0, seed=0)
        sparse_fill = generators.banded(200, bandwidth=2, fill=0.5, seed=0)
        assert sparse_fill.nnz < dense.nnz

    def test_diagonals_offsets(self):
        m = generators.diagonals(50, offsets=[0, 5], seed=0)
        rows = np.repeat(np.arange(50), np.diff(m.row_ptr))
        offs = set((m.col_idx - rows).tolist())
        assert offs == {0, 5}

    def test_mesh2d_is_5_point(self):
        m = generators.mesh2d(10, value_style="exact")
        assert m.shape == (100, 100)
        assert m.row_nnz().max() == 5
        # Laplacian row sums are zero in the interior.
        dense = m.to_dense()
        assert dense[55].sum() == pytest.approx(0.0)

    def test_mesh2d_exact_symmetric(self):
        m = generators.mesh2d(8, 6, value_style="exact")
        dense = m.to_dense()
        np.testing.assert_allclose(dense, dense.T)

    def test_mesh2d_default_has_value_entropy(self):
        # Default variable coefficients: many distinct values (real TAMU
        # matrices are not constant-coefficient Laplacians).
        m = generators.mesh2d(20)
        assert len(np.unique(m.val)) > 100
        # Pattern is still the 5-point stencil.
        assert m.row_nnz().max() == 5

    def test_mesh3d_is_7_point(self):
        m = generators.mesh3d(5)
        assert m.shape == (125, 125)
        assert m.row_nnz().max() == 7

    def test_unstructured_density(self):
        m = generators.unstructured(100, density=0.05, seed=3)
        # Duplicates collapse, so observed density is slightly below target.
        assert 0.02 < m.density <= 0.05

    def test_powerlaw_graph_symmetric_and_skewed(self):
        m = generators.powerlaw_graph(500, attach=3, seed=5)
        dense = m.to_dense()
        np.testing.assert_allclose(dense, dense.T)
        degrees = m.row_nnz()
        # Scale-free: hub degree far above median.
        assert degrees.max() > 5 * np.median(degrees[degrees > 0])

    def test_symmetric_blocks_block_diagonal(self):
        m = generators.symmetric_blocks(4, 10, density=0.8, seed=2)
        rows = np.repeat(np.arange(m.nrows), np.diff(m.row_ptr))
        assert np.all((rows // 10) == (m.col_idx // 10))
        dense = m.to_dense()
        np.testing.assert_allclose((dense != 0), (dense != 0).T)

    def test_fem_stencil_degree(self):
        m = generators.fem_stencil(300, row_degree=10, jitter=15, seed=4)
        assert m.row_nnz().max() <= 10  # duplicates can only shrink rows
        assert m.nnz > 0.5 * 300 * 10

    def test_determinism(self):
        a = generators.banded(50, seed=9)
        b = generators.banded(50, seed=9)
        np.testing.assert_array_equal(a.val, b.val)

    def test_validation(self):
        with pytest.raises(ValueError):
            generators.banded(0)
        with pytest.raises(ValueError):
            generators.banded(10, fill=0.0)
        with pytest.raises(ValueError):
            generators.unstructured(10, density=2.0)
        with pytest.raises(ValueError):
            generators.mesh2d(0)
        with pytest.raises(ValueError):
            generators.powerlaw_graph(1)
        with pytest.raises(ValueError):
            generators.symmetric_blocks(0, 4)
        with pytest.raises(ValueError):
            generators.fem_stencil(10, row_degree=0)

    def test_value_styles(self):
        stencil = generators.banded(100, seed=0, value_style="stencil")
        assert len(np.unique(stencil.val)) <= 8
        with pytest.raises(ValueError):
            generators.banded(10, value_style="bogus")


class TestSuite:
    def test_default_count_is_369(self):
        suite = build_suite()
        assert len(suite) == 369

    def test_entries_deterministic(self):
        a = build_suite(SuiteConfig(count=10))
        b = build_suite(SuiteConfig(count=10))
        assert [e.seed for e in a] == [e.seed for e in b]
        ma, mb = a[0].build(), b[0].build()
        np.testing.assert_array_equal(ma.val, mb.val)

    def test_nnz_distribution_shape(self):
        suite = build_suite(SuiteConfig(count=100, scale=0.01))
        targets = np.array([e.target_nnz for e in suite])
        # Median near 4.9e6 * scale = 49_000.
        assert 3e4 < np.median(targets) < 8e4
        assert targets.min() >= 1e3
        assert targets.max() <= 1.2e7

    def test_class_mix_present(self):
        suite = build_suite(SuiteConfig(count=200))
        kinds = {e.kind for e in suite}
        assert len(kinds) >= 6

    def test_built_nnz_near_target(self):
        suite = build_suite(SuiteConfig(count=30, scale=0.001))
        for entry in suite[:8]:
            m = entry.build()
            # Duplicate collapsing etc. allows slack, but within 2.5x.
            assert m.nnz > entry.target_nnz / 2.5
            assert m.nnz < entry.target_nnz * 2.5

    def test_bad_config(self):
        with pytest.raises(ValueError):
            SuiteConfig(count=0)
        with pytest.raises(ValueError):
            SuiteConfig(scale=0.0)


class TestRepresentatives:
    def test_all_seven_present(self):
        reps = representative_suite(scale=0.005)
        assert tuple(r.name for r in reps) == REPRESENTATIVE_NAMES

    def test_build_all(self):
        for rep in representative_suite(scale=0.002):
            m = rep.build()
            assert m.nnz > 500, rep.name

    def test_metadata(self):
        reps = {r.name: r for r in representative_suite()}
        assert reps["shipsec1"].meta.symmetric
        assert reps["gas_sensor"].meta.true_nnz == 1703365
        assert 0 < reps["copter2"].meta.true_density < 1

    def test_structures_differ_in_compressibility(self):
        # The whole point of picking 7 diverse matrices: their B/nnz spread.
        reps = representative_suite(scale=0.002)
        ratios = [
            compare_schemes(r.build(), name=r.name).udp_dsh for r in reps
        ]
        assert max(ratios) / min(ratios) > 1.3

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            representative_suite(scale=0)
