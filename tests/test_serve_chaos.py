"""Chaos layer for repro.serve: fault injection against a live server.

A seeded :class:`~repro.faults.FaultPlan` is armed process-wide (the
server's compute threads share the interpreter, so they see the armed
plan while the ``with plan.activate():`` block is open) and the serving
contract is checked under corruption:

* ``policy=strict`` fails with a **typed** error carrying the block id —
  never a silent wrong answer, never a hang;
* ``policy=degrade`` answers bit-identically to a direct degrade-policy
  run under the same armed plan, with the degraded block count on the
  wire;
* tenant counters reconcile with what the client observed, and every
  response arrives within a bounded wall-clock even while faults fire.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.codecs.container import save_plan
from repro.codecs.pipeline import compress_matrix
from repro.collection import generators
from repro.core import recoded_spmv
from repro.faults import FaultPlan
from repro.serve import ServeClient, ServeConfig, ServerThread


@pytest.fixture(scope="module")
def plan():
    m = generators.unstructured(400, density=0.03, seed=3)
    return compress_matrix(m, block_bytes=2048)


@pytest.fixture(scope="module")
def root(plan, tmp_path_factory):
    d = tmp_path_factory.mktemp("chaos-root")
    save_plan(plan, d / "m.dsh")
    return str(d)


@pytest.fixture(scope="module")
def x(plan):
    return np.random.default_rng(7).standard_normal(plan.blocked.shape[1])


def run(coro):
    return asyncio.run(coro)


def _server_config(root, **kw):
    # cache_bytes=1 so every request re-decodes: a cached clean block
    # would mask the armed fault and the test would vacuously pass.
    kw.setdefault("cache_bytes", 1)
    return ServeConfig(root=root, port=0, **kw)


async def _spmv(port, x, tenant="t", **kw):
    async with ServeClient("127.0.0.1", port, tenant=tenant) as c:
        return await c.spmv("m", x, raise_on_error=False, **kw)


class TestStrictUnderFaults:
    def test_bitflip_fails_typed_with_block_id(self, root, x):
        with ServerThread(_server_config(root)) as st:
            with FaultPlan(seed=11, bitflip_blocks=(2,)).activate():
                resp = run(_spmv(st.server.port, x, tenant="s"))
        assert resp["status"] == 500
        assert resp["error"]["type"] in ("BlockDecodeError", "CodecError")
        assert resp["error"].get("block_id") == 2
        assert "y" not in resp

    def test_quarantine_memo_after_fault(self, plan, root, x):
        """After a strict decode failure the engine's quarantine memo makes
        later strict requests fail *fast* with the same typed error (the
        block is presumed corrupt on disk), while degrade requests still
        answer bit-exactly via the raw-stream substitute. The server stays
        up throughout."""
        with ServerThread(_server_config(root)) as st:
            with FaultPlan(seed=11, bitflip_blocks=(2,)).activate():
                bad = run(_spmv(st.server.port, x, tenant="s"))
            assert bad["status"] == 500
            strict_again = run(_spmv(st.server.port, x, tenant="s"))
            degraded = run(_spmv(st.server.port, x, tenant="s", policy="degrade"))
        assert strict_again["status"] == 500
        assert strict_again["error"].get("block_id") == 2
        y_direct, _ = recoded_spmv(plan, x)
        assert degraded["ok"] and degraded["degraded_blocks"] == 1
        assert np.array_equal(degraded["y"], y_direct)


class TestDegradeUnderFaults:
    def test_degrade_bit_identical_to_direct_under_same_plan(self, plan, root, x):
        from repro.codecs.engine import RecodeEngine

        fp = FaultPlan(seed=11, bitflip_blocks=(2,))
        with ServerThread(_server_config(root)) as st:
            with fp.activate():
                resp = run(_spmv(st.server.port, x, tenant="d", policy="degrade"))

        # bitflip_blocks fires at the engine decode site, so the direct
        # reference run needs its own (fresh, unquarantined) engine.
        eng = RecodeEngine(workers=0, retry_base_s=0.0)
        try:
            with fp.activate():
                y_direct, stats = recoded_spmv(
                    plan, x, engine=eng, policy="degrade", matrix_id="direct"
                )
        finally:
            eng.close()

        assert resp["ok"]
        assert resp["degraded_blocks"] >= 1
        assert resp["degraded_blocks"] == stats.degraded_blocks
        assert np.array_equal(resp["y"], y_direct)

    def test_mixed_policies_one_server(self, root, x):
        """Strict and degrade requests against the same faulted matrix."""
        with ServerThread(_server_config(root)) as st:
            with FaultPlan(seed=11, bitflip_blocks=(2,)).activate():

                async def go():
                    async with ServeClient(
                        "127.0.0.1", st.server.port, tenant="mx"
                    ) as c:
                        strict, degrade = await asyncio.gather(
                            c.spmv("m", x, raise_on_error=False),
                            c.spmv("m", x, policy="degrade", raise_on_error=False),
                        )
                        stats = await c.stats()
                        return strict, degrade, stats

                strict, degrade, stats = run(go())
        assert strict["status"] == 500
        assert degrade["ok"] and degrade["degraded_blocks"] >= 1
        row = next(t for t in stats["tenants"] if t["tenant"] == "mx")
        assert row["requests"] == 2
        assert row["completed"] == 1
        assert row["failed"] == 1
        assert row["degraded_requests"] == 1

    def test_fused_batch_not_poisoned_across_policies(self, root, x):
        """Fusion keys on (matrix, policy): a strict failure must not take
        down degrade riders, and vice versa."""
        with ServerThread(_server_config(root, fusion_window_ms=20.0)) as st:
            with FaultPlan(seed=11, bitflip_blocks=(2,)).activate():

                async def go():
                    async with ServeClient(
                        "127.0.0.1", st.server.port, tenant="fp"
                    ) as c:
                        return await asyncio.gather(
                            *(c.spmv("m", x, raise_on_error=False) for _ in range(3)),
                            *(
                                c.spmv(
                                    "m", x, policy="degrade", raise_on_error=False
                                )
                                for _ in range(3)
                            ),
                        )

                resps = run(go())
        stricts, degrades = resps[:3], resps[3:]
        for r in stricts:
            assert r["status"] == 500, r
        for r in degrades:
            assert r["ok"] and r["degraded_blocks"] >= 1, r


class TestBoundedLatencyUnderChaos:
    def test_no_hang_past_deadline(self, root, x):
        """Faulted traffic with deadlines: every response lands within a
        small multiple of the deadline — nothing is ever stranded."""
        deadline_ms = 2000.0
        with ServerThread(_server_config(root, compute_threads=1)) as st:
            with FaultPlan(seed=11, bitflip_blocks=(2,)).activate():

                async def go():
                    async with ServeClient(
                        "127.0.0.1", st.server.port, tenant="h"
                    ) as c:
                        t0 = time.monotonic()
                        resps = await asyncio.gather(
                            *(
                                c.spmv(
                                    "m",
                                    x,
                                    deadline_ms=deadline_ms,
                                    policy=("degrade" if i % 2 else "strict"),
                                    raise_on_error=False,
                                )
                                for i in range(10)
                            )
                        )
                        elapsed = time.monotonic() - t0
                        stats = await c.stats()
                        return resps, elapsed, stats

                resps, elapsed, stats = run(go())
        assert len(resps) == 10
        assert elapsed < (deadline_ms / 1000.0) * 5
        for r in resps:
            assert r["status"] in (200, 408, 500), r
        row = next(t for t in stats["tenants"] if t["tenant"] == "h")
        counted = (
            row["completed"] + row["failed"] + row["deadline_missed"] + row["shed"]
        )
        assert counted == row["requests"] == 10
        assert stats["inflight_bytes"] == 0
        assert stats["queue_depth"] == 0

    def test_decode_failure_counter_increments(self, root, x):
        from repro.obs import registry

        before = sum(
            rec["value"]
            for rec in registry().snapshot().values()
            if rec["name"] == "serve.decode_failures"
        )
        with ServerThread(_server_config(root)) as st:
            with FaultPlan(seed=11, bitflip_blocks=(2,)).activate():
                resp = run(_spmv(st.server.port, x, tenant="c"))
        assert resp["status"] == 500
        after = sum(
            rec["value"]
            for rec in registry().snapshot().values()
            if rec["name"] == "serve.decode_failures"
        )
        assert after >= before + 1
