"""CLI tests for the observability surface: ``repro metrics``, the
``--metrics-out`` / ``--trace-out`` flags, and the experiments runner."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.experiments.runner import main as runner_main

MATRIX = "synth:banded:n=800,bandwidth=4"


@pytest.fixture(autouse=True)
def isolated_obs():
    """Each test records into (and traces with) fresh process-wide state."""
    with obs.scoped_registry(), obs.scoped_tracer():
        yield


def _spmv_metrics(tmp_path, extra=()):
    path = tmp_path / "m.json"
    rc = main(["spmv", MATRIX, "--metrics-out", str(path), *extra])
    assert rc == 0
    return path, obs.load_metrics(str(path))


class TestMetricsOut:
    def test_spmv_emits_25_names_across_layers(self, tmp_path, capsys):
        path, snap = _spmv_metrics(tmp_path)
        names = {record["name"] for record in snap.values()}
        assert len(names) >= 25
        for prefix in ("codecs.", "spmv.", "memsys."):
            assert any(n.startswith(prefix) for n in names), prefix
        assert f"wrote {path}" in capsys.readouterr().out

    def test_metrics_out_forces_functional_iteration(self, tmp_path, capsys):
        # --iterations defaults to 0; the snapshot must still span spmv.*.
        _path, snap = _spmv_metrics(tmp_path)
        iters = [r for r in snap.values() if r["name"] == "spmv.iterations"]
        assert iters and iters[0]["value"] == 1
        assert "engine (1 serial SpMV iterations)" in capsys.readouterr().out

    def test_explicit_iterations_respected(self, tmp_path):
        _path, snap = _spmv_metrics(tmp_path, extra=["--iterations", "3"])
        iters = [r for r in snap.values() if r["name"] == "spmv.iterations"]
        assert iters[0]["value"] == 3


class TestTraceOut:
    def test_trace_is_valid_chrome_json_with_ordered_ts(self, tmp_path):
        trace_path = tmp_path / "t.json"
        rc = main(["spmv", MATRIX, "--trace-out", str(trace_path)])
        assert rc == 0
        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        assert events, "tracing enabled but no spans recorded"
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert {"name", "ts", "pid", "tid"} <= set(event)
        # Monotonically ordered timestamps within each (pid, tid) track.
        by_track: dict[tuple, list[float]] = {}
        for event in events:
            by_track.setdefault((event["pid"], event["tid"]), []).append(event["ts"])
        for track, stamps in by_track.items():
            assert stamps == sorted(stamps), track

    def test_trace_includes_span_names(self, tmp_path):
        trace_path = tmp_path / "t.json"
        assert main(["spmv", MATRIX, "--trace-out", str(trace_path)]) == 0
        names = {e["name"] for e in json.loads(trace_path.read_text())["traceEvents"]}
        assert "spmv.recoded" in names
        assert "spmv.block" in names
        assert "codecs.compress_matrix" in names


class TestMetricsCommand:
    def test_table_view(self, tmp_path, capsys):
        path, _snap = _spmv_metrics(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "spmv.iterations" in out
        assert "counter" in out

    def test_prometheus_view(self, tmp_path, capsys):
        path, _snap = _spmv_metrics(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(path), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_spmv_iterations counter" in out

    def test_json_view_round_trips(self, tmp_path, capsys):
        path, snap = _spmv_metrics(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(path), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == snap

    def test_diff_view(self, tmp_path, capsys):
        path, _snap = _spmv_metrics(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(path), "--diff", str(path)]) == 0
        out = capsys.readouterr().out
        assert "delta" in out and "+0" in out

    def test_rejects_foreign_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["metrics", str(bad)]) == 1
        assert "not a repro metrics file" in capsys.readouterr().err


class TestExperimentsRunner:
    def test_runner_metrics_and_trace_out(self, tmp_path, capsys):
        m_path, t_path = tmp_path / "m.json", tmp_path / "t.json"
        rc = runner_main([
            "--exp", "fig10", "--suite-count", "3",
            "--metrics-out", str(m_path), "--trace-out", str(t_path),
        ])
        assert rc == 0
        snap = obs.load_metrics(str(m_path))
        names = {r["name"] for r in snap.values()}
        assert "experiments.runs" in names
        assert "experiments.seconds" in names
        labels = [
            r["labels"] for r in snap.values() if r["name"] == "experiments.seconds"
        ]
        assert {"exp": "fig10"} in labels
        events = json.loads(t_path.read_text())["traceEvents"]
        assert any(e["name"] == "experiments.run" for e in events)
